#!/usr/bin/env python3
"""Compare a fresh bench snapshot against a checked-in baseline.

    perf_diff.py --baseline BENCH_update.json --current fresh.json \
                 [--tolerance PCT]

Both files are bench/support/snapshot.hpp output: a flat JSON object whose
"bench" key names the snapshot and whose remaining keys are metrics. The
direction of "worse" is inferred from the key name:

  * lower is better:  keys ending in _us, _ns, _ms, _seconds (latencies);
  * higher is better: keys ending in _mops, _rps, _mbs, _mbps, or
    containing "speedup" (throughputs);
  * anything else (configuration echoes like hosts, packets_per_window,
    non-numeric fields): presence + equality is informational only.

A directional metric fails when it is worse than the baseline by more than
--tolerance percent (default 50 — CI runners and dev machines differ by a
lot more than run-to-run noise on one box, so the trajectory gate is a
safety net against order-of-magnitude regressions, not a 5% tripwire).
Improvements never fail. A directional key present in the baseline but
missing from the current run always fails: silently dropping a metric is
how regressions hide.

Exit codes: 0 = within tolerance, 1 = regression (or missing metric),
2 = usage / IO / parse error.
"""

import argparse
import json
import sys

LOWER_BETTER_SUFFIXES = ("_us", "_ns", "_ms", "_seconds")
HIGHER_BETTER_SUFFIXES = ("_mops", "_rps", "_mbs", "_mbps")


def direction(key):
    """'down' if lower is better, 'up' if higher is better, None if neutral."""
    if key.endswith(LOWER_BETTER_SUFFIXES):
        return "down"
    if key.endswith(HIGHER_BETTER_SUFFIXES) or "speedup" in key:
        return "up"
    return None


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write("perf_diff: cannot read %s: %s\n" % (path, e))
        sys.exit(2)
    if not isinstance(data, dict):
        sys.stderr.write("perf_diff: %s is not a JSON object\n" % path)
        sys.exit(2)
    return data


def main():
    ap = argparse.ArgumentParser(
        description="Gate a fresh bench snapshot against a checked-in baseline."
    )
    ap.add_argument("--baseline", required=True, help="checked-in BENCH_*.json")
    ap.add_argument("--current", required=True, help="snapshot from this run")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=50.0,
        help="max %% worse than baseline before failing (default: 50)",
    )
    args = ap.parse_args()
    if args.tolerance <= 0:
        ap.error("--tolerance must be positive")

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("bench") != cur.get("bench"):
        sys.stderr.write(
            "perf_diff: snapshot name mismatch: baseline %r vs current %r\n"
            % (base.get("bench"), cur.get("bench"))
        )
        return 2

    print(
        "perf trajectory: %s (tolerance %.0f%%)"
        % (base.get("bench", "?"), args.tolerance)
    )
    failures = 0
    for key, bval in base.items():
        if key == "bench":
            continue
        d = direction(key)
        if key not in cur:
            if d is None:
                print("  %-28s %-14s (informational, missing in current)" % (key, bval))
            else:
                print("  %-28s MISSING in current run -> FAIL" % key)
                failures += 1
            continue
        cval = cur[key]
        if d is None or not isinstance(bval, (int, float)) or isinstance(bval, bool):
            note = "" if bval == cval else "  (changed from %r)" % (bval,)
            print("  %-28s %-14r%s" % (key, cval, note))
            continue
        if not isinstance(cval, (int, float)) or isinstance(cval, bool):
            print("  %-28s non-numeric %r -> FAIL" % (key, cval))
            failures += 1
            continue
        if bval == 0:
            print("  %-28s baseline is 0, skipping ratio" % key)
            continue
        # Positive delta_pct = worse, regardless of direction.
        change_pct = (cval - bval) / bval * 100.0
        worse_pct = -change_pct if d == "up" else change_pct
        verdict = "FAIL" if worse_pct > args.tolerance else "ok"
        if verdict == "FAIL":
            failures += 1
        arrow = "down" if d == "down" else "up"
        print(
            "  %-28s %12.3f -> %12.3f  %+7.1f%% (%s is better) %s"
            % (key, bval, cval, change_pct, arrow, verdict)
        )

    if failures:
        print("perf_diff: %d metric(s) regressed beyond tolerance" % failures)
        return 1
    print("perf_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
