// SA005 pass: FixtureWireOk matches its entry in the fixture
// wire_schema.lock field-for-field.
#include <cstdint>

// umon-lint: wire-struct
struct FixtureWireOk {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint8_t kind = 0;
  std::uint8_t pad = 0;
  std::uint32_t crc = 0;
};
static_assert(sizeof(FixtureWireOk) == 12, "fixture header is 12 bytes");
