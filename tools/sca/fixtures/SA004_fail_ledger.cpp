// SA004 fail: a default (seq_cst) store with no [pairs] ledger entry --
// nothing documents which acquire this release pairs with.
#include <atomic>

class Unledgered {
 public:
  void finish() {
    done_.store(true);
  }

 private:
  std::atomic<bool> done_{false};
};
