// SA004 pass: the release store and its acquire partner are both named by
// the fixture-ready pair in atomics_ledger.txt; the relaxed counter is
// UL002's business, not the ledger's.
#include <atomic>
#include <cstdint>

class Handoff {
 public:
  void publish(std::uint64_t v) {
    payload_ = v;
    ready_.store(true, std::memory_order_release);
  }
  std::uint64_t consume() {
    while (!ready_.load(std::memory_order_acquire)) {
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return payload_;
  }

 private:
  std::atomic<bool> ready_{false};
  std::atomic<std::uint64_t> hits_{0};
  std::uint64_t payload_ = 0;
};
