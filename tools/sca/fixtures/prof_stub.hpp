// Fixture stand-in for src/obs/prof.hpp: a two-stage table so the SA003
// fixtures can mark one function per-packet hot (period 64) and one cold
// (period 1) without dragging the real profiler in.
#pragma once
#include <cstdint>

enum class ProfStage : std::uint8_t {
  kHotStage = 0,  ///< per-packet (sampled 1-in-64)
  kColdStage,     ///< per-epoch (sampled every call)
  kCount
};

inline constexpr std::uint32_t kProfPeriod[2] = {
    64,  // kHotStage
    1,   // kColdStage
};
