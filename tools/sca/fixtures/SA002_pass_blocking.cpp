// SA002 pass: the fsync happens after the guard's scope closes, and the
// condition-variable wait names its own guard (released atomically), so
// nothing blocks while a mutex is held.
#include <condition_variable>
#include <mutex>
#include <unistd.h>

class Unblocked {
 public:
  void flush(int fd) {
    {
      std::lock_guard<std::mutex> lock(m_);
      dirty_ = 0;
    }
    ::fsync(fd);
  }
  void park() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk);
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  int dirty_ = 0;
};
