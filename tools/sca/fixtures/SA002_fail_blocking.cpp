// SA002 fail: seal() reaches ::fsync through flush_locked() while m_ is
// held -- the seal barrier stalls every other thread on the mutex for the
// duration of a disk flush.
#include <mutex>
#include <unistd.h>

class Blocked {
 public:
  void seal(int fd) {
    std::lock_guard<std::mutex> lock(m_);
    flush_locked(fd);
  }

 private:
  void flush_locked(int fd) {
    dirty_ = 0;
    ::fsync(fd);
  }

  std::mutex m_;
  int dirty_ = 0;
};
