// SA003 fail: the per-packet hot stage reaches history_.push_back through
// accumulate() -- an unbounded heap allocation on the packet path.
#include <cstdint>
#include <vector>
#define UMON_PROF_SCOPE(stage)

class HotAlloc {
 public:
  void update(std::uint64_t v) {
    UMON_PROF_SCOPE(kHotStage);
    accumulate(v);
  }

 private:
  void accumulate(std::uint64_t v) {
    history_.push_back(v);
  }

  std::vector<std::uint64_t> history_;
};
