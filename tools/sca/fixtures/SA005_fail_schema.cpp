// SA005 fail: the lockfile records `lo` before `hi`; the struct swapped
// them -- byte-identical sizeof, silently incompatible wire layout.
#include <cstdint>

// umon-lint: wire-struct
struct FixtureWireDrift {
  std::uint32_t id = 0;
  std::uint16_t hi = 0;
  std::uint16_t lo = 0;
};
static_assert(sizeof(FixtureWireDrift) == 8, "fixture record is 8 bytes");
