// SA003 pass: the hot-stage function only touches preallocated storage
// (helper writes through an index); the allocation lives behind the cold
// stage, whose sampling period (1) is below the per-packet threshold.
#include <cstdint>
#include <vector>
#define UMON_PROF_SCOPE(stage)

class HotPath {
 public:
  void update(std::uint64_t v) {
    UMON_PROF_SCOPE(kHotStage);
    accumulate(v);
  }
  void roll_epoch() {
    UMON_PROF_SCOPE(kColdStage);
    history_.push_back(ring_[0]);
  }

 private:
  void accumulate(std::uint64_t v) {
    ring_[static_cast<std::size_t>(v) & 7] += v;
  }

  std::uint64_t ring_[8] = {};
  std::vector<std::uint64_t> history_;
};
