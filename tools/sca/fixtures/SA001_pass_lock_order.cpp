// SA001 pass: every path acquires order_a_ before order_b_, including the
// interprocedural path through locked_helper(), and the unique_lock is
// dropped before the second mutex is taken on the late path.
#include <mutex>

class Orderly {
 public:
  void fast_path() {
    std::lock_guard<std::mutex> a(order_a_);
    std::lock_guard<std::mutex> b(order_b_);
    ++work_;
  }
  void nested_path() {
    std::lock_guard<std::mutex> a(order_a_);
    locked_helper();
  }
  void late_path() {
    std::unique_lock<std::mutex> a(order_a_);
    ++work_;
    a.unlock();
    std::lock_guard<std::mutex> b(order_b_);
    ++work_;
  }

 private:
  void locked_helper() {
    std::lock_guard<std::mutex> b(order_b_);
    ++work_;
  }

  std::mutex order_a_;
  std::mutex order_b_;
  int work_ = 0;
};
