// SA001 fail: forward() takes order_a_ then order_b_; backward() reaches
// order_a_ through locked_helper() while holding order_b_ -- a classic
// two-lock inversion that can deadlock two threads.
#include <mutex>

class Inverted {
 public:
  void forward() {
    std::lock_guard<std::mutex> a(order_a_);
    std::lock_guard<std::mutex> b(order_b_);
    ++work_;
  }
  void backward() {
    std::lock_guard<std::mutex> b(order_b_);
    locked_helper();
  }

 private:
  void locked_helper() {
    std::lock_guard<std::mutex> a(order_a_);
    ++work_;
  }

  std::mutex order_a_;
  std::mutex order_b_;
  int work_ = 0;
};
