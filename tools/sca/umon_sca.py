#!/usr/bin/env python3
"""umon-sca -- semantic static analysis for the uMon tree.

Where umon-lint (tools/lint/umon_lint.py) enforces token-level invariants,
umon-sca reasons about structure: it parses every translation unit into a
small intermediate representation (functions with an ordered event stream of
lock acquisitions, calls, atomic operations, allocations, and profiler
scopes) and runs five interprocedural rules over it:

  SA001  lock-order inversion: build the global mutex-acquisition graph from
         lock_guard/unique_lock/scoped_lock sites (including locks taken by
         callees while a mutex is held); any cycle is a potential deadlock
         and fails with both witness stacks printed.
  SA002  blocking call under lock: no fsync/fdatasync/write/send/recv/sleep/
         condition-variable wait reachable while a mutex is held.  A
         cv.wait(guard) releases its own guard atomically and is exempt for
         that one mutex.
  SA003  allocation in the per-packet hot path: interprocedural -- no
         new/malloc/container growth reachable from a function whose
         UMON_PROF_SCOPE stage has a per-packet sampling period in the
         PR 7 stage table (kProfPeriod >= --hot-period).
  SA004  atomics happens-before ledger: every non-relaxed atomic operation
         (explicit acquire/release/acq_rel/seq_cst, or the implicit seq_cst
         default) must be named in the [pairs] ledger section of
         tools/lint/atomics_policy.txt, and every ledger pair must have both
         a release-side and an acquire-side row.  Relaxed ops are governed
         by umon-lint UL002 instead.
  SA005  wire-schema lockfile: the field names/offsets/sizes of every
         `// umon-lint: wire-struct` pinned struct are extracted and diffed
         against the checked-in tools/sca/wire_schema.lock.  Stronger than
         the static_asserts: catches reordering and silent field renames.

Backends
--------
  --backend internal    hermetic structural parser (no toolchain needed);
                        the deterministic reference gate used by ctest/CI.
  --backend libclang    real clang ASTs via the clang.cindex python
                        bindings, when installed.
  --backend clang-json  `clang++ -Xclang -ast-dump=json` over the exported
                        compile_commands.json, when clang++ is on PATH.
  --backend auto        libclang > clang-json > internal.

Requesting a clang backend that is unavailable exits with code 3 (SKIP)
and a clear message; `auto` never skips because the internal backend is
always available.  SA005 extraction is intentionally backend-independent
(purely structural) so wire_schema.lock is byte-identical everywhere.

Suppressions: `// umon-sca: allow(SA002) <justification>` on the finding
line or the line above.  A suppression without a justification does not
suppress and is itself reported (SA000).

Exit codes: 0 clean, 1 findings, 2 usage/internal error, 3 backend SKIP.
"""

from __future__ import annotations

import argparse
import fnmatch
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

SCHEMA_VERSION = 1
TOOL = "umon-sca"

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SOURCE_EXTENSIONS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h", ".hxx"}
SKIP_DIR_NAMES = {"build", "build-tsan", ".git", "fixtures", "__pycache__"}
DEFAULT_ROOTS = ["src", "tests", "bench", "examples"]

DEFAULT_LOCKFILE = os.path.join("tools", "sca", "wire_schema.lock")
DEFAULT_LEDGER = os.path.join("tools", "lint", "atomics_policy.txt")
DEFAULT_PROF_TABLE = os.path.join("src", "obs", "prof.hpp")
DEFAULT_HOT_PERIOD = 64

RULES = {
    "SA001": "lock-order inversion (potential deadlock cycle)",
    "SA002": "blocking call reachable while a mutex is held",
    "SA003": "allocation reachable from a per-packet hot path",
    "SA004": "non-relaxed atomic op missing from the happens-before ledger",
    "SA005": "wire struct layout drifted from wire_schema.lock",
}
META_RULE = "SA000"  # malformed suppression comments

# Functions that block the calling thread.  Matched against the last
# component of a callee name ("::fsync" and "fsync" both match "fsync").
BLOCKING_CALLS = {
    "fsync", "fdatasync", "syncfs", "sync_file_range", "msync",
    "write", "pwrite", "pwritev", "writev",
    "send", "sendto", "sendmsg", "recv", "recvfrom", "recvmsg",
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
    "wait", "wait_for", "wait_until", "join",
    "poll", "select", "epoll_wait", "accept", "connect", "flock",
}
CV_WAITS = {"wait", "wait_for", "wait_until"}

# Container growth / allocation entry points (member calls), plus the
# direct allocators matched separately (new / malloc family).
GROWTH_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert", "resize", "reserve", "assign", "append",
}
ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "strdup", "aligned_alloc",
    "make_unique", "make_shared",
}

ATOMIC_METHODS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set",
}

GUARD_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}

NOT_A_FUNCTION = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "do", "else", "new", "delete", "case", "default", "static_assert",
    "noexcept", "decltype", "alignas", "throw", "assert", "defined",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "co_await", "co_return", "co_yield", "requires",
}

GTEST_MACROS = {"TEST", "TEST_F", "TEST_P", "TYPED_TEST", "TYPED_TEST_P"}

ALLOW_RE = re.compile(
    r"//\s*umon-sca:\s*allow\(\s*([A-Z0-9_,\s]+?)\s*\)\s*:?\s*(.*?)\s*$")

# Sizes/alignments of the fixed-width scalar vocabulary wire structs use.
SCALAR_LAYOUT = {
    "bool": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "std::int8_t": 1, "std::uint8_t": 1, "int8_t": 1, "uint8_t": 1,
    "std::int16_t": 2, "std::uint16_t": 2, "int16_t": 2, "uint16_t": 2,
    "std::int32_t": 4, "std::uint32_t": 4, "int32_t": 4, "uint32_t": 4,
    "int": 4, "unsigned": 4, "unsigned int": 4, "float": 4,
    "std::int64_t": 8, "std::uint64_t": 8, "int64_t": 8, "uint64_t": 8,
    "double": 8, "std::size_t": 8, "size_t": 8,
}


class Finding:
    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Event:
    """One ordered happening inside a function body."""
    __slots__ = ("kind", "line", "name", "receiver", "args", "order",
                 "mutexes", "guard", "depth")

    def __init__(self, kind, line, name, receiver="", args="", order="",
                 mutexes=None, guard="", depth=0):
        self.kind = kind          # lock | unlock | call | atomic | alloc | prof
        self.line = line
        self.name = name          # callee base / mutex expr / stage / var
        self.receiver = receiver  # receiver base identifier for member calls
        self.args = args          # raw argument text (truncated)
        self.order = order        # memory order for atomic events
        self.mutexes = mutexes or []  # resolved mutex ids (lock/unlock)
        self.guard = guard        # guard variable name (lock/unlock)
        self.depth = depth


class FunctionIR:
    __slots__ = ("name", "qual", "cls", "file", "line", "events",
                 "statements", "local_vars")

    def __init__(self, name, cls, file, line):
        self.name = name          # base name (last component)
        self.cls = cls            # enclosing/owning class name ("" if free)
        self.file = file          # repo-relative path
        self.line = line
        self.qual = f"{cls}::{name}" if cls else name
        self.events = []
        self.statements = []      # (line, text) for deferred atomic sweep
        self.local_vars = {}      # var -> class name (poor man's types)


class StructField:
    __slots__ = ("name", "type", "array")

    def __init__(self, name, type_, array):
        self.name = name
        self.type = type_
        self.array = array        # 0 scalar, else element count


class StructIR:
    __slots__ = ("name", "qual", "file", "line", "fields", "wire")

    def __init__(self, name, qual, file, line, wire):
        self.name = name
        self.qual = qual
        self.file = file
        self.line = line
        self.fields = []
        self.wire = wire


class FileIR:
    __slots__ = ("rel", "raw", "functions", "structs", "atomic_decls",
                 "mutex_decls", "member_types", "classes", "allows",
                 "malformed")

    def __init__(self, rel, raw):
        self.rel = rel
        self.raw = raw
        self.functions = []
        self.structs = []
        self.atomic_decls = set()     # names declared std::atomic here
        self.mutex_decls = {}         # mutex name -> set(owning class)
        self.member_types = {}        # (owner class, var) -> member class
        self.classes = set()
        self.allows = {}              # line -> (set(rules), justification)
        self.malformed = []           # (line, message) bad suppressions


def strip_comments_and_strings(text):
    """Blank comments, string/char literals, and preprocessor directives
    while preserving line structure exactly."""
    out = []
    i, n = 0, len(text)
    state = "code"
    line_start = True
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if line_start and c in " \t":
                out.append(c)
                i += 1
                continue
            if line_start and c == "#":
                state = "pp"
                out.append(" ")
                i += 1
                line_start = False
                continue
            line_start = c == "\n"
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    out.append('"')
                    out.append(" " * (len(m.group(0)) - 1))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # A quote straight after an identifier/number character is a
                # C++14 digit separator (1'000'000), not a char literal.
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() or prev == "_":
                    out.append("'")
                    i += 1
                    continue
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
            continue
        if state == "pp":
            if c == "\n":
                # Preserve continuation lines as part of the directive.
                if out and text[i - 1] == "\\":
                    out.append("\n")
                    i += 1
                    continue
                state = "code"
                line_start = True
                out.append("\n")
                i += 1
                continue
            if c == "/" and nxt == "*":
                state = "pp_block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "/":
                state = "pp_line_comment"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\\" else " ")
            i += 1
            continue
        if state == "pp_line_comment":
            if c == "\n":
                state = "code"
                line_start = True
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        if state == "pp_block_comment":
            if c == "*" and nxt == "/":
                state = "pp"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                state = "code"
                line_start = True
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        if state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1))
                out.append('"')
                i += len(raw_delim)
                state = "code"
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        if state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                out.append('"')
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        if state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                out.append("'")
                state = "code"
            else:
                out.append(" ")
            i += 1
            continue
    return "".join(out)


def parse_allows(raw_lines):
    """Collect `// umon-sca: allow(...)` suppressions, keyed by the lines
    they shield (their own line, the rest of the comment block the
    justification wraps onto, and the first code line after it)."""
    allows = {}
    malformed = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            if "umon-sca:" in line and "allow" in line:
                malformed.append(
                    (idx, "unparseable umon-sca suppression comment"))
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        justification = m.group(2).strip()
        if not justification:
            malformed.append(
                (idx, f"suppression for {', '.join(sorted(rules))} has no "
                      "justification; write `// umon-sca: allow(RULE) why`"))
            continue
        allows[idx] = (rules, justification)
        # The justification may wrap onto further comment lines; the
        # suppression shields the whole block plus the first code line.
        j = idx + 1
        while j <= len(raw_lines) and \
                raw_lines[j - 1].lstrip().startswith("//"):
            allows[j] = (rules, justification)
            j += 1
        allows[j] = (rules, justification)
    return allows, malformed

# ---------------------------------------------------------------------------
# Internal structural backend
# ---------------------------------------------------------------------------

CLASS_RE = re.compile(
    r"(?:template\s*<[^{}]*>\s*)?\b(?:class|struct|union)\s+"
    r"(?:\[\[[^\]]*\]\]\s*)?(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)\b(?!\s*[;*&)])")
NAMESPACE_RE = re.compile(r"\bnamespace\s*([A-Za-z_][\w:]*)?\s*$")
GUARD_RE = re.compile(
    r"\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\s*"
    r"(?:<[^<>;]*(?:<[^<>]*>)?[^<>;]*>)?\s+([A-Za-z_]\w*)\s*[({](.*)[)}]\s*$",
    re.S)
CALL_RE = re.compile(r"([A-Za-z_][\w:]*)\s*\(")
DECL_RE = re.compile(
    r"^(?:mutable\s+|static\s+|inline\s+|constexpr\s+|const\s+|extern\s+)*"
    r"((?:std::)?[A-Za-z_][\w:]*(?:\s*<[^;=]*>)?)\s*(?:\*|&)?\s*"
    r"([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*(?:=[^=].*|\{.*|;?\s*)$", re.S)
MEMORDER_RE = re.compile(r"\bmemory_order(?:::|_)(\w+)")
PROF_RE = re.compile(r"\bUMON_PROF_SCOPE\s*\(\s*(?:[\w:]*::)?(k\w+)")
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
FIELD_SKIP_RE = re.compile(
    r"^\s*(?:public|private|protected|using|friend|typedef|template|enum|"
    r"class|struct|union|static|operator|virtual|explicit|~)\b|^\s*$")


class _Ctx:
    __slots__ = ("kind", "name", "fn", "struct", "guards")

    def __init__(self, kind, name="", fn=None, struct=None):
        self.kind = kind      # ns | class | enum | fn | block
        self.name = name
        self.fn = fn
        self.struct = struct
        self.guards = []      # guard dicts opened directly in this scope


def _split_top_commas(text):
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "<([{":
            depth += 1
        elif ch in ">)]}":
            depth -= 1
        if ch == "," and depth <= 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _balanced_args(text, open_idx):
    """Return the argument text inside the paren starting at open_idx."""
    depth = 0
    for j in range(open_idx, min(len(text), open_idx + 4000)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:j]
    return text[open_idx + 1:open_idx + 200]


def _receiver_of(text, idx):
    """Identifier base of the member-call receiver ending just before idx
    (``a.b->name(`` -> ``b``); empty string for a plain call."""
    j = idx - 1
    while j >= 0 and text[j] in " \t\n":
        j -= 1
    if j >= 1 and text[j] == ".":
        j -= 1
    elif j >= 1 and text[j - 1:j + 1] == "->":
        j -= 2
    else:
        return ""
    while j >= 0 and text[j] in " \t\n":
        j -= 1
    if j >= 0 and text[j] == "]":
        depth = 0
        while j >= 0:
            if text[j] == "]":
                depth += 1
            elif text[j] == "[":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    end = j + 1
    while j >= 0 and (text[j].isalnum() or text[j] == "_"):
        j -= 1
    ident = text[j + 1:end]
    return ident if re.fullmatch(r"[A-Za-z_]\w*", ident or "") else ""


def _extract_fn_name(sig):
    """Name of the function a signature declares, or None."""
    depth = 0
    first_open = -1
    for i, ch in enumerate(sig):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            first_open = i
            break
    if first_open < 0:
        return None
    prefix = sig[:first_open].rstrip()
    m = re.search(r"(operator\s*(?:\(\)|\[\]|[^\s\w(]{1,3}))\s*$", prefix)
    if m:
        name = re.sub(r"\s+", "", m.group(1))
        return name
    m = re.search(r"([~A-Za-z_][\w]*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*$", prefix)
    if not m:
        return None
    name = re.sub(r"\s+", "", m.group(1))
    base = name.split("::")[-1].lstrip("~")
    if base in NOT_A_FUNCTION or name in NOT_A_FUNCTION:
        return None
    if prefix.endswith(("=", ",", "&", "|", "+", "-", "*", "/", "<", ">",
                        "!", "(", "return")):
        return None
    if name in GTEST_MACROS:
        args = _split_top_commas(_balanced_args(sig, first_open))
        if len(args) >= 2:
            return f"{args[0]}::{args[1]}"
        return None
    return name


class InternalBackend:
    """Structural parser: no toolchain required, fully hermetic."""

    name = "internal"

    def parse(self, rel, raw):
        fir = FileIR(rel, raw)
        raw_lines = raw.splitlines()
        allows, malformed = parse_allows(raw_lines)
        fir.allows = allows
        fir.malformed = malformed
        marker_lines = {i for i, l in enumerate(raw_lines, start=1)
                        if re.search(r"umon-lint:\s*wire-struct", l)}
        text = strip_comments_and_strings(raw)
        stack = [_Ctx("ns", "")]
        pending = []
        pending_line = 1
        line = 1
        paren_depth = 0
        pending_fresh = True  # no non-space content buffered yet
        i, n = 0, len(text)

        def cur_fn():
            for ctx in reversed(stack):
                if ctx.fn is not None:
                    return ctx.fn
            return None

        def cur_class():
            for ctx in reversed(stack):
                if ctx.kind == "class":
                    return ctx
            return None

        def cur_ns():
            parts = [c.name for c in stack if c.kind == "ns" and c.name]
            return "::".join(parts)

        def flush(stmt_line):
            stmt = "".join(pending)
            pending.clear()
            s = stmt.strip()
            if s:
                self._statement(fir, stack, s, stmt_line,
                                cur_fn(), cur_class())

        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                pending.append(" ")
                i += 1
                continue
            if c == "(":
                paren_depth += 1
                if pending_fresh:
                    pending_line = line
                    pending_fresh = False
                pending.append(c)
                i += 1
                continue
            if c == ")":
                paren_depth = max(0, paren_depth - 1)
                if pending_fresh:
                    pending_line = line
                    pending_fresh = False
                pending.append(c)
                i += 1
                continue
            if c == ";" and paren_depth == 0:
                flush(pending_line)
                pending_line = line
                pending_fresh = True
                i += 1
                continue
            if c == "{":
                sig = "".join(pending).strip()
                ctx = self._classify(sig, stack, paren_depth, cur_fn())
                if ctx.kind in ("fn", "class", "ns", "enum"):
                    # Signature, not a statement: do not emit events from it.
                    pending.clear()
                    pending_line = line
                    pending_fresh = True
                    if ctx.kind == "fn":
                        ctx.fn.file = rel
                        ctx.fn.line = self._sig_line(sig, line, pending_line)
                        if not ctx.fn.cls:
                            encl = cur_class()
                            if encl is not None:
                                ctx.fn.cls = encl.name
                                ctx.fn.qual = (f"{encl.name}::{ctx.fn.name}"
                                               if encl.name else ctx.fn.name)
                        fir.functions.append(ctx.fn)
                    elif ctx.kind == "class" and ctx.struct is not None:
                        ctx.struct.file = rel
                        ctx.struct.line = line
                        ns = cur_ns()
                        encl = cur_class()
                        outer = (f"{encl.name}::" if encl else "")
                        ctx.struct.qual = (f"{ns}::" if ns else "") + outer \
                            + ctx.struct.name
                        ctx.struct.wire = any(
                            ln in marker_lines
                            for ln in range(max(1, line - 4), line + 1))
                        fir.structs.append(ctx.struct)
                        fir.classes.add(ctx.struct.name)
                else:
                    flush(pending_line)
                    pending_line = line
                    pending_fresh = True
                stack.append(ctx)
                i += 1
                continue
            if c == "}":
                flush(pending_line)
                pending_line = line
                pending_fresh = True
                if len(stack) > 1:
                    closing = stack.pop()
                    fn = cur_fn() if closing.fn is None else closing.fn
                    if fn is not None:
                        for g in closing.guards:
                            if g["locked"]:
                                fn.events.append(Event(
                                    "unlock", line, g["var"],
                                    guard=g["var"],
                                    mutexes=list(g["mutex_exprs"])))
                i += 1
                continue
            if pending_fresh and not c.isspace():
                pending_line = line
                pending_fresh = False
            pending.append(c)
            i += 1
        flush(pending_line)
        return fir

    @staticmethod
    def _sig_line(sig, brace_line, pending_line):
        # Attribute the function to the line its brace opens on; close enough
        # for reporting and stable across reformatting.
        return brace_line

    def _classify(self, sig, stack, paren_depth, enclosing_fn):
        if paren_depth > 0 or not sig:
            return _Ctx("block")
        top = stack[-1].kind
        m = NAMESPACE_RE.search(sig)
        if m and "(" not in sig:
            return _Ctx("ns", m.group(1) or "")
        if re.search(r"\benum\b", sig) and "(" not in sig:
            return _Ctx("enum")
        if sig.endswith(("=", ",", "return", "else", "do", "try", "->",
                         "&&", "||", "(")):
            return _Ctx("block")
        cm = CLASS_RE.search(sig)
        if cm and "(" not in sig and not sig.endswith("="):
            name = cm.group(1)
            s = StructIR(name, name, "", 0, False)
            return _Ctx("class", name, struct=s)
        if enclosing_fn is not None:
            return _Ctx("block")
        if top in ("ns", "class"):
            name = _extract_fn_name(sig)
            if name:
                base = name.split("::")[-1].lstrip("~")
                cls = ""
                if "::" in name:
                    cls = name.split("::")[-2]
                fn = FunctionIR(base, cls, "", 0)
                return _Ctx("fn", base, fn=fn)
        return _Ctx("block")

    # -- statement-level event extraction ---------------------------------

    def _statement(self, fir, stack, s, line, fn, cls_ctx):
        # Access specifiers are not statement boundaries; shed them so the
        # following member declaration parses ("private: std::mutex m_;").
        s = re.sub(r"^(?:public|private|protected)\s*:\s*", "", s).strip()
        if not s:
            return
        if fn is None:
            self._scope_decl(fir, s, line, cls_ctx)
            return
        fn.statements.append((line, s))
        gm = GUARD_RE.search(s)
        if gm:
            kind, var, argtext = gm.group(1), gm.group(2), gm.group(3)
            args = [a for a in _split_top_commas(argtext)
                    if not re.search(r"defer_lock|adopt_lock|try_to_lock", a)]
            deferred = "defer_lock" in argtext
            mutex_exprs = [a for a in args if a]
            g = {"var": var, "mutex_exprs": mutex_exprs,
                 "locked": not deferred, "kind": kind}
            stack[-1].guards.append(g)
            if g["locked"] and mutex_exprs:
                fn.events.append(Event("lock", line, argtext, guard=var,
                                       mutexes=list(mutex_exprs)))
            return
        # guard.unlock() / guard.lock() / raw_mutex.lock()
        for m in re.finditer(r"([A-Za-z_]\w*)\s*\.\s*(unlock|lock)\s*\(", s):
            var, op = m.group(1), m.group(2)
            g = self._find_guard(stack, var)
            if g is not None:
                if op == "unlock" and g["locked"]:
                    g["locked"] = False
                    fn.events.append(Event("unlock", line, var, guard=var,
                                           mutexes=list(g["mutex_exprs"])))
                elif op == "lock" and not g["locked"]:
                    g["locked"] = True
                    fn.events.append(Event("lock", line, var, guard=var,
                                           mutexes=list(g["mutex_exprs"])))
            else:
                # Direct mutex lock/unlock: treat the object itself as the
                # mutex expression; scope tracked like a guard in this block.
                if op == "lock":
                    g = {"var": var, "mutex_exprs": [var], "locked": True,
                         "kind": "manual"}
                    stack[-1].guards.append(g)
                    fn.events.append(Event("lock", line, var, guard=var,
                                           mutexes=[var]))
                else:
                    for ctx in reversed(stack):
                        for g in ctx.guards:
                            if g["var"] == var and g["locked"]:
                                g["locked"] = False
                                fn.events.append(Event(
                                    "unlock", line, var, guard=var,
                                    mutexes=list(g["mutex_exprs"])))
                                break
        pm = PROF_RE.search(s)
        if pm:
            fn.events.append(Event("prof", line, pm.group(1)))
        if NEW_RE.search(s) and "= default" not in s:
            fn.events.append(Event("alloc", line, "new"))
        for m in CALL_RE.finditer(s):
            full = m.group(1)
            base = full.split("::")[-1]
            if base in NOT_A_FUNCTION or base in GUARD_TYPES:
                continue
            if re.match(r"^\s*(?:if|for|while|switch|catch)\b", full):
                continue
            recv = _receiver_of(s, m.start(1))
            args = _balanced_args(s, m.end(1) + s[m.end(1):].find("("))
            open_idx = s.find("(", m.end(1) - 1)
            if open_idx >= 0:
                args = _balanced_args(s, open_idx)
            ev = Event("call", line, full, receiver=recv,
                       args=args[:400])
            fn.events.append(ev)
            if base in GROWTH_METHODS and recv:
                fn.events.append(Event("alloc", line, base, receiver=recv))
            elif base in ALLOC_CALLS:
                fn.events.append(Event("alloc", line, base, receiver=recv))
            if base in ATOMIC_METHODS and recv:
                orders = MEMORDER_RE.findall(args)
                order = "seq_cst"
                if orders:
                    non_relaxed = [o for o in orders if o != "relaxed"]
                    order = non_relaxed[0] if non_relaxed else "relaxed"
                fn.events.append(Event("atomic", line, base, receiver=recv,
                                       args=args[:200], order=order))
        # Local declarations (poor man's type inference for receivers).
        dm = DECL_RE.match(s)
        if dm and "(" not in dm.group(1):
            type_text, var = dm.group(1), dm.group(2)
            cls = _class_of_type(type_text)
            if cls:
                fn.local_vars[var] = cls
            if re.match(r"(?:std::)?(?:recursive_|shared_|timed_)*mutex\b",
                        type_text.replace("std::", "", 1)):
                fir.mutex_decls.setdefault(var, set()).add(fn.qual)
            if type_text.startswith("std::atomic"):
                fir.atomic_decls.add(var)

    @staticmethod
    def _find_guard(stack, var):
        for ctx in reversed(stack):
            for g in ctx.guards:
                if g["var"] == var and g["kind"] != "manual":
                    return g
        return None

    def _scope_decl(self, fir, s, line, cls_ctx):
        dm = DECL_RE.match(s)
        if not dm:
            return
        type_text, var, array = dm.group(1), dm.group(2), dm.group(3)
        owner = cls_ctx.name if cls_ctx is not None else ""
        bare = type_text.replace("mutable ", "").strip()
        if re.fullmatch(r"(?:std::)?(?:recursive_|shared_|timed_)*mutex",
                        bare):
            fir.mutex_decls.setdefault(var, set()).add(owner)
        if bare.startswith("std::atomic"):
            fir.atomic_decls.add(var)
        cls = _class_of_type(type_text)
        if cls:
            fir.member_types[(owner, var)] = cls
        if cls_ctx is not None and cls_ctx.struct is not None:
            if not FIELD_SKIP_RE.match(s) and "(" not in s.split("=")[0]:
                count = 0
                if array:
                    inner = array.strip("[]").strip()
                    count = int(inner) if inner.isdigit() else -1
                cls_ctx.struct.fields.append(
                    StructField(var, re.sub(r"\s+", " ", type_text).strip(),
                                count))


def _class_of_type(type_text):
    """Last user-type component of a declared type, unwrapping smart
    pointers and containers one level (``std::unique_ptr<SegmentWriter>``
    -> ``SegmentWriter``)."""
    t = type_text.strip()
    m = re.match(r"(?:std::)?(?:unique_ptr|shared_ptr|optional|vector|deque|"
                 r"array)\s*<\s*(.*?)\s*[,>]", t)
    if m:
        t = m.group(1)
    t = t.split("<")[0].strip().rstrip("*& ")
    if not t or t.startswith("std::"):
        return ""
    last = t.split("::")[-1]
    if re.fullmatch(r"[A-Z]\w*", last):
        return last
    return ""

# ---------------------------------------------------------------------------
# Cross-TU analysis
# ---------------------------------------------------------------------------

class LedgerRow:
    __slots__ = ("pair", "glob", "var", "role", "line", "used")

    def __init__(self, pair, glob, var, role, line):
        self.pair = pair
        self.glob = glob
        self.var = var
        self.role = role
        self.line = line
        self.used = False


def load_ledger(path):
    """Parse the [pairs] section of atomics_policy.txt.

    Row grammar: ``pair <pair-name> <file-glob> <var> <release|acquire|both>``
    Lines before the first section header are UL002's relaxed-allowlist and
    are ignored here.  Returns (rows, errors)."""
    rows, errors = [], []
    if not os.path.exists(path):
        return rows, errors
    section = ""
    with open(path, encoding="utf-8") as fh:
        for idx, line in enumerate(fh, start=1):
            s = line.strip()
            if not s or s.startswith("#"):
                continue
            m = re.fullmatch(r"\[(\w+)\]", s)
            if m:
                section = m.group(1)
                continue
            if section != "pairs":
                continue
            parts = s.split()
            if len(parts) != 5 or parts[0] != "pair" or \
                    parts[4] not in ("release", "acquire", "both"):
                errors.append((idx, f"malformed ledger row: {s!r} (want "
                                    "`pair <name> <glob> <var> <role>`)"))
                continue
            rows.append(LedgerRow(parts[1], parts[2], parts[3], parts[4],
                                  idx))
    return rows, errors


def load_prof_table(path):
    """Stage -> sampling period, parsed from the ProfStage enum and the
    kProfPeriod initializer in src/obs/prof.hpp (or a fixture stub)."""
    if not os.path.exists(path):
        return {}
    text = strip_comments_and_strings(open(path, encoding="utf-8").read())
    em = re.search(r"enum\s+class\s+ProfStage[^{]*\{(.*?)\}", text, re.S)
    if not em:
        return {}
    names = []
    for tok in em.group(1).split(","):
        name = tok.split("=")[0].strip()
        if re.fullmatch(r"k\w+", name) and name != "kCount":
            names.append(name)
    pm = re.search(r"kProfPeriod\s*\[[^\]]*\]\s*=\s*\{(.*?)\}", text, re.S)
    if not pm:
        return {}
    periods = [int(t) for t in re.findall(r"\d+", pm.group(1))]
    return dict(zip(names, periods))


class Analyzer:
    def __init__(self, files, rules, ledger_rows, prof_table, hot_period):
        self.files = files
        self.rules = rules
        self.ledger_rows = ledger_rows
        self.prof_table = prof_table
        self.hot_period = hot_period
        self.findings = []
        self.suppressed = 0
        self._seen = set()
        self.allows = {f.rel: f.allows for f in files}

        self.methods = {}        # base -> [FunctionIR] (class methods)
        self.free = {}           # base -> [FunctionIR]
        self.class_methods = {}  # (cls, base) -> [FunctionIR]
        self.var_class = {}      # member var -> class (conflict-dropped)
        self.member_of = {}      # (owner class, var) -> class
        self.mutex_owner = {}    # mutex name -> set(owner)
        self.atomic_global = set()
        self.atomic_by_file = {}
        var_conflicts = set()
        for f in files:
            self.atomic_by_file[f.rel] = set(f.atomic_decls)
            self.atomic_global |= f.atomic_decls
            for name, owners in f.mutex_decls.items():
                self.mutex_owner.setdefault(name, set()).update(owners)
            for (owner, var), cls in f.member_types.items():
                self.member_of[(owner, var)] = cls
                if var in self.var_class and self.var_class[var] != cls:
                    var_conflicts.add(var)
                self.var_class[var] = cls
            for fn in f.functions:
                if fn.cls:
                    self.methods.setdefault(fn.name, []).append(fn)
                    self.class_methods.setdefault(
                        (fn.cls, fn.name), []).append(fn)
                else:
                    self.free.setdefault(fn.name, []).append(fn)
        for var in var_conflicts:
            self.var_class.pop(var, None)
        self.all_fns = [fn for f in files for fn in f.functions]
        self._finalize_atomics()
        self._resolved = {}
        self.may_block = self._fixpoint_block()
        self.may_alloc = self._fixpoint_alloc()
        self.locks_acq = self._fixpoint_locks()

    # -- shared plumbing ---------------------------------------------------

    def emit(self, rule, path, line, message):
        key = (rule, path, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        allow = self.allows.get(path, {}).get(line)
        if allow and (rule in allow[0]):
            self.suppressed += 1
            return
        self.findings.append(Finding(rule, path, line, message))

    def mutex_id(self, expr, fn):
        e = expr.strip().lstrip("&*")
        e = e.replace("this->", "").replace("this .", "")
        e = re.sub(r"\[[^\]]*\]", "", e)
        parts = [p for p in re.split(r"\.|->", e) if p.strip()]
        base = re.sub(r"[^\w]", "", parts[-1]) if parts else ""
        if not base:
            return f"?::{expr.strip()[:40]}"
        if len(parts) > 1:
            owner_var = re.sub(r"[^\w]", "", parts[-2].split("(")[0])
            cls = self.var_class.get(owner_var) or fn.local_vars.get(owner_var)
            if cls:
                return f"{cls}::{base}"
        owners = self.mutex_owner.get(base, set())
        if fn.cls and fn.cls in owners:
            return f"{fn.cls}::{base}"
        if fn.qual in owners:
            return f"{fn.qual}::{base}"
        if len(owners) == 1:
            return f"{next(iter(owners))}::{base}"
        return f"?::{base}"

    def resolve_call(self, ev, fn):
        cached = self._resolved.get(id(ev))
        if cached is not None:
            return cached
        full = ev.name
        base = full.split("::")[-1]
        out = []
        if "::" in full:
            cls = full.split("::")[-2]
            out = self.class_methods.get((cls, base), []) or \
                self.free.get(base, [])
        elif ev.receiver == "this":
            out = self.class_methods.get((fn.cls, base), [])
        elif not ev.receiver:
            if fn.cls:
                out = self.class_methods.get((fn.cls, base), [])
            if not out:
                out = self.free.get(base, [])
        else:
            cls = fn.local_vars.get(ev.receiver) or \
                self.member_of.get((fn.cls, ev.receiver)) or \
                self.var_class.get(ev.receiver)
            if cls:
                out = self.class_methods.get((cls, base), [])
            else:
                out = self.methods.get(base, [])
        self._resolved[id(ev)] = out
        return out

    def _finalize_atomics(self):
        """Keep member-call atomic events only for receivers that are
        declared std::atomic somewhere; add operator-form ops (=, ++, +=)
        on atomics declared in the same file (the implicit seq_cst forms)."""
        for f in self.files:
            local_atomics = self.atomic_by_file.get(f.rel, set())
            for fn in f.functions:
                fn.events = [
                    ev for ev in fn.events
                    if ev.kind != "atomic" or ev.receiver in self.atomic_global
                ]
                if not local_atomics:
                    continue
                pat = re.compile(
                    r"(?:(?<![\w.>])(" + "|".join(map(re.escape,
                                                      local_atomics)) +
                    r")(?:\[[^\]]*\])?\s*(\+\+|--|[-+|&^]?=(?!=))"
                    r"|(\+\+|--)\s*(" + "|".join(map(re.escape,
                                                     local_atomics)) + r")\b)")
                for line, stmt in fn.statements:
                    if "std::atomic" in stmt:
                        continue  # the declaration itself
                    for m in pat.finditer(stmt):
                        var = m.group(1) or m.group(4)
                        op = m.group(2) or m.group(3)
                        fn.events.append(Event(
                            "atomic", line, op, receiver=var,
                            order="seq_cst"))

    # -- interprocedural fixpoints ----------------------------------------

    def _fixpoint(self, seed):
        """Generic may-reach fixpoint.  `seed(fn)` returns a (event, detail)
        tuple for direct occurrences or None.  Returns
        {id(fn): (fn, event, callee_or_None)}."""
        reach = {}
        for fn in self.all_fns:
            hit = seed(fn)
            if hit is not None:
                reach[id(fn)] = (fn, hit, None)
        changed = True
        while changed:
            changed = False
            for fn in self.all_fns:
                if id(fn) in reach:
                    continue
                for ev in fn.events:
                    if ev.kind != "call":
                        continue
                    for callee in self.resolve_call(ev, fn):
                        if id(callee) in reach and callee is not fn:
                            reach[id(fn)] = (fn, ev, callee)
                            changed = True
                            break
                    if id(fn) in reach:
                        break
        return reach

    def _fixpoint_block(self):
        def seed(fn):
            for ev in fn.events:
                if ev.kind == "call" and \
                        ev.name.split("::")[-1] in BLOCKING_CALLS:
                    return ev
            return None
        return self._fixpoint(seed)

    def _fixpoint_alloc(self):
        def seed(fn):
            for ev in fn.events:
                if ev.kind == "alloc":
                    return ev
            return None
        return self._fixpoint(seed)

    def _fixpoint_locks(self):
        """{id(fn): {mutex_id: (fn, event)}} -- locks a call to fn may take,
        directly or transitively."""
        acq = {id(fn): {} for fn in self.all_fns}
        for fn in self.all_fns:
            for ev in fn.events:
                if ev.kind == "lock":
                    for expr in ev.mutexes:
                        acq[id(fn)].setdefault(self.mutex_id(expr, fn),
                                               (fn, ev))
        changed = True
        while changed:
            changed = False
            for fn in self.all_fns:
                mine = acq[id(fn)]
                for ev in fn.events:
                    if ev.kind != "call":
                        continue
                    for callee in self.resolve_call(ev, fn):
                        for mid, site in acq[id(callee)].items():
                            if mid not in mine:
                                mine[mid] = site
                                changed = True
        return acq

    def _chain(self, fn, reach, primitive_set_name):
        """Human-readable call chain from fn down to the seeding event."""
        hops = []
        cur = fn
        depth = 0
        while depth < 8:
            entry = reach.get(id(cur))
            if entry is None:
                break
            _, ev, callee = entry
            if callee is None:
                hops.append(f"{cur.qual} ({cur.file}:{ev.line} `{ev.name}`)")
                break
            hops.append(f"{cur.qual} ({cur.file}:{ev.line})")
            cur = callee
            depth += 1
        return " -> ".join(hops)

    # -- SA001 -------------------------------------------------------------

    def run_sa001(self):
        edges = {}  # (held, acquired) -> witness string
        for fn in self.all_fns:
            held = []  # (mid, line, guard)
            for ev in fn.events:
                if ev.kind == "lock":
                    mids = [self.mutex_id(e, fn) for e in ev.mutexes]
                    for mid in mids:
                        for (h, hline, _) in held:
                            if h.startswith("?::") or mid.startswith("?::"):
                                continue
                            if h == mid:
                                self.emit(
                                    "SA001", fn.file, ev.line,
                                    f"{fn.qual} acquires {mid} at line "
                                    f"{ev.line} while already holding it "
                                    f"(locked at line {hline}): "
                                    "self-deadlock on a non-recursive mutex")
                                continue
                            edges.setdefault((h, mid), (
                                f"{fn.qual} holds {h} ({fn.file}:{hline}) "
                                f"then locks {mid} ({fn.file}:{ev.line})",
                                fn.file, ev.line))
                    # scoped_lock acquires its arguments deadlock-free, so
                    # no intra-set edges; they all join the held set.
                    for mid in mids:
                        held.append((mid, ev.line, ev.guard))
                elif ev.kind == "unlock":
                    mids = {self.mutex_id(e, fn) for e in ev.mutexes}
                    held = [h for h in held
                            if not (h[0] in mids and h[2] == ev.guard)]
                elif ev.kind == "call" and held:
                    for callee in self.resolve_call(ev, fn):
                        for mid, (sfn, sev) in \
                                self.locks_acq[id(callee)].items():
                            if mid.startswith("?::"):
                                continue
                            for (h, hline, _) in held:
                                if h.startswith("?::") or h == mid:
                                    continue
                                edges.setdefault((h, mid), (
                                    f"{fn.qual} holds {h} ({fn.file}:"
                                    f"{hline}) and calls {ev.name} ("
                                    f"{fn.file}:{ev.line}) -> {sfn.qual} "
                                    f"locks {mid} ({sfn.file}:{sev.line})",
                                    fn.file, ev.line))
        # Cycle detection over the acquisition graph.
        adj = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)
        reported = set()
        for start in sorted(adj):
            path, on_path = [], {}
            stack = [(start, iter(sorted(adj.get(start, ()))))]
            on_path[start] = 0
            path.append(start)
            visited = set()
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt in on_path:
                        cycle = path[on_path[nxt]:] + [nxt]
                        key = frozenset(cycle)
                        if key not in reported:
                            reported.add(key)
                            self._report_cycle(cycle, edges)
                        continue
                    if nxt in visited:
                        continue
                    visited.add(nxt)
                    on_path[nxt] = len(path)
                    path.append(nxt)
                    stack.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    on_path.pop(path.pop(), None)

    def _report_cycle(self, cycle, edges):
        legs = []
        first_site = None
        for a, b in zip(cycle, cycle[1:]):
            witness, file, line = edges[(a, b)]
            legs.append(witness)
            if first_site is None:
                first_site = (file, line)
        order = " -> ".join(cycle)
        self.emit("SA001", first_site[0], first_site[1],
                  f"lock-order inversion: {order}. Witnesses: " +
                  " | ".join(legs))

    # -- SA002 -------------------------------------------------------------

    def run_sa002(self):
        for fn in self.all_fns:
            held = []  # (mid, line, guardvar)
            for ev in fn.events:
                if ev.kind == "lock":
                    for expr in ev.mutexes:
                        held.append((self.mutex_id(expr, fn), ev.line,
                                     ev.guard))
                elif ev.kind == "unlock":
                    mids = {self.mutex_id(e, fn) for e in ev.mutexes}
                    held = [h for h in held
                            if not (h[0] in mids and h[2] == ev.guard)]
                elif ev.kind == "call" and held:
                    base = ev.name.split("::")[-1]
                    eff = held
                    if base in CV_WAITS:
                        first_arg = re.sub(
                            r"[^\w]", "",
                            (ev.args.split(",")[0] if ev.args else ""))
                        eff = [h for h in held if h[2] != first_arg]
                    if not eff:
                        continue
                    held_desc = ", ".join(sorted({h[0] for h in eff}))
                    if base in BLOCKING_CALLS:
                        self.emit(
                            "SA002", fn.file, ev.line,
                            f"{fn.qual} makes blocking call `{base}` while "
                            f"holding {held_desc}")
                        continue
                    for callee in self.resolve_call(ev, fn):
                        entry = self.may_block.get(id(callee))
                        if entry is None:
                            continue
                        chain = self._chain(callee, self.may_block, "block")
                        self.emit(
                            "SA002", fn.file, ev.line,
                            f"{fn.qual} holds {held_desc} and calls "
                            f"{ev.name}, which can block: {chain}")
                        break

    # -- SA003 -------------------------------------------------------------

    def hot_roots(self):
        roots = []
        for fn in self.all_fns:
            for ev in fn.events:
                if ev.kind == "prof":
                    period = self.prof_table.get(ev.name, 0)
                    if period >= self.hot_period:
                        roots.append((fn, ev.name))
                        break
        return roots

    def run_sa003(self):
        if not self.prof_table:
            return
        reported_sites = set()
        for root, stage in self.hot_roots():
            # BFS over the call graph collecting allocation events.
            parent = {id(root): None}
            queue = [root]
            seen = {id(root)}
            while queue:
                fn = queue.pop(0)
                for ev in fn.events:
                    if ev.kind == "alloc":
                        site = (fn.file, ev.line)
                        if site in reported_sites:
                            continue
                        reported_sites.add(site)
                        chain = []
                        cur = id(fn)
                        while cur is not None and parent.get(cur) is not None:
                            pfn, pev = parent[cur]
                            chain.append(f"{pfn.qual} ({pfn.file}:"
                                         f"{pev.line})")
                            cur = id(pfn)
                        chain.reverse()
                        via = (" via " + " -> ".join(chain)) if chain else ""
                        what = ev.name if not ev.receiver else \
                            f"{ev.receiver}.{ev.name}"
                        self.emit(
                            "SA003", fn.file, ev.line,
                            f"allocation `{what}` in {fn.qual} is reachable "
                            f"from per-packet hot stage {stage} (root "
                            f"{root.qual}, period >= {self.hot_period})"
                            f"{via}")
                    elif ev.kind == "call":
                        for callee in self.resolve_call(ev, fn):
                            if id(callee) in seen:
                                continue
                            if self.may_alloc.get(id(callee)) is None:
                                continue  # prune alloc-free subtrees
                            seen.add(id(callee))
                            parent[id(callee)] = (fn, ev)
                            queue.append(callee)

    # -- SA004 -------------------------------------------------------------

    @staticmethod
    def _op_side(opname):
        if opname == "load":
            return "acquire"
        if opname == "store" or opname.endswith("="):
            return "release"
        return "both"

    def run_sa004(self, ledger_path, scanned_rels, check_stale):
        for fn in self.all_fns:
            for ev in fn.events:
                if ev.kind != "atomic" or ev.order == "relaxed":
                    continue
                side = self._op_side(ev.name)
                rows = [r for r in self.ledger_rows
                        if r.var == ev.receiver and
                        fnmatch.fnmatch(fn.file, r.glob)]
                if not rows:
                    self.emit(
                        "SA004", fn.file, ev.line,
                        f"non-relaxed atomic op `{ev.receiver} {ev.name}` "
                        f"({ev.order}) in {fn.qual} has no [pairs] ledger "
                        f"entry in {ledger_path}; name its release/acquire "
                        "partner (or make it relaxed under UL002)")
                    continue
                side_ok = any(r.role in (side, "both") or side == "both"
                              for r in rows)
                for r in rows:
                    r.used = True
                if not side_ok:
                    roles = ",".join(sorted({r.role for r in rows}))
                    self.emit(
                        "SA004", fn.file, ev.line,
                        f"atomic op `{ev.receiver} {ev.name}` is "
                        f"{side}-side but ledger pair "
                        f"'{rows[0].pair}' only lists role(s) {roles}")
        # Pair completeness + stale rows.
        pairs = {}
        for r in self.ledger_rows:
            pairs.setdefault(r.pair, []).append(r)
        for pair, rows in sorted(pairs.items()):
            relevant = [r for r in rows
                        if any(fnmatch.fnmatch(rel, r.glob)
                               for rel in scanned_rels)]
            if not relevant:
                continue
            roles = {r.role for r in relevant}
            if "both" not in roles and not (
                    "release" in roles and "acquire" in roles):
                self.emit(
                    "SA004", ledger_path, relevant[0].line,
                    f"ledger pair '{pair}' is one-sided (roles: "
                    f"{', '.join(sorted(roles))}); a release needs its "
                    "acquire partner and vice versa")
            if check_stale:
                for r in relevant:
                    if not r.used:
                        self.emit(
                            "SA004", ledger_path, r.line,
                            f"stale ledger row: pair '{pair}' var "
                            f"'{r.var}' glob '{r.glob}' matched no "
                            "non-relaxed atomic op in the scanned tree")

# ---------------------------------------------------------------------------
# SA005: wire-schema lockfile
# ---------------------------------------------------------------------------

def _round_up(v, a):
    return (v + a - 1) // a * a


class LayoutComputer:
    """Deterministic POD layout for wire structs: fixed-width scalars,
    nested wire structs, enums with an explicit underlying type, and
    numeric-bound arrays, laid out with natural alignment.  This mirrors
    exactly what the UL003 static_asserts pin, and is intentionally
    backend-independent so wire_schema.lock is byte-identical no matter
    which parser produced the rest of the IR."""

    def __init__(self, files):
        self.enum_bases = {}
        self.aliases = {}
        self.structs = {}
        self._memo = {}
        for f in files:
            for m in re.finditer(
                    r"\benum\s+(?:class|struct)?\s*([A-Za-z_]\w*)\s*:\s*"
                    r"([\w:]+)", f.raw):
                self.enum_bases[m.group(1)] = m.group(2)
            for m in re.finditer(
                    r"^\s*using\s+([A-Za-z_]\w*)\s*=\s*([^;]+);", f.raw,
                    re.M):
                self.aliases[m.group(1)] = m.group(2).strip()
            for s in f.structs:
                self.structs.setdefault(s.name, s)
                self.structs.setdefault(s.qual, s)

    def size_align(self, type_text, depth=0):
        if depth > 8:
            return None
        t = re.sub(r"\s+", " ", type_text).strip()
        t = re.sub(r"^(?:const|volatile) ", "", t)
        if t in SCALAR_LAYOUT:
            sz = SCALAR_LAYOUT[t]
            return (sz, sz)
        m = re.match(r"(?:std::)?array\s*<\s*(.+)\s*,\s*(\d+)\s*>$", t)
        if m:
            inner = self.size_align(m.group(1), depth + 1)
            if inner is None:
                return None
            return (inner[0] * int(m.group(2)), inner[1])
        base = t.split("<")[0].split("::")[-1].strip()
        if t in self.aliases:
            return self.size_align(self.aliases[t], depth + 1)
        if base in self.aliases:
            return self.size_align(self.aliases[base], depth + 1)
        if base in self.enum_bases:
            return self.size_align(self.enum_bases[base], depth + 1)
        st = self.structs.get(t) or self.structs.get(base)
        if st is not None:
            lay = self.layout(st)
            if lay["fixed"]:
                return (lay["size"], lay["align"])
        return None

    def layout(self, struct):
        key = struct.qual or struct.name
        if key in self._memo:
            return self._memo[key]
        # Pre-seed to break self-recursive struct cycles.
        self._memo[key] = {"fixed": False, "fields": [
            (f.name, f.type, None, None) for f in struct.fields]}
        off, maxal = 0, 1
        fields = []
        fixed = True
        for f in struct.fields:
            sa = self.size_align(f.type)
            if sa is None or f.array < 0:
                fixed = False
                break
            size, align = sa
            count = f.array if f.array > 0 else 1
            off = _round_up(off, align)
            fields.append((f.name, f.type, off, size * count))
            off += size * count
            maxal = max(maxal, align)
        if fixed:
            result = {"fixed": True, "size": _round_up(off, maxal),
                      "align": maxal, "fields": fields}
        else:
            result = {"fixed": False, "fields": [
                (f.name, f.type, None, None) for f in struct.fields]}
        self._memo[key] = result
        return result

    def render_lock(self, structs):
        lines = [
            "# umon-sca wire-schema lock v1",
            "# Field names, offsets, and sizes of every",
            "# `// umon-lint: wire-struct` pinned struct.  Regenerate after",
            "# an intentional wire format change with:",
            "#   python3 tools/sca/umon_sca.py --update-lock",
            "# (and bump the format version the struct carries on the wire).",
        ]
        for s in sorted(structs, key=lambda s: s.qual):
            lay = self.layout(s)
            if lay["fixed"]:
                lines.append(f"struct {s.qual} file={s.file} "
                             f"size={lay['size']} align={lay['align']}")
                for (name, type_, off, size) in lay["fields"]:
                    lines.append(f"  field {name} type={type_} "
                                 f"offset={off} size={size}")
            else:
                lines.append(f"struct {s.qual} file={s.file} "
                             "layout=variable")
                for (name, type_, _, _) in lay["fields"]:
                    lines.append(f"  field {name} type={type_}")
        return "\n".join(lines) + "\n"


def parse_lockfile(path):
    """Lockfile text -> {qual: {file, header, fields: [field lines]}}."""
    entries = {}
    if not os.path.exists(path):
        return entries
    cur = None
    with open(path, encoding="utf-8") as fh:
        for raw_line in fh:
            line = raw_line.rstrip("\n")
            s = line.strip()
            if not s or s.startswith("#"):
                continue
            if s.startswith("struct "):
                parts = s.split()
                qual = parts[1]
                attrs = dict(p.split("=", 1) for p in parts[2:] if "=" in p)
                cur = {"file": attrs.get("file", ""), "header": s,
                       "fields": []}
                entries[qual] = cur
            elif s.startswith("field ") and cur is not None:
                cur["fields"].append(s)
    return entries


def render_struct_entry(lay, struct):
    if lay["fixed"]:
        header = (f"struct {struct.qual} file={struct.file} "
                  f"size={lay['size']} align={lay['align']}")
        fields = [f"field {n} type={t} offset={o} size={sz}"
                  for (n, t, o, sz) in lay["fields"]]
    else:
        header = f"struct {struct.qual} file={struct.file} layout=variable"
        fields = [f"field {n} type={t}" for (n, t, _, _) in lay["fields"]]
    return header, fields


def run_sa005(analyzer, files, lockfile_path, lockfile_rel, update):
    layouts = LayoutComputer(files)
    wire_structs = [s for f in files for s in f.structs if s.wire]
    # Cross-check the layout computer against the tree's own sizeof
    # static_asserts: a disagreement means the computer (not the code) is
    # wrong, and must fail loudly rather than bless a bogus lockfile.
    assert_re = re.compile(
        r"static_assert\s*\(\s*sizeof\s*\(\s*([A-Za-z_][\w:]*)\s*\)\s*==\s*"
        r"(\d+)")
    by_name = {}
    for s in wire_structs:
        by_name.setdefault(s.name, s)
        by_name.setdefault(s.qual, s)
    for f in files:
        for m in assert_re.finditer(f.raw):
            s = by_name.get(m.group(1)) or by_name.get(
                m.group(1).split("::")[-1])
            if s is None:
                continue
            lay = layouts.layout(s)
            if lay["fixed"] and lay["size"] != int(m.group(2)):
                analyzer.emit(
                    "SA005", s.file, s.line,
                    f"internal layout computer disagrees with the tree: "
                    f"computed sizeof({s.qual}) == {lay['size']} but "
                    f"{f.rel} static_asserts {m.group(2)}")
    if update:
        with open(lockfile_path, "w", encoding="utf-8") as fh:
            fh.write(layouts.render_lock(wire_structs))
        return
    locked = parse_lockfile(lockfile_path)
    scanned_rels = {f.rel for f in files}
    if not locked and wire_structs:
        analyzer.emit(
            "SA005", lockfile_rel, 1,
            f"wire-schema lockfile {lockfile_rel} is missing or empty; "
            "generate it with --update-lock and check it in")
        return
    seen_quals = set()
    for s in wire_structs:
        seen_quals.add(s.qual)
        lay = layouts.layout(s)
        header, fields = render_struct_entry(lay, s)
        entry = locked.get(s.qual)
        if entry is None:
            analyzer.emit(
                "SA005", s.file, s.line,
                f"wire struct {s.qual} is not in {lockfile_rel}; if the "
                "new struct is intentional, run --update-lock and review "
                "the diff")
            continue
        if entry["header"] != header:
            analyzer.emit(
                "SA005", s.file, s.line,
                f"wire struct {s.qual} layout drifted: lockfile says "
                f"`{entry['header']}`, tree says `{header}`; an "
                "intentional wire change needs --update-lock plus a "
                "format-version bump")
            continue
        if entry["fields"] != fields:
            old = set(entry["fields"])
            new = set(fields)
            gone = sorted(old - new)
            added = sorted(new - old)
            detail = []
            if gone:
                detail.append("lockfile-only: " + "; ".join(gone))
            if added:
                detail.append("tree-only: " + "; ".join(added))
            if not detail:  # same lines, different order
                detail.append("field order changed")
            analyzer.emit(
                "SA005", s.file, s.line,
                f"wire struct {s.qual} fields drifted from "
                f"{lockfile_rel}: " + " | ".join(detail))
    for qual, entry in sorted(locked.items()):
        if qual in seen_quals:
            continue
        if entry["file"] in scanned_rels:
            analyzer.emit(
                "SA005", entry["file"], 1,
                f"wire struct {qual} is in {lockfile_rel} but no longer "
                f"pinned in {entry['file']}; removing a wire struct needs "
                "--update-lock and a format-version bump")

# ---------------------------------------------------------------------------
# Clang backends: refine function event streams with real AST facts.
#
# Both backends layer on top of the internal parse: structs, suppressions,
# declaration tables, and SA005 stay structural (deterministic everywhere);
# what the AST upgrades is the per-function event stream -- exact callee
# targets, real receiver types for atomics, and macro-expanded bodies.
# ---------------------------------------------------------------------------

class BackendUnavailable(Exception):
    pass


def load_compile_db(path):
    if not path or not os.path.exists(path):
        raise BackendUnavailable(
            f"compile_commands.json not found at {path!r}; configure with "
            "cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first")
    with open(path, encoding="utf-8") as fh:
        db = json.load(fh)
    tus = []
    for entry in db:
        args = entry.get("arguments")
        if not args:
            args = entry.get("command", "").split()
        clean = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", args[0]):
                continue
            if a == "-o":
                skip_next = True
                continue
            clean.append(a)
        tus.append({"file": os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"])),
            "args": clean, "dir": entry.get("directory", ".")})
    return tus


def _events_match_fn(fns_by_file_line, rel, line):
    """Find the FunctionIR (from the internal parse) nearest above `line`."""
    fns = fns_by_file_line.get(rel)
    if not fns:
        return None
    best = None
    for fn in fns:
        if fn.line <= line and (best is None or fn.line > best.line):
            best = fn
    return best


class LibclangBackend:
    name = "libclang"

    def __init__(self, compile_db_path):
        try:
            from clang import cindex  # noqa: PLC0415
        except ImportError as exc:
            raise BackendUnavailable(
                "python clang bindings not importable "
                f"({exc}); install libclang + python3-clang or use "
                "--backend internal") from exc
        self.cindex = cindex
        try:
            self.index = cindex.Index.create()
        except Exception as exc:  # library not found / version skew
            raise BackendUnavailable(
                f"libclang shared library unavailable: {exc}") from exc
        self.tus = load_compile_db(compile_db_path)

    def refine(self, files, repo_root, errors):
        ci = self.cindex
        by_rel = {f.rel: f for f in files}
        fns_by_file = {}
        for f in files:
            fns_by_file[f.rel] = sorted(f.functions, key=lambda fn: fn.line)
        refined = set()
        for tu_entry in self.tus:
            try:
                tu = self.index.parse(tu_entry["file"],
                                      args=tu_entry["args"])
            except Exception as exc:
                errors.append(f"libclang failed on {tu_entry['file']}: "
                              f"{exc}")
                continue
            for cur in tu.cursor.walk_preorder():
                if cur.kind not in (ci.CursorKind.FUNCTION_DECL,
                                    ci.CursorKind.CXX_METHOD,
                                    ci.CursorKind.CONSTRUCTOR,
                                    ci.CursorKind.DESTRUCTOR):
                    continue
                if not cur.is_definition():
                    continue
                loc = cur.location
                if loc.file is None:
                    continue
                rel = os.path.relpath(os.path.abspath(loc.file.name),
                                      repo_root)
                if rel.startswith("..") or rel not in by_rel:
                    continue
                key = (rel, cur.spelling, loc.line)
                if key in refined:
                    continue
                fn = _events_match_fn(fns_by_file, rel, loc.line)
                if fn is None or fn.name.split("::")[-1] != cur.spelling \
                        and not cur.spelling.startswith("~"):
                    continue
                events = self._function_events(cur, ci)
                if events is not None:
                    fn.events = events
                    refined.add(key)
        return refined

    def _function_events(self, fn_cursor, ci):
        events = []

        def tokens_text(c):
            try:
                return " ".join(t.spelling for t in c.get_tokens())[:400]
            except Exception:
                return ""

        def walk(c, depth):
            for child in c.get_children():
                line = child.location.line
                k = child.kind
                if k == ci.CursorKind.VAR_DECL:
                    t = child.type.spelling
                    if any(g in t for g in GUARD_TYPES):
                        argtext = tokens_text(child)
                        m = re.search(r"[({](.*)[)}]", argtext)
                        mutexes = _split_top_commas(m.group(1)) if m else []
                        events.append(Event("lock", line, argtext[:80],
                                            guard=child.spelling,
                                            mutexes=mutexes, depth=depth))
                        # close at end of enclosing compound
                        end = c.extent.end.line
                        events.append(Event("unlock", end, child.spelling,
                                            guard=child.spelling,
                                            mutexes=mutexes, depth=depth))
                    if "ProfScope" in t:
                        m = re.search(r"\b(k\w+)\b", tokens_text(child))
                        if m:
                            events.append(Event("prof", line, m.group(1)))
                elif k == ci.CursorKind.CXX_NEW_EXPR:
                    events.append(Event("alloc", line, "new"))
                elif k in (ci.CursorKind.CALL_EXPR,):
                    name = child.spelling or ""
                    base = name.split("::")[-1] if name else ""
                    recv = ""
                    recv_type = ""
                    kids = list(child.get_children())
                    if kids:
                        recv_type = kids[0].type.spelling or ""
                        recv = kids[0].spelling or ""
                        recv = recv.split(".")[-1].split("->")[-1]
                    ref = child.referenced
                    full = name
                    if ref is not None and ref.semantic_parent is not None:
                        parent = ref.semantic_parent
                        if parent.kind in (ci.CursorKind.CLASS_DECL,
                                           ci.CursorKind.STRUCT_DECL):
                            full = f"{parent.spelling}::{base}"
                    if base:
                        args = tokens_text(child)
                        events.append(Event("call", line, full,
                                            receiver=recv, args=args))
                        if base in GROWTH_METHODS or base in ALLOC_CALLS:
                            events.append(Event("alloc", line, base,
                                                receiver=recv))
                        if base in ATOMIC_METHODS and "atomic" in recv_type:
                            orders = MEMORDER_RE.findall(args) or \
                                re.findall(r"memory_order\s*::\s*(\w+)",
                                           args)
                            order = "seq_cst"
                            if orders:
                                nr = [o for o in orders if o != "relaxed"]
                                order = nr[0] if nr else "relaxed"
                            events.append(Event("atomic", line, base,
                                                receiver=recv, order=order))
                        if base == "unlock":
                            events.append(Event("unlock", line, recv,
                                                guard=recv, mutexes=[recv]))
                walk(child, depth + 1)

        try:
            walk(fn_cursor, 0)
        except Exception:
            return None
        events.sort(key=lambda e: e.line)
        return events


class ClangJsonBackend:
    name = "clang-json"

    def __init__(self, compile_db_path, cache_dir=None):
        self.clang = shutil.which("clang++") or shutil.which("clang")
        if not self.clang:
            raise BackendUnavailable(
                "clang++ not on PATH; use --backend internal")
        self.tus = load_compile_db(compile_db_path)
        self.cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _dump(self, tu_entry):
        src = tu_entry["file"]
        key = None
        if self.cache_dir:
            h = hashlib.sha256()
            with open(src, "rb") as fh:
                h.update(fh.read())
            h.update(" ".join(tu_entry["args"]).encode())
            key = os.path.join(self.cache_dir, h.hexdigest() + ".json")
            if os.path.exists(key):
                with open(key, encoding="utf-8") as fh:
                    return json.load(fh)
        cmd = [self.clang, "-fsyntax-only", "-Xclang", "-ast-dump=json",
               *tu_entry["args"], src]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              cwd=tu_entry["dir"], check=False)
        if proc.returncode != 0 or not proc.stdout:
            raise RuntimeError(proc.stderr.strip()[:400] or "no AST output")
        ast = json.loads(proc.stdout)
        if key:
            with open(key, "w", encoding="utf-8") as fh:
                json.dump(ast, fh)
        return ast

    def refine(self, files, repo_root, errors):
        by_rel = {f.rel: f for f in files}
        fns_by_file = {f.rel: sorted(f.functions, key=lambda fn: fn.line)
                       for f in files}
        refined = set()
        for tu_entry in self.tus:
            try:
                ast = self._dump(tu_entry)
            except Exception as exc:
                errors.append(f"clang-json failed on {tu_entry['file']}: "
                              f"{exc}")
                continue
            self._walk_tu(ast, repo_root, by_rel, fns_by_file, refined)
        return refined

    def _walk_tu(self, ast, repo_root, by_rel, fns_by_file, refined):
        cur_file = [""]

        def loc_of(node):
            loc = node.get("loc", {})
            f = loc.get("file") or loc.get("includedFrom", {}).get("file")
            if f:
                cur_file[0] = f
            return cur_file[0], loc.get("line", 0)

        def visit(node):
            if not isinstance(node, dict):
                return
            kind = node.get("kind", "")
            if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                        "CXXDestructorDecl") and node.get("inner"):
                fname, line = loc_of(node)
                if fname:
                    rel = os.path.relpath(os.path.abspath(fname), repo_root)
                    if not rel.startswith("..") and rel in by_rel:
                        has_body = any(i.get("kind") == "CompoundStmt"
                                       for i in node.get("inner", []))
                        if has_body:
                            key = (rel, node.get("name", ""), line)
                            if key not in refined:
                                fn = _events_match_fn(fns_by_file, rel, line)
                                if fn is not None:
                                    events = []
                                    self._events(node, events, line)
                                    events.sort(key=lambda e: e.line)
                                    fn.events = events
                                    refined.add(key)
            for child in node.get("inner", []) or []:
                visit(child)

        visit(ast)

    def _events(self, node, events, cur_line):
        if not isinstance(node, dict):
            return cur_line
        line = node.get("loc", {}).get("line") or \
            node.get("range", {}).get("begin", {}).get("line") or cur_line
        kind = node.get("kind", "")
        if kind == "VarDecl":
            t = node.get("type", {}).get("qualType", "")
            if any(g in t for g in GUARD_TYPES):
                events.append(Event("lock", line, t[:80],
                                    guard=node.get("name", ""),
                                    mutexes=[node.get("name", "")]))
            if "ProfScope" in t:
                events.append(Event("prof", line, "kUnknownStage"))
        elif kind == "CXXNewExpr":
            events.append(Event("alloc", line, "new"))
        elif kind in ("CallExpr", "CXXMemberCallExpr", "CXXOperatorCallExpr"):
            name = _json_callee_name(node)
            base = name.split("::")[-1] if name else ""
            if base and base not in NOT_A_FUNCTION:
                recv = _json_receiver(node)
                events.append(Event("call", line, name, receiver=recv))
                if base in GROWTH_METHODS or base in ALLOC_CALLS:
                    events.append(Event("alloc", line, base, receiver=recv))
                if base in ATOMIC_METHODS and \
                        "atomic" in _json_receiver_type(node):
                    events.append(Event("atomic", line, base, receiver=recv,
                                        order=_json_mem_order(node)))
                if base == "unlock" and recv:
                    events.append(Event("unlock", line, recv, guard=recv,
                                        mutexes=[recv]))
        for child in node.get("inner", []) or []:
            line = self._events(child, events, line)
        return line


def _json_callee_name(node):
    inner = node.get("inner", []) or []
    for sub in inner[:1]:
        for ref in _iter_nodes(sub):
            if ref.get("kind") in ("DeclRefExpr", "MemberExpr"):
                d = ref.get("referencedDecl", {})
                if d.get("name"):
                    return d["name"]
                if ref.get("name"):
                    return ref["name"]
    return ""


def _json_receiver(node):
    inner = node.get("inner", []) or []
    for sub in inner[:1]:
        for ref in _iter_nodes(sub):
            if ref.get("kind") == "MemberExpr":
                for base in _iter_nodes(ref):
                    if base.get("kind") in ("DeclRefExpr", "MemberExpr") \
                            and base is not ref:
                        d = base.get("referencedDecl", {})
                        return d.get("name", "") or base.get("name", "")
    return ""


def _json_receiver_type(node):
    inner = node.get("inner", []) or []
    for sub in inner[:1]:
        for ref in _iter_nodes(sub):
            if ref.get("kind") == "MemberExpr":
                for base in _iter_nodes(ref):
                    if base is not ref:
                        t = base.get("type", {}).get("qualType", "")
                        if t:
                            return t
    return ""


def _json_mem_order(node):
    for sub in _iter_nodes(node):
        if sub.get("kind") == "DeclRefExpr":
            name = sub.get("referencedDecl", {}).get("name", "")
            m = re.match(r"memory_order_(\w+)", name)
            if m:
                return m.group(1)
            if name in ("relaxed", "acquire", "release", "acq_rel",
                        "seq_cst", "consume"):
                return name
    return "seq_cst"


def _iter_nodes(node):
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, dict):
            yield cur
            stack.extend(cur.get("inner", []) or [])

# ---------------------------------------------------------------------------
# Scan driver
# ---------------------------------------------------------------------------

def iter_source_files(roots, repo_root):
    seen = set()
    for root in roots:
        path = root if os.path.isabs(root) else os.path.join(repo_root, root)
        if os.path.isfile(path):
            rel = os.path.relpath(path, repo_root)
            if rel not in seen:
                seen.add(rel)
                yield path, rel
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in SKIP_DIR_NAMES)
            for name in sorted(filenames):
                if os.path.splitext(name)[1] not in SOURCE_EXTENSIONS:
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, repo_root)
                if rel not in seen:
                    seen.add(rel)
                    yield full, rel


def pick_backend(requested, compile_db, ast_cache):
    """Returns (backend_obj_or_None, name).  Raises BackendUnavailable when
    an explicitly requested clang backend cannot run (caller exits 3)."""
    if requested == "internal":
        return None, "internal"
    if requested in ("libclang", "auto"):
        try:
            return LibclangBackend(compile_db), "libclang"
        except BackendUnavailable:
            if requested == "libclang":
                raise
    if requested in ("clang-json", "auto"):
        try:
            return ClangJsonBackend(compile_db, ast_cache), "clang-json"
        except BackendUnavailable:
            if requested == "clang-json":
                raise
    return None, "internal"


def run_scan(roots, repo_root, *, rules, backend, compile_db, ast_cache,
             ledger_path, lockfile_path, prof_table_path, hot_period,
             update_lock=False):
    """Full pipeline.  Returns (findings, suppressed, backend_name,
    backend_errors)."""
    backend_obj, backend_name = pick_backend(backend, compile_db, ast_cache)
    files = []
    parser = InternalBackend()
    for full, rel in iter_source_files(roots, repo_root):
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError as exc:
            raise SystemExit(f"{TOOL}: cannot read {full}: {exc}")
        files.append(parser.parse(rel, raw))
    backend_errors = []
    if backend_obj is not None:
        backend_obj.refine(files, repo_root, backend_errors)
    ledger_rows, ledger_errors = load_ledger(ledger_path)
    prof_table = load_prof_table(prof_table_path)
    analyzer = Analyzer(files, rules, ledger_rows, prof_table, hot_period)
    ledger_rel = os.path.relpath(ledger_path, repo_root) \
        if os.path.isabs(ledger_path) else ledger_path
    lock_rel = os.path.relpath(lockfile_path, repo_root) \
        if os.path.isabs(lockfile_path) else lockfile_path
    for f in files:
        for line, msg in f.malformed:
            analyzer.emit(META_RULE, f.rel, line, msg)
    for line, msg in ledger_errors:
        analyzer.emit(META_RULE, ledger_rel, line, msg)
    for err in backend_errors:
        analyzer.emit(META_RULE, "<backend>", 0, err)
    scanned_rels = {f.rel for f in files}
    if "SA001" in rules:
        analyzer.run_sa001()
    if "SA002" in rules:
        analyzer.run_sa002()
    if "SA003" in rules:
        analyzer.run_sa003()
    if "SA004" in rules:
        analyzer.run_sa004(ledger_rel, scanned_rels, check_stale=True)
    if "SA005" in rules or update_lock:
        abs_lock = lockfile_path if os.path.isabs(lockfile_path) \
            else os.path.join(repo_root, lockfile_path)
        run_sa005(analyzer, files, abs_lock, lock_rel, update_lock)
    analyzer.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return analyzer.findings, analyzer.suppressed, backend_name, \
        backend_errors


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def _scan_fixture(paths, fixtures_dir, repo_root, rules=None):
    findings, _, _, _ = run_scan(
        paths, repo_root,
        rules=rules or set(RULES),
        backend="internal", compile_db=None, ast_cache=None,
        ledger_path=os.path.join(fixtures_dir, "atomics_ledger.txt"),
        lockfile_path=os.path.join(fixtures_dir, "wire_schema.lock"),
        prof_table_path=os.path.join(fixtures_dir, "prof_stub.hpp"),
        hot_period=DEFAULT_HOT_PERIOD)
    return findings


def run_self_test(fixtures_dir, repo_root):
    import glob as globmod
    import tempfile
    failures = []

    def check(cond, what):
        if not cond:
            failures.append(what)

    # 1. Golden fixtures: each fail fixture trips exactly its own rule;
    #    each pass fixture is clean.
    for rule in sorted(RULES):
        for kind in ("pass", "fail"):
            pattern = os.path.join(fixtures_dir, f"{rule}_{kind}_*.cpp")
            matches = sorted(globmod.glob(pattern))
            check(matches, f"missing fixture {rule}_{kind}_*.cpp")
            for fixture in matches:
                findings = _scan_fixture([fixture], fixtures_dir, repo_root)
                hit = {f.rule for f in findings}
                name = os.path.basename(fixture)
                if kind == "pass":
                    check(not hit,
                          f"{name}: expected clean, got " +
                          "; ".join(f.render() for f in findings))
                else:
                    check(hit == {rule},
                          f"{name}: expected exactly {{{rule}}}, got "
                          f"{sorted(hit)}: " +
                          "; ".join(f.render() for f in findings))

    with tempfile.TemporaryDirectory(prefix="umon_sca_selftest") as tmp:
        # 2. A suppression without a justification is itself a finding and
        #    does not suppress.
        bad = os.path.join(tmp, "bad_suppress.cpp")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <mutex>\n"
                "struct S {\n"
                "  std::mutex m_;\n"
                "  void f() {\n"
                "    std::lock_guard<std::mutex> lock(m_);\n"
                "    // umon-sca: allow(SA002)\n"
                "    fsync(3);\n"
                "  }\n"
                "};\n")
        findings = _scan_fixture([bad], fixtures_dir, repo_root)
        hit = {f.rule for f in findings}
        check(hit == {META_RULE, "SA002"},
              f"justification-less suppression: expected SA000+SA002, got "
              f"{sorted(hit)}")

        # 3. A justified suppression silences the finding.
        good = os.path.join(tmp, "good_suppress.cpp")
        with open(good, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <mutex>\n"
                "struct S {\n"
                "  std::mutex m_;\n"
                "  void f() {\n"
                "    std::lock_guard<std::mutex> lock(m_);\n"
                "    // umon-sca: allow(SA002) cold path, bounded write\n"
                "    fsync(3);\n"
                "  }\n"
                "};\n")
        findings = _scan_fixture([good], fixtures_dir, repo_root)
        check(not findings,
              "justified suppression should silence SA002, got " +
              "; ".join(f.render() for f in findings))

        # 4. unique_lock .unlock() releases: no SA002 after the unlock.
        unl = os.path.join(tmp, "unlock_model.cpp")
        with open(unl, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <mutex>\n"
                "struct S {\n"
                "  std::mutex m_;\n"
                "  void f() {\n"
                "    std::unique_lock<std::mutex> el(m_);\n"
                "    int x = 1;\n"
                "    el.unlock();\n"
                "    fsync(x);\n"
                "  }\n"
                "};\n")
        findings = _scan_fixture([unl], fixtures_dir, repo_root)
        check(not findings,
              "unique_lock::unlock() model: expected clean, got " +
              "; ".join(f.render() for f in findings))

        # 5. Layout computer agrees with the compiler on the tree's own
        #    canonical wire structs (sizes pinned by static_asserts).
        layout_src = os.path.join(tmp, "layout.hpp")
        with open(layout_src, "w", encoding="utf-8") as fh:
            fh.write(
                "#include <cstdint>\n"
                "// umon-lint: wire-struct\n"
                "struct Inner {\n"
                "  std::uint32_t a = 0;\n"
                "  std::uint16_t b = 0;\n"
                "  std::uint8_t c = 0;\n"
                "};\n"
                "// umon-lint: wire-struct\n"
                "struct Outer {\n"
                "  Inner inner;\n"
                "  std::int64_t t = 0;\n"
                "  std::uint8_t k = 0;\n"
                "};\n")
        parser = InternalBackend()
        fir = parser.parse("layout.hpp",
                           open(layout_src, encoding="utf-8").read())
        comp = LayoutComputer([fir])
        by_name = {s.name: s for s in fir.structs}
        inner = comp.layout(by_name["Inner"])
        outer = comp.layout(by_name["Outer"])
        check(inner["fixed"] and inner["size"] == 8 and inner["align"] == 4,
              f"Inner layout wrong: {inner}")
        check(outer["fixed"] and outer["size"] == 24 and
              outer["align"] == 8,
              f"Outer layout wrong: {outer}")
        offs = [(f[0], f[2]) for f in outer["fields"]]
        check(offs == [("inner", 0), ("t", 8), ("k", 16)],
              f"Outer offsets wrong: {offs}")

    if failures:
        sys.stderr.write(f"{TOOL} self-test: {len(failures)} failure(s)\n")
        for f in failures:
            sys.stderr.write(f"  FAIL: {f}\n")
        return 1
    sys.stdout.write(f"{TOOL} self-test: all checks passed\n")
    return 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog=TOOL,
        description="Semantic static analysis for the uMon tree "
                    "(SA001-SA005); see the module docstring for the rules.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: "
                             + " ".join(DEFAULT_ROOTS) + ")")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--rules", default=",".join(sorted(RULES)),
                        help="comma-separated rule subset")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "internal", "libclang",
                                 "clang-json"],
                        help="AST backend (auto: libclang > clang-json > "
                             "internal)")
    parser.add_argument("--compile-db", default=None,
                        help="path to compile_commands.json (default: "
                             "<repo>/build/compile_commands.json)")
    parser.add_argument("--ast-cache", default=None,
                        help="directory for clang-json AST IR cache, keyed "
                             "on source hashes")
    parser.add_argument("--lock", default=None,
                        help=f"wire-schema lockfile (default {DEFAULT_LOCKFILE})")
    parser.add_argument("--update-lock", action="store_true",
                        help="regenerate the wire-schema lockfile and exit")
    parser.add_argument("--ledger", default=None,
                        help="atomics policy file with the [pairs] ledger "
                             f"(default {DEFAULT_LEDGER})")
    parser.add_argument("--prof-table", default=None,
                        help="header with ProfStage/kProfPeriod (default "
                             f"{DEFAULT_PROF_TABLE})")
    parser.add_argument("--hot-period", type=int, default=DEFAULT_HOT_PERIOD,
                        help="min sampling period for a stage to count as "
                             f"per-packet hot (default {DEFAULT_HOT_PERIOD})")
    parser.add_argument("--repo-root", default=None)
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--fixtures", default=None,
                        help="fixtures directory for --self-test")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    repo_root = os.path.abspath(args.repo_root or REPO_ROOT)

    if args.self_test:
        fixtures = args.fixtures or os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "fixtures")
        return run_self_test(fixtures, repo_root)

    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(RULES)
    if unknown:
        sys.stderr.write(f"{TOOL}: unknown rules: {sorted(unknown)}\n")
        return 2

    roots = args.paths or DEFAULT_ROOTS
    compile_db = args.compile_db or os.path.join(repo_root, "build",
                                                 "compile_commands.json")
    try:
        findings, suppressed, backend_name, backend_errors = run_scan(
            roots, repo_root,
            rules=rules,
            backend=args.backend,
            compile_db=compile_db,
            ast_cache=args.ast_cache,
            ledger_path=args.ledger or os.path.join(repo_root,
                                                    DEFAULT_LEDGER),
            lockfile_path=args.lock or os.path.join(repo_root,
                                                    DEFAULT_LOCKFILE),
            prof_table_path=args.prof_table or os.path.join(
                repo_root, DEFAULT_PROF_TABLE),
            hot_period=args.hot_period,
            update_lock=args.update_lock)
    except BackendUnavailable as exc:
        sys.stderr.write(f"{TOOL}: SKIP: {exc}\n")
        return 3

    if args.update_lock:
        lock = args.lock or os.path.join(repo_root, DEFAULT_LOCKFILE)
        sys.stdout.write(f"{TOOL}: wrote {lock}\n")
        return 0

    if args.json:
        print(json.dumps({
            "tool": TOOL,
            "schema_version": SCHEMA_VERSION,
            "backend": backend_name,
            "findings": [f.as_dict() for f in findings],
            "suppressed": suppressed,
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        tail = f"{TOOL}: {len(findings)} finding(s), {suppressed} " \
               f"suppressed, backend={backend_name}"
        print(tail)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
