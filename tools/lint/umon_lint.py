#!/usr/bin/env python3
"""umon-lint: domain-invariant static analysis for the uMon tree.

uMon's correctness rests on conventions the C++ compiler never checks:
nanosecond timestamps shifted into 8.192 us windows, seq-stamped wire
structs that must decode bit-exactly under loss, and a relaxed-atomics
policy that is only sound at registered telemetry counter sites. This
linter turns those conventions into named, machine-checked rules.

Rules
-----
UL001  raw-time-literal      Raw time-unit integer literals (1'000,
                             1'000'000, 1'000'000'000) in time-typed
                             context outside src/common/types.hpp. Use
                             kMicro / kMilli / kSecond or define a named
                             constexpr on the same line.
UL002  unregistered-relaxed  std::memory_order_relaxed outside the files
                             registered in tools/lint/atomics_policy.txt.
                             Relaxed atomics are a reviewed policy
                             decision (monotonic telemetry counters),
                             not a default.
UL003  wire-struct-assert    A wire-format struct definition without an
                             adjacent static_assert pinning its layout /
                             copyability. Wire structs are those in the
                             WIRE_FORMAT_FILES list below plus any struct
                             annotated `// umon-lint: wire-struct`.
UL004  nondeterministic-hot  rand()/srand()/std::rand or
                             std::chrono::system_clock inside src/netsim,
                             src/sketch, or src/collector. Hot paths must
                             be deterministic (seeded umon::Rng) and
                             wall-clock free.
UL005  time-float-arith      float/double arithmetic mixed with
                             Nanos/WindowId values without an explicit
                             static_cast. Silent promotion of 64-bit
                             nanosecond timestamps through double loses
                             precision past 2^53 ns (~104 days).
UL006  raw-channel-send      A direct send() on an upload channel outside
                             the reliable uplink wrapper (identifier
                             containing `channel` followed by `.send(` /
                             `->send(`). Raw sends bypass CRC framing,
                             retransmits, and the confidence-flag
                             accounting; route payloads through
                             resilience::ReliableLink (passthrough mode
                             preserves legacy behavior). The wrapper
                             itself and src/netsim/ are exempt.
UL007  raw-hot-path-clock    rdtsc/__rdtsc/__builtin_ia32_rdtsc/
                             clock_gettime in a hot-path source outside
                             the profiler shim (src/obs/prof.{hpp,cpp}).
                             Ad-hoc timestamping skews the cycle
                             attribution the profiler maintains and
                             bypasses its calibration + sampling budget;
                             wrap the scope in UMON_PROF_SCOPE (or use
                             telemetry::monotonic_ns off the hot path).

Suppressions
------------
  // umon-lint: allow(UL001)          this line, or the next line when the
                                      comment stands alone on its line
  // umon-lint: allow(UL001,UL005)    multiple rules
  // umon-lint: allow-file(UL004)     whole file (place near the top)
  // umon-lint: wire-struct           mark a struct as wire-format (UL003)

Output
------
Human-readable `path:line: RULE: message` by default; `--json` emits a
machine-readable document (schema_version, findings, counts). Exit codes:
0 clean, 1 findings, 2 usage/internal error. There is deliberately no
--fix mode: every rule names an invariant a human must decide how to
restore.

Self-test
---------
`--self-test` runs the golden fixtures in tools/lint/fixtures/: every
ULxxx_pass_*.cpp must scan clean and every ULxxx_fail_*.cpp must trip
exactly its own rule. Wired into ctest as tier-1 (umon_lint_selftest).
"""

from __future__ import annotations

import argparse
import contextlib
import fnmatch
import io
import json
import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

SCHEMA_VERSION = 1

SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh")

# Directories never scanned when walking a tree.
SKIP_DIR_NAMES = {"build", "build-tsan", ".git", "fixtures", "__pycache__"}

# UL001: the file that is allowed to define the raw unit constants.
TIME_CONSTANT_HOME = "src/common/types.hpp"

# UL001: integer literals that denote a time unit when they appear in a
# time-typed context. Digit separators are normalized away first.
TIME_UNIT_VALUES = {1000, 1000000, 1000000000}

# UL001/UL005: a line is "time-typed context" when it mentions one of
# these. Deliberately conservative: plain loop bounds and byte counts do
# not match.
TIME_CONTEXT_RE = re.compile(
    r"\b(Nanos|WindowId|nanos\w*|ns|usec\w*|micro\w*|milli\w*|"
    r"timestamp\w*|deadline\w*|timeout\w*|latency\w*|delay\w*|"
    r"jitter\w*|duration\w*|window_of|window_start|window_length|"
    r"deliver_at|sent_at)\b|\w+_ns\b",
    re.IGNORECASE,
)

# UL001: a named constexpr definition is the sanctioned way to introduce
# a literal-backed constant.
NAMED_CONSTEXPR_RE = re.compile(r"\bconstexpr\b[^=;]*\bk[A-Z]\w*\s*=")

# UL003: files whose top-level structs are wire-format by definition.
WIRE_FORMAT_FILES = {
    "src/sketch/report.hpp",
    "src/sketch/serialize.hpp",
    "src/sketch/serialize.cpp",
    "src/collector/uplink.hpp",
    "src/netsim/packet.hpp",
    "src/wavelet/coeff.hpp",
    "src/store/format.hpp",
}

# UL003: how many lines past the struct's closing brace the static_assert
# may sit.
WIRE_ASSERT_WINDOW = 12

# UL004: directories whose hot paths must stay deterministic.
DETERMINISTIC_DIRS = ("src/netsim", "src/sketch", "src/collector")
UL004_RE = re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\(|\bsystem_clock\b")

# UL005: float literal (1.5, .5, 1e3, 1.0f) — not part of an identifier.
FLOAT_LITERAL_RE = re.compile(
    r"(?<![\w.])(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+)[fF]?(?![\w.])"
)
UL005_TIME_TOKEN_RE = re.compile(r"\b(Nanos|WindowId)\b|\b\w+_ns\b")
UL005_CAST_RE = re.compile(
    r"static_cast<\s*(?:double|float|Nanos|WindowId|long double|"
    r"std::u?int\d+_t|u?int\d+_t)\s*>"
)
ARITH_OP_RE = re.compile(r"[+\-*/]")

# UL006: the reliable uplink is the only sanctioned sender on an upload
# channel. The wrapper's own raw sends and the channel's home directory
# (its implementation and loopback tests) are exempt by path.
UL006_ALLOWED_PATHS = (
    "src/resilience/reliable.cpp",
    "src/netsim/",
)
UL006_RE = re.compile(r"\b\w*[Cc]hannel\w*\s*(?:\.|->)\s*send\s*\(")

# UL007: hot-path directories where raw cycle counters / OS clocks are
# banned; the profiler shim is the one sanctioned home (it calibrates rdtsc
# and enforces the sampling budget). src/telemetry is exempt by omission:
# monotonic_ns() is the sanctioned off-hot-path clock wrapper.
UL007_HOT_DIRS = ("src/sketch", "src/wavelet", "src/collector", "src/store",
                  "src/resilience", "src/analyzer", "src/netsim", "src/obs")
UL007_ALLOWED_PATHS = (
    "src/obs/prof.hpp",
    "src/obs/prof.cpp",
)
UL007_RE = re.compile(
    r"\b(__builtin_ia32_rdtscp?|__rdtscp?|rdtscp?|clock_gettime)\s*\(")

ALLOW_RE = re.compile(r"umon-lint:\s*allow\(([^)]*)\)")
ALLOW_FILE_RE = re.compile(r"umon-lint:\s*allow-file\(([^)]*)\)")
WIRE_MARKER_RE = re.compile(r"umon-lint:\s*wire-struct\b")

STRUCT_DEF_RE = re.compile(r"^(?:struct|class)\s+(\w+)\s*(?::[^;{]*)?\{?\s*$")

RULES = {
    "UL001": "raw time-unit literal; use kMicro/kMilli/kSecond or a named "
             "constexpr (src/common/types.hpp owns the raw values)",
    "UL002": "memory_order_relaxed outside the registered counter sites in "
             "tools/lint/atomics_policy.txt",
    "UL003": "wire-format struct without an adjacent static_assert on its "
             "sizeof / copyability",
    "UL004": "non-deterministic primitive (rand()/system_clock) in a "
             "deterministic hot path; use the seeded umon::Rng and "
             "simulation/monotonic time",
    "UL005": "float/double arithmetic on Nanos/WindowId without an explicit "
             "static_cast",
    "UL006": "direct UploadChannel send outside the reliable uplink wrapper; "
             "route payloads through resilience::ReliableLink",
    "UL007": "raw rdtsc/clock_gettime in a hot-path source outside the "
             "profiler shim (src/obs/prof.*); use UMON_PROF_SCOPE or "
             "telemetry::monotonic_ns",
}


@dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str
    snippet: str

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class SourceFile:
    """One parsed translation unit: raw lines plus comment/string-stripped
    lines (rules match the stripped text so commented-out code and string
    contents never trip them), the per-line suppression sets, and the
    file-level suppression set."""

    rel_path: str
    raw_lines: list = field(default_factory=list)
    code_lines: list = field(default_factory=list)
    comment_lines: list = field(default_factory=list)
    line_allows: dict = field(default_factory=dict)   # line no -> {rules}
    file_allows: set = field(default_factory=set)
    wire_marked_lines: set = field(default_factory=set)


def strip_comments_and_strings(text: str):
    """Blank out comments and string/char literals while preserving line
    structure. Returns (code_lines, comment_lines): comment text is kept
    separately so suppression directives can be read from it."""
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # Raw strings are rare here; handle the common R"( ... )".
                if cur_code and cur_code[-1:] == ["R"]:
                    end = text.find(')"', i + 2)
                    if end == -1:
                        end = n - 2
                    for ch in text[i:end + 2]:
                        if ch == "\n":
                            code.append("".join(cur_code))
                            comments.append("".join(cur_comment))
                            cur_code, cur_comment = [], []
                        else:
                            cur_code.append(" ")
                    i = end + 2
                    continue
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'" and re.match(r"'(\\.|[^\\])'", text[i:i + 4] or ""):
                # char literal (never a digit separator, which sits between
                # digits and is handled below)
                m = re.match(r"'(\\.|[^\\])'", text[i:])
                cur_code.append(" " * len(m.group(0)))
                i += len(m.group(0))
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
            continue
        if state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                cur_code.append('"')
            i += 1
            continue
    if cur_code or cur_comment or (text and not text.endswith("\n")):
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
    return code, comments


def parse_file(path: str, rel_path: str) -> SourceFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    sf = SourceFile(rel_path=rel_path)
    sf.raw_lines = text.splitlines()
    sf.code_lines, sf.comment_lines = strip_comments_and_strings(text)
    # Pad in case the stripper and splitlines disagree on a trailing line.
    while len(sf.code_lines) < len(sf.raw_lines):
        sf.code_lines.append("")
        sf.comment_lines.append("")

    for idx, comment in enumerate(sf.comment_lines):
        lineno = idx + 1
        if not comment:
            continue
        m = ALLOW_FILE_RE.search(comment)
        if m:
            sf.file_allows |= {r.strip() for r in m.group(1).split(",")}
        m = ALLOW_RE.search(comment)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            targets = [lineno]
            # A directive on its own line covers the next line too.
            if sf.code_lines[idx].strip() == "":
                targets.append(lineno + 1)
            for t in targets:
                sf.line_allows.setdefault(t, set()).update(rules)
        if WIRE_MARKER_RE.search(comment):
            sf.wire_marked_lines.add(lineno)
    return sf


def suppressed(sf: SourceFile, lineno: int, rule: str) -> bool:
    if rule in sf.file_allows:
        return True
    return rule in sf.line_allows.get(lineno, set())


def normalize_separators(line: str) -> str:
    """Remove C++14 digit separators (1'000 -> 1000)."""
    return re.sub(r"(?<=\d)'(?=\d)", "", line)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

INT_LITERAL_RE = re.compile(r"(?<![\w.])(\d+)(?:[uUlL]{0,3})(?![\w.'])")


def _unit_literal_position(norm: str, m: re.Match) -> bool:
    """True when the literal sits where it acts as a unit factor: operand of
    * / % or the right-hand side of an assignment/return. Loop bounds,
    comparisons, and plain call arguments (window counts, byte values) are
    not unit positions."""
    before = norm[:m.start()].rstrip()
    after = norm[m.end():].lstrip()
    if before.endswith(("*", "/", "%")):
        return True
    # Plain '=' (not ==, <=, >=, !=) introduces the value of a variable.
    if before.endswith("=") and not before.endswith(("==", "<=", ">=", "!=")):
        return True
    if re.search(r"\breturn$", before):
        return True
    if after[:1] in ("*", "/", "%"):
        return True
    return False


def check_ul001(sf: SourceFile) -> list:
    findings = []
    if sf.rel_path.replace(os.sep, "/").endswith(TIME_CONSTANT_HOME):
        return findings
    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        norm = normalize_separators(code)
        if not TIME_CONTEXT_RE.search(norm):
            continue
        if NAMED_CONSTEXPR_RE.search(norm):
            continue
        for m in INT_LITERAL_RE.finditer(norm):
            if int(m.group(1)) not in TIME_UNIT_VALUES:
                continue
            if not _unit_literal_position(norm, m):
                continue
            findings.append(Finding(
                sf.rel_path, lineno, "UL001",
                f"raw time-unit literal {m.group(1)} in time-typed "
                "context; use kMicro/kMilli/kSecond or a named constexpr",
                sf.raw_lines[idx].strip()))
            break
    return findings


def check_ul002(sf: SourceFile, atomics_allow: list) -> list:
    findings = []
    rel = sf.rel_path.replace(os.sep, "/")
    for pattern in atomics_allow:
        if fnmatch.fnmatch(rel, pattern):
            return findings
    for idx, code in enumerate(sf.code_lines):
        if "memory_order_relaxed" in code:
            findings.append(Finding(
                sf.rel_path, idx + 1, "UL002",
                "memory_order_relaxed at an unregistered site; register the "
                "file in tools/lint/atomics_policy.txt after review or use "
                "seq_cst/acq_rel",
                sf.raw_lines[idx].strip()))
    return findings


def _struct_extent(sf: SourceFile, start_idx: int):
    """Return the index of the line holding the struct's closing brace, by
    brace counting from the definition line. None if unbalanced."""
    depth = 0
    opened = False
    for idx in range(start_idx, len(sf.code_lines)):
        for c in sf.code_lines[idx]:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
                if opened and depth == 0:
                    return idx
    return None


def check_ul003(sf: SourceFile) -> list:
    findings = []
    rel = sf.rel_path.replace(os.sep, "/")
    in_wire_file = any(rel.endswith(w) for w in WIRE_FORMAT_FILES)
    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        m = STRUCT_DEF_RE.match(code.rstrip())
        if not m:
            continue
        name = m.group(1)
        # Column-0 `struct`s in wire files are wire-format by definition;
        # classes (agents, stateful pipelines) and nested structs only count
        # when explicitly marked (marker on the definition line or within
        # 3 lines above it).
        marked = any(l in sf.wire_marked_lines
                     for l in range(lineno - 3, lineno + 1))
        top_level_struct = (code.startswith("struct")
                            and not code.startswith((" ", "\t")))
        if not (marked or (in_wire_file and top_level_struct)):
            continue
        close_idx = _struct_extent(sf, idx)
        if close_idx is None:
            close_idx = idx
        window_end = min(len(sf.code_lines), close_idx + 1 + WIRE_ASSERT_WINDOW)
        window = "\n".join(sf.code_lines[idx:window_end])
        has_assert = re.search(
            r"static_assert\s*\([^;]*\b" + re.escape(name) + r"\b",
            window, re.DOTALL)
        if not has_assert:
            findings.append(Finding(
                sf.rel_path, lineno, "UL003",
                f"wire-format struct {name} has no adjacent static_assert "
                "pinning sizeof/trivial copyability (within "
                f"{WIRE_ASSERT_WINDOW} lines of its closing brace)",
                sf.raw_lines[idx].strip()))
    return findings


def check_ul004(sf: SourceFile) -> list:
    findings = []
    rel = sf.rel_path.replace(os.sep, "/")
    if not any(d in rel for d in DETERMINISTIC_DIRS):
        return findings
    for idx, code in enumerate(sf.code_lines):
        m = UL004_RE.search(code)
        if m:
            findings.append(Finding(
                sf.rel_path, idx + 1, "UL004",
                f"non-deterministic primitive `{m.group(0).strip()}` in a "
                "deterministic hot path; use the seeded umon::Rng / "
                "simulation time",
                sf.raw_lines[idx].strip()))
    return findings


def check_ul005(sf: SourceFile) -> list:
    findings = []
    for idx, code in enumerate(sf.code_lines):
        norm = normalize_separators(code)
        if not UL005_TIME_TOKEN_RE.search(norm):
            continue
        if not FLOAT_LITERAL_RE.search(norm):
            continue
        # Arithmetic must remain after the float literals themselves are
        # removed (the '-' in 1e-9 is not arithmetic) and increment /
        # decrement operators are ignored.
        residue = FLOAT_LITERAL_RE.sub("", norm)
        residue = residue.replace("++", "").replace("--", "")
        if not ARITH_OP_RE.search(residue):
            continue
        if UL005_CAST_RE.search(norm):
            continue
        findings.append(Finding(
            sf.rel_path, idx + 1, "UL005",
            "float/double arithmetic mixed with Nanos/WindowId without an "
            "explicit static_cast (precision loss past 2^53 ns)",
            sf.raw_lines[idx].strip()))
    return findings


def check_ul006(sf: SourceFile) -> list:
    findings = []
    rel = sf.rel_path.replace(os.sep, "/")
    if any(p in rel for p in UL006_ALLOWED_PATHS):
        return findings
    for idx, code in enumerate(sf.code_lines):
        m = UL006_RE.search(code)
        if m:
            findings.append(Finding(
                sf.rel_path, idx + 1, "UL006",
                f"direct upload-channel send `{m.group(0).strip()}` bypasses "
                "the reliable uplink (CRC framing, retransmits, confidence "
                "flags); route through resilience::ReliableLink",
                sf.raw_lines[idx].strip()))
    return findings


def check_ul007(sf: SourceFile) -> list:
    findings = []
    rel = sf.rel_path.replace(os.sep, "/")
    if not any(d in rel for d in UL007_HOT_DIRS):
        return findings
    if any(rel.endswith(p) for p in UL007_ALLOWED_PATHS):
        return findings
    for idx, code in enumerate(sf.code_lines):
        m = UL007_RE.search(code)
        if m:
            findings.append(Finding(
                sf.rel_path, idx + 1, "UL007",
                f"raw clock `{m.group(1)}` on a hot path outside the "
                "profiler shim; wrap the scope in UMON_PROF_SCOPE (the shim "
                "owns calibration and the sampling budget) or use "
                "telemetry::monotonic_ns off the hot path",
                sf.raw_lines[idx].strip()))
    return findings


ALL_CHECKS = ("UL001", "UL002", "UL003", "UL004", "UL005", "UL006", "UL007")


def scan_file(path: str, rel_path: str, atomics_allow: list,
              rules=ALL_CHECKS) -> list:
    sf = parse_file(path, rel_path)
    findings = []
    if "UL001" in rules:
        findings += check_ul001(sf)
    if "UL002" in rules:
        findings += check_ul002(sf, atomics_allow)
    if "UL003" in rules:
        findings += check_ul003(sf)
    if "UL004" in rules:
        findings += check_ul004(sf)
    if "UL005" in rules:
        findings += check_ul005(sf)
    if "UL006" in rules:
        findings += check_ul006(sf)
    if "UL007" in rules:
        findings += check_ul007(sf)
    return [f for f in findings if not suppressed(sf, f.line, f.rule)]


def load_atomics_policy(path: str) -> list:
    """UL002 relaxed-allowlist globs: every non-comment line before the
    first `[section]` header. Sections (e.g. `[pairs]`, the umon-sca SA004
    happens-before ledger) belong to other tools and are skipped here."""
    patterns = []
    if not os.path.exists(path):
        return patterns
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if re.fullmatch(r"\[\w+\]", line):
                break
            if line:
                patterns.append(line)
    return patterns


def changed_files(repo_root: str, list_path: str = None) -> list:
    """Repo-relative source files changed vs HEAD (staged + unstaged) plus
    untracked ones, for --changed-only. A list file (one path per line)
    overrides git so the mode is testable without a throwaway repo."""
    if list_path:
        with open(list_path, "r", encoding="utf-8") as fh:
            lines = [ln.strip() for ln in fh]
        rels = [ln for ln in lines if ln and not ln.startswith("#")]
    else:
        rels = []
        for cmd in (["git", "diff", "--name-only", "HEAD"],
                    ["git", "ls-files", "--others", "--exclude-standard"]):
            try:
                out = subprocess.run(cmd, cwd=repo_root, capture_output=True,
                                     text=True, check=True).stdout
            except (OSError, subprocess.CalledProcessError) as err:
                print(f"umon-lint: --changed-only: {' '.join(cmd)} failed: "
                      f"{err}", file=sys.stderr)
                return None
            rels += out.splitlines()
    seen = set()
    picked = []
    for rel in rels:
        rel = rel.strip()
        if not rel or rel in seen or not rel.endswith(SOURCE_EXTENSIONS):
            continue
        seen.add(rel)
        # Stay inside the default scan roots: fixture trees under tools/
        # trip rules on purpose, and a full-tree run never visits them.
        # (List-file mode keeps every entry so the self-test can target
        # its own fixtures.)
        if not list_path and not rel.startswith(
                ("src/", "tests/", "bench/", "examples/")):
            continue
        # Deleted-but-not-committed files show up in the diff; skip them.
        if os.path.isfile(os.path.join(repo_root, rel)):
            picked.append(rel)
    return sorted(picked)


def iter_source_files(roots: list, repo_root: str):
    for root in roots:
        root_abs = os.path.abspath(root)
        if os.path.isfile(root_abs):
            yield root_abs, os.path.relpath(root_abs, repo_root)
            continue
        for dirpath, dirnames, filenames in os.walk(root_abs):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in SKIP_DIR_NAMES)
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, fn)
                    yield full, os.path.relpath(full, repo_root)


# --------------------------------------------------------------------------
# Self-test over golden fixtures
# --------------------------------------------------------------------------

def run_self_test(fixtures_dir: str) -> int:
    """Every ULxxx_pass_*.cpp must scan clean; every ULxxx_fail_*.cpp must
    trip its own rule (and only its own rule)."""
    policy = os.path.join(fixtures_dir, "atomics_policy.txt")
    atomics_allow = load_atomics_policy(policy)
    failures = []
    checked = 0
    names = sorted(os.listdir(fixtures_dir))
    for fn in names:
        if not fn.endswith(SOURCE_EXTENSIONS):
            continue
        m = re.match(r"(UL\d{3})_(pass|fail)_", fn)
        if not m:
            failures.append(f"{fn}: fixture name must be "
                            "ULxxx_{pass|fail}_<slug>{ext}")
            continue
        rule, kind = m.group(1), m.group(2)
        if rule not in RULES:
            failures.append(f"{fn}: unknown rule {rule}")
            continue
        checked += 1
        path = os.path.join(fixtures_dir, fn)
        # Fixtures may pretend to live elsewhere in the tree (rules UL003
        # and UL004 are path-sensitive) via a path directive in the first
        # few lines: // umon-lint-fixture: path=src/netsim/foo.cpp
        rel = fn
        with open(path, "r", encoding="utf-8") as fh:
            head = fh.read(2048)
        pm = re.search(r"umon-lint-fixture:\s*path=(\S+)", head)
        if pm:
            rel = pm.group(1)
        findings = scan_file(path, rel, atomics_allow)
        rules_hit = {f.rule for f in findings}
        if kind == "pass" and findings:
            failures.append(
                f"{fn}: expected clean, got "
                + ", ".join(f"{f.rule}@{f.line}" for f in findings))
        elif kind == "fail":
            if rule not in rules_hit:
                failures.append(f"{fn}: expected {rule} to fire, it did not")
            if rules_hit - {rule}:
                failures.append(
                    f"{fn}: unexpected extra rules {sorted(rules_hit - {rule})}")
    for rule in RULES:
        have_pass = any(re.match(rf"{rule}_pass_", fn) for fn in names)
        have_fail = any(re.match(rf"{rule}_fail_", fn) for fn in names)
        if not (have_pass and have_fail):
            failures.append(f"{rule}: missing pass and/or fail fixture")
    failures += check_changed_only(fixtures_dir)
    if failures:
        print("umon-lint self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"umon-lint self-test OK: {checked} fixtures, "
          f"{len(RULES)} rules covered")
    return 0


def check_changed_only(fixtures_dir: str) -> list:
    """Exercise --changed-only via the --changed-from override: of the two
    UL001 fixtures (rule UL001 is policy- and path-independent), a list file
    naming only the fail fixture must scan exactly that one file and trip
    UL001; an empty list must scan nothing and exit 0."""
    failures = []
    policy = os.path.join(fixtures_dir, "atomics_policy.txt")
    with tempfile.TemporaryDirectory(prefix="umon_lint_chg") as tmp:
        listing = os.path.join(tmp, "changed.txt")
        with open(listing, "w", encoding="utf-8") as fh:
            fh.write("# only the fail fixture is 'changed'\n")
            fh.write("UL001_fail_raw_literal.cpp\n")
            fh.write("no_such_file.cpp\n")  # stale diff entry: must be skipped
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = main(["--changed-from", listing, "--json",
                       "--repo-root", fixtures_dir,
                       "--atomics-policy", policy])
        try:
            report = json.loads(out.getvalue())
        except json.JSONDecodeError:
            return [f"changed-only: --json output not JSON: {out.getvalue()!r}"]
        if report["files_scanned"] != 1:
            failures.append("changed-only: expected 1 file scanned, got "
                            f"{report['files_scanned']}")
        hit = {f["rule"] for f in report["findings"]}
        if "UL001" not in hit or rc != 1:
            failures.append(f"changed-only: expected UL001 + exit 1, got "
                            f"rules={sorted(hit)} rc={rc}")
        with open(listing, "w", encoding="utf-8") as fh:
            fh.write("# nothing changed\n")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = main(["--changed-from", listing,
                       "--repo-root", fixtures_dir,
                       "--atomics-policy", policy])
        if rc != 0 or "nothing to scan" not in out.getvalue():
            failures.append(f"changed-only: empty list should exit 0 with a "
                            f"nothing-to-scan notice, got rc={rc}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="umon_lint.py",
        description="Domain-invariant static analysis for the uMon tree.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan "
                             "(default: src tests bench examples)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--rules", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of rules to run")
    parser.add_argument("--atomics-policy", default=None,
                        help="path to the relaxed-atomics allowlist "
                             "(default: tools/lint/atomics_policy.txt)")
    parser.add_argument("--repo-root", default=None,
                        help="repository root for relative paths "
                             "(default: two levels above this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    parser.add_argument("--self-test", action="store_true",
                        help="run the golden fixture suite and exit")
    parser.add_argument("--fixtures", default=None,
                        help="fixtures directory for --self-test")
    parser.add_argument("--changed-only", action="store_true",
                        help="scan only files changed vs HEAD (git diff + "
                             "untracked); fast pre-commit mode")
    parser.add_argument("--changed-from", default=None, metavar="FILE",
                        help="with --changed-only semantics, take the "
                             "changed-file list from FILE (one repo-relative "
                             "path per line) instead of git")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = args.repo_root or os.path.dirname(os.path.dirname(script_dir))

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0

    if args.self_test:
        fixtures = args.fixtures or os.path.join(script_dir, "fixtures")
        if not os.path.isdir(fixtures):
            print(f"umon-lint: fixtures directory not found: {fixtures}",
                  file=sys.stderr)
            return 2
        return run_self_test(fixtures)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        print(f"umon-lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    policy_path = args.atomics_policy or os.path.join(
        script_dir, "atomics_policy.txt")
    atomics_allow = load_atomics_policy(policy_path)

    if args.changed_only or args.changed_from:
        rels = changed_files(repo_root, args.changed_from)
        if rels is None:
            return 2
        if not rels:
            if args.json:
                print(json.dumps({"schema_version": SCHEMA_VERSION,
                                  "files_scanned": 0, "findings": [],
                                  "counts": {}}, indent=2))
            else:
                print("umon-lint: no changed source files, nothing to scan")
            return 0
        paths = [os.path.join(repo_root, rel) for rel in rels]
    else:
        paths = args.paths or [os.path.join(repo_root, d)
                               for d in ("src", "tests", "bench", "examples")]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"umon-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings = []
    files_scanned = 0
    for full, rel in iter_source_files(paths, repo_root):
        files_scanned += 1
        findings += scan_file(full, rel, atomics_allow, rules)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    if args.json:
        counts = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        print(json.dumps({
            "schema_version": SCHEMA_VERSION,
            "files_scanned": files_scanned,
            "findings": [f.to_dict() for f in findings],
            "counts": counts,
        }, indent=2))
    else:
        for f in findings:
            print(f"{f.file}:{f.line}: {f.rule}: {f.message}")
            print(f"    {f.snippet}")
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"umon-lint: {files_scanned} files scanned, {status}")

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
