// umon-lint-fixture: path=src/store/format.hpp
// Golden fixture: src/store/format.hpp is a wire-format file, so every
// top-level struct must pin its on-disk layout. Asserts adjacent to the
// definition satisfy UL003 without any explicit marker.
#include <cstdint>
#include <type_traits>

struct SegmentHeader {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint8_t tier = 0;
  std::uint8_t window_shift = 0;
  std::uint32_t segment_id = 0;
  std::uint32_t base_epoch = 0;
  std::uint32_t replaces_segment_id = 0;
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(SegmentHeader) == 24, "24 bytes on disk");
static_assert(std::is_trivially_copyable_v<SegmentHeader>);
