// Golden fixture: memory_order_relaxed at a site that is NOT registered
// in the atomics policy allowlist trips UL002.
#include <atomic>
#include <cstdint>

inline std::atomic<std::uint64_t> g_sneaky{0};

inline void bump() { g_sneaky.fetch_add(1, std::memory_order_relaxed); }
