// Golden fixture: floating-point math on time values is fine when the
// conversion is explicit — the precision decision is visible in the code.
#include <cstdint>

using Nanos = std::int64_t;

inline double to_micros(Nanos t) { return static_cast<double>(t) / 1e3; }
