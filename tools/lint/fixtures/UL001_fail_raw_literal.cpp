// Golden fixture: a raw time-unit literal in time-typed context trips
// UL001 — this is 250 us written as a magic number instead of 250 * kMicro.
#include <cstdint>

using Nanos = std::int64_t;

inline Nanos deadline_after(Nanos now) { return now + 250 * 1'000; }
