// Golden fixture: a wire-format struct without an adjacent static_assert
// trips UL003 — nothing pins its size or trivial copyability, so a stray
// member (or a vtable) could silently change the encoded bytes.
#include <cstdint>

// umon-lint: wire-struct
struct WireHeader {
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;
};
