// umon-lint-fixture: path=src/sketch/sample_clock.cpp
// Hot-path timing goes through the profiler shim: calibrated, sampled,
// and attributed. Wrapper names containing "rdtsc" (prof_rdtsc) are fine —
// only the raw intrinsics and OS clocks are banned.
#include "obs/prof.hpp"

void hot_update() {
  UMON_PROF_SCOPE(kCmUpdate);
}
