// umon-lint-fixture: path=src/store/format.hpp
// Golden fixture: a top-level struct in src/store/format.hpp with no
// adjacent static_assert trips UL003 even without a wire-struct marker —
// the file is in WIRE_FORMAT_FILES, so a stray member would silently
// change the segment bytes recovery CRC-checks.
#include <cstdint>

struct RecordHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t kind = 0;
  std::uint8_t confidence = 0;
  std::uint16_t flow_hash16 = 0;
  std::uint32_t epoch = 0;
  std::uint32_t payload_crc = 0;
};
