// Golden fixture: this file is registered in the fixture atomics policy
// (see fixtures/atomics_policy.txt), so its relaxed counter is legal.
#include <atomic>
#include <cstdint>

class Counter {
 public:
  void inc() { v_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};
