// umon-lint-fixture: path=src/obs/prof.cpp
// The profiler shim itself is the one sanctioned home for the raw cycle
// counter; its path is on the UL007 allowlist.
#include <cstdint>

std::uint64_t shim_read_tsc() {
  return __rdtsc();
}
