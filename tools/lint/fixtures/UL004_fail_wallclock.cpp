// umon-lint-fixture: path=src/sketch/UL004_fail_wallclock.cpp
// Golden fixture: wall-clock reads and libc rand() inside a deterministic
// hot-path directory trip UL004 — replays would diverge run to run.
#include <chrono>
#include <cstdint>
#include <cstdlib>

inline std::int64_t stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

inline int jitter() { return rand() % 8; }
