// Golden fixture: implicit promotion of a Nanos value through double
// arithmetic trips UL005 — int64 timestamps lose precision past 2^53 ns.
#include <cstdint>

using Nanos = std::int64_t;

inline double smoothed(Nanos t) { return t * 0.5 + t / 1e3; }
