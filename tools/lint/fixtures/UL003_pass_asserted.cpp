// Golden fixture: a wire-format struct with its layout pinned by
// static_asserts adjacent to the definition satisfies UL003.
#include <cstdint>
#include <type_traits>

// umon-lint: wire-struct
struct WireHeader {
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;
};
static_assert(sizeof(WireHeader) == 8, "v2 header prefix is 8 bytes");
static_assert(std::is_trivially_copyable_v<WireHeader>);
