// Golden fixture: UL001 must stay quiet on the sanctioned patterns.
#include <cstdint>

using Nanos = std::int64_t;

// A named constexpr definition may carry the raw unit value.
constexpr Nanos kMicro = 1'000;
constexpr Nanos kStatsInterval = 250 * kMicro;

inline Nanos deadline_after(Nanos now) { return now + 5 * kMicro; }

// Unit-valued literals outside a time-typed context are not time units.
inline int checksum_rounds() {
  int total = 0;
  for (int i = 0; i < 1'000; ++i) total += i;
  return total;
}

// An explicitly reviewed exception is suppressible per line.
inline Nanos legacy_grace_period() {
  return 1'000'000;  // umon-lint: allow(UL001)
}
