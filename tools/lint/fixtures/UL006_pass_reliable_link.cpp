// UL006 fixture: payloads routed through the reliable uplink wrapper (the
// sanctioned path — passthrough mode preserves legacy behavior), plus one
// deliberately raw send under an explicit suppression, the pattern loopback
// harnesses that measure the bare channel use.
#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/upload_channel.hpp"
#include "resilience/reliable.hpp"

void drive(umon::resilience::ReliableLink& link,
           umon::netsim::UploadChannel& raw_channel,
           std::vector<std::uint8_t> payload) {
  link.send(0, 1, std::move(payload), 0);

  std::vector<std::uint8_t> probe;
  // umon-lint: allow(UL006) — loopback harness measures the bare channel
  (void)raw_channel.send(0, 1, std::move(probe), 0);
}
