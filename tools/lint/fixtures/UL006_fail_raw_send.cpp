// UL006 fixture: a driver sending straight on the upload channel bypasses
// the reliable uplink — no CRC framing, no retransmit buffering, and the
// lost payload never surfaces as a confidence flag.
#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/upload_channel.hpp"

void drive(umon::netsim::UploadChannel& channel,
           std::vector<std::uint8_t> payload) {
  (void)channel.send(0, 1, std::move(payload), 0);
}
