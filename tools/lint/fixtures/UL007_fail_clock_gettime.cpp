// umon-lint-fixture: path=src/collector/stamp.cpp
// A shard worker reaching for the raw OS clock on its decode path.
#include <ctime>

long decode_stamp_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000000000L + ts.tv_nsec;
}
