// umon-lint-fixture: path=src/netsim/UL004_pass_seeded_rng.cpp
// Golden fixture: deterministic hot-path randomness comes from a seeded
// generator (umon::Rng in the real tree), never rand()/system_clock.
#include <cstdint>

struct SeededRng {
  std::uint64_t s = 1;
  std::uint64_t next() { return s = s * 6364136223846793005ULL + 1442695040888963407ULL; }
};

inline std::uint64_t pick_shard(SeededRng& rng, std::uint64_t shards) {
  return rng.next() % shards;
}
