// umon-lint-fixture: path=src/sketch/sample_clock.cpp
// A hot path timing itself with raw rdtsc instead of the profiler shim:
// uncalibrated cycles, no sampling budget, invisible to the attribution
// table.
#include <cstdint>

std::uint64_t cycles_now() {
  return __rdtsc();
}
