// Packet-trace persistence: a compact binary format for PacketRecord
// streams, so expensive simulations can be captured once and replayed into
// sketches/benches, and so real traces (e.g., converted pcaps) can drive
// the same pipeline.
//
// File layout (little-endian):
//   TraceHeader { magic "UMTR", version, record_count, window_shift }
//   record_count x packed records (33 bytes each)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace umon::trace {

struct TraceMeta {
  std::uint32_t version = 1;
  int window_shift = kDefaultWindowShift;
};

/// Serialize records (with metadata) into a byte buffer.
[[nodiscard]] std::vector<std::uint8_t> encode(
    std::span<const PacketRecord> records, const TraceMeta& meta = {});

/// Parse a buffer produced by encode(); nullopt on malformed input.
struct DecodedTrace {
  TraceMeta meta;
  std::vector<PacketRecord> records;
};
[[nodiscard]] std::optional<DecodedTrace> decode(
    std::span<const std::uint8_t> bytes);

/// Convenience file I/O. write_file returns false on I/O failure;
/// read_file returns nullopt on I/O failure or malformed content.
[[nodiscard]] bool write_file(const std::string& path,
                              std::span<const PacketRecord> records,
                              const TraceMeta& meta = {});
[[nodiscard]] std::optional<DecodedTrace> read_file(const std::string& path);

/// A recorder to wire directly into netsim::Network::set_host_tx_hook.
class TraceRecorder {
 public:
  void record(const PacketRecord& r) { records_.push_back(r); }
  [[nodiscard]] const std::vector<PacketRecord>& records() const {
    return records_;
  }
  bool save(const std::string& path, const TraceMeta& meta = {}) const {
    return write_file(path, records_, meta);
  }

 private:
  std::vector<PacketRecord> records_;
};

}  // namespace umon::trace
