#include "trace/trace.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace umon::trace {
namespace {

constexpr char kMagic[4] = {'U', 'M', 'T', 'R'};
constexpr std::size_t kRecordBytes = 13 +  // flow key
                                     8 +   // timestamp
                                     4 +   // size
                                     4 +   // psn
                                     1 +   // ecn
                                     2;    // port
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;
constexpr std::uint64_t kMaxRecords = 1ull << 32;

void put_key(std::uint8_t* p, const FlowKey& k) {
  std::memcpy(p, &k.src_ip, 4);
  std::memcpy(p + 4, &k.dst_ip, 4);
  std::memcpy(p + 8, &k.src_port, 2);
  std::memcpy(p + 10, &k.dst_port, 2);
  p[12] = k.proto;
}

FlowKey get_key(const std::uint8_t* p) {
  FlowKey k;
  std::memcpy(&k.src_ip, p, 4);
  std::memcpy(&k.dst_ip, p + 4, 4);
  std::memcpy(&k.src_port, p + 8, 2);
  std::memcpy(&k.dst_port, p + 10, 2);
  k.proto = p[12];
  return k;
}

}  // namespace

std::vector<std::uint8_t> encode(std::span<const PacketRecord> records,
                                 const TraceMeta& meta) {
  std::vector<std::uint8_t> out(kHeaderBytes + records.size() * kRecordBytes);
  std::uint8_t* p = out.data();
  std::memcpy(p, kMagic, 4);
  std::memcpy(p + 4, &meta.version, 4);
  const std::uint64_t count = records.size();
  std::memcpy(p + 8, &count, 8);
  const std::int32_t shift = meta.window_shift;
  std::memcpy(p + 16, &shift, 4);
  p += kHeaderBytes;
  for (const auto& r : records) {
    put_key(p, r.flow);
    std::memcpy(p + 13, &r.timestamp, 8);
    std::memcpy(p + 21, &r.size, 4);
    std::memcpy(p + 25, &r.psn, 4);
    p[29] = static_cast<std::uint8_t>(r.ecn);
    std::memcpy(p + 30, &r.port, 2);
    p += kRecordBytes;
  }
  return out;
}

std::optional<DecodedTrace> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) return std::nullopt;
  DecodedTrace out;
  std::memcpy(&out.meta.version, bytes.data() + 4, 4);
  if (out.meta.version != 1) return std::nullopt;
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data() + 8, 8);
  std::int32_t shift = 0;
  std::memcpy(&shift, bytes.data() + 16, 4);
  out.meta.window_shift = shift;
  if (count > kMaxRecords) return std::nullopt;
  if (bytes.size() != kHeaderBytes + count * kRecordBytes) return std::nullopt;
  out.records.reserve(count);
  const std::uint8_t* p = bytes.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i) {
    PacketRecord r;
    r.flow = get_key(p);
    std::memcpy(&r.timestamp, p + 13, 8);
    std::memcpy(&r.size, p + 21, 4);
    std::memcpy(&r.psn, p + 25, 4);
    const std::uint8_t ecn = p[29];
    if (ecn > 3) return std::nullopt;
    r.ecn = static_cast<Ecn>(ecn);
    std::memcpy(&r.port, p + 30, 2);
    out.records.push_back(r);
    p += kRecordBytes;
  }
  return out;
}

bool write_file(const std::string& path,
                std::span<const PacketRecord> records, const TraceMeta& meta) {
  const auto bytes = encode(records, meta);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  return std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size();
}

std::optional<DecodedTrace> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) return std::nullopt;
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    return std::nullopt;
  }
  return decode(bytes);
}

}  // namespace umon::trace
