// umon::health — end-to-end freshness watermarks.
//
// Each pipeline stage publishes the event time (simulation nanoseconds of
// the *measured traffic*, not processing time) it has fully incorporated:
//
//   packet_event      host TX hook saw a packet with this timestamp
//   sketch_seal       a host sketch sealed an epoch ending at this time
//   collector_decode  a decode shard reconstructed windows up to this time
//   analyzer_curve    curves covering up to this time are queryable
//
// The high watermark of a stage is monotone by construction (fetch-max), so
// out-of-order batches — reordered upload payloads, shards racing each
// other — can never make a stage appear to move backwards. Freshness of a
// stage is `now - high`; backlog between adjacent stages is the event-time
// span the downstream stage has not yet absorbed. Both are first-class
// health series.
//
// note() is called from the simulation thread *and* from collector shard
// workers, so the watermark cells are atomics. Relaxed ordering is
// deliberate and registered in tools/lint/atomics_policy.txt: each cell is
// an independent monotonic max/min and every reader (the health sampler)
// tolerates a stale value — it only ever under-reports progress by one
// sample tick.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace umon::health {

enum class Stage : int {
  kPacketEvent = 0,
  kSketchSeal = 1,
  kCollectorDecode = 2,
  kAnalyzerCurve = 3,
  /// Reliable-uplink settlement: every frame of epochs ending at this event
  /// time was either delivered (possibly after retransmits) or explicitly
  /// declared lost. Curves past this mark carry final confidence flags.
  kResilience = 4,
  /// Durable-store seal: curves up to this event time are fsync'd into the
  /// segment store and would survive a crash + reopen. The gap between
  /// analyzer_curve and store_seal is the data at risk.
  kStoreSeal = 5,
};

inline constexpr std::size_t kStageCount = 6;

[[nodiscard]] constexpr const char* to_string(Stage s) {
  switch (s) {
    case Stage::kPacketEvent: return "packet_event";
    case Stage::kSketchSeal: return "sketch_seal";
    case Stage::kCollectorDecode: return "collector_decode";
    case Stage::kAnalyzerCurve: return "analyzer_curve";
    case Stage::kResilience: return "resilience";
    case Stage::kStoreSeal: return "store_seal";
  }
  return "unknown";
}

class Watermarks {
 public:
  /// Sentinel for "stage has not seen any event yet".
  static constexpr Nanos kUnset = -1;

  Watermarks() {
    for (auto& c : cells_) {
      c.low.store(kUnset, std::memory_order_relaxed);
      c.high.store(kUnset, std::memory_order_relaxed);
    }
  }

  /// Record that `stage` has fully processed events up to `event_time`.
  /// Thread-safe; late or out-of-order calls can only widen [low, high].
  void note(Stage stage, Nanos event_time) {
    Cell& c = cells_[static_cast<std::size_t>(stage)];
    Nanos lo = c.low.load(std::memory_order_relaxed);
    while ((lo == kUnset || event_time < lo) &&
           !c.low.compare_exchange_weak(lo, event_time,
                                        std::memory_order_relaxed)) {
    }
    Nanos hi = c.high.load(std::memory_order_relaxed);
    while (event_time > hi &&
           !c.high.compare_exchange_weak(hi, event_time,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Earliest event time the stage ever saw (kUnset before any note()).
  [[nodiscard]] Nanos low(Stage stage) const {
    return cells_[static_cast<std::size_t>(stage)].low.load(
        std::memory_order_relaxed);
  }

  /// Latest event time the stage has fully processed (kUnset before any
  /// note()). Monotone non-decreasing over a run.
  [[nodiscard]] Nanos high(Stage stage) const {
    return cells_[static_cast<std::size_t>(stage)].high.load(
        std::memory_order_relaxed);
  }

  /// Staleness of a stage at simulation time `now`: how far behind the
  /// present its high watermark sits. A stage that never saw an event is
  /// maximally stale (`now` itself, clamped at zero).
  [[nodiscard]] Nanos freshness_lag(Stage stage, Nanos now) const {
    const Nanos hi = high(stage);
    const Nanos lag = hi == kUnset ? now : now - hi;
    return lag < 0 ? 0 : lag;
  }

  /// Event-time span the downstream stage has not yet absorbed from the
  /// upstream one (0 when downstream has caught up or upstream is silent).
  [[nodiscard]] Nanos backlog(Stage upstream, Stage downstream) const {
    const Nanos up = high(upstream);
    if (up == kUnset) return 0;
    const Nanos down = high(downstream);
    const Nanos lag = down == kUnset ? up : up - down;
    return lag < 0 ? 0 : lag;
  }

 private:
  struct Cell {
    std::atomic<Nanos> low{kUnset};
    std::atomic<Nanos> high{kUnset};
  };
  Cell cells_[kStageCount];
};

}  // namespace umon::health
