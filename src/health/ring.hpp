// umon::health — round-robin time-series storage (the netdata model).
//
// Every health sample lands in a fixed-capacity ring keyed by series name +
// flattened labels: memory is bounded for arbitrarily long runs, the newest
// window of history is always resident, and a snapshot walks oldest-first so
// exporters and the alarm engine see a coherent time axis. Timestamps are
// *simulation* nanoseconds supplied by the driver — nothing in this layer
// reads a wall clock, which is what makes health output reproducible
// byte-for-byte under a fixed seed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace umon::health {

/// One bounded series: (sim time, value) points, oldest overwritten first.
class SeriesRing {
 public:
  explicit SeriesRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void push(Nanos t, double v) {
    if (points_.size() < capacity_) {
      points_.push_back({t, v});
    } else {
      points_[total_ % capacity_] = {t, v};
    }
    total_ += 1;
  }

  /// Resident points, oldest first.
  [[nodiscard]] std::vector<std::pair<Nanos, double>> snapshot() const {
    if (total_ <= points_.size()) return points_;
    std::vector<std::pair<Nanos, double>> out;
    out.reserve(points_.size());
    const std::size_t head = total_ % capacity_;
    out.insert(out.end(),
               points_.begin() + static_cast<std::ptrdiff_t>(head),
               points_.end());
    out.insert(out.end(), points_.begin(),
               points_.begin() + static_cast<std::ptrdiff_t>(head));
    return out;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] double last() const {
    if (points_.empty()) return 0.0;
    if (total_ <= points_.size()) return points_.back().second;
    return points_[(total_ - 1) % capacity_].second;
  }

  [[nodiscard]] double max() const {
    double m = 0.0;
    bool first = true;
    for (const auto& [t, v] : points_) {
      if (first || v > m) m = v;
      first = false;
    }
    return m;
  }

  [[nodiscard]] double min() const {
    double m = 0.0;
    bool first = true;
    for (const auto& [t, v] : points_) {
      if (first || v < m) m = v;
      first = false;
    }
    return m;
  }

  [[nodiscard]] double avg() const {
    if (points_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& [t, v] : points_) sum += v;
    return sum / static_cast<double>(points_.size());
  }

  /// Nearest-rank percentile over resident points (q in [0, 1]).
  [[nodiscard]] double percentile(double q) const {
    if (points_.empty()) return 0.0;
    std::vector<double> vals;
    vals.reserve(points_.size());
    for (const auto& [t, v] : points_) vals.push_back(v);
    std::sort(vals.begin(), vals.end());
    const double rank = q * static_cast<double>(vals.size() - 1);
    std::size_t i = static_cast<std::size_t>(rank);
    if (i >= vals.size() - 1) return vals.back();
    const double frac = rank - static_cast<double>(i);
    return vals[i] * (1.0 - frac) + vals[i + 1] * frac;
  }

 private:
  std::size_t capacity_;
  std::vector<std::pair<Nanos, double>> points_;
  std::uint64_t total_ = 0;  ///< points ever pushed
};

/// How the stored points relate to the source instrument.
enum class SeriesKind {
  kGauge,  ///< instantaneous level sampled as-is
  kRate,   ///< per-second rate derived from a monotonic counter delta
};

[[nodiscard]] inline const char* to_string(SeriesKind k) {
  return k == SeriesKind::kRate ? "rate" : "gauge";
}

/// The ring store: one SeriesRing per (name, flattened labels). std::map
/// keys keep iteration order deterministic for exporters.
class RingStore {
 public:
  struct Key {
    std::string name;
    std::string labels;  ///< flattened `k=v,k=v` (empty when unlabeled)
    auto operator<=>(const Key&) const = default;
  };

  struct Entry {
    SeriesKind kind = SeriesKind::kGauge;
    double last_raw = 0.0;  ///< last raw instrument value (pre-derivation)
    SeriesRing ring;
    explicit Entry(SeriesKind k, std::size_t capacity)
        : kind(k), ring(capacity) {}
  };

  explicit RingStore(std::size_t capacity_per_series)
      : capacity_(capacity_per_series) {}

  Entry& series(const std::string& name, const std::string& labels,
                SeriesKind kind) {
    auto it = series_.find(Key{name, labels});
    if (it == series_.end()) {
      it = series_
               .emplace(Key{name, labels}, Entry(kind, capacity_))
               .first;
    }
    return it->second;
  }

  [[nodiscard]] const Entry* find(const std::string& name,
                                  const std::string& labels = {}) const {
    auto it = series_.find(Key{name, labels});
    return it == series_.end() ? nullptr : &it->second;
  }

  /// First series whose name matches exactly, any labels (alarm rules that
  /// name a labeled family without qualifying the labels bind to this).
  [[nodiscard]] const Entry* find_any_labels(const std::string& name) const {
    auto it = series_.lower_bound(Key{name, ""});
    if (it == series_.end() || it->first.name != name) return nullptr;
    return &it->second;
  }

  [[nodiscard]] const std::map<Key, Entry>& all() const { return series_; }
  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::size_t capacity_per_series() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::map<Key, Entry> series_;
};

}  // namespace umon::health
