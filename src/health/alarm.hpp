// umon::health — declarative alarm engine over the ring store.
//
// Operators express health invariants in a tiny grammar instead of code:
//
//   <series>[{label=value}] [<agg>] <op> <value>[<unit>]
//       [for <dur><unit>] [clear <value>[<unit>]]
//
//   umon_collector_reports_lost_total rate > 0
//   umon_health_freshness_ns{stage=analyzer_curve} last > 2ms for 1ms
//   umon_collector_queue_depth_batches max > 192 for 5ms clear 64
//
// Rules are ';'-separated. `agg` folds the resident ring window into one
// value: last (default), rate (alias of last — counters are already stored
// as per-second rates), max, min, avg, p50, p90, p99. Thresholds and
// durations accept ns/us/ms/s suffixes. Dots in series names normalize to
// underscores, and a bare name also tries the `umon_` / `_total` spellings,
// so `collector.reports_lost` resolves to
// `umon_collector_reports_lost_total`.
//
// The state machine gives every rule hysteresis and flap suppression:
//
//   ok -> pending    condition first holds (instant when `for` is 0)
//   pending -> ok    condition lapses before `for` elapsed (no event)
//   pending -> firing condition held for >= `for`   [WARN logged]
//   firing -> clearing value crosses the clear threshold (default: the
//                     raise threshold)
//   clearing -> firing condition re-raises before `for` elapsed — a flap,
//                     suppressed (counted, no event)
//   clearing -> ok    clear held for >= `for`        [INFO logged]
//
// Evaluation happens at sampler ticks against simulation time only; a rule
// whose series has produced no points yet is "no data" and keeps its state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "health/ring.hpp"

namespace umon::health {

enum class AlarmAgg { kLast, kRate, kMax, kMin, kAvg, kP50, kP90, kP99 };
enum class AlarmOp { kGt, kGe, kLt, kLe, kEq, kNe };
enum class AlarmState { kOk, kPending, kFiring, kClearing };

[[nodiscard]] const char* to_string(AlarmAgg a);
[[nodiscard]] const char* to_string(AlarmOp o);
[[nodiscard]] const char* to_string(AlarmState s);

struct AlarmSpec {
  std::string text;     ///< original rule text (for logs and reports)
  std::string series;   ///< normalized series name
  std::string labels;   ///< flattened `k=v,...`; empty = first match
  AlarmAgg agg = AlarmAgg::kLast;
  AlarmOp op = AlarmOp::kGt;
  double threshold = 0.0;
  double clear_threshold = 0.0;  ///< hysteresis level (== threshold when
                                 ///< the rule has no `clear` clause)
  Nanos for_duration = 0;
};

/// Parse a ';'-separated rule list. Returns false and sets *error on the
/// first malformed rule (specs parsed so far are kept).
[[nodiscard]] bool parse_alarms(const std::string& text,
                                std::vector<AlarmSpec>* out,
                                std::string* error);

/// One state transition observed by the engine.
struct AlarmEvent {
  Nanos t = 0;
  std::size_t rule = 0;  ///< index into specs()
  AlarmState from = AlarmState::kOk;
  AlarmState to = AlarmState::kOk;
  double value = 0.0;    ///< aggregated value that caused the transition
};

class AlarmEngine {
 public:
  explicit AlarmEngine(std::vector<AlarmSpec> specs);

  /// Evaluate every rule against the store at simulation time `now`.
  void evaluate(Nanos now, const RingStore& store);

  [[nodiscard]] const std::vector<AlarmSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::vector<AlarmEvent>& events() const {
    return events_;
  }
  [[nodiscard]] AlarmState state(std::size_t rule) const {
    return rules_[rule].state;
  }
  /// Times the rule transitioned into kFiring over the run.
  [[nodiscard]] std::uint64_t fire_count(std::size_t rule) const {
    return rules_[rule].fires;
  }
  /// Re-raises swallowed while clearing (flap suppression effectiveness).
  [[nodiscard]] std::uint64_t flaps_suppressed(std::size_t rule) const {
    return rules_[rule].flaps;
  }
  /// Total kFiring transitions across all rules.
  [[nodiscard]] std::uint64_t total_fires() const;
  /// True when no rule ever fired (the run's health verdict).
  [[nodiscard]] bool healthy() const { return total_fires() == 0; }

 private:
  struct RuleState {
    AlarmState state = AlarmState::kOk;
    Nanos since = 0;  ///< entry time of the current pending/clearing span
    std::uint64_t fires = 0;
    std::uint64_t flaps = 0;
  };

  void transition(std::size_t i, Nanos now, AlarmState to, double value);

  std::vector<AlarmSpec> specs_;
  std::vector<RuleState> rules_;
  std::vector<AlarmEvent> events_;
};

}  // namespace umon::health
