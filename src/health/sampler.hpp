// umon::health — the periodic snapshot engine.
//
// At every tick the sampler walks a set of MetricRegistry instances (the
// process-global one, the collector's private one, the health monitor's
// own) and appends one point per instrument to the RingStore:
//
//   counter    -> a per-second *rate* derived from the delta since the last
//                 tick (netdata's round-robin-database model: operators read
//                 "reports lost per second right now", not a lifetime total;
//                 the raw cumulative value stays available as last_raw)
//   gauge      -> the level, sampled as-is
//   histogram  -> `<name>_count` observation rate plus `<name>_interval_mean`
//                 (mean observed value across this interval, 0 when idle)
//
// Ticks are driven by the caller with *simulation* time; the sampler never
// reads a clock. prime() records counter baselines without emitting points
// so the first real tick reports rates over a well-defined interval even
// when the process-global registry carries counts from earlier runs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"
#include "health/ring.hpp"
#include "telemetry/metrics.hpp"

namespace umon::health {

class Sampler {
 public:
  explicit Sampler(RingStore& store) : store_(store) {}

  /// Registries are walked in add order; nullptr entries are skipped.
  void add_registry(const telemetry::MetricRegistry* reg) {
    if (reg != nullptr) registries_.push_back(reg);
  }

  /// Record counter/histogram baselines at `t0` without emitting points.
  void prime(Nanos t0);

  /// Append one point per live series at simulation time `now`. Auto-primes
  /// on the first call if prime() was never invoked (that tick then only
  /// establishes baselines and gauge levels).
  void tick(Nanos now);

  [[nodiscard]] bool primed() const { return primed_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  struct Baseline {
    double counter_value = 0.0;
    std::uint64_t hist_count = 0;
    double hist_sum = 0.0;
  };

  void walk(Nanos now, double dt_seconds, bool emit);

  RingStore& store_;
  std::vector<const telemetry::MetricRegistry*> registries_;
  std::map<RingStore::Key, Baseline> prev_;
  Nanos last_tick_ = 0;
  bool primed_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace umon::health
