// umon::health — the facade tying the subsystem together.
//
// A HealthMonitor owns the ring store, the sampler, the end-to-end freshness
// watermarks, the fidelity probe, and the alarm engine, and exposes one
// tick(now) the driver calls on its sampling cadence (simulation time; the
// monitor never reads a clock, so two runs with the same seed produce
// byte-identical exports). Each tick:
//
//   1. publishes watermark positions / freshness lags / inter-stage backlog
//      into the monitor's private registry,
//   2. samples every attached registry into the ring store (rates for
//      counters, levels for gauges),
//   3. evaluates the fidelity probe against the analyzer and records live
//      ARE / NMSE series,
//   4. evaluates alarm rules over the freshly sampled rings.
//
// Exporters: write_jsonl emits the machine-readable "umon-health-v1" stream
// (header, series, watermarks, alarm events, verdict — one JSON object per
// line); write_html renders a self-contained dashboard with inline SVG
// sparklines, watermark lanes, and the alarm table. No external assets.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "health/alarm.hpp"
#include "health/fidelity.hpp"
#include "health/ring.hpp"
#include "health/sampler.hpp"
#include "health/watermark.hpp"
#include "telemetry/metrics.hpp"

namespace umon::analyzer {
class Analyzer;
}

namespace umon::health {

struct HealthConfig {
  /// Sampling cadence the driver promises to call tick() at. Recorded in
  /// the export header; the monitor itself accepts any tick spacing.
  Nanos interval = 500 * kMicro;
  /// Resident points per series (the round-robin window).
  std::size_t ring_capacity = 4096;
  /// ';'-separated alarm rules; empty selects default_alarms().
  std::string alarms;
  bool enable_probe = true;
  FidelityProbe::Config probe;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& cfg = {});
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Loss-oriented invariants that hold on any healthy run: report loss,
  /// report/batch shedding, and trace-span drops all stay at zero rate.
  [[nodiscard]] static std::string default_alarms();

  /// Non-empty when the configured alarm rules failed to parse (the monitor
  /// then runs with the rules that parsed before the error).
  [[nodiscard]] const std::string& alarm_parse_error() const {
    return alarm_error_;
  }

  /// Registries to sample each tick, walked in add order.
  void add_registry(const telemetry::MetricRegistry* reg) {
    sampler_.add_registry(reg);
  }
  /// Analyzer the fidelity probe scores against (optional).
  void set_analyzer(const analyzer::Analyzer* az) { analyzer_ = az; }

  [[nodiscard]] Watermarks& watermarks() { return marks_; }
  [[nodiscard]] const Watermarks& watermarks() const { return marks_; }
  [[nodiscard]] FidelityProbe& probe() { return probe_; }

  /// Establish counter baselines at simulation time t0 (optional; the first
  /// tick() auto-primes).
  void prime(Nanos t0);
  void tick(Nanos now);

  [[nodiscard]] const RingStore& store() const { return store_; }
  [[nodiscard]] const AlarmEngine& alarms() const { return engine_; }
  [[nodiscard]] bool healthy() const { return engine_.healthy(); }
  [[nodiscard]] std::uint64_t ticks() const { return sampler_.ticks(); }
  [[nodiscard]] Nanos last_tick() const { return last_tick_; }

  void write_jsonl(std::ostream& os) const;
  /// Just the alarm plane: one JSON line per rule (state / fires / flaps
  /// suppressed) then one per transition event — what the serve tier's
  /// /health/alarms endpoint publishes.
  void write_alarms_jsonl(std::ostream& os) const;
  /// Self-contained SVG-sparkline dashboard. `live` additionally tags the
  /// series rows with data-series attributes and appends a script that
  /// subscribes to the umon::serve `/api/v1/stream` SSE feed (with a
  /// /health poll fallback) so sparklines update in place. The default
  /// (static) output is byte-identical to what it was before live mode
  /// existed — determinism tests diff it.
  void write_html(std::ostream& os, bool live = false) const;
  /// One compact JSON object for the SSE `tick` event: verdict, alarm
  /// fires, and every series' latest ring value keyed `name{labels}` —
  /// the same keys the live dashboard rows carry.
  void write_live_sample(std::ostream& os) const;

 private:
  void publish_watermarks(Nanos now);

  HealthConfig cfg_;
  telemetry::MetricRegistry self_;  ///< watermark/freshness/backlog gauges
  RingStore store_;
  Sampler sampler_;
  Watermarks marks_;
  FidelityProbe probe_;
  std::string alarm_error_;  ///< declared before engine_: its parse target
  AlarmEngine engine_;
  const analyzer::Analyzer* analyzer_ = nullptr;
  Nanos last_tick_ = 0;
};

}  // namespace umon::health
