#include "health/alarm.hpp"

#include <cctype>
#include <cstdlib>

#include "telemetry/log.hpp"

namespace umon::health {
namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      pos += 1;
    }
  }
  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }

  /// Consume a run of identifier characters (series names, agg names,
  /// keywords). Dots are accepted and normalized to underscores later.
  std::string word() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '.') {
        pos += 1;
      } else {
        break;
      }
    }
    return text.substr(start, pos - start);
  }
};

std::string normalize_name(std::string name) {
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

bool parse_agg(const std::string& w, AlarmAgg* out) {
  if (w == "last") *out = AlarmAgg::kLast;
  else if (w == "rate") *out = AlarmAgg::kRate;
  else if (w == "max") *out = AlarmAgg::kMax;
  else if (w == "min") *out = AlarmAgg::kMin;
  else if (w == "avg") *out = AlarmAgg::kAvg;
  else if (w == "p50") *out = AlarmAgg::kP50;
  else if (w == "p90") *out = AlarmAgg::kP90;
  else if (w == "p99") *out = AlarmAgg::kP99;
  else return false;
  return true;
}

bool parse_op(Cursor& c, AlarmOp* out) {
  c.skip_ws();
  const char a = c.peek();
  if (a == '>' || a == '<' || a == '=' || a == '!') {
    c.pos += 1;
    const bool eq = c.peek() == '=';
    if (eq) c.pos += 1;
    switch (a) {
      case '>': *out = eq ? AlarmOp::kGe : AlarmOp::kGt; return true;
      case '<': *out = eq ? AlarmOp::kLe : AlarmOp::kLt; return true;
      case '=': if (eq) { *out = AlarmOp::kEq; return true; } return false;
      case '!': if (eq) { *out = AlarmOp::kNe; return true; } return false;
      default: return false;
    }
  }
  return false;
}

/// Number with an optional ns/us/ms/s time-unit suffix (scales to ns).
bool parse_value(Cursor& c, double* out) {
  c.skip_ws();
  const char* begin = c.text.c_str() + c.pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  c.pos += static_cast<std::size_t>(end - begin);
  double scale = 1.0;
  const std::size_t save = c.pos;
  const std::string unit = c.word();
  if (unit == "ns") scale = 1.0;
  else if (unit == "us") scale = static_cast<double>(kMicro);
  else if (unit == "ms") scale = static_cast<double>(kMilli);
  else if (unit == "s") scale = static_cast<double>(kSecond);
  else c.pos = save;  // not a unit — leave it for the next clause
  *out = v * scale;
  return true;
}

bool parse_rule(const std::string& text, AlarmSpec* spec, std::string* error) {
  Cursor c{text};
  spec->text = text;

  const std::string name = c.word();
  if (name.empty()) {
    *error = "expected series name in rule '" + text + "'";
    return false;
  }
  spec->series = normalize_name(name);

  c.skip_ws();
  if (c.peek() == '{') {
    c.pos += 1;
    const std::size_t close = c.text.find('}', c.pos);
    if (close == std::string::npos) {
      *error = "unterminated '{' in rule '" + text + "'";
      return false;
    }
    spec->labels = c.text.substr(c.pos, close - c.pos);
    c.pos = close + 1;
  }

  // Optional aggregator, then the mandatory comparison.
  c.skip_ws();
  std::size_t save = c.pos;
  const std::string maybe_agg = c.word();
  if (!maybe_agg.empty()) {
    if (!parse_agg(maybe_agg, &spec->agg)) {
      *error = "unknown aggregator '" + maybe_agg + "' in rule '" + text + "'";
      return false;
    }
  } else {
    c.pos = save;
  }
  if (!parse_op(c, &spec->op)) {
    *error = "expected comparison operator in rule '" + text + "'";
    return false;
  }
  if (!parse_value(c, &spec->threshold)) {
    *error = "expected threshold value in rule '" + text + "'";
    return false;
  }
  spec->clear_threshold = spec->threshold;

  // Optional trailing clauses, any order: `for <dur>` / `clear <value>`.
  for (;;) {
    c.skip_ws();
    if (c.done()) break;
    save = c.pos;
    const std::string kw = c.word();
    if (kw == "for") {
      double dur = 0.0;
      if (!parse_value(c, &dur) || dur < 0) {
        *error = "bad 'for' duration in rule '" + text + "'";
        return false;
      }
      spec->for_duration = static_cast<Nanos>(dur);
    } else if (kw == "clear") {
      if (!parse_value(c, &spec->clear_threshold)) {
        *error = "bad 'clear' threshold in rule '" + text + "'";
        return false;
      }
    } else {
      c.pos = save;
      *error = "trailing garbage '" + c.text.substr(c.pos) + "' in rule '" +
               text + "'";
      return false;
    }
  }
  return true;
}

bool compare(AlarmOp op, double v, double threshold) {
  switch (op) {
    case AlarmOp::kGt: return v > threshold;
    case AlarmOp::kGe: return v >= threshold;
    case AlarmOp::kLt: return v < threshold;
    case AlarmOp::kLe: return v <= threshold;
    case AlarmOp::kEq: return v == threshold;
    case AlarmOp::kNe: return v != threshold;
  }
  return false;
}

double aggregate(AlarmAgg agg, const SeriesRing& ring) {
  switch (agg) {
    case AlarmAgg::kLast:
    case AlarmAgg::kRate: return ring.last();
    case AlarmAgg::kMax: return ring.max();
    case AlarmAgg::kMin: return ring.min();
    case AlarmAgg::kAvg: return ring.avg();
    case AlarmAgg::kP50: return ring.percentile(0.50);
    case AlarmAgg::kP90: return ring.percentile(0.90);
    case AlarmAgg::kP99: return ring.percentile(0.99);
  }
  return 0.0;
}

/// Resolve a rule's series against the store, trying the canonical umon
/// spellings so rules can use the short form.
const RingStore::Entry* resolve(const RingStore& store, const AlarmSpec& s) {
  const std::string candidates[] = {
      s.series,
      "umon_" + s.series,
      s.series + "_total",
      "umon_" + s.series + "_total",
  };
  for (const auto& name : candidates) {
    const RingStore::Entry* e = s.labels.empty()
                                    ? store.find_any_labels(name)
                                    : store.find(name, s.labels);
    if (e != nullptr) return e;
  }
  return nullptr;
}

}  // namespace

const char* to_string(AlarmAgg a) {
  switch (a) {
    case AlarmAgg::kLast: return "last";
    case AlarmAgg::kRate: return "rate";
    case AlarmAgg::kMax: return "max";
    case AlarmAgg::kMin: return "min";
    case AlarmAgg::kAvg: return "avg";
    case AlarmAgg::kP50: return "p50";
    case AlarmAgg::kP90: return "p90";
    case AlarmAgg::kP99: return "p99";
  }
  return "?";
}

const char* to_string(AlarmOp o) {
  switch (o) {
    case AlarmOp::kGt: return ">";
    case AlarmOp::kGe: return ">=";
    case AlarmOp::kLt: return "<";
    case AlarmOp::kLe: return "<=";
    case AlarmOp::kEq: return "==";
    case AlarmOp::kNe: return "!=";
  }
  return "?";
}

const char* to_string(AlarmState s) {
  switch (s) {
    case AlarmState::kOk: return "ok";
    case AlarmState::kPending: return "pending";
    case AlarmState::kFiring: return "firing";
    case AlarmState::kClearing: return "clearing";
  }
  return "?";
}

bool parse_alarms(const std::string& text, std::vector<AlarmSpec>* out,
                  std::string* error) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    std::string rule = text.substr(start, end - start);
    // Trim; empty segments (trailing ';', blank input) are ignored.
    std::size_t a = 0;
    std::size_t b = rule.size();
    while (a < b && std::isspace(static_cast<unsigned char>(rule[a])) != 0)
      a += 1;
    while (b > a && std::isspace(static_cast<unsigned char>(rule[b - 1])) != 0)
      b -= 1;
    if (b > a) {
      AlarmSpec spec;
      if (!parse_rule(rule.substr(a, b - a), &spec, error)) return false;
      out->push_back(std::move(spec));
    }
    start = end + 1;
  }
  return true;
}

AlarmEngine::AlarmEngine(std::vector<AlarmSpec> specs)
    : specs_(std::move(specs)), rules_(specs_.size()) {}

void AlarmEngine::transition(std::size_t i, Nanos now, AlarmState to,
                             double value) {
  RuleState& r = rules_[i];
  events_.push_back({now, i, r.state, to, value});
  if (to == AlarmState::kFiring) {
    r.fires += 1;
    UMON_LOG(kWarn, "health", "alarm firing", {"rule", specs_[i].text},
             {"value", std::to_string(value)},
             {"t_ns", std::to_string(now)});
  } else if (to == AlarmState::kOk) {
    UMON_LOG(kInfo, "health", "alarm cleared", {"rule", specs_[i].text},
             {"value", std::to_string(value)},
             {"t_ns", std::to_string(now)});
  }
  r.state = to;
  r.since = now;
}

void AlarmEngine::evaluate(Nanos now, const RingStore& store) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const AlarmSpec& s = specs_[i];
    RuleState& r = rules_[i];
    const RingStore::Entry* e = resolve(store, s);
    if (e == nullptr || e->ring.size() == 0) continue;  // no data: hold state

    const double v = aggregate(s.agg, e->ring);
    const bool raised = compare(s.op, v, s.threshold);
    // Hysteresis: once firing, the alarm only starts clearing when the
    // value retreats past clear_threshold, not merely below threshold.
    const bool cleared = !compare(s.op, v, s.clear_threshold);

    switch (r.state) {
      case AlarmState::kOk:
        if (raised) {
          if (s.for_duration == 0) {
            transition(i, now, AlarmState::kFiring, v);
          } else {
            r.state = AlarmState::kPending;
            r.since = now;
          }
        }
        break;
      case AlarmState::kPending:
        if (!raised) {
          r.state = AlarmState::kOk;  // lapsed before `for` — no event
        } else if (now - r.since >= s.for_duration) {
          transition(i, now, AlarmState::kFiring, v);
        }
        break;
      case AlarmState::kFiring:
        if (cleared) {
          if (s.for_duration == 0) {
            transition(i, now, AlarmState::kOk, v);
          } else {
            r.state = AlarmState::kClearing;
            r.since = now;
          }
        }
        break;
      case AlarmState::kClearing:
        if (!cleared) {
          // Re-raise while clearing: a flap. Swallow it instead of
          // emitting a fresh firing event.
          r.state = AlarmState::kFiring;
          r.flaps += 1;
        } else if (now - r.since >= s.for_duration) {
          transition(i, now, AlarmState::kOk, v);
        }
        break;
    }
  }
}

std::uint64_t AlarmEngine::total_fires() const {
  std::uint64_t n = 0;
  for (const RuleState& r : rules_) n += r.fires;
  return n;
}

}  // namespace umon::health
