#include "health/fidelity.hpp"

#include "analyzer/analyzer.hpp"
#include "analyzer/metrics.hpp"

namespace umon::health {

void FidelityProbe::observe(const FlowKey& flow, Nanos t,
                            std::uint32_t bytes) {
  if (!selects(flow)) return;
  const std::uint64_t key = flow.packed();
  auto it = truth_.find(key);
  if (it == truth_.end()) {
    if (truth_.size() >= cfg_.max_flows) return;
    it = truth_.emplace(key, Truth{flow, {}}).first;
  }
  it->second.bytes[window_of(t, cfg_.window_shift)] +=
      static_cast<double>(bytes);
  observed_ += 1;
}

FidelityProbe::Result FidelityProbe::evaluate(
    const analyzer::Analyzer& az) const {
  Result out;
  for (const auto& [key, truth] : truth_) {
    if (truth.bytes.empty()) continue;
    const WindowId w0 = truth.bytes.begin()->first;
    const WindowId w1 = truth.bytes.rbegin()->first;  // inclusive
    const std::size_t span = static_cast<std::size_t>(w1 - w0) + 1;

    std::vector<double> exact(span, 0.0);
    for (const auto& [w, b] : truth.bytes) {
      exact[static_cast<std::size_t>(w - w0)] = b;
    }
    const analyzer::RateCurve est = az.query_rate(truth.flow);
    std::vector<double> approx(span, 0.0);
    for (std::size_t i = 0; i < span; ++i) {
      approx[i] = est.bytes_at(w0 + static_cast<WindowId>(i));
    }

    FlowScore score;
    score.flow = truth.flow;
    score.windows = span;
    score.are = analyzer::average_relative_error(exact, approx);
    double err2 = 0.0;
    double ref2 = 0.0;
    for (std::size_t i = 0; i < span; ++i) {
      const double d = approx[i] - exact[i];
      err2 += d * d;
      ref2 += exact[i] * exact[i];
    }
    score.nmse = ref2 > 0.0 ? err2 / ref2 : 0.0;

    out.are += score.are;
    out.nmse += score.nmse;
    out.per_flow.push_back(score);
  }
  out.flows = out.per_flow.size();
  if (out.flows > 0) {
    out.are /= static_cast<double>(out.flows);
    out.nmse /= static_cast<double>(out.flows);
  }
  return out;
}

}  // namespace umon::health
