// umon::health — live reconstruction-fidelity probe.
//
// WaveSketch's accuracy is normally only measurable offline, against a
// ground-truth trace. The probe makes a live estimate cheap: it keeps the
// *exact* per-window byte curve for a small deterministic sample of flows
// (selected by flow-key hash, so every run and every replica picks the same
// flows without coordination) and periodically compares the analyzer's
// reconstructed curves against them, publishing ARE and NMSE as health
// series. A drift in probe ARE is the earliest observable signal that the
// sketch configuration no longer fits the traffic.
//
// observe() sits on the host TX hook and must stay cheap for non-sampled
// flows: one hash, one modulo, one branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {
class Analyzer;
}

namespace umon::health {

class FidelityProbe {
 public:
  struct Config {
    /// A flow is probed when hash(flow) % sample_mod == 0. 1 probes every
    /// flow (tests); 16 samples ~6% of flows.
    std::uint64_t sample_mod = 16;
    /// Hard cap on tracked flows so truth storage stays bounded even under
    /// adversarial flow churn. First-seen order wins (deterministic in the
    /// simulator: the TX hook runs on the simulation thread in time order).
    std::size_t max_flows = 32;
    int window_shift = kDefaultWindowShift;
  };

  FidelityProbe() = default;
  explicit FidelityProbe(const Config& cfg) : cfg_(cfg) {
    if (cfg_.sample_mod == 0) cfg_.sample_mod = 1;
  }

  /// True when the deterministic sampler selects this flow.
  [[nodiscard]] bool selects(const FlowKey& flow) const {
    return std::hash<FlowKey>{}(flow) % cfg_.sample_mod == 0;
  }

  /// Accumulate exact ground truth for sampled flows. Called per packet.
  void observe(const FlowKey& flow, Nanos t, std::uint32_t bytes);

  struct FlowScore {
    FlowKey flow;
    double are = 0.0;
    double nmse = 0.0;
    std::size_t windows = 0;  ///< truth-curve span compared
  };
  struct Result {
    double are = 0.0;   ///< mean ARE across evaluated flows
    double nmse = 0.0;  ///< mean NMSE across evaluated flows
    std::size_t flows = 0;
    std::vector<FlowScore> per_flow;  ///< deterministic (packed-key) order
  };

  /// Compare each probed flow's exact curve against the analyzer's
  /// reconstruction. Flows the analyzer has not produced a curve for yet
  /// score against an all-zero estimate (maximal error), which is exactly
  /// the staleness signal the probe exists to surface.
  [[nodiscard]] Result evaluate(const analyzer::Analyzer& az) const;

  [[nodiscard]] std::size_t probed_flows() const { return truth_.size(); }
  [[nodiscard]] std::uint64_t packets_observed() const { return observed_; }

 private:
  struct Truth {
    FlowKey flow;
    std::map<WindowId, double> bytes;  ///< exact bytes per window
  };

  Config cfg_;
  /// Keyed by FlowKey::packed() so iteration (and thus Result::per_flow
  /// order and any derived output) is deterministic.
  std::map<std::uint64_t, Truth> truth_;
  std::uint64_t observed_ = 0;
};

}  // namespace umon::health
