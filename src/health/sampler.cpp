#include "health/sampler.hpp"

#include "telemetry/export.hpp"

namespace umon::health {
namespace {

std::string flatten_labels(const telemetry::Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out.push_back(',');
    out.append(k);
    out.push_back('=');
    out.append(v);
  }
  return out;
}

}  // namespace

void Sampler::prime(Nanos t0) {
  walk(t0, 0.0, /*emit=*/false);
  last_tick_ = t0;
  primed_ = true;
}

void Sampler::tick(Nanos now) {
  if (!primed_) {
    prime(now);
    return;
  }
  const Nanos dt = now - last_tick_;
  const double dt_seconds =
      dt > 0 ? static_cast<double>(dt) / static_cast<double>(kSecond) : 0.0;
  walk(now, dt_seconds, /*emit=*/true);
  last_tick_ = now;
  ticks_ += 1;
}

void Sampler::walk(Nanos now, double dt_seconds, bool emit) {
  const auto samples = telemetry::merged_snapshot(registries_);
  auto record = [&](const std::string& name, const std::string& labels,
                    SeriesKind kind, double raw, double point) {
    RingStore::Entry& e = store_.series(name, labels, kind);
    e.last_raw = raw;
    if (emit) e.ring.push(now, point);
  };
  for (const auto& s : samples) {
    const std::string labels = flatten_labels(s.labels);
    switch (s.kind) {
      case telemetry::MetricRegistry::Kind::kCounter: {
        Baseline& base = prev_[RingStore::Key{s.name, labels}];
        const double value = static_cast<double>(s.counter_value);
        const double delta = value - base.counter_value;
        record(s.name, labels, SeriesKind::kRate, value,
               dt_seconds > 0 ? delta / dt_seconds : 0.0);
        base.counter_value = value;
        break;
      }
      case telemetry::MetricRegistry::Kind::kGauge: {
        const double value = static_cast<double>(s.gauge_value);
        record(s.name, labels, SeriesKind::kGauge, value, value);
        break;
      }
      case telemetry::MetricRegistry::Kind::kHistogram: {
        Baseline& base = prev_[RingStore::Key{s.name, labels}];
        const double dcount = static_cast<double>(s.hist_count) -
                              static_cast<double>(base.hist_count);
        const double dsum = s.hist_sum - base.hist_sum;
        record(s.name + "_count", labels, SeriesKind::kRate,
               static_cast<double>(s.hist_count),
               dt_seconds > 0 ? dcount / dt_seconds : 0.0);
        record(s.name + "_interval_mean", labels, SeriesKind::kGauge,
               dcount > 0 ? dsum / dcount : 0.0,
               dcount > 0 ? dsum / dcount : 0.0);
        base.hist_count = s.hist_count;
        base.hist_sum = s.hist_sum;
        break;
      }
    }
  }
}

}  // namespace umon::health
