#include "health/health.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "analyzer/analyzer.hpp"
#include "telemetry/log.hpp"

namespace umon::health {
namespace {

constexpr std::array<Stage, kStageCount> kStages = {
    Stage::kPacketEvent,
    Stage::kSketchSeal,
    Stage::kCollectorDecode,
    Stage::kAnalyzerCurve,
    Stage::kResilience,
    Stage::kStoreSeal,
};

/// Deterministic shortest-roundtrip-ish formatting: %.10g prints the same
/// bytes for the same double on every run, which the byte-identical export
/// guarantee depends on. Non-finite values (an ARE against an all-zero
/// estimate can overflow) are clamped to 0 so the output stays valid JSON.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Inline SVG sparkline over the ring's resident points.
void write_sparkline(std::ostream& os, const SeriesRing& ring) {
  constexpr double kW = 140.0;
  constexpr double kH = 28.0;
  const auto pts = ring.snapshot();
  if (pts.size() < 2) {
    os << "<span class=\"dim\">&mdash;</span>";
    return;
  }
  const Nanos t0 = pts.front().first;
  const Nanos t1 = pts.back().first;
  double lo = pts.front().second;
  double hi = lo;
  for (const auto& [t, v] : pts) {
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  const double tspan = t1 > t0 ? static_cast<double>(t1 - t0) : 1.0;
  const double vspan = hi > lo ? hi - lo : 1.0;
  os << "<svg class=\"spark\" viewBox=\"0 0 " << fmt_double(kW) << " "
     << fmt_double(kH) << "\"><polyline points=\"";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double x =
        static_cast<double>(pts[i].first - t0) / tspan * (kW - 2.0) + 1.0;
    const double y = kH - 2.0 - (pts[i].second - lo) / vspan * (kH - 4.0);
    if (i > 0) os << ' ';
    os << fmt_double(x) << ',' << fmt_double(y);
  }
  os << "\"/></svg>";
}

}  // namespace

std::string HealthMonitor::default_alarms() {
  return "collector.reports_lost rate > 0; "
         "collector.reports_shed rate > 0; "
         "collector.batches_shed rate > 0; "
         "telemetry.trace_dropped_spans rate > 0; "
         "resilience.epochs_unrecovered rate > 0; "
         "store.compaction_lag_segments last > 1 for 1ms; "
         // Durability plane: any corrupt record the scrubber finds (media
         // rot slipping past the page cache) and any epoch seal that hit an
         // I/O error should page — both mean windows just went lost-at-best.
         "store.scrub_corrupt rate > 0; "
         "store.chunks_quarantined rate > 0; "
         "store.seal_failures rate > 0";
}

HealthMonitor::HealthMonitor(const HealthConfig& cfg)
    : cfg_(cfg),
      store_(cfg.ring_capacity),
      sampler_(store_),
      probe_(cfg.probe),
      engine_([&] {
        std::vector<AlarmSpec> specs;
        const std::string rules =
            cfg.alarms.empty() ? default_alarms() : cfg.alarms;
        if (!parse_alarms(rules, &specs, &alarm_error_)) {
          UMON_LOG(kWarn, "health", "alarm rules rejected",
                   {"error", alarm_error_});
        }
        return AlarmEngine(std::move(specs));
      }()) {
  sampler_.add_registry(&self_);
}

void HealthMonitor::publish_watermarks(Nanos now) {
  for (Stage s : kStages) {
    const telemetry::Labels labels = {{"stage", to_string(s)}};
    self_.gauge("umon_health_watermark_low_ns", labels,
                "earliest event time the stage has seen")
        ->set(marks_.low(s));
    self_.gauge("umon_health_watermark_high_ns", labels,
                "latest event time the stage has fully processed")
        ->set(marks_.high(s));
    self_.gauge("umon_health_freshness_ns", labels,
                "now minus the stage high watermark")
        ->set(marks_.freshness_lag(s, now));
  }
  for (std::size_t i = 0; i + 1 < kStages.size(); ++i) {
    self_.gauge("umon_health_backlog_ns",
                {{"from", to_string(kStages[i])},
                 {"to", to_string(kStages[i + 1])}},
                "event-time span not yet absorbed downstream")
        ->set(marks_.backlog(kStages[i], kStages[i + 1]));
  }
}

void HealthMonitor::prime(Nanos t0) {
  publish_watermarks(t0);
  sampler_.prime(t0);
  last_tick_ = t0;
}

void HealthMonitor::tick(Nanos now) {
  publish_watermarks(now);
  sampler_.tick(now);
  if (cfg_.enable_probe && analyzer_ != nullptr &&
      probe_.probed_flows() > 0) {
    const FidelityProbe::Result r = probe_.evaluate(*analyzer_);
    auto push = [&](const char* name, double v) {
      RingStore::Entry& e = store_.series(name, "", SeriesKind::kGauge);
      e.last_raw = v;
      e.ring.push(now, v);
    };
    push("umon_health_probe_are", r.are);
    push("umon_health_probe_nmse", r.nmse);
    push("umon_health_probe_flows", static_cast<double>(r.flows));
  }
  engine_.evaluate(now, store_);
  last_tick_ = now;
}

void HealthMonitor::write_jsonl(std::ostream& os) const {
  os << "{\"type\":\"header\",\"format\":\"umon-health-v1\""
     << ",\"interval_ns\":" << cfg_.interval
     << ",\"ring_capacity\":" << store_.capacity_per_series()
     << ",\"ticks\":" << sampler_.ticks()
     << ",\"last_tick_ns\":" << last_tick_
     << ",\"series\":" << store_.series_count() << "}\n";

  for (Stage s : kStages) {
    os << "{\"type\":\"watermark\",\"stage\":\"" << to_string(s)
       << "\",\"low_ns\":" << marks_.low(s)
       << ",\"high_ns\":" << marks_.high(s)
       << ",\"freshness_ns\":" << marks_.freshness_lag(s, last_tick_)
       << "}\n";
  }

  // Degraded-window inventory: every window the pipeline could not fully
  // recover is listed with its confidence flag, so a dashboard (or the CI
  // chaos gate) can prove no loss went unflagged.
  if (analyzer_ != nullptr) {
    const analyzer::FlowCurveStore& curves = analyzer_->curves();
    os << "{\"type\":\"confidence\",\"gap_fill\":"
       << (curves.gap_fill() ? "true" : "false") << ",\"retransmitted\":"
       << curves.marked_count(analyzer::WindowConfidence::kRetransmitted)
       << ",\"lost\":"
       << curves.marked_count(analyzer::WindowConfidence::kLost)
       << ",\"windows\":[";
    bool first = true;
    for (const auto& [w, conf] : curves.marks()) {
      if (!first) os << ',';
      first = false;
      os << "[" << w << ",\"" << analyzer::to_string(conf) << "\"]";
    }
    os << "]}\n";
  }

  for (const auto& [key, entry] : store_.all()) {
    os << "{\"type\":\"series\",\"name\":\"" << json_escape(key.name)
       << "\",\"labels\":\"" << json_escape(key.labels) << "\",\"kind\":\""
       << to_string(entry.kind)
       << "\",\"last_raw\":" << fmt_double(entry.last_raw)
       << ",\"points\":[";
    const auto pts = entry.ring.snapshot();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i > 0) os << ',';
      os << '[' << pts[i].first << ',' << fmt_double(pts[i].second) << ']';
    }
    os << "]}\n";
  }

  for (const AlarmEvent& ev : engine_.events()) {
    os << "{\"type\":\"alarm\",\"t_ns\":" << ev.t << ",\"rule\":" << ev.rule
       << ",\"text\":\"" << json_escape(engine_.specs()[ev.rule].text)
       << "\",\"from\":\"" << to_string(ev.from) << "\",\"to\":\""
       << to_string(ev.to) << "\",\"value\":" << fmt_double(ev.value)
       << "}\n";
  }

  os << "{\"type\":\"verdict\",\"healthy\":"
     << (engine_.healthy() ? "true" : "false")
     << ",\"fires\":" << engine_.total_fires() << ",\"rules\":[";
  for (std::size_t i = 0; i < engine_.specs().size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"text\":\"" << json_escape(engine_.specs()[i].text)
       << "\",\"state\":\"" << to_string(engine_.state(i))
       << "\",\"fires\":" << engine_.fire_count(i)
       << ",\"flaps_suppressed\":" << engine_.flaps_suppressed(i) << '}';
  }
  os << "]}\n";
}

void HealthMonitor::write_alarms_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < engine_.specs().size(); ++i) {
    os << "{\"type\":\"alarm_rule\",\"text\":\""
       << json_escape(engine_.specs()[i].text) << "\",\"state\":\""
       << to_string(engine_.state(i))
       << "\",\"fires\":" << engine_.fire_count(i)
       << ",\"flaps_suppressed\":" << engine_.flaps_suppressed(i) << "}\n";
  }
  for (const AlarmEvent& ev : engine_.events()) {
    os << "{\"type\":\"alarm\",\"t_ns\":" << ev.t << ",\"rule\":" << ev.rule
       << ",\"text\":\"" << json_escape(engine_.specs()[ev.rule].text)
       << "\",\"from\":\"" << to_string(ev.from) << "\",\"to\":\""
       << to_string(ev.to) << "\",\"value\":" << fmt_double(ev.value)
       << "}\n";
  }
}

namespace {

/// Client side of the live dashboard: subscribe to the serve tier's SSE
/// feed and update verdict / last-value cells / sparklines in place. When
/// SSE never connects (proxy stripping, old browser) fall back to polling
/// the /health JSONL export on a 2s interval and applying the same update.
void write_live_script(std::ostream& os) {
  os << R"js(<script>
(function () {
  "use strict";
  var MAX_POINTS = 64;
  var history = {};
  function setVerdict(healthy) {
    var v = document.getElementById("verdict");
    if (!v || healthy === undefined) return;
    v.textContent = healthy ? "HEALTHY" : "UNHEALTHY";
    v.className = healthy ? "ok" : "bad";
  }
  function cssEscape(s) {
    return (window.CSS && CSS.escape) ? CSS.escape(s)
                                      : s.replace(/["\\]/g, "\\$&");
  }
  function apply(sample) {
    setVerdict(sample.healthy);
    if (!sample.series) return;
    for (var key in sample.series) {
      var row = document.querySelector(
          'tr[data-series="' + cssEscape(key) + '"]');
      if (!row) continue;
      var value = sample.series[key];
      var cell = row.querySelector(".last");
      if (cell) cell.textContent = value;
      var poly = row.querySelector("polyline");
      if (!poly) continue;
      var h = history[key] || (history[key] = []);
      h.push(Number(value));
      if (h.length > MAX_POINTS) h.shift();
      if (h.length < 2) continue;
      var lo = Math.min.apply(null, h);
      var hi = Math.max.apply(null, h);
      var span = hi > lo ? hi - lo : 1;
      var pts = "";
      for (var i = 0; i < h.length; i++) {
        var x = i / (h.length - 1) * 138 + 1;
        var y = 26 - (h[i] - lo) / span * 24;
        pts += (i ? " " : "") + x.toFixed(1) + "," + y.toFixed(1);
      }
      poly.setAttribute("points", pts);
    }
  }
  function poll() {
    setInterval(function () {
      fetch("/health").then(function (r) { return r.text(); })
          .then(function (text) {
        var sample = { series: {} };
        text.split("\n").forEach(function (line) {
          if (!line) return;
          var obj;
          try { obj = JSON.parse(line); } catch (e) { return; }
          if (obj.type === "verdict") sample.healthy = obj.healthy;
          if (obj.type === "series") {
            var key = obj.name + (obj.labels ? "{" + obj.labels + "}" : "");
            sample.series[key] = obj.last_raw;
          }
        });
        apply(sample);
      }).catch(function () {});
    }, 2000);
  }
  if (window.EventSource) {
    var es = new EventSource("/api/v1/stream");
    var gotTick = false;
    es.addEventListener("tick", function (ev) {
      gotTick = true;
      try { apply(JSON.parse(ev.data)); } catch (e) {}
    });
    es.onerror = function () {
      if (!gotTick) { es.close(); poll(); }
    };
  } else {
    poll();
  }
})();
</script>)js";
}

}  // namespace

void HealthMonitor::write_html(std::ostream& os, bool live) const {
  const bool ok = engine_.healthy();
  os << "<!doctype html><html><head><meta charset=\"utf-8\">"
        "<title>umon health</title><style>"
        "body{font:13px/1.4 monospace;margin:24px;background:#101418;"
        "color:#cdd6dd}"
        "h1{font-size:16px}h2{font-size:14px;margin-top:28px}"
        "table{border-collapse:collapse;width:100%}"
        "td,th{padding:3px 10px;border-bottom:1px solid #222a31;"
        "text-align:left;white-space:nowrap}"
        "th{color:#8aa0b0}"
        ".ok{color:#4cc38a}.bad{color:#ff6369}.dim{color:#5a6a76}"
        ".spark{width:140px;height:28px}"
        ".spark polyline{fill:none;stroke:#4da6ff;stroke-width:1.5}"
        ".lane{height:14px;background:#1b232b;position:relative;"
        "margin:4px 0}"
        ".lane span{position:absolute;top:0;bottom:0;background:#2f6db3}"
        ".lane b{position:absolute;right:4px;top:-1px;font-weight:normal;"
        "color:#8aa0b0}"
        "</style></head><body><h1>umon health &mdash; verdict: ";
  // Live mode tags the verdict so the stream script can flip it in place;
  // the static branch must keep emitting the exact original bytes.
  if (live) {
    os << "<span id=\"verdict\" class=\"" << (ok ? "ok" : "bad") << "\">"
       << (ok ? "HEALTHY" : "UNHEALTHY") << "</span>";
  } else {
    os << (ok ? "<span class=\"ok\">HEALTHY</span>"
              : "<span class=\"bad\">UNHEALTHY</span>");
  }
  os << "</h1><p class=\"dim\">ticks=" << sampler_.ticks()
     << " last_tick=" << fmt_double(static_cast<double>(last_tick_) /
                                    static_cast<double>(kMicro))
     << "us series=" << store_.series_count()
     << " alarm_fires=" << engine_.total_fires() << "</p>";

  // Watermark lanes: each stage's [low, high] span over the full event-time
  // axis, so decode/analyzer lag is visible as the right-edge gap.
  os << "<h2>freshness watermarks</h2>";
  Nanos axis_lo = Watermarks::kUnset;
  Nanos axis_hi = Watermarks::kUnset;
  for (Stage s : kStages) {
    const Nanos lo = marks_.low(s);
    const Nanos hi = marks_.high(s);
    if (lo != Watermarks::kUnset &&
        (axis_lo == Watermarks::kUnset || lo < axis_lo)) {
      axis_lo = lo;
    }
    if (hi > axis_hi) axis_hi = hi;
  }
  if (axis_hi == Watermarks::kUnset || axis_hi <= axis_lo) {
    os << "<p class=\"dim\">no watermark data</p>";
  } else {
    const double span = static_cast<double>(axis_hi - axis_lo);
    for (Stage s : kStages) {
      const Nanos lo = marks_.low(s);
      const Nanos hi = marks_.high(s);
      os << "<div>" << to_string(s) << "<div class=\"lane\">";
      if (lo != Watermarks::kUnset && hi != Watermarks::kUnset) {
        const double l = static_cast<double>(lo - axis_lo) / span * 100.0;
        const double r = static_cast<double>(hi - axis_lo) / span * 100.0;
        os << "<span style=\"left:" << fmt_double(l) << "%;width:"
           << fmt_double(r - l < 0.5 ? 0.5 : r - l) << "%\"></span><b>lag "
           << fmt_double(
                  static_cast<double>(marks_.freshness_lag(s, last_tick_)) /
                  static_cast<double>(kMicro))
           << "us</b>";
      } else {
        os << "<b>no data</b>";
      }
      os << "</div></div>";
    }
  }

  os << "<h2>alarms</h2><table><tr><th>rule</th><th>state</th>"
        "<th>fires</th><th>flaps suppressed</th></tr>";
  for (std::size_t i = 0; i < engine_.specs().size(); ++i) {
    const AlarmState st = engine_.state(i);
    const bool firing =
        st == AlarmState::kFiring || st == AlarmState::kClearing;
    os << "<tr><td>" << html_escape(engine_.specs()[i].text)
       << "</td><td class=\"" << (firing ? "bad" : "ok") << "\">"
       << to_string(st) << "</td><td>" << engine_.fire_count(i) << "</td><td>"
       << engine_.flaps_suppressed(i) << "</td></tr>";
  }
  os << "</table>";
  if (!engine_.events().empty()) {
    os << "<h2>alarm events</h2><table><tr><th>t (us)</th><th>rule</th>"
          "<th>transition</th><th>value</th></tr>";
    for (const AlarmEvent& ev : engine_.events()) {
      os << "<tr><td>"
         << fmt_double(static_cast<double>(ev.t) /
                       static_cast<double>(kMicro))
         << "</td><td>" << html_escape(engine_.specs()[ev.rule].text)
         << "</td><td>" << to_string(ev.from) << " &rarr; "
         << to_string(ev.to) << "</td><td>" << fmt_double(ev.value)
         << "</td></tr>";
    }
    os << "</table>";
  }

  os << "<h2>series</h2><table><tr><th>series</th><th>kind</th>"
        "<th>last</th><th>min</th><th>max</th><th>trend</th></tr>";
  for (const auto& [key, entry] : store_.all()) {
    if (live) {
      // The data-series key matches write_live_sample's JSON keys, so the
      // stream script can address each row by the sample's map key.
      std::string k = key.name;
      if (!key.labels.empty()) k += "{" + key.labels + "}";
      os << "<tr data-series=\"" << html_escape(k) << "\"><td>"
         << html_escape(key.name);
    } else {
      os << "<tr><td>" << html_escape(key.name);
    }
    if (!key.labels.empty()) {
      os << "<span class=\"dim\">{" << html_escape(key.labels) << "}</span>";
    }
    os << "</td><td class=\"dim\">" << to_string(entry.kind)
       << (live ? "</td><td class=\"last\">" : "</td><td>")
       << fmt_double(entry.ring.last()) << "</td><td>"
       << fmt_double(entry.ring.min()) << "</td><td>"
       << fmt_double(entry.ring.max()) << "</td><td>";
    write_sparkline(os, entry.ring);
    os << "</td></tr>";
  }
  os << "</table>";
  if (live) write_live_script(os);
  os << "</body></html>\n";
}

void HealthMonitor::write_live_sample(std::ostream& os) const {
  os << "{\"type\":\"tick\",\"t_ns\":" << last_tick_ << ",\"healthy\":"
     << (engine_.healthy() ? "true" : "false")
     << ",\"fires\":" << engine_.total_fires() << ",\"series\":{";
  bool first = true;
  for (const auto& [key, entry] : store_.all()) {
    if (!first) os << ',';
    first = false;
    std::string k = key.name;
    if (!key.labels.empty()) k += "{" + key.labels + "}";
    os << '"' << json_escape(k) << "\":\"" << fmt_double(entry.ring.last())
       << '"';
  }
  os << "}}";
}

}  // namespace umon::health
