#include "store/query_io.hpp"

#include <cstdio>
#include <ostream>
#include <vector>

namespace umon::store {
namespace {

/// printf into an ostream: the formatting contract here is the original
/// umon_query printf conversions, so snprintf is the source of truth.
/// Falls back to a heap buffer for oversized rows (long store paths).
template <typename... Args>
void fmt(std::ostream& os, const char* f, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, f, args...);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof buf) {
    os.write(buf, n);
    return;
  }
  std::vector<char> big(static_cast<std::size_t>(n) + 1);
  std::snprintf(big.data(), big.size(), f, args...);
  os.write(big.data(), n);
}

}  // namespace

StoreHead make_head(const std::string& dir, const RecoveryInfo& info,
                    std::size_t flow_count) {
  StoreHead head;
  head.store_dir = dir;
  head.segments = info.segments_opened;
  head.flows = flow_count;
  head.torn_tails = info.torn_tails_truncated;
  head.last_sealed_epoch = info.last_sealed_epoch;
  return head;
}

std::vector<FlowExtentRow> flow_extents(Store& store) {
  std::vector<FlowExtentRow> rows;
  for (const FlowKey& f : store.flows()) {
    FlowExtentRow row;
    row.flow = f;
    if (!store.flow_extent(f, row.first, row.last)) continue;
    rows.push_back(row);
  }
  return rows;
}

bool flow_extent_union(const std::vector<FlowExtentRow>& rows, WindowId& lo,
                       WindowId& hi) {
  bool have = false;
  for (const FlowExtentRow& row : rows) {
    if (!have || row.first < lo) lo = row.first;
    if (!have || row.last + 1 > hi) hi = row.last + 1;
    have = true;
  }
  return have;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_head_json(std::ostream& os, const StoreHead& head) {
  fmt(os,
      "{\"store_dir\":\"%s\",\"segments\":%zu,\"flows\":%zu,"
      "\"torn_tails\":%zu,\"last_sealed_epoch\":%s",
      json_escape(head.store_dir).c_str(), head.segments, head.flows,
      head.torn_tails,
      head.last_sealed_epoch ? std::to_string(*head.last_sealed_epoch).c_str()
                             : "null");
}

void write_query_json(std::ostream& os, const StoreHead& head,
                      const QueryResult& r) {
  write_head_json(os, head);
  const double bucket_us =
      static_cast<double>(window_length()) * r.resolution / 1e3;
  fmt(os,
      ",\"op\":\"%s\",\"from_window\":%lld,\"to_window\":%lld,"
      "\"resolution\":%u,\"bucket_us\":%.1f,\"flows_matched\":%zu,"
      "\"series\":[",
      to_string(r.op), static_cast<long long>(r.from),
      static_cast<long long>(r.to), r.resolution, bucket_us, r.flows_matched);
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const WindowId w = r.from + static_cast<WindowId>(i) * r.resolution;
    fmt(os, "%s{\"t_us\":%.1f,\"bytes\":%.1f,\"confidence\":\"%s\"}",
        i == 0 ? "" : ",", static_cast<double>(window_start(w)) / 1e3,
        r.series[i], analyzer::to_string(r.confidence[i]));
  }
  os << "]}\n";
}

void write_empty_json(std::ostream& os, const StoreHead& head) {
  write_head_json(os, head);
  os << ",\"series\":[]}\n";
}

void write_flow_list_json(std::ostream& os, const StoreHead& head,
                          const std::vector<FlowExtentRow>& rows) {
  write_head_json(os, head);
  os << ",\"flow_list\":[";
  bool first_row = true;
  for (const FlowExtentRow& row : rows) {
    fmt(os,
        "%s{\"flow\":\"%s\",\"first_window\":%lld,"
        "\"last_window\":%lld,\"from_us\":%.1f,\"to_us\":%.1f}",
        first_row ? "" : ",", json_escape(row.flow.to_string()).c_str(),
        static_cast<long long>(row.first), static_cast<long long>(row.last),
        static_cast<double>(window_start(row.first)) / 1e3,
        static_cast<double>(window_start(row.last + 1)) / 1e3);
    first_row = false;
  }
  os << "]}\n";
}

void write_query_csv(std::ostream& os, const QueryResult& r) {
  os << "t_us,bytes,confidence\n";
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const WindowId w = r.from + static_cast<WindowId>(i) * r.resolution;
    fmt(os, "%.1f,%.1f,%s\n", static_cast<double>(window_start(w)) / 1e3,
        r.series[i], analyzer::to_string(r.confidence[i]));
  }
}

void write_flow_list_csv(std::ostream& os,
                         const std::vector<FlowExtentRow>& rows) {
  os << "flow,first_window,last_window,from_us,to_us\n";
  for (const FlowExtentRow& row : rows) {
    fmt(os, "%s,%lld,%lld,%.1f,%.1f\n", row.flow.to_string().c_str(),
        static_cast<long long>(row.first), static_cast<long long>(row.last),
        static_cast<double>(window_start(row.first)) / 1e3,
        static_cast<double>(window_start(row.last + 1)) / 1e3);
  }
}

}  // namespace umon::store
