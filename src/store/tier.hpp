// umon::store — wavelet-native tiering.
//
// Aged data is not downsampled; it is re-expressed in the Haar basis and
// truncated to the top-K coefficients by L2 weight — the same compression
// WaveSketch applies on the data plane, applied again at rest. Tier-1 keeps
// K/2 coefficients per flow chunk, tier-2 keeps K/4, each additionally
// clamped so the encoded payload never exceeds half its source's bytes
// (the ≤1/2 and ≤1/4 ratio the acceptance tests assert). Tier-2 truncates
// tier-1's retained set directly (nested truncation): dropping the
// smallest-weight survivors is exactly the top-K/4 of the tier-1 basis, so
// no re-transform error is introduced.
//
// The transform is full-depth: the approximation vector degenerates to a
// single grand block sum, so a record's bytes are dominated by the detail
// coefficients and halving the coefficient count halves the payload.
//
// Values are quantized to integer Count (llround) before the forward
// transform — the un-normalized Haar variant is integer-exact, and the
// sub-byte-per-window quantization error is far below the truncation error
// that tiering accepts by design.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"
#include "store/segment.hpp"

namespace umon::store {

struct TierParams {
  /// Maximum detail coefficients retained per chunk record.
  std::size_t budget_coeffs = 32;
  /// Encoded-payload byte clamp for the output record (0 = none). The
  /// retained set is shrunk, smallest weight first, until it fits.
  std::size_t max_payload_bytes = 0;
};

/// Encoded payload size of a kCoeffCurve record (matches encode_coeff).
[[nodiscard]] constexpr std::size_t coeff_payload_bytes(std::size_t approx,
                                                        std::size_t details) {
  return kCoeffFixedWireBytes + approx * 8 + details * kCoeffEntryWireBytes;
}

/// Encoded payload size of a kSparseCurve record (matches encode_sparse).
[[nodiscard]] constexpr std::size_t sparse_payload_bytes(std::size_t windows) {
  return kFlowKeyWireBytes + 4 + windows * kSparseEntryWireBytes;
}

/// Transform one dense chunk (`dense[i]` = bytes in window `w0 + i`) into a
/// tiered coefficient record: full-depth un-normalized Haar, top
/// `params.budget_coeffs` details by L2 weight, byte-clamped.
[[nodiscard]] CoeffCurveRecord tier_from_dense(const FlowKey& flow,
                                               WindowId w0,
                                               std::span<const double> dense,
                                               const TierParams& params);

/// Nested truncation of an existing coefficient record: keep the
/// `params.budget_coeffs` largest-weight details of `in`, byte-clamped.
/// Approximation coefficients and geometry are preserved.
[[nodiscard]] CoeffCurveRecord truncate_coeffs(const CoeffCurveRecord& in,
                                               const TierParams& params);

/// Mean squared error of a record's reconstruction against a dense
/// reference, divided by the reference's mean square (NMSE). Used by tests
/// and the bench to report tier fidelity.
[[nodiscard]] double reconstruction_nmse(const CoeffCurveRecord& rec,
                                         std::span<const double> reference);

}  // namespace umon::store
