#include "store/query.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "obs/prof.hpp"
#include "wavelet/reconstruct.hpp"

namespace umon::store {
namespace {

/// FNV-1a mixing for the cache key. The fingerprint is the key identity (no
/// exact query comparison behind it), so every selection field is folded in.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::optional<GroupOp> parse_group_op(const std::string& name) {
  if (name == "sum") return GroupOp::kSum;
  if (name == "avg") return GroupOp::kAvg;
  if (name == "max") return GroupOp::kMax;
  if (name == "p99") return GroupOp::kP99;
  return std::nullopt;
}

std::uint64_t QueryEngine::fingerprint(const Query& q) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(q.from));
  h = fnv1a(h, static_cast<std::uint64_t>(q.to));
  h = fnv1a(h, q.resolution);
  h = fnv1a(h, static_cast<std::uint64_t>(q.op));
  h = fnv1a(h, q.src_host.has_value() ? (*q.src_host | (1ull << 32)) : 0);
  for (const FlowKey& f : q.flows) h = fnv1a(h, f.packed());
  return h;
}

QueryResult QueryEngine::run(const Query& q) {
  if (q.from >= q.to || q.resolution == 0) return QueryResult{};
  const CacheKey key{fingerprint(q), store_.generation()};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    QueryResult result = it->second.result;
    result.cache_hit = true;
    return result;
  }
  ++misses_;
  QueryResult result = execute(q);
  lru_.push_front(key);
  cache_[key] = CacheEntry{result, lru_.begin()};
  while (cache_.size() > cache_entries_ && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return result;
}

QueryResult QueryEngine::execute(const Query& q) const {
  UMON_PROF_SCOPE(kQueryExec);
  QueryResult result;
  result.from = q.from;
  result.to = q.to;
  result.resolution = q.resolution;
  result.op = q.op;

  // Clamp the materialized range to the store's extent: `totals` is dense,
  // so unclamped caller-supplied bounds would allocate (to - from) doubles
  // regardless of how little data exists — a hostile umon_query range must
  // not be able to force a multi-GB allocation. The clamped bounds are
  // reported back via result.from / result.to.
  WindowId ext_first = 0;
  WindowId ext_last = 0;
  if (!store_.window_extent(ext_first, ext_last)) return result;
  const WindowId from = std::max(q.from, ext_first);
  const WindowId to = std::min(q.to, static_cast<WindowId>(ext_last + 1));
  if (from >= to) return result;
  result.from = from;
  result.to = to;

  std::vector<FlowKey> selected;
  if (q.flows.empty()) {
    selected = store_.flows();
  } else {
    selected = q.flows;
  }
  if (q.src_host.has_value()) {
    selected.erase(std::remove_if(selected.begin(), selected.end(),
                                  [&](const FlowKey& f) {
                                    return f.src_ip != *q.src_host;
                                  }),
                   selected.end());
  }

  // Per-window totals across the matched flows over [from, to).
  const std::size_t n = static_cast<std::size_t>(to - from);
  std::vector<double> totals(n, 0.0);
  for (const FlowKey& flow : selected) {
    bool touched = false;
    store_.visit_flow(flow, from, to, [&](const ChunkView& chunk) {
      touched = true;
      if (chunk.kind == RecordKind::kSparseCurve) {
        for (const auto& [w, v] : chunk.sparse->windows) {
          if (w < from || w >= to) continue;
          totals[static_cast<std::size_t>(w - from)] += v;
        }
      } else if (chunk.kind == RecordKind::kCoeffCurve) {
        // On-demand inverse Haar at the chunk's native resolution; only
        // the overlap with the query range is folded in.
        const CoeffCurveRecord& rec = *chunk.coeff;
        const std::vector<double> dense = wavelet::reconstruct(
            rec.approx, rec.details, rec.length, rec.levels);
        const WindowId lo = std::max(from, rec.w0);
        const WindowId hi =
            std::min(to, rec.w0 + static_cast<WindowId>(rec.length));
        for (WindowId w = lo; w < hi; ++w) {
          totals[static_cast<std::size_t>(w - from)] +=
              dense[static_cast<std::size_t>(w - rec.w0)];
        }
      }
    });
    if (touched) ++result.flows_matched;
  }

  // Group into buckets of `resolution` windows (last one may be partial).
  const std::size_t buckets = (n + q.resolution - 1) / q.resolution;
  result.series.resize(buckets, 0.0);
  result.confidence.resize(buckets, analyzer::WindowConfidence::kCovered);
  std::vector<double> scratch;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * q.resolution;
    const std::size_t hi = std::min(n, lo + q.resolution);
    switch (q.op) {
      case GroupOp::kSum: {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += totals[i];
        result.series[b] = acc;
        break;
      }
      case GroupOp::kAvg: {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += totals[i];
        result.series[b] = acc / static_cast<double>(hi - lo);
        break;
      }
      case GroupOp::kMax: {
        double best = 0.0;
        for (std::size_t i = lo; i < hi; ++i) best = std::max(best, totals[i]);
        result.series[b] = best;
        break;
      }
      case GroupOp::kP99: {
        scratch.assign(totals.begin() + static_cast<std::ptrdiff_t>(lo),
                       totals.begin() + static_cast<std::ptrdiff_t>(hi));
        result.series[b] = percentile(std::move(scratch), 0.99);
        break;
      }
    }
    result.confidence[b] = store_.worst_confidence(
        from + static_cast<WindowId>(lo), from + static_cast<WindowId>(hi));
  }
  return result;
}

}  // namespace umon::store
