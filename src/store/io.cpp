#include "store/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "store/format.hpp"

namespace umon::store {

namespace {

class RealIo final : public FileIo {
 public:
  int open(const char* path, int flags, unsigned mode) override {
    return ::open(path, flags, mode);
  }
  ssize_t pread(int fd, void* buf, std::size_t n, off_t off) override {
    return ::pread(fd, buf, n, off);
  }
  ssize_t pwrite(int fd, const void* buf, std::size_t n, off_t off) override {
    return ::pwrite(fd, buf, n, off);
  }
  int fsync(int fd) override { return ::fsync(fd); }
  int ftruncate(int fd, off_t len) override { return ::ftruncate(fd, len); }
  int close(int fd) override { return ::close(fd); }
  int unlink(const char* path) override { return ::unlink(path); }
  int rename(const char* from, const char* to) override {
    return ::rename(from, to);
  }
  off_t file_size(int fd) override { return ::lseek(fd, 0, SEEK_END); }
};

}  // namespace

FileIo& real_io() {
  static RealIo io;
  return io;
}

FaultyIo::FaultyIo(const resilience::FaultPlan& plan)
    : rng_(plan.seed ^ 0xD15CFA17ULL) {
  using resilience::DiskFault;
  for (const DiskFault& f : plan.disk) {
    switch (f.kind) {
      case DiskFault::Kind::kFail:
        if (f.op == DiskFault::Op::kWrite) {
          write_faults_[f.nth] = f;
        } else {
          fsync_faults_[f.nth] = f.err != 0 ? f.err : EIO;
        }
        break;
      case DiskFault::Kind::kShort:
        write_faults_[f.nth] = f;
        break;
      case DiskFault::Kind::kCorrupt:
        corruptions_[f.nth] = f.bits;
        break;
      case DiskFault::Kind::kAbort:
        aborts_.insert(f.nth);
        break;
    }
  }
}

void FaultyIo::mutating_op() {
  ++mutating_n_;
  if (aborts_.count(mutating_n_) > 0) {
    // Crash-torture kill point: die without flushing anything, the way a
    // power cut would. _exit skips every destructor and atexit hook.
    ::_exit(kDiskAbortExitCode);
  }
}

int FaultyIo::open(const char* path, int flags, unsigned mode) {
  const int fd = ::open(path, flags, mode);
  if (fd >= 0) {
    // Whatever is in the file at open is durable as far as this run is
    // concerned (O_TRUNC creations start at zero).
    const off_t size = ::lseek(fd, 0, SEEK_END);
    durable_[fd] = size > 0 ? size : 0;
  }
  return fd;
}

ssize_t FaultyIo::pread(int fd, void* buf, std::size_t n, off_t off) {
  return ::pread(fd, buf, n, off);
}

ssize_t FaultyIo::pwrite(int fd, const void* buf, std::size_t n, off_t off) {
  mutating_op();
  ++pwrite_n_;
  ++stats_.pwrites;
  const auto it = write_faults_.find(pwrite_n_);
  if (it != write_faults_.end()) {
    using resilience::DiskFault;
    if (it->second.kind == DiskFault::Kind::kFail) {
      ++stats_.write_errors;
      errno = it->second.err != 0 ? it->second.err : EIO;
      return -1;
    }
    // Short write: only the first `bytes` land; the caller sees the same
    // return a full signal-interrupted write would produce.
    ++stats_.short_writes;
    const std::size_t take =
        std::min<std::size_t>(n, it->second.bytes);
    if (take == 0) return 0;
    return ::pwrite(fd, buf, take, off);
  }
  return ::pwrite(fd, buf, n, off);
}

int FaultyIo::fsync(int fd) {
  mutating_op();
  ++fsync_n_;
  ++stats_.fsyncs;
  const auto fault = fsync_faults_.find(fsync_n_);
  if (fault != fsync_faults_.end()) {
    // fsync lies once: the kernel reports the failure, drops the dirty
    // pages it could not write, and a later fsync of the same fd succeeds
    // without resurrecting them. Emulated by truncating back to the extent
    // the last successful fsync made durable — correct for the store's
    // append-only writers, which never overwrite durable bytes.
    ++stats_.fsync_failures;
    const auto durable = durable_.find(fd);
    const off_t keep = durable != durable_.end() ? durable->second : 0;
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size > keep) {
      stats_.dropped_bytes += static_cast<std::uint64_t>(size - keep);
      (void)::ftruncate(fd, keep);
    }
    errno = fault->second;
    return -1;
  }
  const int rc = ::fsync(fd);
  if (rc != 0) return rc;
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size >= 0) durable_[fd] = size;
  ++durable_fsyncs_;
  const auto rot = corruptions_.find(durable_fsyncs_);
  if (rot != corruptions_.end()) corrupt_file(fd, rot->second);
  return 0;
}

void FaultyIo::corrupt_file(int fd, int bits) {
  // Latent media rot: flip seeded bits anywhere in the record body of the
  // file that just became durable. The fixed segment header is spared so
  // the file still opens — header rot just makes recovery skip the whole
  // file, which exercises nothing interesting. Raw syscalls on purpose:
  // the rot itself must not advance the fault clocks.
  const off_t size = ::lseek(fd, 0, SEEK_END);
  const auto lo = static_cast<off_t>(sizeof(SegmentHeader));
  if (size <= lo) return;
  ++stats_.corruptions;
  for (int i = 0; i < bits; ++i) {
    const off_t at =
        lo + static_cast<off_t>(rng_.below(static_cast<std::uint64_t>(
                 size - lo)));
    std::uint8_t byte = 0;
    if (::pread(fd, &byte, 1, at) != 1) return;
    byte = static_cast<std::uint8_t>(byte ^ (1u << rng_.below(8)));
    if (::pwrite(fd, &byte, 1, at) != 1) return;
    ++stats_.bits_flipped;
  }
}

int FaultyIo::ftruncate(int fd, off_t len) {
  mutating_op();
  const int rc = ::ftruncate(fd, len);
  if (rc == 0) {
    const auto it = durable_.find(fd);
    if (it != durable_.end() && it->second > len) it->second = len;
  }
  return rc;
}

int FaultyIo::close(int fd) {
  durable_.erase(fd);
  return ::close(fd);
}

int FaultyIo::unlink(const char* path) {
  mutating_op();
  return ::unlink(path);
}

int FaultyIo::rename(const char* from, const char* to) {
  mutating_op();
  return ::rename(from, to);
}

off_t FaultyIo::file_size(int fd) { return ::lseek(fd, 0, SEEK_END); }

}  // namespace umon::store
