// umon::store — durable wavelet-tiered curve store.
//
// The Store owns a directory of append-only segment files (segment.hpp), a
// page cache over them (page_cache.hpp), an in-RAM chunk index (flow →
// {segment, offset, window extent}), and the store-global confidence marks.
// Writes go to one active tier-0 segment; seal_epoch() is the durability
// barrier (fsync) and rolls the active segment every `segment_epochs`
// seals. maintain() ages sealed segments down the wavelet tiers: a tier-0
// segment older than `tier1_age_epochs` is rewritten keeping the top
// tier_budget/2 Haar coefficients per flow, a tier-1 segment older than
// `tier2_age_epochs` keeps tier_budget/4 (tier.hpp) — old data keeps its
// burst structure at a fraction of the bytes instead of being downsampled.
//
// Crash safety: recovery (open) truncates torn/unsealed tails back to the
// last verified epoch seal, finishes interrupted compactions (a `.tmp`
// output is deleted; a renamed-but-not-yet-unlinked source is detected via
// the replaces_segment_id header field and unlinked), and rebuilds the
// index by scanning every surviving segment.
//
// Thread safety: all public members are serialized by an internal mutex, so
// a background compactor thread (tier.hpp) and a query thread can run
// against a live writer. The write path itself assumes a single appender.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyzer/curve_store.hpp"
#include "common/types.hpp"
#include "store/page_cache.hpp"
#include "store/segment.hpp"
#include "telemetry/metrics.hpp"

namespace umon::obs {
class LineageTracker;
}

namespace umon::store {

struct StoreConfig {
  std::string dir;
  std::size_t page_bytes = 1u << 16;
  std::size_t cache_budget_bytes = 8u << 20;
  /// Roll the active tier-0 segment after this many sealed epochs.
  std::uint32_t segment_epochs = 4;
  /// K: tier-1 keeps K/2 coefficients per flow chunk, tier-2 keeps K/4.
  std::size_t tier_budget = 64;
  /// Compact a tier-0 segment once every epoch it holds is at least this
  /// many epochs behind the current one; 0 disables tiering.
  std::uint32_t tier1_age_epochs = 8;
  std::uint32_t tier2_age_epochs = 16;
  /// Dense-transform chunk cap: a flow extent longer than this is split
  /// into aligned chunks (bounds compaction memory for long-lived flows).
  std::size_t max_chunk_windows = 1u << 12;
  int window_shift = kDefaultWindowShift;
  bool fsync_on_seal = true;
  /// Keep a compaction source alive (still serving, still on disk) for this
  /// many epochs after its coarse replacement lands, as a read-repair
  /// shadow: if scrub or a query finds rot in the exact copy during the
  /// grace window, the coarse copy is promoted instead of losing the
  /// windows. 0 = swap immediately (no shadow). A crash during the grace
  /// window keeps only the coarse copy (recovery unlinks the source its
  /// replacement names), which is the same outcome as an expired grace.
  std::uint32_t repair_grace_epochs = 0;
  /// File-I/O shim every store syscall routes through; null = real_io().
  FileIo* io = nullptr;
};

struct RecoveryInfo {
  std::size_t segments_opened = 0;
  std::size_t torn_tails_truncated = 0;   ///< files cut back to a seal
  std::size_t stale_sources_unlinked = 0; ///< compaction inputs left behind
  std::size_t tmp_files_removed = 0;      ///< interrupted compaction outputs
  std::size_t empty_segments_removed = 0; ///< no sealed epoch survived
  std::size_t records_recovered = 0;
  std::optional<std::uint32_t> last_sealed_epoch;
};

struct TierUsage {
  std::size_t segments = 0;
  std::uint64_t bytes = 0;
};

struct StoreStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;       ///< encoded payload bytes appended
  std::uint64_t epochs_sealed = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t segments_removed = 0;
  std::uint64_t compactions_tier1 = 0;
  std::uint64_t compactions_tier2 = 0;
  std::uint64_t compaction_input_bytes = 0;
  std::uint64_t compaction_output_bytes = 0;
  std::uint64_t seal_failures = 0;        ///< epoch seals that failed IO
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_corrupt_records = 0;
  std::uint64_t chunks_quarantined = 0;   ///< corrupt chunks never served again
  std::uint64_t chunks_repaired = 0;      ///< promoted from a coarser shadow
  TierUsage tiers[3];
  PageCacheStats cache;
};

/// One corrupt byte range found by a scrub pass (audit JSONL row).
struct ScrubFinding {
  std::uint32_t segment_id = 0;
  std::uint8_t tier = 0;
  std::uint64_t offset = 0;   ///< file offset of the corrupt span
  std::uint64_t length = 0;
  std::size_t chunks_quarantined = 0;
  std::size_t chunks_repaired = 0;
};

/// Outcome of one Store::scrub pass.
struct ScrubReport {
  std::size_t segments_scanned = 0;
  std::uint64_t bytes_scanned = 0;
  std::size_t records_verified = 0;
  std::size_t corrupt_records = 0;
  std::size_t chunks_quarantined = 0;
  std::size_t chunks_repaired = 0;
  std::uint64_t windows_lost = 0;  ///< windows downgraded to kLost, no repair
  std::vector<ScrubFinding> findings;
};

/// One decoded chunk handed to a visit_flow callback. Exactly one of
/// `sparse` / `coeff` is non-null, matching `kind`.
struct ChunkView {
  std::uint8_t tier = 0;
  RecordKind kind = RecordKind::kSparseCurve;
  analyzer::WindowConfidence confidence = analyzer::WindowConfidence::kCovered;
  const SparseCurveRecord* sparse = nullptr;
  const CoeffCurveRecord* coeff = nullptr;
};

class Store : public analyzer::CurveSink {
 public:
  /// Open (creating the directory if needed) and recover. Returns nullptr
  /// when the directory cannot be created/opened. `writable = false` opens
  /// for queries only: torn tails are ignored instead of truncated and no
  /// active segment is ever created.
  static std::unique_ptr<Store> open(const StoreConfig& cfg,
                                     RecoveryInfo* info = nullptr,
                                     bool writable = true);
  ~Store() override;

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // --- write path (single appender) ----------------------------------------
  /// Append one flow's sparse windows to the current epoch. Values
  /// accumulate across records on read, so write-through deltas are fine.
  void append_sparse(const FlowKey& flow,
                     std::span<const std::pair<WindowId, double>> windows);

  /// Upgrade-only confidence marking, persisted at the next seal.
  void mark_confidence(WindowId from, WindowId to,
                       analyzer::WindowConfidence conf);

  // analyzer::CurveSink — attach via FlowCurveStore::set_sink(store) to
  // spill everything the analyzer ingests straight through to disk.
  void on_sparse(const FlowKey& flow,
                 std::span<const std::pair<WindowId, double>> windows) override {
    append_sparse(flow, windows);
  }
  void on_mark(WindowId from, WindowId to,
               analyzer::WindowConfidence conf) override {
    mark_confidence(from, to, conf);
  }

  /// Seal the current epoch: confidence runs + seal record + fsync. Rolls
  /// the active segment per config. Returns false on IO failure.
  [[nodiscard]] bool seal_epoch();

  /// Compact every sealed segment old enough for the next tier (and swap
  /// in shadow replacements whose grace expired). Returns the number of
  /// segments rewritten.
  std::size_t maintain();

  /// One scrub pass: re-verify every sealed segment's record CRCs against
  /// the raw disk bytes (bypassing the page cache, which may still hold the
  /// good pre-rot copy). Corrupt records are quarantined — removed from the
  /// index so they can never be served — their windows downgraded to
  /// `lost`, and, when a read-repair shadow covers them, replaced by the
  /// coarser copy at `gap_filled` confidence. The CRC walk runs without the
  /// store lock; only the snapshot and the quarantine/repair commit lock.
  ScrubReport scrub();

  // --- read path ------------------------------------------------------------
  /// Decode every chunk of `flow` overlapping [from, to) in tier order
  /// (exact tier-0 first). Thread-safe against the writer.
  void visit_flow(const FlowKey& flow, WindowId from, WindowId to,
                  const std::function<void(const ChunkView&)>& fn);

  [[nodiscard]] std::vector<FlowKey> flows() const;
  [[nodiscard]] bool flow_extent(const FlowKey& flow, WindowId& first,
                                 WindowId& last) const;
  /// Union window extent (inclusive) over every stored chunk and confidence
  /// mark; false when the store holds nothing. Queries clamp to it so a
  /// hostile range cannot force a dense allocation beyond the data.
  [[nodiscard]] bool window_extent(WindowId& first, WindowId& last) const;
  /// Worst confidence mark over [from, to) (kCovered when unmarked).
  [[nodiscard]] analyzer::WindowConfidence worst_confidence(WindowId from,
                                                            WindowId to) const;

  /// Monotone version of the readable contents; bumps on every seal, roll,
  /// and compaction. Query caches key on it.
  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::uint32_t current_epoch() const;
  [[nodiscard]] std::optional<std::uint32_t> last_sealed_epoch() const;

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const telemetry::MetricRegistry& telemetry_registry() const {
    return registry_;
  }
  [[nodiscard]] const StoreConfig& config() const { return cfg_; }

  /// Report-lineage tap: every append is credited (as a spill) to the
  /// (host, epoch) whose analyzer ingest is currently on the call stack.
  /// Set before wiring the store as a curve sink; the tracker must outlive
  /// the store.
  void set_lineage(obs::LineageTracker* lineage) { lineage_ = lineage; }

 private:
  struct ChunkRef {
    std::uint32_t segment_id = 0;
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t payload_crc = 0;  ///< re-verified on every read
    RecordKind kind = RecordKind::kSparseCurve;
    analyzer::WindowConfidence confidence =
        analyzer::WindowConfidence::kCovered;
    std::uint32_t epoch = 0;
    WindowId w0 = 0;  ///< inclusive window extent of the chunk
    WindowId w1 = 0;
  };

  struct FlowEntry {
    FlowKey key;
    std::vector<ChunkRef> chunks;
  };

  struct Segment {
    SegmentHeader header;
    std::string path;
    std::uint64_t bytes = 0;
    std::uint32_t max_epoch = 0;
    std::optional<SegmentReader> reader;  ///< sealed segments only
  };

  /// A compaction output serving as read-repair insurance: its chunks stay
  /// out of the flow index until the grace window expires (the exact source
  /// keeps serving), unless rot in the source promotes them early.
  struct Shadow {
    std::uint32_t source_id = 0;
    std::uint32_t shadow_id = 0;
    std::uint32_t swap_epoch = 0;  ///< maintain() swaps at/after this epoch
    std::unordered_map<std::uint64_t, std::vector<ChunkRef>> chunks;
  };

  struct Instruments;

  Store(const StoreConfig& cfg, bool writable);

  bool recover(RecoveryInfo* info);
  void index_record(std::uint32_t segment_id, const RecordHeader& rh,
                    std::uint64_t payload_offset,
                    std::span<const std::uint8_t> payload,
                    std::size_t* records = nullptr);
  void ensure_writer();
  void roll_active_locked();
  /// Seal failed: close the active writer, drop its cache pages, re-open
  /// the file to its durable prefix, and flag what was acknowledged but
  /// lost as kLost.
  void fail_active_locked();
  /// Reconcile the index of segment `id` with the disk after its writer
  /// failed: keep chunks the durable prefix still covers, drop the rest.
  void reconcile_failed_segment_locked(std::uint32_t id,
                                       const std::string& path);
  void mark_confidence_locked(WindowId from, WindowId to,
                              analyzer::WindowConfidence conf);
  /// Remove `bad` chunks of flow `packed` from the index; promote covering
  /// shadow chunks where a read-repair shadow survives, flag kLost where
  /// none does. Returns repaired/lost tallies through the out-params.
  void quarantine_chunks_locked(std::uint64_t packed,
                                const std::vector<ChunkRef>& bad,
                                std::size_t* repaired,
                                std::uint64_t* windows_lost);
  /// Swap shadow replacements whose grace window expired.
  void swap_due_shadows_locked();

  struct ScrubTarget {
    std::uint32_t id = 0;
    std::uint8_t tier = 0;
    std::string path;
    std::uint64_t bytes = 0;
  };
  struct ScrubDamage {
    ScrubTarget target;
    /// Corrupt [offset, offset+length) spans found by the raw walk.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  };
  /// Phase 1 of scrub: snapshot the sealed segments (locks internally).
  [[nodiscard]] std::vector<ScrubTarget> scrub_snapshot() const;
  /// Phase 3 of scrub: re-validate the snapshot and quarantine/repair
  /// (locks internally). The raw CRC walk between them holds no lock.
  void scrub_commit(const std::vector<ScrubDamage>& damaged,
                    ScrubReport* report);
  [[nodiscard]] int fd_for_segment(std::uint32_t segment_id) const;
  /// Rewrite `seg` as a tier-(seg.tier+1) segment; returns false on IO
  /// failure (the source is left untouched).
  bool compact_segment_locked(std::uint32_t segment_id);
  void remove_segment_locked(std::uint32_t segment_id);
  void publish_gauges_locked();

  StoreConfig cfg_;
  bool writable_;
  obs::LineageTracker* lineage_ = nullptr;
  FileIo* io_;
  mutable std::mutex mutex_;
  PageCache cache_;
  std::map<std::uint32_t, Segment> segments_;  ///< by segment id, all tiers
  std::vector<Shadow> shadows_;  ///< pending read-repair replacements
  std::unique_ptr<SegmentWriter> active_;
  std::uint32_t next_segment_id_ = 1;
  std::uint32_t epoch_ = 0;
  std::optional<std::uint32_t> last_sealed_;
  std::uint64_t generation_ = 1;
  std::unordered_map<std::uint64_t, FlowEntry> flows_;
  std::map<WindowId, analyzer::WindowConfidence> marks_;
  std::vector<ConfidenceRun> pending_runs_;  ///< marks made this epoch
  PageCacheStats cache_published_;  ///< last counter values pushed to telemetry
  telemetry::MetricRegistry registry_;
  std::unique_ptr<Instruments> ins_;
  StoreStats stats_;
};

}  // namespace umon::store
