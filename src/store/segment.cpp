#include "store/segment.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <type_traits>

#include "resilience/crc32c.hpp"
#include "store/io.hpp"

namespace umon::store {
namespace {

using resilience::crc32c;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields are raw little-endian bytes");
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &value, sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t> in, std::size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

void put_flow(std::vector<std::uint8_t>& out, const FlowKey& flow) {
  put(out, flow.src_ip);
  put(out, flow.dst_ip);
  put(out, flow.src_port);
  put(out, flow.dst_port);
  put(out, flow.proto);
}

bool get_flow(std::span<const std::uint8_t> in, std::size_t& offset,
              FlowKey& flow) {
  return get(in, offset, flow.src_ip) && get(in, offset, flow.dst_ip) &&
         get(in, offset, flow.src_port) && get(in, offset, flow.dst_port) &&
         get(in, offset, flow.proto);
}

void encode_segment_header(const SegmentHeader& header,
                           std::vector<std::uint8_t>& out) {
  out.clear();
  put(out, header.magic);
  put(out, header.version);
  put(out, header.tier);
  put(out, header.window_shift);
  put(out, header.segment_id);
  put(out, header.base_epoch);
  put(out, header.replaces_segment_id);
  put(out, crc32c(out.data(), out.size()));
}

bool decode_segment_header(std::span<const std::uint8_t> in,
                           SegmentHeader& header) {
  std::size_t off = 0;
  if (!get(in, off, header.magic) || !get(in, off, header.version) ||
      !get(in, off, header.tier) || !get(in, off, header.window_shift) ||
      !get(in, off, header.segment_id) || !get(in, off, header.base_epoch) ||
      !get(in, off, header.replaces_segment_id) ||
      !get(in, off, header.header_crc)) {
    return false;
  }
  if (header.magic != kSegmentMagic || header.version != kSegmentVersion) {
    return false;
  }
  return header.header_crc == crc32c(in.data(), off - sizeof(std::uint32_t));
}

void encode_record_header(const RecordHeader& header,
                          std::vector<std::uint8_t>& out) {
  put(out, header.payload_len);
  put(out, header.kind);
  put(out, header.confidence);
  put(out, header.flow_hash16);
  put(out, header.epoch);
  put(out, header.payload_crc);
}

}  // namespace

bool decode_record_header(std::span<const std::uint8_t> in,
                          RecordHeader& header) {
  std::size_t off = 0;
  return get(in, off, header.payload_len) && get(in, off, header.kind) &&
         get(in, off, header.confidence) &&
         get(in, off, header.flow_hash16) && get(in, off, header.epoch) &&
         get(in, off, header.payload_crc);
}

// --- payload codecs ---------------------------------------------------------

void encode_sparse(const SparseCurveRecord& rec,
                   std::vector<std::uint8_t>& out) {
  put_flow(out, rec.flow);
  put(out, static_cast<std::uint32_t>(rec.windows.size()));
  for (const auto& [w, v] : rec.windows) {
    put(out, w);
    put(out, v);
  }
}

std::optional<SparseCurveRecord> decode_sparse(
    std::span<const std::uint8_t> in) {
  SparseCurveRecord rec;
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_flow(in, off, rec.flow) || !get(in, off, count)) return std::nullopt;
  if (static_cast<std::size_t>(count) * kSparseEntryWireBytes >
      in.size() - off) {
    return std::nullopt;
  }
  rec.windows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WindowId w = 0;
    double v = 0;
    if (!get(in, off, w) || !get(in, off, v)) return std::nullopt;
    rec.windows.emplace_back(w, v);
  }
  if (off != in.size()) return std::nullopt;  // trailing garbage
  return rec;
}

void encode_coeff(const CoeffCurveRecord& rec, std::vector<std::uint8_t>& out) {
  put_flow(out, rec.flow);
  put(out, rec.w0);
  put(out, rec.length);
  put(out, static_cast<std::uint8_t>(rec.levels));
  put(out, static_cast<std::uint16_t>(rec.approx.size()));
  put(out, static_cast<std::uint16_t>(rec.details.size()));
  for (Count a : rec.approx) put(out, a);
  for (const auto& d : rec.details) {
    put(out, d.level);
    put(out, d.index);
    put(out, d.value);
  }
}

std::optional<CoeffCurveRecord> decode_coeff(std::span<const std::uint8_t> in) {
  CoeffCurveRecord rec;
  std::size_t off = 0;
  std::uint8_t levels = 0;
  std::uint16_t approx_count = 0;
  std::uint16_t detail_count = 0;
  if (!get_flow(in, off, rec.flow) || !get(in, off, rec.w0) ||
      !get(in, off, rec.length) || !get(in, off, levels) ||
      !get(in, off, approx_count) || !get(in, off, detail_count)) {
    return std::nullopt;
  }
  rec.levels = levels;
  if (rec.length == 0 || rec.length > kMaxRecordPayload) return std::nullopt;
  rec.approx.reserve(approx_count);
  for (std::uint16_t i = 0; i < approx_count; ++i) {
    Count a = 0;
    if (!get(in, off, a)) return std::nullopt;
    rec.approx.push_back(a);
  }
  rec.details.reserve(detail_count);
  for (std::uint16_t i = 0; i < detail_count; ++i) {
    wavelet::DetailCoeff d;
    if (!get(in, off, d.level) || !get(in, off, d.index) ||
        !get(in, off, d.value)) {
      return std::nullopt;
    }
    rec.details.push_back(d);
  }
  if (off != in.size()) return std::nullopt;
  return rec;
}

void encode_confidence(std::span<const ConfidenceRun> runs,
                       std::vector<std::uint8_t>& out) {
  put(out, static_cast<std::uint32_t>(runs.size()));
  for (const auto& r : runs) {
    put(out, r.from);
    put(out, r.to);
    put(out, static_cast<std::uint8_t>(r.conf));
  }
}

std::optional<std::vector<ConfidenceRun>> decode_confidence(
    std::span<const std::uint8_t> in) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get(in, off, count)) return std::nullopt;
  if (static_cast<std::size_t>(count) * 17 > in.size() - off) {
    return std::nullopt;
  }
  std::vector<ConfidenceRun> runs;
  runs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ConfidenceRun r;
    std::uint8_t conf = 0;
    if (!get(in, off, r.from) || !get(in, off, r.to) || !get(in, off, conf)) {
      return std::nullopt;
    }
    if (conf > static_cast<std::uint8_t>(
                   analyzer::WindowConfidence::kLost)) {
      return std::nullopt;
    }
    r.conf = static_cast<analyzer::WindowConfidence>(conf);
    runs.push_back(r);
  }
  if (off != in.size()) return std::nullopt;
  return runs;
}

// --- writer -----------------------------------------------------------------

SegmentWriter::SegmentWriter(std::string path, const SegmentHeader& header,
                             PageCache* cache, std::uint32_t file_id,
                             bool fsync_on_seal, FileIo* io)
    : path_(std::move(path)),
      header_(header),
      cache_(cache),
      file_id_(file_id),
      fsync_on_seal_(fsync_on_seal),
      io_(io != nullptr ? io : &real_io()) {
  fd_ = io_->open(path_.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  encode_segment_header(header_, scratch_);
  header_.header_crc = crc32c(scratch_.data(),
                              scratch_.size() - sizeof(std::uint32_t));
  tail_.insert(tail_.end(), scratch_.begin(), scratch_.end());
  if (cache_ != nullptr) cache_->write_through(file_id_, fd_, 0, tail_);
  offset_ = tail_.size();
}

SegmentWriter::~SegmentWriter() { (void)finish(); }

SegmentWriter::AppendRef SegmentWriter::append_record(
    RecordKind kind, std::uint32_t epoch, std::uint8_t confidence,
    std::uint16_t flow_hash16, std::span<const std::uint8_t> payload) {
  RecordHeader rh;
  rh.payload_len = static_cast<std::uint32_t>(payload.size());
  rh.kind = static_cast<std::uint8_t>(kind);
  rh.confidence = confidence;
  rh.flow_hash16 = flow_hash16;
  rh.epoch = epoch;
  rh.payload_crc = crc32c(payload.data(), payload.size());
  const std::size_t frame_begin = tail_.size();
  encode_record_header(rh, tail_);
  tail_.insert(tail_.end(), payload.begin(), payload.end());
  if (cache_ != nullptr) {
    cache_->write_through(
        file_id_, fd_, tail_base_ + frame_begin,
        std::span<const std::uint8_t>(tail_.data() + frame_begin,
                                      tail_.size() - frame_begin));
  }
  AppendRef ref;
  ref.payload_offset = tail_base_ + frame_begin + kRecordHeaderBytes;
  ref.payload_len = rh.payload_len;
  ref.payload_crc = rh.payload_crc;
  offset_ = tail_base_ + tail_.size();
  return ref;
}

SegmentWriter::AppendRef SegmentWriter::append_sparse(
    std::uint32_t epoch, const SparseCurveRecord& rec,
    analyzer::WindowConfidence worst) {
  scratch_.clear();
  encode_sparse(rec, scratch_);
  return append_record(RecordKind::kSparseCurve, epoch,
                       static_cast<std::uint8_t>(worst),
                       static_cast<std::uint16_t>(rec.flow.packed() & 0xFFFF),
                       scratch_);
}

SegmentWriter::AppendRef SegmentWriter::append_coeff(
    std::uint32_t epoch, const CoeffCurveRecord& rec,
    analyzer::WindowConfidence worst) {
  scratch_.clear();
  encode_coeff(rec, scratch_);
  return append_record(RecordKind::kCoeffCurve, epoch,
                       static_cast<std::uint8_t>(worst),
                       static_cast<std::uint16_t>(rec.flow.packed() & 0xFFFF),
                       scratch_);
}

void SegmentWriter::append_confidence(std::uint32_t epoch,
                                      std::span<const ConfidenceRun> runs) {
  scratch_.clear();
  encode_confidence(runs, scratch_);
  (void)append_record(RecordKind::kConfidenceRun, epoch, 0, 0, scratch_);
}

bool SegmentWriter::flush_tail() {
  if (tail_.empty()) return true;
  std::size_t done = 0;
  while (done < tail_.size()) {
    const ssize_t n = io_->pwrite(fd_, tail_.data() + done,
                                  tail_.size() - done,
                                  static_cast<off_t>(tail_base_ + done));
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  tail_base_ += tail_.size();
  tail_.clear();
  return true;
}

bool SegmentWriter::seal_epoch(std::uint32_t epoch) {
  if (!seal_prepare(epoch)) return false;
  if (!seal_sync()) return false;
  seal_commit();
  return true;
}

bool SegmentWriter::seal_prepare(std::uint32_t epoch) {
  if (fd_ < 0) return false;
  (void)append_record(RecordKind::kEpochSeal, epoch, 0, 0, {});
  if (!flush_tail()) return false;
  prepared_end_ = tail_base_;  // everything below this is in the OS cache
  return true;
}

bool SegmentWriter::seal_sync() const {
  if (fd_ < 0) return false;
  return !fsync_on_seal_ || io_->fsync(fd_) == 0;
}

void SegmentWriter::seal_commit() {
  if (cache_ != nullptr) cache_->mark_clean_up_to(file_id_, prepared_end_);
  ++epochs_sealed_;
}

bool SegmentWriter::finish() {
  if (fd_ < 0) return true;
  const bool ok = flush_tail() && (!fsync_on_seal_ || io_->fsync(fd_) == 0);
  // Only a successful flush+fsync may clean the file's pages: after a
  // failed fsync the kernel has dropped dirty pages we cannot see, so the
  // cache copy is the last trustworthy one — cleaning it would let the
  // eviction path replace acknowledged bytes with whatever the disk kept.
  if (ok && cache_ != nullptr) cache_->mark_clean(file_id_);
  io_->close(fd_);
  fd_ = -1;
  return ok;
}

// --- reader -----------------------------------------------------------------

std::optional<SegmentReader> SegmentReader::open(const std::string& path,
                                                 PageCache* cache,
                                                 std::uint32_t file_id,
                                                 bool writable, FileIo* io) {
  if (io == nullptr) io = &real_io();
  const int flags = (writable ? O_RDWR : O_RDONLY) | O_CLOEXEC;
  const int fd = io->open(path.c_str(), flags, 0);
  if (fd < 0) return std::nullopt;
  const off_t size = io->file_size(fd);
  if (size < static_cast<off_t>(kSegmentHeaderBytes)) {
    io->close(fd);
    return std::nullopt;
  }
  std::uint8_t raw[kSegmentHeaderBytes];
  if (io->pread(fd, raw, sizeof(raw), 0) !=
      static_cast<ssize_t>(sizeof(raw))) {
    io->close(fd);
    return std::nullopt;
  }
  SegmentHeader header;
  if (!decode_segment_header(std::span<const std::uint8_t>(raw, sizeof(raw)),
                             header)) {
    io->close(fd);
    return std::nullopt;
  }
  SegmentReader reader;
  reader.header_ = header;
  reader.cache_ = cache;
  reader.io_ = io;
  reader.file_id_ = file_id;
  reader.fd_ = fd;
  reader.file_size_ = static_cast<std::uint64_t>(size);
  return reader;
}

SegmentReader::ScanResult SegmentReader::scan(const RecordFn& fn) {
  ScanResult result;
  result.valid_end = kSegmentHeaderBytes;
  result.sealed_end = kSegmentHeaderBytes;

  // Pass 1: frame walk. Stops at the first record that fails any check —
  // everything after a bad frame is unreachable (lengths chain).
  std::vector<std::uint8_t> buf;
  std::uint64_t pos = kSegmentHeaderBytes;
  struct Rec {
    RecordHeader header;
    std::uint64_t payload_offset;
  };
  std::vector<Rec> records;
  while (pos + kRecordHeaderBytes <= file_size_) {
    std::uint8_t raw[kRecordHeaderBytes];
    if (!cache_->read(file_id_, fd_, pos, std::span<std::uint8_t>(raw))) break;
    RecordHeader rh;
    if (!decode_record_header(std::span<const std::uint8_t>(raw, sizeof(raw)),
                              rh)) {
      break;
    }
    if (!valid_record_kind(rh.kind) || rh.payload_len > kMaxRecordPayload) {
      break;
    }
    const std::uint64_t payload_offset = pos + kRecordHeaderBytes;
    if (payload_offset + rh.payload_len > file_size_) break;
    buf.resize(rh.payload_len);
    if (rh.payload_len > 0 &&
        !cache_->read(file_id_, fd_, payload_offset,
                      std::span<std::uint8_t>(buf))) {
      break;
    }
    if (resilience::crc32c(buf.data(), buf.size()) != rh.payload_crc) break;
    pos = payload_offset + rh.payload_len;
    result.valid_end = pos;
    records.push_back(Rec{rh, payload_offset});
    if (rh.kind == static_cast<std::uint8_t>(RecordKind::kEpochSeal)) {
      result.sealed_end = pos;
      result.max_sealed_epoch = rh.epoch;
      result.sealed_records = records.size();
    }
  }
  result.torn = result.valid_end < file_size_;
  result.unsealed_records = records.size() - result.sealed_records;

  // Pass 2: deliver only the durable prefix.
  if (fn) {
    for (std::size_t i = 0; i < result.sealed_records; ++i) {
      const Rec& rec = records[i];
      buf.resize(rec.header.payload_len);
      if (rec.header.payload_len > 0 &&
          !cache_->read(file_id_, fd_, rec.payload_offset,
                        std::span<std::uint8_t>(buf))) {
        break;  // cannot happen after pass 1 short of a failing disk
      }
      fn(rec.header, rec.payload_offset, buf);
    }
  }
  return result;
}

bool SegmentReader::truncate_to(std::uint64_t end) {
  if (fd_ < 0 || end > file_size_) return false;
  if (io_->ftruncate(fd_, static_cast<off_t>(end)) != 0) return false;
  if (io_->fsync(fd_) != 0) return false;
  file_size_ = end;
  if (cache_ != nullptr) cache_->drop_file(file_id_);
  return true;
}

bool SegmentReader::read_payload(std::uint64_t payload_offset,
                                 std::uint32_t payload_len,
                                 std::vector<std::uint8_t>& out) {
  if (payload_offset + payload_len > file_size_) return false;
  out.resize(payload_len);
  if (payload_len == 0) return true;
  return cache_->read(file_id_, fd_, payload_offset,
                      std::span<std::uint8_t>(out));
}

void SegmentReader::close() {
  if (fd_ >= 0) {
    io_->close(fd_);
    fd_ = -1;
  }
}

SegmentReader::~SegmentReader() { close(); }

SegmentReader::SegmentReader(SegmentReader&& other) noexcept
    : header_(other.header_),
      cache_(other.cache_),
      io_(other.io_),
      file_id_(other.file_id_),
      fd_(other.fd_),
      file_size_(other.file_size_) {
  other.fd_ = -1;
}

SegmentReader& SegmentReader::operator=(SegmentReader&& other) noexcept {
  if (this != &other) {
    close();
    header_ = other.header_;
    cache_ = other.cache_;
    io_ = other.io_;
    file_id_ = other.file_id_;
    fd_ = other.fd_;
    file_size_ = other.file_size_;
    other.fd_ = -1;
  }
  return *this;
}

std::string segment_file_name(std::uint32_t segment_id, std::uint8_t tier) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08x-t%u.useg", segment_id, tier);
  return buf;
}

bool parse_segment_file_name(const std::string& name, std::uint32_t& segment_id,
                             std::uint8_t& tier) {
  unsigned id = 0;
  unsigned t = 0;
  int consumed = 0;
  // %n anchors the match at the end of the name: a stray file with trailing
  // bytes (seg-...-t0.useg.bak) must not parse as a segment, or it could
  // shadow the real one during recovery depending on readdir order.
  if (std::sscanf(name.c_str(), "seg-%8x-t%u.useg%n", &id, &t, &consumed) !=
          2 ||
      static_cast<std::size_t>(consumed) != name.size() || t > 7) {
    return false;
  }
  segment_id = id;
  tier = static_cast<std::uint8_t>(t);
  return true;
}

}  // namespace umon::store
