// umon::store — shared JSON/CSV serialization for query results.
//
// One serializer feeds both read surfaces: the `umon_query` CLI (`--json`,
// `--csv`) and the HTTP `/api/v1/query` endpoint in umon::serve. Extracting
// it from umon_query's original printf path means the two cannot drift: a
// byte-for-byte diff of a CLI run and an HTTP response body over the same
// store and parameters is empty.
//
// All JSON output opens with a store-metadata head in a fixed, documented
// key order (store_dir, segments, flows, torn_tails, last_sealed_epoch) so
// scripts may diff responses byte-for-byte across same-seed runs. Numeric
// formatting is pinned to the original printf conversions (%.1f for times
// and byte totals) — do not "clean up" to iostream defaults, that changes
// the bytes.
//
// Outcome mapping (documented here because both surfaces implement it):
//
//   condition              umon_query exit   /api/v1/query status
//   ---------------------  ----------------  --------------------
//   query ran (any rows)   0                 200 OK
//   store open/read error  1                 503 Service Unavailable
//   usage / bad params     2                 400 Bad Request
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace umon::store {

/// Store-level metadata echoed at the head of every serialized response.
struct StoreHead {
  std::string store_dir;
  std::size_t segments = 0;
  std::size_t flows = 0;
  std::size_t torn_tails = 0;
  std::optional<std::uint32_t> last_sealed_epoch;
};

/// Per-flow extent row for `--list-flows` / `?list=flows`.
struct FlowExtentRow {
  FlowKey flow{};
  WindowId first = 0;
  WindowId last = 0;
};

[[nodiscard]] StoreHead make_head(const std::string& dir,
                                  const RecoveryInfo& info,
                                  std::size_t flow_count);

/// Every stored flow with a non-empty extent, in the store's flow order.
[[nodiscard]] std::vector<FlowExtentRow> flow_extents(Store& store);

/// Union of the per-flow extents as a half-open window range; false when
/// the store holds no curve data.
[[nodiscard]] bool flow_extent_union(const std::vector<FlowExtentRow>& rows,
                                     WindowId& lo, WindowId& hi);

/// Minimal JSON string escape (quotes, backslashes, control bytes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// `{"store_dir":...,"last_sealed_epoch":...` — opens the object, leaves it
/// unterminated so a body writer can append. Shared by all JSON writers.
void write_head_json(std::ostream& os, const StoreHead& head);

/// Full JSON object for a grouped query result (head + op/range/series),
/// terminated with `}` and a trailing newline.
void write_query_json(std::ostream& os, const StoreHead& head,
                      const QueryResult& r);

/// Head plus an empty series (`,"series":[]}`): the store holds no data.
void write_empty_json(std::ostream& os, const StoreHead& head);

/// Head plus `,"flow_list":[...]}` — one row per stored flow extent.
void write_flow_list_json(std::ostream& os, const StoreHead& head,
                          const std::vector<FlowExtentRow>& rows);

/// CSV: `t_us,bytes,confidence` header then one row per bucket.
void write_query_csv(std::ostream& os, const QueryResult& r);

/// CSV: `flow,first_window,last_window,from_us,to_us` header then rows.
void write_flow_list_csv(std::ostream& os,
                         const std::vector<FlowExtentRow>& rows);

}  // namespace umon::store
