#include "store/page_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "obs/prof.hpp"
#include "store/io.hpp"

namespace umon::store {

PageCache::PageCache(const PageCacheConfig& cfg)
    : cfg_(cfg), io_(cfg.io != nullptr ? cfg.io : &real_io()) {}

PageCache::Page* PageCache::get_page(std::uint32_t file_id, int fd,
                                     std::uint64_t page_index,
                                     bool allow_partial, State miss_state) {
  const std::uint64_t key = key_of(file_id, page_index);
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*it->second;
  }
  ++stats_.misses;
  Page page;
  page.key = key;
  // A page loaded for write_through is about to go dirty: insert it that
  // way so the budget enforcement below neither counts it against the
  // clean set nor evicts a genuinely clean page to make room for it.
  page.state = miss_state;
  page.data.resize(cfg_.page_bytes);
  const auto off = static_cast<off_t>(page_index * cfg_.page_bytes);
  ssize_t n = 0;
  if (fd >= 0) {
    n = io_->pread(fd, page.data.data(), cfg_.page_bytes, off);
    if (n < 0) return nullptr;
  }
  if (n == 0 && !allow_partial) return nullptr;
  page.data.resize(static_cast<std::size_t>(n));
  stats_.read_bytes += static_cast<std::uint64_t>(n);
  lru_.push_front(std::move(page));
  pages_[key] = lru_.begin();
  // Pin the fresh page across budget enforcement: when every other resident
  // page is dirty or pinned, eviction would otherwise reclaim the very page
  // this call is about to hand out.
  ++lru_.front().pins;
  evict_over_budget();
  --lru_.front().pins;
  return &lru_.front();
}

void PageCache::evict_over_budget() {
  // The budget governs the clean set only (header contract): dirty pages
  // are unevictable by design, so counting them would let a large dirty
  // tail evict every clean page and force a pread on each query until the
  // next seal.
  std::size_t resident = 0;
  for (const auto& page : lru_) {
    if (page.state == State::kClean) resident += cfg_.page_bytes;
  }
  auto it = lru_.end();
  while (resident > cfg_.budget_bytes && it != lru_.begin()) {
    --it;
    if (it->state == State::kDirty || it->pins > 0) continue;
    pages_.erase(it->key);
    it = lru_.erase(it);
    resident -= cfg_.page_bytes;
    ++stats_.evictions;
  }
}

bool PageCache::read(std::uint32_t file_id, int fd, std::uint64_t offset,
                     std::span<std::uint8_t> out) {
  UMON_PROF_SCOPE(kPageRead);
  std::lock_guard lock(mutex_);
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t page_index = pos / cfg_.page_bytes;
    const std::size_t in_page = static_cast<std::size_t>(pos % cfg_.page_bytes);
    Page* page = get_page(file_id, fd, page_index, /*allow_partial=*/false);
    if (page == nullptr) return false;
    if (in_page >= page->data.size()) return false;  // past EOF: torn tail
    const std::size_t take =
        std::min(out.size() - done, page->data.size() - in_page);
    // Pin across the copy: eviction inside a nested get_page (there is
    // none today — one page at a time) must never invalidate this span.
    ++page->pins;
    std::memcpy(out.data() + done, page->data.data() + in_page, take);
    --page->pins;
    done += take;
  }
  return true;
}

void PageCache::write_through(std::uint32_t file_id, int fd,
                              std::uint64_t offset,
                              std::span<const std::uint8_t> data) {
  UMON_PROF_SCOPE(kPageWrite);
  std::lock_guard lock(mutex_);
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t page_index = pos / cfg_.page_bytes;
    const std::size_t in_page = static_cast<std::size_t>(pos % cfg_.page_bytes);
    const std::size_t take = std::min(data.size() - done,
                                      cfg_.page_bytes - in_page);
    // A miss starting at a page boundary is genuinely fresh — the writer is
    // ahead of the file, so it begins life as in-memory bytes (fd = -1). A
    // miss starting mid-page means the prefix is earlier file content
    // (sealed records whose page was evicted after mark_clean): fault it in
    // from disk before overlaying, or the dirty page — never re-faulted —
    // would shadow those records with zeros.
    Page* page = get_page(file_id, in_page > 0 ? fd : -1, page_index,
                          /*allow_partial=*/true, State::kDirty);
    if (page == nullptr) {
      // pread failed: skip caching this slice rather than cache a zeroed
      // prefix. The bytes still reach disk via the writer's tail flush;
      // readers fall back to pread.
      done += take;
      continue;
    }
    if (page->data.size() < in_page + take) page->data.resize(in_page + take);
    std::memcpy(page->data.data() + in_page, data.data() + done, take);
    page->state = State::kDirty;
    done += take;
  }
}

void PageCache::mark_clean(std::uint32_t file_id) {
  std::lock_guard lock(mutex_);
  for (auto& page : lru_) {
    if ((page.key >> 40) == file_id && page.state == State::kDirty) {
      page.state = State::kClean;
    }
  }
  evict_over_budget();
}

void PageCache::mark_clean_up_to(std::uint32_t file_id,
                                 std::uint64_t end_offset) {
  std::lock_guard lock(mutex_);
  for (auto& page : lru_) {
    if ((page.key >> 40) != file_id || page.state != State::kDirty) continue;
    const std::uint64_t page_index = page.key & ((1ULL << 40) - 1);
    const std::uint64_t begin = page_index * cfg_.page_bytes;
    // `data` can be shorter than page_bytes at the tail; the page is durable
    // only when every resident byte of it is below the synced extent.
    if (begin + page.data.size() <= end_offset) {
      page.state = State::kClean;
    }
  }
  evict_over_budget();
}

void PageCache::drop_file(std::uint32_t file_id) {
  std::lock_guard lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((it->key >> 40) == file_id) {
      pages_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

PageCacheStats PageCache::stats() const {
  std::lock_guard lock(mutex_);
  PageCacheStats s = stats_;
  s.resident_pages = lru_.size();
  s.dirty_pages = 0;
  for (const auto& page : lru_) {
    if (page.state == State::kDirty) ++s.dirty_pages;
  }
  return s;
}

}  // namespace umon::store
