// umon::store — on-disk segment file format.
//
// A store directory holds append-only segment files (`seg-<id>-t<tier>.useg`),
// each a fixed 24-byte header followed by CRC32C-framed records:
//
//   SegmentHeader { magic, version, tier, window_shift, segment_id,
//                   base_epoch, replaces_segment_id, header_crc }
//   repeated RecordHeader { payload_len, kind, confidence, flow_hash16,
//                           epoch, payload_crc } + payload bytes
//
// Record payloads (all little-endian, fields written individually — the
// structs below are never memcpy'd to disk as a whole):
//
//   kSparseCurve   flow 5-tuple (13 bytes), u32 count,
//                  count x { i64 window, u64 value-bits (IEEE double) }
//   kCoeffCurve    flow 5-tuple (13 bytes), i64 w0, u32 length, u8 levels,
//                  u16 approx_count, u16 detail_count,
//                  approx_count x i64, detail_count x { u8 level, u32 index,
//                  i64 value }
//   kConfidenceRun u32 count, count x { i64 from, i64 to, u8 confidence }
//   kEpochSeal     empty payload; its presence makes the epoch durable
//                  (the writer fsyncs immediately after appending it)
//
// Durability contract: a record is trusted only when (a) its payload CRC
// verifies and (b) a later kEpochSeal record in the same file also
// verifies. Recovery truncates everything past the last verified seal, so
// a torn tail can never resurrect half an epoch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/types.hpp"

namespace umon::store {

/// "UMGS" read as a little-endian u32.
constexpr std::uint32_t kSegmentMagic = 0x53474D55u;
constexpr std::uint16_t kSegmentVersion = 1;

/// `replaces_segment_id` value meaning "not a compaction output".
constexpr std::uint32_t kReplacesNone = 0xFFFFFFFFu;

/// Sanity bound on a single record payload; recovery treats anything larger
/// as a torn/corrupt tail rather than attempting a giant allocation.
constexpr std::uint32_t kMaxRecordPayload = 1u << 24;

/// What one record carries. Values are pinned — they are written to disk.
enum class RecordKind : std::uint8_t {
  kSparseCurve = 1,    ///< exact (tier-0) sparse window run for one flow
  kCoeffCurve = 2,     ///< tiered top-K Haar coefficient set for one flow
  kConfidenceRun = 3,  ///< store-global window confidence ranges
  kEpochSeal = 4,      ///< epoch durability barrier (fsync'd)
};

[[nodiscard]] constexpr bool valid_record_kind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(RecordKind::kSparseCurve) &&
         k <= static_cast<std::uint8_t>(RecordKind::kEpochSeal);
}

/// Fixed segment file header. `header_crc` is CRC32C over the first 20
/// bytes as laid out on disk; `replaces_segment_id` names the tier-(n-1)
/// segment this compaction output supersedes (recovery unlinks the old
/// file if a crash landed between rename and unlink), kReplacesNone
/// otherwise.
// umon-lint: wire-struct
struct SegmentHeader {
  std::uint32_t magic = kSegmentMagic;
  std::uint16_t version = kSegmentVersion;
  std::uint8_t tier = 0;
  std::uint8_t window_shift = kDefaultWindowShift;
  std::uint32_t segment_id = 0;
  std::uint32_t base_epoch = 0;
  std::uint32_t replaces_segment_id = kReplacesNone;
  std::uint32_t header_crc = 0;
};

static_assert(std::is_trivially_copyable_v<SegmentHeader>);
static_assert(std::is_standard_layout_v<SegmentHeader>);
static_assert(sizeof(SegmentHeader) == 24,
              "segment header is 24 bytes on disk; bump kSegmentVersion "
              "before changing the layout");

/// Per-record frame. `payload_crc` is CRC32C over the payload bytes only;
/// the header itself is validated by range checks (kind, payload_len) — a
/// corrupted length cannot leap past kMaxRecordPayload. `confidence` is the
/// worst analyzer::WindowConfidence across the record's windows (0 for
/// non-curve records); `flow_hash16` is a routing/filter hint (low 16 bits
/// of FlowKey::packed(), 0 for non-flow records).
// umon-lint: wire-struct
struct RecordHeader {
  std::uint32_t payload_len = 0;
  std::uint8_t kind = 0;
  std::uint8_t confidence = 0;
  std::uint16_t flow_hash16 = 0;
  std::uint32_t epoch = 0;
  std::uint32_t payload_crc = 0;
};

static_assert(std::is_trivially_copyable_v<RecordHeader>);
static_assert(std::is_standard_layout_v<RecordHeader>);
static_assert(sizeof(RecordHeader) == 16,
              "record frame is 16 bytes on disk; bump kSegmentVersion "
              "before changing the layout");

/// Serialized sizes (sum of individually written fields, not sizeof).
constexpr std::size_t kFlowKeyWireBytes = 13;
constexpr std::size_t kSparseEntryWireBytes = 16;  ///< i64 window + f64 bits
constexpr std::size_t kCoeffEntryWireBytes = 13;   ///< u8 + u32 + i64
constexpr std::size_t kCoeffFixedWireBytes =
    kFlowKeyWireBytes + 8 + 4 + 1 + 2 + 2;  ///< flow, w0, length, levels, counts

}  // namespace umon::store
