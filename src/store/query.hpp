// umon::store — on-demand query engine over a Store.
//
// A Query selects a window range plus an optional flow list or host (all
// flows whose src_ip matches), and groups the combined curve into output
// buckets of `resolution` windows with one of sum / avg / max / p99. The
// engine reads only the chunks overlapping the range: tier-0 sparse chunks
// contribute their exact values, tiered chunks are inverse-Haar
// reconstructed on demand (wavelet::reconstruct) — nothing is materialized
// ahead of the query.
//
// Results are memoized in a small LRU keyed on (query fingerprint, store
// generation): any seal, roll, or compaction bumps the generation, so a
// cached entry can never serve stale bytes — it simply stops matching.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analyzer/curve_store.hpp"
#include "common/types.hpp"
#include "store/store.hpp"

namespace umon::store {

enum class GroupOp : std::uint8_t { kSum = 0, kAvg = 1, kMax = 2, kP99 = 3 };

[[nodiscard]] constexpr const char* to_string(GroupOp op) {
  switch (op) {
    case GroupOp::kSum: return "sum";
    case GroupOp::kAvg: return "avg";
    case GroupOp::kMax: return "max";
    case GroupOp::kP99: return "p99";
  }
  return "unknown";
}

[[nodiscard]] std::optional<GroupOp> parse_group_op(const std::string& name);

struct Query {
  WindowId from = 0;  ///< absolute windows, half-open [from, to)
  WindowId to = 0;
  /// Windows per output bucket (>= 1). The last bucket may be partial.
  std::uint32_t resolution = 1;
  GroupOp op = GroupOp::kSum;
  /// Explicit flow selection; empty = every stored flow.
  std::vector<FlowKey> flows;
  /// Further restrict to flows with this src_ip (host selector).
  std::optional<std::uint32_t> src_host;
};

struct QueryResult {
  /// Executed range: the requested [from, to) clamped to the store's window
  /// extent, so a hostile range cannot force a dense allocation beyond the
  /// data. Buckets start at `from`.
  WindowId from = 0;
  WindowId to = 0;
  std::uint32_t resolution = 1;
  GroupOp op = GroupOp::kSum;
  std::size_t flows_matched = 0;
  /// One value per bucket: `op` applied to the per-window totals (summed
  /// across the matched flows) inside the bucket.
  std::vector<double> series;
  /// Worst store-wide confidence mark inside each bucket.
  std::vector<analyzer::WindowConfidence> confidence;
  bool cache_hit = false;
};

class QueryEngine {
 public:
  explicit QueryEngine(Store& store, std::size_t cache_entries = 32)
      : store_(store), cache_entries_(cache_entries) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Execute (or replay from cache). Invalid queries (from >= to,
  /// resolution == 0) return an empty result.
  [[nodiscard]] QueryResult run(const Query& q);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const {
    return CacheStats{hits_, misses_, cache_.size()};
  }

  /// Stable FNV-1a identity for a query's selection fields. Public so
  /// outer caches (the HTTP response cache in umon::serve) can key on the
  /// same (fingerprint, store generation) pair as the engine's own LRU.
  [[nodiscard]] static std::uint64_t fingerprint(const Query& q);
  void clear_cache() {
    cache_.clear();
    lru_.clear();
  }

 private:
  struct CacheKey {
    std::uint64_t fingerprint = 0;
    std::uint64_t generation = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.fingerprint ^
                                      (k.generation * 0x9E3779B97F4A7C15ull));
    }
  };
  struct CacheEntry {
    QueryResult result;
    std::list<CacheKey>::iterator lru_pos;
  };

  [[nodiscard]] QueryResult execute(const Query& q) const;

  Store& store_;
  std::size_t cache_entries_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  ///< front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace umon::store
