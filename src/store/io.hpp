// umon::store — injectable file I/O.
//
// Every syscall the store issues against segment files (writer, reader,
// page cache, recovery, compaction) goes through a FileIo so a chaos run
// can interpose deterministic disk faults without touching the store
// logic. `real_io()` is the passthrough used in production; FaultyIo
// consumes the `disk-*` directives of a resilience::FaultPlan:
//
//   disk-fail  op=write  — the Nth pwrite fails with EIO/ENOSPC
//   disk-fail  op=fsync  — the Nth fsync "lies once": it returns -1 and the
//                          bytes written since the last successful fsync are
//                          dropped from the file (the kernel discarded the
//                          dirty pages), exactly the failure mode a caller
//                          that retries fsync and proceeds would miss
//   disk-short           — the Nth pwrite lands only `bytes` bytes
//   disk-corrupt         — after the Nth successful fsync, flip seeded bits
//                          in the durable body of that file (latent media
//                          rot for the scrubber to find)
//   disk-abort           — _exit(kDiskAbortExitCode) at the Nth mutating
//                          I/O op (crash-torture kill points)
//
// Occurrence counters are global across all fds, advanced in syscall order,
// so a (plan, workload) pair replays byte-identically. The mutating entry
// points share that counter state and are therefore single-threaded by
// contract (same as resilience::FaultInjector — the sim's store writer is
// one thread); pread is stateless and safe to call concurrently.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "resilience/fault_plan.hpp"

namespace umon::store {

/// Exit code of a `disk-abort` kill point (distinguishes the injected
/// crash from a real failure in torture harnesses).
constexpr int kDiskAbortExitCode = 86;

/// Syscall surface the store needs. Offsets are explicit (pread/pwrite)
/// so implementations never share file-position state.
class FileIo {
 public:
  virtual ~FileIo() = default;

  virtual int open(const char* path, int flags, unsigned mode) = 0;
  virtual ssize_t pread(int fd, void* buf, std::size_t n, off_t off) = 0;
  virtual ssize_t pwrite(int fd, const void* buf, std::size_t n,
                         off_t off) = 0;
  virtual int fsync(int fd) = 0;
  virtual int ftruncate(int fd, off_t len) = 0;
  virtual int close(int fd) = 0;
  virtual int unlink(const char* path) = 0;
  virtual int rename(const char* from, const char* to) = 0;
  /// Current file size (the reader's open-time probe).
  virtual off_t file_size(int fd) = 0;
};

/// Passthrough to the host kernel. Stateless; one shared instance.
[[nodiscard]] FileIo& real_io();

/// Tally of injected disk faults, for the end-of-run chaos summary.
struct DiskFaultStats {
  std::uint64_t pwrites = 0;        ///< pwrite calls observed
  std::uint64_t fsyncs = 0;         ///< fsync calls observed
  std::uint64_t write_errors = 0;   ///< injected EIO/ENOSPC
  std::uint64_t short_writes = 0;   ///< injected short pwrites
  std::uint64_t fsync_failures = 0; ///< injected lying fsyncs
  std::uint64_t dropped_bytes = 0;  ///< bytes a lying fsync discarded
  std::uint64_t corruptions = 0;    ///< disk-corrupt triggers
  std::uint64_t bits_flipped = 0;   ///< total bits flipped by triggers
};

/// Deterministic fault-injecting FileIo driven by a FaultPlan's `disk`
/// directives. See the header comment for the fault model.
class FaultyIo final : public FileIo {
 public:
  explicit FaultyIo(const resilience::FaultPlan& plan);

  int open(const char* path, int flags, unsigned mode) override;
  ssize_t pread(int fd, void* buf, std::size_t n, off_t off) override;
  ssize_t pwrite(int fd, const void* buf, std::size_t n, off_t off) override;
  int fsync(int fd) override;
  int ftruncate(int fd, off_t len) override;
  int close(int fd) override;
  int unlink(const char* path) override;
  int rename(const char* from, const char* to) override;
  off_t file_size(int fd) override;

  [[nodiscard]] const DiskFaultStats& stats() const { return stats_; }
  /// Mutating ops (pwrite/fsync/ftruncate/unlink/rename) observed so far;
  /// torture harnesses count a reference run to pick abort points.
  [[nodiscard]] std::uint64_t mutating_ops() const { return mutating_n_; }

 private:
  /// Advance the mutating-op counter; _exit at a planned abort point.
  void mutating_op();
  /// Flip `bits` seeded bits in [kSegmentHeaderBytes, size) of fd's file.
  void corrupt_file(int fd, int bits);

  std::map<std::uint64_t, resilience::DiskFault> write_faults_;  // by nth
  std::map<std::uint64_t, int> fsync_faults_;    // nth -> injected errno
  std::map<std::uint64_t, int> corruptions_;     // nth durable fsync -> bits
  std::set<std::uint64_t> aborts_;               // nth mutating op
  std::map<int, off_t> durable_;  ///< per open fd: size at last good fsync
  Rng rng_;
  std::uint64_t pwrite_n_ = 0;
  std::uint64_t fsync_n_ = 0;
  std::uint64_t durable_fsyncs_ = 0;
  std::uint64_t mutating_n_ = 0;
  DiskFaultStats stats_;
};

}  // namespace umon::store
