// umon::store — page cache over segment files (netdata-dbengine shape).
//
// Fixed-size pages keyed by (file_id, page_index) in three states:
//
//   dirty   written through by the segment writer, not yet on disk — never
//           evicted (losing one would lose acknowledged appends from the
//           read path until the next reopen)
//   pinned  a reader is assembling bytes out of it right now — never
//           evicted (the span handed to the copy loop must stay valid)
//   clean   backed by disk — evictable, LRU order
//
// The writer writes through (`write_through`) so the freshest windows are
// answerable without touching disk; `mark_clean` flips a file's dirty pages
// after the writer's pwrite+fsync lands. Readers call `read`, which
// assembles an arbitrary byte range from resident pages and fills misses
// with pread. Eviction runs at insertion time until the clean resident set
// fits the byte budget.
//
// Thread safety: all public members are serialized by an internal mutex;
// pages are pinned only for the duration of a memcpy inside `read`, so no
// pin outlives a call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace umon::store {

class FileIo;

struct PageCacheConfig {
  std::size_t page_bytes = 1u << 16;         ///< 64 KiB pages
  std::size_t budget_bytes = 8u << 20;       ///< clean resident budget
  FileIo* io = nullptr;                      ///< null = real_io()
};

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t read_bytes = 0;      ///< bytes pread from disk on misses
  std::size_t resident_pages = 0;
  std::size_t dirty_pages = 0;

  [[nodiscard]] double hit_ratio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class PageCache {
 public:
  explicit PageCache(const PageCacheConfig& cfg = {});

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Assemble [offset, offset+out.size()) of file `file_id` into `out`.
  /// Misses pread from `fd`. Returns false only when a pread fails or comes
  /// back short (caller treats the range as unreadable — torn tail).
  [[nodiscard]] bool read(std::uint32_t file_id, int fd, std::uint64_t offset,
                          std::span<std::uint8_t> out);

  /// Write-through: populate (or overwrite) the pages covering the range
  /// and mark them dirty. The caller still owns getting the bytes to disk.
  /// `fd` serves misses that start mid-page: the prefix of such a page is
  /// earlier (sealed, possibly evicted) file content and must be faulted in
  /// from disk, not zero-filled — a dirty page is never re-faulted, so a
  /// zeroed prefix would permanently shadow correct on-disk records.
  void write_through(std::uint32_t file_id, int fd, std::uint64_t offset,
                     std::span<const std::uint8_t> data);

  /// Flip every dirty page of `file_id` to clean (call after pwrite+fsync).
  /// Newly clean pages become evictable, so the budget is re-enforced.
  void mark_clean(std::uint32_t file_id);

  /// Flip dirty pages of `file_id` that lie entirely below `end_offset` to
  /// clean. Used when the fsync happens outside the store lock: appends that
  /// landed during the sync dirtied pages at or past `end_offset`, and those
  /// must stay dirty (cleaning them would let eviction drop acknowledged
  /// bytes that are not on disk yet). A page straddling `end_offset` stays
  /// dirty — conservative, it becomes clean at the next seal.
  void mark_clean_up_to(std::uint32_t file_id, std::uint64_t end_offset);

  /// Drop every page of `file_id` (segment unlinked after compaction).
  void drop_file(std::uint32_t file_id);

  [[nodiscard]] PageCacheStats stats() const;

  [[nodiscard]] std::size_t page_bytes() const { return cfg_.page_bytes; }

 private:
  enum class State : std::uint8_t { kClean, kDirty };

  struct Page {
    std::uint64_t key = 0;
    State state = State::kClean;
    int pins = 0;
    std::vector<std::uint8_t> data;  ///< may be shorter than page_bytes at EOF
  };

  using Lru = std::list<Page>;

  static std::uint64_t key_of(std::uint32_t file_id, std::uint64_t page_index) {
    return (static_cast<std::uint64_t>(file_id) << 40) | page_index;
  }

  /// Find-or-load one page; returns nullptr on pread failure. Touches LRU.
  /// `miss_state` is the state a freshly loaded page is inserted with.
  Page* get_page(std::uint32_t file_id, int fd, std::uint64_t page_index,
                 bool allow_partial, State miss_state = State::kClean);
  void evict_over_budget();

  PageCacheConfig cfg_;
  FileIo* io_;
  mutable std::mutex mutex_;
  Lru lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Lru::iterator> pages_;
  PageCacheStats stats_;
};

}  // namespace umon::store
