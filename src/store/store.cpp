#include "store/store.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/lineage.hpp"
#include "obs/prof.hpp"
#include "store/tier.hpp"
#include "wavelet/haar.hpp"

namespace umon::store {
namespace {

using analyzer::WindowConfidence;

WindowConfidence worse(WindowConfidence a, WindowConfidence b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

/// Coalesce per-window marks into maximal same-confidence runs.
std::vector<ConfidenceRun> runs_from_marks(
    const std::map<WindowId, WindowConfidence>& marks) {
  std::vector<ConfidenceRun> runs;
  for (const auto& [w, conf] : marks) {
    if (!runs.empty() && runs.back().to == w && runs.back().conf == conf) {
      runs.back().to = w + 1;
    } else {
      runs.push_back(ConfidenceRun{w, w + 1, conf});
    }
  }
  return runs;
}

}  // namespace

struct Store::Instruments {
  explicit Instruments(telemetry::MetricRegistry& reg) {
    appends = reg.counter("umon_store_appends_total", {},
                          "Sparse curve records appended");
    append_bytes = reg.counter("umon_store_append_bytes_total", {},
                               "Encoded payload bytes appended");
    epochs_sealed = reg.counter("umon_store_epochs_sealed_total", {},
                                "Epoch seals made durable (fsync barriers)");
    segments_created = reg.counter("umon_store_segments_created_total", {},
                                   "Segment files created (all tiers)");
    segments_removed = reg.counter("umon_store_segments_removed_total", {},
                                   "Segment files unlinked after compaction");
    for (int t = 0; t < 3; ++t) {
      const std::string tier = std::to_string(t);
      tier_segments[t] = reg.gauge("umon_store_tier_segments",
                                   {{"tier", tier}},
                                   "Resident segment files in one tier");
      tier_bytes[t] = reg.gauge("umon_store_tier_bytes", {{"tier", tier}},
                                "Bytes resident in one tier");
      if (t > 0) {
        compactions[t] = reg.counter("umon_store_compactions_total",
                                     {{"to_tier", tier}},
                                     "Segments rewritten into a deeper tier");
      }
    }
    compaction_in = reg.counter("umon_store_compaction_input_bytes_total", {},
                                "Bytes read by the tier compactor");
    compaction_out = reg.counter("umon_store_compaction_output_bytes_total",
                                 {}, "Bytes written by the tier compactor");
    cache_hits = reg.counter("umon_store_cache_hits_total", {},
                             "Page cache hits");
    cache_misses = reg.counter("umon_store_cache_misses_total", {},
                               "Page cache misses (pread)");
    cache_evictions = reg.counter("umon_store_cache_evictions_total", {},
                                  "Clean pages evicted by the byte budget");
    cache_resident = reg.gauge("umon_store_cache_resident_pages", {},
                               "Pages resident in the cache");
    cache_dirty = reg.gauge("umon_store_cache_dirty_pages", {},
                            "Dirty (unsynced, unevictable) resident pages");
    last_sealed = reg.gauge("umon_store_last_sealed_epoch", {},
                            "Most recent durable epoch (-1 before the first)");
    compaction_lag = reg.gauge(
        "umon_store_compaction_lag_segments", {},
        "Sealed segments old enough for the next tier but not yet rewritten");
  }

  telemetry::Counter* appends = nullptr;
  telemetry::Counter* append_bytes = nullptr;
  telemetry::Counter* epochs_sealed = nullptr;
  telemetry::Counter* segments_created = nullptr;
  telemetry::Counter* segments_removed = nullptr;
  telemetry::Counter* compactions[3] = {nullptr, nullptr, nullptr};
  telemetry::Counter* compaction_in = nullptr;
  telemetry::Counter* compaction_out = nullptr;
  telemetry::Counter* cache_hits = nullptr;
  telemetry::Counter* cache_misses = nullptr;
  telemetry::Counter* cache_evictions = nullptr;
  telemetry::Gauge* tier_segments[3] = {nullptr, nullptr, nullptr};
  telemetry::Gauge* tier_bytes[3] = {nullptr, nullptr, nullptr};
  telemetry::Gauge* cache_resident = nullptr;
  telemetry::Gauge* cache_dirty = nullptr;
  telemetry::Gauge* last_sealed = nullptr;
  telemetry::Gauge* compaction_lag = nullptr;
};

Store::Store(const StoreConfig& cfg, bool writable)
    : cfg_(cfg),
      writable_(writable),
      cache_(PageCacheConfig{cfg.page_bytes, cfg.cache_budget_bytes}),
      ins_(std::make_unique<Instruments>(registry_)) {}

Store::~Store() {
  std::lock_guard lock(mutex_);
  // umon-sca: allow(SA002) teardown path, runs once at destruction: the
  // final flush+fsync+close must be ordered after any in-flight append.
  if (active_ != nullptr) (void)active_->finish();
}

std::unique_ptr<Store> Store::open(const StoreConfig& cfg, RecoveryInfo* info,
                                   bool writable) {
  if (cfg.dir.empty()) return nullptr;
  if (::mkdir(cfg.dir.c_str(), 0755) != 0 && errno != EEXIST) return nullptr;
  std::unique_ptr<Store> store(new Store(cfg, writable));
  if (!store->recover(info)) return nullptr;
  return store;
}

bool Store::recover(RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo& ri = info != nullptr ? *info : local;
  ri = RecoveryInfo{};

  DIR* dir = ::opendir(cfg_.dir.c_str());
  if (dir == nullptr) return false;
  struct Found {
    std::uint8_t tier = 0;
    std::string path;
  };
  std::map<std::uint32_t, Found> found;  // ordered: deterministic recovery
  while (const dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = cfg_.dir + "/" + name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Interrupted compaction output: the source still has the data.
      if (writable_ && ::unlink(path.c_str()) == 0) ++ri.tmp_files_removed;
      continue;
    }
    std::uint32_t id = 0;
    std::uint8_t tier = 0;
    if (!parse_segment_file_name(name, id, tier)) continue;
    found[id] = Found{tier, path};
  }
  ::closedir(dir);

  // Phase 1: open + validate headers; resolve crashed compactions. A
  // renamed output whose source survived means the crash hit between
  // rename and unlink — the source must go or its records double-count.
  std::map<std::uint32_t, SegmentReader> readers;
  for (auto& [id, f] : found) {
    auto reader = SegmentReader::open(f.path, &cache_, id, writable_);
    if (!reader.has_value() || reader->header().segment_id != id) {
      continue;  // unreadable header: leave the file for forensics
    }
    readers.emplace(id, std::move(*reader));
  }
  for (auto it = readers.begin(); it != readers.end();) {
    const std::uint32_t replaces = it->second.header().replaces_segment_id;
    if (replaces != kReplacesNone && readers.count(replaces) > 0) {
      auto victim = readers.find(replaces);
      victim->second.close();
      if (writable_ && ::unlink(found[replaces].path.c_str()) == 0) {
        ++ri.stale_sources_unlinked;
      }
      readers.erase(victim);
      it = readers.begin();  // restart: erase may invalidate our position
    } else {
      ++it;
    }
  }

  // Phase 2: scan every surviving segment, truncate torn/unsealed tails,
  // rebuild the flow index and confidence marks.
  for (auto& [id, reader] : readers) {
    std::size_t records = 0;
    const std::uint32_t seg_id = id;
    const SegmentReader::ScanResult scan = reader.scan(
        [this, seg_id, &records](const RecordHeader& rh,
                                 std::uint64_t payload_offset,
                                 std::span<const std::uint8_t> payload) {
          index_record(seg_id, rh, payload_offset, payload, &records);
        });
    if (scan.sealed_end <= kSegmentHeaderBytes) {
      // No durable epoch: nothing in this file is trustworthy.
      reader.close();
      if (writable_ && ::unlink(found[id].path.c_str()) == 0) {
        ++ri.empty_segments_removed;
      }
      continue;
    }
    if (writable_ && scan.sealed_end < reader.file_size()) {
      if (!reader.truncate_to(scan.sealed_end)) return false;
      ++ri.torn_tails_truncated;
    }
    ri.records_recovered += records;
    ++ri.segments_opened;
    Segment seg;
    seg.header = reader.header();
    seg.path = found[id].path;
    seg.bytes = scan.sealed_end;
    seg.max_epoch = scan.max_sealed_epoch.value_or(seg.header.base_epoch);
    if (!ri.last_sealed_epoch.has_value() ||
        *ri.last_sealed_epoch < *scan.max_sealed_epoch) {
      ri.last_sealed_epoch = scan.max_sealed_epoch;
    }
    seg.reader = std::move(reader);
    next_segment_id_ = std::max(next_segment_id_, id + 1);
    segments_.emplace(id, std::move(seg));
  }

  last_sealed_ = ri.last_sealed_epoch;
  epoch_ = last_sealed_.has_value() ? *last_sealed_ + 1 : 0;
  publish_gauges_locked();
  return true;
}

void Store::index_record(std::uint32_t segment_id, const RecordHeader& rh,
                         std::uint64_t payload_offset,
                         std::span<const std::uint8_t> payload,
                         std::size_t* records) {
  const auto kind = static_cast<RecordKind>(rh.kind);
  ChunkRef ref;
  ref.segment_id = segment_id;
  ref.payload_offset = payload_offset;
  ref.payload_len = rh.payload_len;
  ref.kind = kind;
  ref.confidence = static_cast<WindowConfidence>(rh.confidence);
  ref.epoch = rh.epoch;
  switch (kind) {
    case RecordKind::kSparseCurve: {
      const auto rec = decode_sparse(payload);
      if (!rec.has_value() || rec->windows.empty()) return;
      ref.w0 = rec->windows.front().first;
      ref.w1 = rec->windows.back().first;
      FlowEntry& entry = flows_[rec->flow.packed()];
      entry.key = rec->flow;
      entry.chunks.push_back(ref);
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kCoeffCurve: {
      const auto rec = decode_coeff(payload);
      if (!rec.has_value()) return;
      ref.w0 = rec->w0;
      ref.w1 = rec->w0 + rec->length - 1;
      FlowEntry& entry = flows_[rec->flow.packed()];
      entry.key = rec->flow;
      entry.chunks.push_back(ref);
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kConfidenceRun: {
      const auto runs = decode_confidence(payload);
      if (!runs.has_value()) return;
      for (const ConfidenceRun& run : *runs) {
        for (WindowId w = run.from; w < run.to; ++w) {
          auto [it, inserted] = marks_.try_emplace(w, run.conf);
          if (!inserted) it->second = worse(it->second, run.conf);
        }
      }
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kEpochSeal:
      break;
  }
}

void Store::ensure_writer() {
  if (active_ != nullptr || !writable_) return;
  const std::uint32_t id = next_segment_id_++;
  SegmentHeader header;
  header.tier = 0;
  header.window_shift = static_cast<std::uint8_t>(cfg_.window_shift);
  header.segment_id = id;
  header.base_epoch = epoch_;
  const std::string path = cfg_.dir + "/" + segment_file_name(id, 0);
  active_ = std::make_unique<SegmentWriter>(path, header, &cache_, id,
                                            cfg_.fsync_on_seal);
  Segment seg;
  seg.header = active_->header();
  seg.path = path;
  seg.max_epoch = epoch_;
  segments_.emplace(id, std::move(seg));
  ++stats_.segments_created;
  ins_->segments_created->inc();
}

void Store::append_sparse(
    const FlowKey& flow,
    std::span<const std::pair<WindowId, double>> windows) {
  UMON_PROF_SCOPE(kStoreAppend);
  if (windows.empty()) return;
  std::lock_guard lock(mutex_);
  if (!writable_) return;
  ensure_writer();
  if (active_ == nullptr || !active_->ok()) return;

  SparseCurveRecord rec;
  rec.flow = flow;
  rec.windows.assign(windows.begin(), windows.end());
  WindowConfidence worst = WindowConfidence::kCovered;
  for (const auto& [w, v] : rec.windows) {
    const auto it = marks_.find(w);
    if (it != marks_.end()) worst = worse(worst, it->second);
  }
  const SegmentWriter::AppendRef at =
      active_->append_sparse(epoch_, rec, worst);

  ChunkRef ref;
  ref.segment_id = active_->file_id();
  ref.payload_offset = at.payload_offset;
  ref.payload_len = at.payload_len;
  ref.kind = RecordKind::kSparseCurve;
  ref.confidence = worst;
  ref.epoch = epoch_;
  ref.w0 = rec.windows.front().first;
  ref.w1 = rec.windows.back().first;
  FlowEntry& entry = flows_[flow.packed()];
  entry.key = flow;
  entry.chunks.push_back(ref);

  ++stats_.appends;
  stats_.append_bytes += at.payload_len;
  ins_->appends->inc();
  ins_->append_bytes->inc(at.payload_len);
  if (lineage_ != nullptr) lineage_->on_store_spill(1, at.payload_len);
}

void Store::mark_confidence(WindowId from, WindowId to,
                            WindowConfidence conf) {
  if (conf == WindowConfidence::kCovered || from >= to) return;
  std::lock_guard lock(mutex_);
  for (WindowId w = from; w < to; ++w) {
    auto [it, inserted] = marks_.try_emplace(w, conf);
    if (!inserted) it->second = worse(it->second, conf);
  }
  if (writable_) pending_runs_.push_back(ConfidenceRun{from, to, conf});
}

bool Store::seal_epoch() {
  std::unique_lock lock(mutex_);
  if (!writable_) return false;
  if (active_ == nullptr && pending_runs_.empty()) {
    // Nothing happened this epoch: advance logically, nothing to make
    // durable. A crash forgets empty epochs, which loses no data.
    last_sealed_ = epoch_;
    ++epoch_;
    ++generation_;
    ins_->last_sealed->set(static_cast<std::int64_t>(*last_sealed_));
    return true;
  }
  ensure_writer();
  if (active_ == nullptr || !active_->ok()) return false;
  if (!pending_runs_.empty()) {
    active_->append_confidence(epoch_, pending_runs_);
    pending_runs_.clear();
  }
  // Split seal: stage the seal record and pwrite the tail under the lock
  // (cheap, must stay ordered with appends), then release the lock for the
  // fsync — the expensive durability stall — so concurrent write_through
  // appends and queries are not serialized behind the disk. seal_commit
  // only cleans page-cache pages fully below the synced extent, so pages
  // dirtied while we were unlocked stay dirty and cannot be evicted.
  //
  // umon-sca: allow(SA002) seal_prepare's pwrite is a buffered write into
  // the OS page cache and must stay under mutex_ to order the seal record
  // after every acknowledged append; the durability stall (fsync) runs
  // below with the lock released.
  if (!active_->seal_prepare(epoch_)) return false;
  SegmentWriter* writer = active_.get();
  lock.unlock();
  const bool synced = writer->seal_sync();
  lock.lock();
  if (!synced) return false;
  // Single-sealer: only the sealing thread resets active_ (roll below), so
  // `writer` is still the live writer here; re-check anyway for safety.
  if (active_.get() != writer) return false;
  writer->seal_commit();
  auto seg_it = segments_.find(active_->file_id());
  if (seg_it != segments_.end()) {
    seg_it->second.bytes = active_->bytes();
    seg_it->second.max_epoch = epoch_;
  }
  last_sealed_ = epoch_;
  ++epoch_;
  ++generation_;
  ++stats_.epochs_sealed;
  ins_->epochs_sealed->inc();
  ins_->last_sealed->set(static_cast<std::int64_t>(*last_sealed_));
  // umon-sca: allow(SA002) segment roll is once per cfg_.segment_epochs
  // seals and the writer's tail was flushed+fsynced by the seal above, so
  // finish()'s fsync inside the roll is an empty barrier, not a data flush.
  if (active_->epochs_sealed() >= cfg_.segment_epochs) roll_active_locked();
  publish_gauges_locked();
  return true;
}

void Store::roll_active_locked() {
  if (active_ == nullptr) return;
  const std::uint32_t id = active_->file_id();
  const std::string path = active_->path();
  (void)active_->finish();
  active_.reset();
  auto it = segments_.find(id);
  if (it == segments_.end()) return;
  auto reader = SegmentReader::open(path, &cache_, id, writable_);
  if (reader.has_value()) {
    it->second.reader = std::move(*reader);
  } else {
    // The file we just wrote does not read back: disown it. Its chunks
    // would all fail decode anyway; drop them from the index.
    for (auto& [packed, entry] : flows_) {
      auto& chunks = entry.chunks;
      chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                  [id](const ChunkRef& c) {
                                    return c.segment_id == id;
                                  }),
                   chunks.end());
    }
    segments_.erase(it);
  }
}

int Store::fd_for_segment(std::uint32_t segment_id) const {
  if (active_ != nullptr && active_->file_id() == segment_id) {
    return active_->fd();
  }
  const auto it = segments_.find(segment_id);
  if (it == segments_.end() || !it->second.reader.has_value()) return -1;
  return it->second.reader->fd();
}

std::size_t Store::maintain() {
  std::lock_guard lock(mutex_);
  if (!writable_ || cfg_.tier1_age_epochs == 0) return 0;
  std::vector<std::uint32_t> candidates;
  for (const auto& [id, seg] : segments_) {
    if (!seg.reader.has_value()) continue;  // active segment
    if (seg.header.tier >= 2) continue;
    const std::uint32_t age =
        epoch_ > seg.max_epoch ? epoch_ - seg.max_epoch : 0;
    const std::uint32_t need = seg.header.tier == 0 ? cfg_.tier1_age_epochs
                                                    : cfg_.tier2_age_epochs;
    if (age >= need) candidates.push_back(id);
  }
  std::size_t done = 0;
  for (const std::uint32_t id : candidates) {
    // umon-sca: allow(SA002) compaction is a background maintenance pass
    // (caller-paced, never on the ingest path) that rewrites a sealed
    // segment; keeping it under mutex_ keeps the index swap atomic versus
    // queries, and the number of segments it touches per call is bounded.
    if (compact_segment_locked(id)) ++done;
  }
  publish_gauges_locked();
  return done;
}

bool Store::compact_segment_locked(std::uint32_t segment_id) {
  auto src_it = segments_.find(segment_id);
  if (src_it == segments_.end() || !src_it->second.reader.has_value()) {
    return false;
  }
  Segment& src = src_it->second;
  const std::uint8_t new_tier = src.header.tier + 1;
  const std::uint64_t input_bytes = src.bytes;

  // Gather the source's contents per flow. std::map keyed on the packed
  // flow keeps the output record order deterministic across runs.
  struct FlowAcc {
    FlowKey key;
    std::map<WindowId, double> windows;        // tier-0 source
    std::vector<CoeffCurveRecord> coeffs;      // tier-1 source
    std::uint64_t source_bytes = 0;
    WindowConfidence worst = WindowConfidence::kCovered;
  };
  std::map<std::uint64_t, FlowAcc> acc;
  std::map<WindowId, WindowConfidence> run_marks;
  bool decode_ok = true;
  (void)src.reader->scan([&](const RecordHeader& rh, std::uint64_t,
                             std::span<const std::uint8_t> payload) {
    switch (static_cast<RecordKind>(rh.kind)) {
      case RecordKind::kSparseCurve: {
        const auto rec = decode_sparse(payload);
        if (!rec.has_value()) { decode_ok = false; return; }
        FlowAcc& fa = acc[rec->flow.packed()];
        fa.key = rec->flow;
        for (const auto& [w, v] : rec->windows) fa.windows[w] += v;
        fa.source_bytes += rh.payload_len;
        fa.worst = worse(fa.worst, static_cast<WindowConfidence>(rh.confidence));
        break;
      }
      case RecordKind::kCoeffCurve: {
        auto rec = decode_coeff(payload);
        if (!rec.has_value()) { decode_ok = false; return; }
        FlowAcc& fa = acc[rec->flow.packed()];
        fa.key = rec->flow;
        fa.coeffs.push_back(std::move(*rec));
        fa.source_bytes += rh.payload_len;
        fa.worst = worse(fa.worst, static_cast<WindowConfidence>(rh.confidence));
        break;
      }
      case RecordKind::kConfidenceRun: {
        const auto runs = decode_confidence(payload);
        if (!runs.has_value()) { decode_ok = false; return; }
        for (const ConfidenceRun& run : *runs) {
          for (WindowId w = run.from; w < run.to; ++w) {
            auto [it, inserted] = run_marks.try_emplace(w, run.conf);
            if (!inserted) it->second = worse(it->second, run.conf);
          }
        }
        break;
      }
      case RecordKind::kEpochSeal:
        break;
    }
  });
  if (!decode_ok) return false;

  const std::uint32_t new_id = next_segment_id_++;
  SegmentHeader header;
  header.tier = new_tier;
  header.window_shift = src.header.window_shift;
  header.segment_id = new_id;
  header.base_epoch = src.header.base_epoch;
  header.replaces_segment_id = segment_id;
  const std::string final_path =
      cfg_.dir + "/" + segment_file_name(new_id, new_tier);
  const std::string tmp_path = final_path + ".tmp";
  SegmentWriter writer(tmp_path, header, &cache_, new_id, cfg_.fsync_on_seal);
  if (!writer.ok()) return false;

  const std::uint32_t out_epoch = src.max_epoch;
  std::unordered_map<std::uint64_t, std::vector<ChunkRef>> new_chunks;
  for (auto& [packed, fa] : acc) {
    std::vector<std::pair<CoeffCurveRecord, std::uint64_t>> outputs;
    if (src.header.tier == 0) {
      // Split the flow's windows into chunks aligned on absolute window
      // boundaries (stable across compactions), densify, transform.
      const WindowId stride = static_cast<WindowId>(cfg_.max_chunk_windows);
      auto it = fa.windows.begin();
      while (it != fa.windows.end()) {
        const WindowId base = (it->first / stride) * stride;
        const WindowId end = base + stride;
        const WindowId first = it->first;
        WindowId last = first;
        std::uint64_t chunk_source = sparse_payload_bytes(0);
        auto chunk_end = it;
        std::size_t nnz = 0;
        while (chunk_end != fa.windows.end() && chunk_end->first < end) {
          last = chunk_end->first;
          ++nnz;
          ++chunk_end;
        }
        chunk_source = sparse_payload_bytes(nnz);
        // Densify a power-of-two span aligned inside the stride chunk. The
        // forward transform pads to pow2 anyway; if the record's length were
        // shorter, the energy a truncated detail set leaks into the padding
        // would be cut off at reconstruction — total volume must survive
        // tiering exactly (only its distribution is approximate). Growing
        // the aligned span caps at the stride, so chunks never overlap.
        WindowId padded = static_cast<WindowId>(
            wavelet::next_pow2(static_cast<std::uint32_t>(last - first + 1)));
        WindowId w0 = base + ((first - base) / padded) * padded;
        while (last >= w0 + padded) {
          padded *= 2;
          w0 = base + ((first - base) / padded) * padded;
        }
        std::vector<double> dense(static_cast<std::size_t>(padded), 0.0);
        for (auto w = it; w != chunk_end; ++w) {
          dense[static_cast<std::size_t>(w->first - w0)] = w->second;
        }
        TierParams params;
        params.budget_coeffs = std::max<std::size_t>(1, cfg_.tier_budget / 2);
        params.max_payload_bytes = static_cast<std::size_t>(chunk_source / 2);
        outputs.emplace_back(tier_from_dense(fa.key, w0, dense, params),
                             chunk_source);
        it = chunk_end;
      }
    } else {
      for (CoeffCurveRecord& rec : fa.coeffs) {
        TierParams params;
        params.budget_coeffs = std::max<std::size_t>(
            1, cfg_.tier_budget >> (new_tier));
        const std::uint64_t source =
            coeff_payload_bytes(rec.approx.size(), rec.details.size());
        params.max_payload_bytes = static_cast<std::size_t>(source / 2);
        outputs.emplace_back(truncate_coeffs(rec, params), source);
      }
    }
    for (const auto& [rec, source] : outputs) {
      const SegmentWriter::AppendRef at =
          writer.append_coeff(out_epoch, rec, fa.worst);
      ChunkRef ref;
      ref.segment_id = new_id;
      ref.payload_offset = at.payload_offset;
      ref.payload_len = at.payload_len;
      ref.kind = RecordKind::kCoeffCurve;
      ref.confidence = fa.worst;
      ref.epoch = out_epoch;
      ref.w0 = rec.w0;
      ref.w1 = rec.w0 + rec.length - 1;
      new_chunks[packed].push_back(ref);
    }
  }
  if (!run_marks.empty()) {
    const std::vector<ConfidenceRun> runs = runs_from_marks(run_marks);
    writer.append_confidence(out_epoch, runs);
  }
  if (!writer.seal_epoch(out_epoch) || !writer.finish()) {
    ::unlink(tmp_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }
  const std::uint64_t out_bytes = writer.bytes();

  // Commit point: after the rename the new segment is authoritative (its
  // header names the source via replaces_segment_id, so a crash before the
  // unlink is healed at the next open).
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }
  auto reader = SegmentReader::open(final_path, &cache_, new_id, writable_);
  if (!reader.has_value()) {
    // The renamed output does not read back (IO loss): disown it and keep
    // the source authoritative. Leaving it on disk would let the next
    // maintain() compact the source again, producing two survivors that
    // both replace the same segment id — recovery would keep both and
    // double-count every record.
    ::unlink(final_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }

  // Swap the index over, then unlink the source.
  for (auto& [packed, entry] : flows_) {
    auto& chunks = entry.chunks;
    chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                [segment_id](const ChunkRef& c) {
                                  return c.segment_id == segment_id;
                                }),
                 chunks.end());
    const auto fresh = new_chunks.find(packed);
    if (fresh != new_chunks.end()) {
      chunks.insert(chunks.end(), fresh->second.begin(), fresh->second.end());
    }
  }
  Segment out;
  out.header = reader->header();
  out.path = final_path;
  out.bytes = out_bytes;
  out.max_epoch = out_epoch;
  out.reader = std::move(*reader);
  remove_segment_locked(segment_id);
  segments_.emplace(new_id, std::move(out));
  ++generation_;

  ++stats_.segments_created;
  stats_.compaction_input_bytes += input_bytes;
  stats_.compaction_output_bytes += out_bytes;
  ins_->segments_created->inc();
  ins_->compaction_in->inc(input_bytes);
  ins_->compaction_out->inc(out_bytes);
  if (new_tier == 1) {
    ++stats_.compactions_tier1;
  } else {
    ++stats_.compactions_tier2;
  }
  if (ins_->compactions[new_tier] != nullptr) {
    ins_->compactions[new_tier]->inc();
  }
  return true;
}

void Store::remove_segment_locked(std::uint32_t segment_id) {
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return;
  if (it->second.reader.has_value()) it->second.reader->close();
  ::unlink(it->second.path.c_str());
  cache_.drop_file(segment_id);
  segments_.erase(it);
  ++stats_.segments_removed;
  ins_->segments_removed->inc();
}

void Store::publish_gauges_locked() {
  TierUsage usage[3];
  for (const auto& [id, seg] : segments_) {
    const std::uint8_t tier = std::min<std::uint8_t>(seg.header.tier, 2);
    ++usage[tier].segments;
    usage[tier].bytes += (active_ != nullptr && active_->file_id() == id)
                             ? active_->bytes()
                             : seg.bytes;
  }
  std::size_t lag = 0;
  if (cfg_.tier1_age_epochs > 0) {
    for (const auto& [id, seg] : segments_) {
      if (!seg.reader.has_value() || seg.header.tier >= 2) continue;
      const std::uint32_t age =
          epoch_ > seg.max_epoch ? epoch_ - seg.max_epoch : 0;
      const std::uint32_t need = seg.header.tier == 0 ? cfg_.tier1_age_epochs
                                                      : cfg_.tier2_age_epochs;
      if (age >= need) ++lag;
    }
  }
  for (int t = 0; t < 3; ++t) {
    stats_.tiers[t] = usage[t];
    ins_->tier_segments[t]->set(static_cast<std::int64_t>(usage[t].segments));
    ins_->tier_bytes[t]->set(static_cast<std::int64_t>(usage[t].bytes));
  }
  ins_->compaction_lag->set(static_cast<std::int64_t>(lag));

  const PageCacheStats cs = cache_.stats();
  ins_->cache_hits->inc(cs.hits - cache_published_.hits);
  ins_->cache_misses->inc(cs.misses - cache_published_.misses);
  ins_->cache_evictions->inc(cs.evictions - cache_published_.evictions);
  ins_->cache_resident->set(static_cast<std::int64_t>(cs.resident_pages));
  ins_->cache_dirty->set(static_cast<std::int64_t>(cs.dirty_pages));
  cache_published_ = cs;
}

void Store::visit_flow(const FlowKey& flow, WindowId from, WindowId to,
                       const std::function<void(const ChunkView&)>& fn) {
  std::lock_guard lock(mutex_);
  const auto it = flows_.find(flow.packed());
  if (it == flows_.end()) return;

  // Deliver tier-0 (exact) chunks first, then deeper tiers, each in append
  // order, so consumers see the most precise data before approximations.
  std::vector<const ChunkRef*> order;
  order.reserve(it->second.chunks.size());
  for (const ChunkRef& c : it->second.chunks) {
    if (c.w1 < from || c.w0 >= to) continue;
    order.push_back(&c);
  }
  std::stable_sort(order.begin(), order.end(),
                   [this](const ChunkRef* a, const ChunkRef* b) {
                     const auto ta = segments_.find(a->segment_id);
                     const auto tb = segments_.find(b->segment_id);
                     const std::uint8_t tier_a =
                         ta == segments_.end() ? 0 : ta->second.header.tier;
                     const std::uint8_t tier_b =
                         tb == segments_.end() ? 0 : tb->second.header.tier;
                     return tier_a < tier_b;
                   });

  std::vector<std::uint8_t> buf;
  for (const ChunkRef* c : order) {
    const int fd = fd_for_segment(c->segment_id);
    buf.resize(c->payload_len);
    if (!cache_.read(c->segment_id, fd, c->payload_offset,
                     std::span<std::uint8_t>(buf))) {
      continue;
    }
    const auto seg = segments_.find(c->segment_id);
    ChunkView view;
    view.tier = seg == segments_.end() ? 0 : seg->second.header.tier;
    view.kind = c->kind;
    view.confidence = c->confidence;
    if (c->kind == RecordKind::kSparseCurve) {
      const auto rec = decode_sparse(buf);
      if (!rec.has_value()) continue;
      view.sparse = &*rec;
      fn(view);
    } else if (c->kind == RecordKind::kCoeffCurve) {
      const auto rec = decode_coeff(buf);
      if (!rec.has_value()) continue;
      view.coeff = &*rec;
      fn(view);
    }
  }
}

std::vector<FlowKey> Store::flows() const {
  std::lock_guard lock(mutex_);
  std::vector<FlowKey> out;
  out.reserve(flows_.size());
  for (const auto& [packed, entry] : flows_) out.push_back(entry.key);
  std::sort(out.begin(), out.end(), [](const FlowKey& a, const FlowKey& b) {
    return a.packed() < b.packed();
  });
  return out;
}

bool Store::window_extent(WindowId& first, WindowId& last) const {
  std::lock_guard lock(mutex_);
  bool any = false;
  auto widen = [&](WindowId lo, WindowId hi) {
    if (!any) {
      first = lo;
      last = hi;
      any = true;
    } else {
      first = std::min(first, lo);
      last = std::max(last, hi);
    }
  };
  for (const auto& [packed, entry] : flows_) {
    for (const ChunkRef& c : entry.chunks) widen(c.w0, c.w1);
  }
  if (!marks_.empty()) {
    widen(marks_.begin()->first, std::prev(marks_.end())->first);
  }
  return any;
}

bool Store::flow_extent(const FlowKey& flow, WindowId& first,
                        WindowId& last) const {
  std::lock_guard lock(mutex_);
  const auto it = flows_.find(flow.packed());
  if (it == flows_.end() || it->second.chunks.empty()) return false;
  first = it->second.chunks.front().w0;
  last = it->second.chunks.front().w1;
  for (const ChunkRef& c : it->second.chunks) {
    first = std::min(first, c.w0);
    last = std::max(last, c.w1);
  }
  return true;
}

analyzer::WindowConfidence Store::worst_confidence(WindowId from,
                                                   WindowId to) const {
  std::lock_guard lock(mutex_);
  WindowConfidence worst = WindowConfidence::kCovered;
  for (auto it = marks_.lower_bound(from); it != marks_.end() && it->first < to;
       ++it) {
    worst = worse(worst, it->second);
  }
  return worst;
}

std::uint64_t Store::generation() const {
  std::lock_guard lock(mutex_);
  return generation_;
}

std::uint32_t Store::current_epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

std::optional<std::uint32_t> Store::last_sealed_epoch() const {
  std::lock_guard lock(mutex_);
  return last_sealed_;
}

StoreStats Store::stats() const {
  std::lock_guard lock(mutex_);
  StoreStats s = stats_;
  TierUsage usage[3];
  for (const auto& [id, seg] : segments_) {
    const std::uint8_t tier = std::min<std::uint8_t>(seg.header.tier, 2);
    ++usage[tier].segments;
    usage[tier].bytes += (active_ != nullptr && active_->file_id() == id)
                             ? active_->bytes()
                             : seg.bytes;
  }
  for (int t = 0; t < 3; ++t) s.tiers[t] = usage[t];
  s.cache = cache_.stats();
  return s;
}

}  // namespace umon::store
