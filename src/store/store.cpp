#include "store/store.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include <fcntl.h>

#include "obs/lineage.hpp"
#include "obs/prof.hpp"
#include "resilience/crc32c.hpp"
#include "store/io.hpp"
#include "store/tier.hpp"
#include "wavelet/haar.hpp"

namespace umon::store {
namespace {

using analyzer::WindowConfidence;

WindowConfidence worse(WindowConfidence a, WindowConfidence b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

/// Coalesce per-window marks into maximal same-confidence runs.
std::vector<ConfidenceRun> runs_from_marks(
    const std::map<WindowId, WindowConfidence>& marks) {
  std::vector<ConfidenceRun> runs;
  for (const auto& [w, conf] : marks) {
    if (!runs.empty() && runs.back().to == w && runs.back().conf == conf) {
      runs.back().to = w + 1;
    } else {
      runs.push_back(ConfidenceRun{w, w + 1, conf});
    }
  }
  return runs;
}

}  // namespace

struct Store::Instruments {
  explicit Instruments(telemetry::MetricRegistry& reg) {
    appends = reg.counter("umon_store_appends_total", {},
                          "Sparse curve records appended");
    append_bytes = reg.counter("umon_store_append_bytes_total", {},
                               "Encoded payload bytes appended");
    epochs_sealed = reg.counter("umon_store_epochs_sealed_total", {},
                                "Epoch seals made durable (fsync barriers)");
    segments_created = reg.counter("umon_store_segments_created_total", {},
                                   "Segment files created (all tiers)");
    segments_removed = reg.counter("umon_store_segments_removed_total", {},
                                   "Segment files unlinked after compaction");
    for (int t = 0; t < 3; ++t) {
      const std::string tier = std::to_string(t);
      tier_segments[t] = reg.gauge("umon_store_tier_segments",
                                   {{"tier", tier}},
                                   "Resident segment files in one tier");
      tier_bytes[t] = reg.gauge("umon_store_tier_bytes", {{"tier", tier}},
                                "Bytes resident in one tier");
      if (t > 0) {
        compactions[t] = reg.counter("umon_store_compactions_total",
                                     {{"to_tier", tier}},
                                     "Segments rewritten into a deeper tier");
      }
    }
    compaction_in = reg.counter("umon_store_compaction_input_bytes_total", {},
                                "Bytes read by the tier compactor");
    compaction_out = reg.counter("umon_store_compaction_output_bytes_total",
                                 {}, "Bytes written by the tier compactor");
    cache_hits = reg.counter("umon_store_cache_hits_total", {},
                             "Page cache hits");
    cache_misses = reg.counter("umon_store_cache_misses_total", {},
                               "Page cache misses (pread)");
    cache_evictions = reg.counter("umon_store_cache_evictions_total", {},
                                  "Clean pages evicted by the byte budget");
    cache_resident = reg.gauge("umon_store_cache_resident_pages", {},
                               "Pages resident in the cache");
    cache_dirty = reg.gauge("umon_store_cache_dirty_pages", {},
                            "Dirty (unsynced, unevictable) resident pages");
    last_sealed = reg.gauge("umon_store_last_sealed_epoch", {},
                            "Most recent durable epoch (-1 before the first)");
    compaction_lag = reg.gauge(
        "umon_store_compaction_lag_segments", {},
        "Sealed segments old enough for the next tier but not yet rewritten");
    seal_failures = reg.counter("umon_store_seal_failures_total", {},
                                "Epoch seals that failed on disk IO");
    scrub_passes = reg.counter("umon_store_scrub_passes_total", {},
                               "Completed scrub passes");
    scrub_records = reg.counter("umon_store_scrub_records_total", {},
                                "Records whose on-disk CRC re-verified clean");
    scrub_corrupt = reg.counter("umon_store_scrub_corrupt_total", {},
                                "Corrupt records found by scrub");
    quarantined = reg.counter("umon_store_chunks_quarantined_total", {},
                              "Corrupt chunks removed from the serving index");
    repaired = reg.counter("umon_store_chunks_repaired_total", {},
                           "Quarantined chunks replaced by a coarser shadow");
  }

  telemetry::Counter* appends = nullptr;
  telemetry::Counter* append_bytes = nullptr;
  telemetry::Counter* epochs_sealed = nullptr;
  telemetry::Counter* segments_created = nullptr;
  telemetry::Counter* segments_removed = nullptr;
  telemetry::Counter* compactions[3] = {nullptr, nullptr, nullptr};
  telemetry::Counter* compaction_in = nullptr;
  telemetry::Counter* compaction_out = nullptr;
  telemetry::Counter* cache_hits = nullptr;
  telemetry::Counter* cache_misses = nullptr;
  telemetry::Counter* cache_evictions = nullptr;
  telemetry::Gauge* tier_segments[3] = {nullptr, nullptr, nullptr};
  telemetry::Gauge* tier_bytes[3] = {nullptr, nullptr, nullptr};
  telemetry::Gauge* cache_resident = nullptr;
  telemetry::Gauge* cache_dirty = nullptr;
  telemetry::Gauge* last_sealed = nullptr;
  telemetry::Gauge* compaction_lag = nullptr;
  telemetry::Counter* seal_failures = nullptr;
  telemetry::Counter* scrub_passes = nullptr;
  telemetry::Counter* scrub_records = nullptr;
  telemetry::Counter* scrub_corrupt = nullptr;
  telemetry::Counter* quarantined = nullptr;
  telemetry::Counter* repaired = nullptr;
};

Store::Store(const StoreConfig& cfg, bool writable)
    : cfg_(cfg),
      writable_(writable),
      io_(cfg.io != nullptr ? cfg.io : &real_io()),
      cache_(PageCacheConfig{cfg.page_bytes, cfg.cache_budget_bytes, io_}),
      ins_(std::make_unique<Instruments>(registry_)) {}

Store::~Store() {
  std::lock_guard lock(mutex_);
  // umon-sca: allow(SA002) teardown path, runs once at destruction: the
  // final flush+fsync+close must be ordered after any in-flight append.
  if (active_ != nullptr) (void)active_->finish();
}

std::unique_ptr<Store> Store::open(const StoreConfig& cfg, RecoveryInfo* info,
                                   bool writable) {
  if (cfg.dir.empty()) return nullptr;
  if (::mkdir(cfg.dir.c_str(), 0755) != 0 && errno != EEXIST) return nullptr;
  std::unique_ptr<Store> store(new Store(cfg, writable));
  if (!store->recover(info)) return nullptr;
  return store;
}

bool Store::recover(RecoveryInfo* info) {
  RecoveryInfo local;
  RecoveryInfo& ri = info != nullptr ? *info : local;
  ri = RecoveryInfo{};

  DIR* dir = ::opendir(cfg_.dir.c_str());
  if (dir == nullptr) return false;
  struct Found {
    std::uint8_t tier = 0;
    std::string path;
  };
  std::map<std::uint32_t, Found> found;  // ordered: deterministic recovery
  while (const dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = cfg_.dir + "/" + name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Interrupted compaction output: the source still has the data.
      if (writable_ && io_->unlink(path.c_str()) == 0) ++ri.tmp_files_removed;
      continue;
    }
    std::uint32_t id = 0;
    std::uint8_t tier = 0;
    if (!parse_segment_file_name(name, id, tier)) continue;
    found[id] = Found{tier, path};
  }
  ::closedir(dir);

  // Phase 1: open + validate headers; resolve crashed compactions. A
  // renamed output whose source survived means the crash hit between
  // rename and unlink — the source must go or its records double-count.
  std::map<std::uint32_t, SegmentReader> readers;
  for (auto& [id, f] : found) {
    auto reader = SegmentReader::open(f.path, &cache_, id, writable_, io_);
    if (!reader.has_value() || reader->header().segment_id != id) {
      continue;  // unreadable header: leave the file for forensics
    }
    readers.emplace(id, std::move(*reader));
  }
  for (auto it = readers.begin(); it != readers.end();) {
    const std::uint32_t replaces = it->second.header().replaces_segment_id;
    if (replaces != kReplacesNone && readers.count(replaces) > 0) {
      auto victim = readers.find(replaces);
      victim->second.close();
      if (writable_ && io_->unlink(found[replaces].path.c_str()) == 0) {
        ++ri.stale_sources_unlinked;
      }
      readers.erase(victim);
      it = readers.begin();  // restart: erase may invalidate our position
    } else {
      ++it;
    }
  }

  // Phase 2: scan every surviving segment, truncate torn/unsealed tails,
  // rebuild the flow index and confidence marks.
  for (auto& [id, reader] : readers) {
    std::size_t records = 0;
    const std::uint32_t seg_id = id;
    const SegmentReader::ScanResult scan = reader.scan(
        [this, seg_id, &records](const RecordHeader& rh,
                                 std::uint64_t payload_offset,
                                 std::span<const std::uint8_t> payload) {
          index_record(seg_id, rh, payload_offset, payload, &records);
        });
    if (scan.sealed_end <= kSegmentHeaderBytes) {
      // No durable epoch: nothing in this file is trustworthy.
      reader.close();
      if (writable_ && io_->unlink(found[id].path.c_str()) == 0) {
        ++ri.empty_segments_removed;
      }
      continue;
    }
    if (writable_ && scan.sealed_end < reader.file_size()) {
      if (!reader.truncate_to(scan.sealed_end)) return false;
      ++ri.torn_tails_truncated;
    }
    ri.records_recovered += records;
    ++ri.segments_opened;
    Segment seg;
    seg.header = reader.header();
    seg.path = found[id].path;
    seg.bytes = scan.sealed_end;
    seg.max_epoch = scan.max_sealed_epoch.value_or(seg.header.base_epoch);
    if (!ri.last_sealed_epoch.has_value() ||
        *ri.last_sealed_epoch < *scan.max_sealed_epoch) {
      ri.last_sealed_epoch = scan.max_sealed_epoch;
    }
    seg.reader = std::move(reader);
    next_segment_id_ = std::max(next_segment_id_, id + 1);
    segments_.emplace(id, std::move(seg));
  }

  last_sealed_ = ri.last_sealed_epoch;
  epoch_ = last_sealed_.has_value() ? *last_sealed_ + 1 : 0;
  publish_gauges_locked();
  return true;
}

void Store::index_record(std::uint32_t segment_id, const RecordHeader& rh,
                         std::uint64_t payload_offset,
                         std::span<const std::uint8_t> payload,
                         std::size_t* records) {
  const auto kind = static_cast<RecordKind>(rh.kind);
  ChunkRef ref;
  ref.segment_id = segment_id;
  ref.payload_offset = payload_offset;
  ref.payload_len = rh.payload_len;
  ref.payload_crc = rh.payload_crc;
  ref.kind = kind;
  ref.confidence = static_cast<WindowConfidence>(rh.confidence);
  ref.epoch = rh.epoch;
  switch (kind) {
    case RecordKind::kSparseCurve: {
      const auto rec = decode_sparse(payload);
      if (!rec.has_value() || rec->windows.empty()) return;
      ref.w0 = rec->windows.front().first;
      ref.w1 = rec->windows.back().first;
      FlowEntry& entry = flows_[rec->flow.packed()];
      entry.key = rec->flow;
      entry.chunks.push_back(ref);
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kCoeffCurve: {
      const auto rec = decode_coeff(payload);
      if (!rec.has_value()) return;
      ref.w0 = rec->w0;
      ref.w1 = rec->w0 + rec->length - 1;
      FlowEntry& entry = flows_[rec->flow.packed()];
      entry.key = rec->flow;
      entry.chunks.push_back(ref);
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kConfidenceRun: {
      const auto runs = decode_confidence(payload);
      if (!runs.has_value()) return;
      for (const ConfidenceRun& run : *runs) {
        for (WindowId w = run.from; w < run.to; ++w) {
          auto [it, inserted] = marks_.try_emplace(w, run.conf);
          if (!inserted) it->second = worse(it->second, run.conf);
        }
      }
      if (records != nullptr) ++*records;
      break;
    }
    case RecordKind::kEpochSeal:
      break;
  }
}

void Store::ensure_writer() {
  if (active_ != nullptr || !writable_) return;
  const std::uint32_t id = next_segment_id_++;
  SegmentHeader header;
  header.tier = 0;
  header.window_shift = static_cast<std::uint8_t>(cfg_.window_shift);
  header.segment_id = id;
  header.base_epoch = epoch_;
  const std::string path = cfg_.dir + "/" + segment_file_name(id, 0);
  active_ = std::make_unique<SegmentWriter>(path, header, &cache_, id,
                                            cfg_.fsync_on_seal, io_);
  Segment seg;
  seg.header = active_->header();
  seg.path = path;
  seg.max_epoch = epoch_;
  segments_.emplace(id, std::move(seg));
  ++stats_.segments_created;
  ins_->segments_created->inc();
}

void Store::append_sparse(
    const FlowKey& flow,
    std::span<const std::pair<WindowId, double>> windows) {
  UMON_PROF_SCOPE(kStoreAppend);
  if (windows.empty()) return;
  std::lock_guard lock(mutex_);
  if (!writable_) return;
  ensure_writer();
  if (active_ == nullptr || !active_->ok()) return;

  SparseCurveRecord rec;
  rec.flow = flow;
  rec.windows.assign(windows.begin(), windows.end());
  WindowConfidence worst = WindowConfidence::kCovered;
  for (const auto& [w, v] : rec.windows) {
    const auto it = marks_.find(w);
    if (it != marks_.end()) worst = worse(worst, it->second);
  }
  const SegmentWriter::AppendRef at =
      active_->append_sparse(epoch_, rec, worst);

  ChunkRef ref;
  ref.segment_id = active_->file_id();
  ref.payload_offset = at.payload_offset;
  ref.payload_len = at.payload_len;
  ref.payload_crc = at.payload_crc;
  ref.kind = RecordKind::kSparseCurve;
  ref.confidence = worst;
  ref.epoch = epoch_;
  ref.w0 = rec.windows.front().first;
  ref.w1 = rec.windows.back().first;
  FlowEntry& entry = flows_[flow.packed()];
  entry.key = flow;
  entry.chunks.push_back(ref);

  ++stats_.appends;
  stats_.append_bytes += at.payload_len;
  ins_->appends->inc();
  ins_->append_bytes->inc(at.payload_len);
  if (lineage_ != nullptr) lineage_->on_store_spill(1, at.payload_len);
}

void Store::mark_confidence(WindowId from, WindowId to,
                            WindowConfidence conf) {
  std::lock_guard lock(mutex_);
  mark_confidence_locked(from, to, conf);
}

void Store::mark_confidence_locked(WindowId from, WindowId to,
                                   WindowConfidence conf) {
  if (conf == WindowConfidence::kCovered || from >= to) return;
  for (WindowId w = from; w < to; ++w) {
    auto [it, inserted] = marks_.try_emplace(w, conf);
    if (!inserted) it->second = worse(it->second, conf);
  }
  if (writable_) pending_runs_.push_back(ConfidenceRun{from, to, conf});
}

bool Store::seal_epoch() {
  std::unique_lock lock(mutex_);
  if (!writable_) return false;
  if (active_ == nullptr && pending_runs_.empty()) {
    // Nothing happened this epoch: advance logically, nothing to make
    // durable. A crash forgets empty epochs, which loses no data.
    last_sealed_ = epoch_;
    ++epoch_;
    ++generation_;
    ins_->last_sealed->set(static_cast<std::int64_t>(*last_sealed_));
    return true;
  }
  ensure_writer();
  if (active_ == nullptr || !active_->ok()) return false;
  if (!pending_runs_.empty()) {
    active_->append_confidence(epoch_, pending_runs_);
    pending_runs_.clear();
  }
  // Split seal: stage the seal record and pwrite the tail under the lock
  // (cheap, must stay ordered with appends), then release the lock for the
  // fsync — the expensive durability stall — so concurrent write_through
  // appends and queries are not serialized behind the disk. seal_commit
  // only cleans page-cache pages fully below the synced extent, so pages
  // dirtied while we were unlocked stay dirty and cannot be evicted.
  //
  // umon-sca: allow(SA002) seal_prepare's pwrite is a buffered write into
  // the OS page cache and must stay under mutex_ to order the seal record
  // after every acknowledged append; the durability stall (fsync) runs
  // below with the lock released.
  if (!active_->seal_prepare(epoch_)) {
    // umon-sca: allow(SA002) seal-failure path (see fail_active_locked)
    fail_active_locked();
    return false;
  }
  SegmentWriter* writer = active_.get();
  lock.unlock();
  const bool synced = writer->seal_sync();
  lock.lock();
  if (!synced) {
    // Failed fsync: the kernel may have dropped dirty pages we will never
    // see again, so nothing past the previous durable seal can be trusted.
    // seal_commit is NOT called — mark_clean_up_to must never run for an
    // extent the disk did not acknowledge. Roll the writer off the damaged
    // file, reconcile the index with what actually survived on disk, and
    // flag the acknowledged-but-lost windows.
    // umon-sca: allow(SA002) seal-failure path (see fail_active_locked)
    if (active_.get() == writer) fail_active_locked();
    return false;
  }
  // Single-sealer: only the sealing thread resets active_ (roll below), so
  // `writer` is still the live writer here; re-check anyway for safety.
  if (active_.get() != writer) return false;
  writer->seal_commit();
  auto seg_it = segments_.find(active_->file_id());
  if (seg_it != segments_.end()) {
    seg_it->second.bytes = active_->bytes();
    seg_it->second.max_epoch = epoch_;
  }
  last_sealed_ = epoch_;
  ++epoch_;
  ++generation_;
  ++stats_.epochs_sealed;
  ins_->epochs_sealed->inc();
  ins_->last_sealed->set(static_cast<std::int64_t>(*last_sealed_));
  // umon-sca: allow(SA002) segment roll is once per cfg_.segment_epochs
  // seals and the writer's tail was flushed+fsynced by the seal above, so
  // finish()'s fsync inside the roll is an empty barrier, not a data flush.
  if (active_->epochs_sealed() >= cfg_.segment_epochs) roll_active_locked();
  publish_gauges_locked();
  return true;
}

void Store::roll_active_locked() {
  if (active_ == nullptr) return;
  const std::uint32_t id = active_->file_id();
  const std::string path = active_->path();
  const bool finished = active_->finish();
  active_.reset();
  if (!finished) {
    // The close-time flush/fsync failed: bytes past the last durable seal
    // may be gone. Fall back to the reconcile path instead of trusting the
    // in-memory index.
    ++stats_.seal_failures;
    ins_->seal_failures->inc();
    cache_.drop_file(id);
    reconcile_failed_segment_locked(id, path);
    return;
  }
  auto it = segments_.find(id);
  if (it == segments_.end()) return;
  auto reader = SegmentReader::open(path, &cache_, id, writable_, io_);
  if (reader.has_value()) {
    it->second.reader = std::move(*reader);
  } else {
    // The file we just wrote does not read back: disown it. Its chunks
    // would all fail decode anyway; drop them from the index.
    for (auto& [packed, entry] : flows_) {
      auto& chunks = entry.chunks;
      chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                  [id](const ChunkRef& c) {
                                    return c.segment_id == id;
                                  }),
                   chunks.end());
    }
    segments_.erase(it);
  }
}

void Store::fail_active_locked() {
  if (active_ == nullptr) return;
  const std::uint32_t id = active_->file_id();
  const std::string path = active_->path();
  ++stats_.seal_failures;
  ins_->seal_failures->inc();
  // finish() will not mark pages clean after its own flush/fsync fails, but
  // those dirty pages hold bytes whose on-disk fate is unknown — drop them
  // so every later read reflects the durable truth re-established below.
  //
  // umon-sca: allow(SA002) seal-failure path, at most once per failed seal:
  // the store is in a damaged state and must not serve reads until the
  // index matches the disk again, so the reconcile IO stays under mutex_.
  (void)active_->finish();
  active_.reset();
  cache_.drop_file(id);
  reconcile_failed_segment_locked(id, path);
}

void Store::reconcile_failed_segment_locked(std::uint32_t id,
                                            const std::string& path) {
  auto seg_it = segments_.find(id);
  // Probe the durable prefix: everything up to the last verified seal on
  // disk survived; everything after it is gone or untrustworthy.
  //
  // umon-sca: allow(SA002) failure path (see fail_active_locked).
  auto reader = SegmentReader::open(path, &cache_, id, writable_, io_);
  std::uint64_t sealed_end = 0;
  std::optional<std::uint32_t> durable_epoch;
  if (reader.has_value()) {
    const SegmentReader::ScanResult scan = reader->scan(nullptr);
    sealed_end = scan.sealed_end;
    durable_epoch = scan.max_sealed_epoch;
  }
  const bool keep = reader.has_value() && sealed_end > kSegmentHeaderBytes;

  // Drop index entries the durable prefix no longer backs and flag their
  // windows: they were acknowledged to the writer but the disk lost them.
  for (auto& [packed, entry] : flows_) {
    auto& chunks = entry.chunks;
    std::size_t kept = 0;
    for (ChunkRef& c : chunks) {
      const bool survives = keep && c.segment_id == id && durable_epoch &&
                            c.epoch <= *durable_epoch;
      if (c.segment_id != id || survives) {
        chunks[kept++] = c;
        continue;
      }
      mark_confidence_locked(c.w0, c.w1 + 1, WindowConfidence::kLost);
    }
    chunks.resize(kept);
  }

  if (keep) {
    if (sealed_end < reader->file_size()) (void)reader->truncate_to(sealed_end);
    Segment seg;
    seg.header = reader->header();
    seg.path = path;
    seg.bytes = sealed_end;
    seg.max_epoch = durable_epoch.value_or(reader->header().base_epoch);
    seg.reader = std::move(*reader);
    if (seg_it != segments_.end()) {
      seg_it->second = std::move(seg);
    } else {
      segments_.emplace(id, std::move(seg));
    }
  } else {
    if (reader.has_value()) reader->close();
    (void)io_->unlink(path.c_str());
    cache_.drop_file(id);
    if (seg_it != segments_.end()) {
      segments_.erase(seg_it);
      ++stats_.segments_removed;
      ins_->segments_removed->inc();
    }
  }
  ++generation_;
  publish_gauges_locked();
}

int Store::fd_for_segment(std::uint32_t segment_id) const {
  if (active_ != nullptr && active_->file_id() == segment_id) {
    return active_->fd();
  }
  const auto it = segments_.find(segment_id);
  if (it == segments_.end() || !it->second.reader.has_value()) return -1;
  return it->second.reader->fd();
}

std::size_t Store::maintain() {
  std::lock_guard lock(mutex_);
  if (!writable_ || cfg_.tier1_age_epochs == 0) return 0;
  swap_due_shadows_locked();
  // Segments entangled in a pending shadow pair sit out this round: the
  // source must not be compacted twice (two outputs naming the same
  // replaces_segment_id would double-count after a crash) and the shadow
  // itself is not authoritative yet.
  std::set<std::uint32_t> shadowed;
  for (const Shadow& sh : shadows_) {
    shadowed.insert(sh.source_id);
    shadowed.insert(sh.shadow_id);
  }
  std::vector<std::uint32_t> candidates;
  for (const auto& [id, seg] : segments_) {
    if (!seg.reader.has_value()) continue;  // active segment
    if (seg.header.tier >= 2) continue;
    if (shadowed.count(id) > 0) continue;
    const std::uint32_t age =
        epoch_ > seg.max_epoch ? epoch_ - seg.max_epoch : 0;
    const std::uint32_t need = seg.header.tier == 0 ? cfg_.tier1_age_epochs
                                                    : cfg_.tier2_age_epochs;
    if (age >= need) candidates.push_back(id);
  }
  std::size_t done = 0;
  for (const std::uint32_t id : candidates) {
    // umon-sca: allow(SA002) compaction is a background maintenance pass
    // (caller-paced, never on the ingest path) that rewrites a sealed
    // segment; keeping it under mutex_ keeps the index swap atomic versus
    // queries, and the number of segments it touches per call is bounded.
    if (compact_segment_locked(id)) ++done;
  }
  publish_gauges_locked();
  return done;
}

bool Store::compact_segment_locked(std::uint32_t segment_id) {
  auto src_it = segments_.find(segment_id);
  if (src_it == segments_.end() || !src_it->second.reader.has_value()) {
    return false;
  }
  Segment& src = src_it->second;
  const std::uint8_t new_tier = src.header.tier + 1;
  const std::uint64_t input_bytes = src.bytes;

  // Gather the source's contents per flow. std::map keyed on the packed
  // flow keeps the output record order deterministic across runs.
  struct FlowAcc {
    FlowKey key;
    std::map<WindowId, double> windows;        // tier-0 source
    std::vector<CoeffCurveRecord> coeffs;      // tier-1 source
    std::uint64_t source_bytes = 0;
    WindowConfidence worst = WindowConfidence::kCovered;
  };
  std::map<std::uint64_t, FlowAcc> acc;
  std::map<WindowId, WindowConfidence> run_marks;
  bool decode_ok = true;
  (void)src.reader->scan([&](const RecordHeader& rh, std::uint64_t,
                             std::span<const std::uint8_t> payload) {
    switch (static_cast<RecordKind>(rh.kind)) {
      case RecordKind::kSparseCurve: {
        const auto rec = decode_sparse(payload);
        if (!rec.has_value()) { decode_ok = false; return; }
        FlowAcc& fa = acc[rec->flow.packed()];
        fa.key = rec->flow;
        for (const auto& [w, v] : rec->windows) fa.windows[w] += v;
        fa.source_bytes += rh.payload_len;
        fa.worst = worse(fa.worst, static_cast<WindowConfidence>(rh.confidence));
        break;
      }
      case RecordKind::kCoeffCurve: {
        auto rec = decode_coeff(payload);
        if (!rec.has_value()) { decode_ok = false; return; }
        FlowAcc& fa = acc[rec->flow.packed()];
        fa.key = rec->flow;
        fa.coeffs.push_back(std::move(*rec));
        fa.source_bytes += rh.payload_len;
        fa.worst = worse(fa.worst, static_cast<WindowConfidence>(rh.confidence));
        break;
      }
      case RecordKind::kConfidenceRun: {
        const auto runs = decode_confidence(payload);
        if (!runs.has_value()) { decode_ok = false; return; }
        for (const ConfidenceRun& run : *runs) {
          for (WindowId w = run.from; w < run.to; ++w) {
            auto [it, inserted] = run_marks.try_emplace(w, run.conf);
            if (!inserted) it->second = worse(it->second, run.conf);
          }
        }
        break;
      }
      case RecordKind::kEpochSeal:
        break;
    }
  });
  if (!decode_ok) return false;

  const std::uint32_t new_id = next_segment_id_++;
  SegmentHeader header;
  header.tier = new_tier;
  header.window_shift = src.header.window_shift;
  header.segment_id = new_id;
  header.base_epoch = src.header.base_epoch;
  header.replaces_segment_id = segment_id;
  const std::string final_path =
      cfg_.dir + "/" + segment_file_name(new_id, new_tier);
  const std::string tmp_path = final_path + ".tmp";
  SegmentWriter writer(tmp_path, header, &cache_, new_id, cfg_.fsync_on_seal,
                       io_);
  if (!writer.ok()) return false;

  const std::uint32_t out_epoch = src.max_epoch;
  std::unordered_map<std::uint64_t, std::vector<ChunkRef>> new_chunks;
  for (auto& [packed, fa] : acc) {
    std::vector<std::pair<CoeffCurveRecord, std::uint64_t>> outputs;
    if (src.header.tier == 0) {
      // Split the flow's windows into chunks aligned on absolute window
      // boundaries (stable across compactions), densify, transform.
      const WindowId stride = static_cast<WindowId>(cfg_.max_chunk_windows);
      auto it = fa.windows.begin();
      while (it != fa.windows.end()) {
        const WindowId base = (it->first / stride) * stride;
        const WindowId end = base + stride;
        const WindowId first = it->first;
        WindowId last = first;
        std::uint64_t chunk_source = sparse_payload_bytes(0);
        auto chunk_end = it;
        std::size_t nnz = 0;
        while (chunk_end != fa.windows.end() && chunk_end->first < end) {
          last = chunk_end->first;
          ++nnz;
          ++chunk_end;
        }
        chunk_source = sparse_payload_bytes(nnz);
        // Densify a power-of-two span aligned inside the stride chunk. The
        // forward transform pads to pow2 anyway; if the record's length were
        // shorter, the energy a truncated detail set leaks into the padding
        // would be cut off at reconstruction — total volume must survive
        // tiering exactly (only its distribution is approximate). Growing
        // the aligned span caps at the stride, so chunks never overlap.
        WindowId padded = static_cast<WindowId>(
            wavelet::next_pow2(static_cast<std::uint32_t>(last - first + 1)));
        WindowId w0 = base + ((first - base) / padded) * padded;
        while (last >= w0 + padded) {
          padded *= 2;
          w0 = base + ((first - base) / padded) * padded;
        }
        std::vector<double> dense(static_cast<std::size_t>(padded), 0.0);
        for (auto w = it; w != chunk_end; ++w) {
          dense[static_cast<std::size_t>(w->first - w0)] = w->second;
        }
        TierParams params;
        params.budget_coeffs = std::max<std::size_t>(1, cfg_.tier_budget / 2);
        params.max_payload_bytes = static_cast<std::size_t>(chunk_source / 2);
        outputs.emplace_back(tier_from_dense(fa.key, w0, dense, params),
                             chunk_source);
        it = chunk_end;
      }
    } else {
      for (CoeffCurveRecord& rec : fa.coeffs) {
        TierParams params;
        params.budget_coeffs = std::max<std::size_t>(
            1, cfg_.tier_budget >> (new_tier));
        const std::uint64_t source =
            coeff_payload_bytes(rec.approx.size(), rec.details.size());
        params.max_payload_bytes = static_cast<std::size_t>(source / 2);
        outputs.emplace_back(truncate_coeffs(rec, params), source);
      }
    }
    for (const auto& [rec, source] : outputs) {
      const SegmentWriter::AppendRef at =
          writer.append_coeff(out_epoch, rec, fa.worst);
      ChunkRef ref;
      ref.segment_id = new_id;
      ref.payload_offset = at.payload_offset;
      ref.payload_len = at.payload_len;
      ref.payload_crc = at.payload_crc;
      ref.kind = RecordKind::kCoeffCurve;
      ref.confidence = fa.worst;
      ref.epoch = out_epoch;
      ref.w0 = rec.w0;
      ref.w1 = rec.w0 + rec.length - 1;
      new_chunks[packed].push_back(ref);
    }
  }
  if (!run_marks.empty()) {
    const std::vector<ConfidenceRun> runs = runs_from_marks(run_marks);
    writer.append_confidence(out_epoch, runs);
  }
  if (!writer.seal_epoch(out_epoch) || !writer.finish()) {
    (void)io_->unlink(tmp_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }
  const std::uint64_t out_bytes = writer.bytes();

  // Commit point: after the rename the new segment is authoritative (its
  // header names the source via replaces_segment_id, so a crash before the
  // unlink is healed at the next open).
  if (io_->rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    (void)io_->unlink(tmp_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }
  auto reader = SegmentReader::open(final_path, &cache_, new_id, writable_,
                                    io_);
  if (!reader.has_value()) {
    // The renamed output does not read back (IO loss): disown it and keep
    // the source authoritative. Leaving it on disk would let the next
    // maintain() compact the source again, producing two survivors that
    // both replace the same segment id — recovery would keep both and
    // double-count every record.
    (void)io_->unlink(final_path.c_str());
    cache_.drop_file(new_id);
    return false;
  }

  Segment out;
  out.header = reader->header();
  out.path = final_path;
  out.bytes = out_bytes;
  out.max_epoch = out_epoch;
  out.reader = std::move(*reader);

  if (cfg_.repair_grace_epochs > 0) {
    // Read-repair grace: the exact source keeps serving (and stays on
    // disk); the coarse output waits in the wings. A crash in this window
    // is safe — recovery sees replaces_segment_id and keeps exactly one of
    // the pair (the coarse copy).
    segments_.emplace(new_id, std::move(out));
    Shadow sh;
    sh.source_id = segment_id;
    sh.shadow_id = new_id;
    sh.swap_epoch = epoch_ + cfg_.repair_grace_epochs;
    sh.chunks = std::move(new_chunks);
    shadows_.push_back(std::move(sh));
  } else {
    // Swap the index over, then unlink the source.
    for (auto& [packed, entry] : flows_) {
      auto& chunks = entry.chunks;
      chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                  [segment_id](const ChunkRef& c) {
                                    return c.segment_id == segment_id;
                                  }),
                   chunks.end());
      const auto fresh = new_chunks.find(packed);
      if (fresh != new_chunks.end()) {
        chunks.insert(chunks.end(), fresh->second.begin(),
                      fresh->second.end());
      }
    }
    remove_segment_locked(segment_id);
    segments_.emplace(new_id, std::move(out));
  }
  ++generation_;

  ++stats_.segments_created;
  stats_.compaction_input_bytes += input_bytes;
  stats_.compaction_output_bytes += out_bytes;
  ins_->segments_created->inc();
  ins_->compaction_in->inc(input_bytes);
  ins_->compaction_out->inc(out_bytes);
  if (new_tier == 1) {
    ++stats_.compactions_tier1;
  } else {
    ++stats_.compactions_tier2;
  }
  if (ins_->compactions[new_tier] != nullptr) {
    ins_->compactions[new_tier]->inc();
  }
  return true;
}

void Store::remove_segment_locked(std::uint32_t segment_id) {
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return;
  if (it->second.reader.has_value()) it->second.reader->close();
  (void)io_->unlink(it->second.path.c_str());
  cache_.drop_file(segment_id);
  segments_.erase(it);
  ++stats_.segments_removed;
  ins_->segments_removed->inc();
}

void Store::swap_due_shadows_locked() {
  for (std::size_t i = 0; i < shadows_.size();) {
    if (epoch_ < shadows_[i].swap_epoch) {
      ++i;
      continue;
    }
    const Shadow sh = std::move(shadows_[i]);
    shadows_.erase(shadows_.begin() + static_cast<std::ptrdiff_t>(i));
    // Grace expired: the coarse copy becomes authoritative. Chunks promoted
    // early (read-repair) are already in the index — skip them.
    for (auto& [packed, entry] : flows_) {
      auto& chunks = entry.chunks;
      chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                  [&sh](const ChunkRef& c) {
                                    return c.segment_id == sh.source_id;
                                  }),
                   chunks.end());
    }
    for (const auto& [packed, fresh] : sh.chunks) {
      auto fit = flows_.find(packed);
      if (fit == flows_.end()) continue;
      auto& chunks = fit->second.chunks;
      for (const ChunkRef& ref : fresh) {
        const bool present = std::any_of(
            chunks.begin(), chunks.end(), [&ref](const ChunkRef& c) {
              return c.segment_id == ref.segment_id &&
                     c.payload_offset == ref.payload_offset;
            });
        if (!present) chunks.push_back(ref);
      }
    }
    // umon-sca: allow(SA002) background maintenance, bounded per call (see
    // maintain): unlinking the expired source keeps the swap atomic versus
    // queries.
    remove_segment_locked(sh.source_id);
    ++generation_;
  }
}

void Store::quarantine_chunks_locked(std::uint64_t packed,
                                     const std::vector<ChunkRef>& bad,
                                     std::size_t* repaired,
                                     std::uint64_t* windows_lost) {
  auto fit = flows_.find(packed);
  if (fit == flows_.end()) return;
  auto& chunks = fit->second.chunks;
  auto same_chunk = [](const ChunkRef& a, const ChunkRef& b) {
    return a.segment_id == b.segment_id &&
           a.payload_offset == b.payload_offset;
  };
  for (const ChunkRef& b : bad) {
    const bool present = std::any_of(
        chunks.begin(), chunks.end(),
        [&](const ChunkRef& c) { return same_chunk(c, b); });
    if (!present) continue;  // an earlier repair already replaced it
    ++stats_.chunks_quarantined;
    ins_->quarantined->inc();

    // Read-repair: a still-live shadow of this segment may hold a coarser
    // copy of the same windows. Promote every covering shadow chunk; each
    // promotion replaces ALL of the flow's source chunks it overlaps (the
    // coarse chunk re-aggregates them — serving both would double-count
    // the volume).
    bool repaired_this = false;
    for (Shadow& sh : shadows_) {
      if (sh.source_id != b.segment_id) continue;
      const auto scit = sh.chunks.find(packed);
      if (scit == sh.chunks.end()) break;
      std::vector<std::uint8_t> buf;
      for (const ChunkRef& sc : scit->second) {
        if (sc.w1 < b.w0 || sc.w0 > b.w1) continue;
        // Trust the shadow bytes only after their own CRC verifies — the
        // rot could have hit both copies.
        buf.resize(sc.payload_len);
        const int fd = fd_for_segment(sc.segment_id);
        if (!cache_.read(sc.segment_id, fd, sc.payload_offset,
                         std::span<std::uint8_t>(buf)) ||
            resilience::crc32c(buf.data(), buf.size()) != sc.payload_crc) {
          continue;
        }
        chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                    [&](const ChunkRef& c) {
                                      return c.segment_id == b.segment_id &&
                                             c.w1 >= sc.w0 && c.w0 <= sc.w1;
                                    }),
                     chunks.end());
        const bool already = std::any_of(
            chunks.begin(), chunks.end(),
            [&](const ChunkRef& c) { return same_chunk(c, sc); });
        if (!already) {
          ChunkRef promoted = sc;
          promoted.confidence =
              worse(promoted.confidence, WindowConfidence::kGapFilled);
          chunks.push_back(promoted);
        }
        mark_confidence_locked(sc.w0, sc.w1 + 1,
                               WindowConfidence::kGapFilled);
        repaired_this = true;
      }
      break;
    }
    if (repaired_this) {
      ++stats_.chunks_repaired;
      ins_->repaired->inc();
      if (repaired != nullptr) ++*repaired;
    } else {
      chunks.erase(std::remove_if(chunks.begin(), chunks.end(),
                                  [&](const ChunkRef& c) {
                                    return same_chunk(c, b);
                                  }),
                   chunks.end());
      mark_confidence_locked(b.w0, b.w1 + 1, WindowConfidence::kLost);
      if (windows_lost != nullptr) {
        *windows_lost += static_cast<std::uint64_t>(b.w1 - b.w0 + 1);
      }
    }
  }
}

void Store::publish_gauges_locked() {
  TierUsage usage[3];
  for (const auto& [id, seg] : segments_) {
    const std::uint8_t tier = std::min<std::uint8_t>(seg.header.tier, 2);
    ++usage[tier].segments;
    usage[tier].bytes += (active_ != nullptr && active_->file_id() == id)
                             ? active_->bytes()
                             : seg.bytes;
  }
  std::size_t lag = 0;
  if (cfg_.tier1_age_epochs > 0) {
    for (const auto& [id, seg] : segments_) {
      if (!seg.reader.has_value() || seg.header.tier >= 2) continue;
      const std::uint32_t age =
          epoch_ > seg.max_epoch ? epoch_ - seg.max_epoch : 0;
      const std::uint32_t need = seg.header.tier == 0 ? cfg_.tier1_age_epochs
                                                      : cfg_.tier2_age_epochs;
      if (age >= need) ++lag;
    }
  }
  for (int t = 0; t < 3; ++t) {
    stats_.tiers[t] = usage[t];
    ins_->tier_segments[t]->set(static_cast<std::int64_t>(usage[t].segments));
    ins_->tier_bytes[t]->set(static_cast<std::int64_t>(usage[t].bytes));
  }
  ins_->compaction_lag->set(static_cast<std::int64_t>(lag));

  const PageCacheStats cs = cache_.stats();
  ins_->cache_hits->inc(cs.hits - cache_published_.hits);
  ins_->cache_misses->inc(cs.misses - cache_published_.misses);
  ins_->cache_evictions->inc(cs.evictions - cache_published_.evictions);
  ins_->cache_resident->set(static_cast<std::int64_t>(cs.resident_pages));
  ins_->cache_dirty->set(static_cast<std::int64_t>(cs.dirty_pages));
  cache_published_ = cs;
}

void Store::visit_flow(const FlowKey& flow, WindowId from, WindowId to,
                       const std::function<void(const ChunkView&)>& fn) {
  std::lock_guard lock(mutex_);
  const auto it = flows_.find(flow.packed());
  if (it == flows_.end()) return;

  // Deliver tier-0 (exact) chunks first, then deeper tiers, each in append
  // order, so consumers see the most precise data before approximations.
  std::vector<const ChunkRef*> order;
  order.reserve(it->second.chunks.size());
  for (const ChunkRef& c : it->second.chunks) {
    if (c.w1 < from || c.w0 >= to) continue;
    order.push_back(&c);
  }
  std::stable_sort(order.begin(), order.end(),
                   [this](const ChunkRef* a, const ChunkRef* b) {
                     const auto ta = segments_.find(a->segment_id);
                     const auto tb = segments_.find(b->segment_id);
                     const std::uint8_t tier_a =
                         ta == segments_.end() ? 0 : ta->second.header.tier;
                     const std::uint8_t tier_b =
                         tb == segments_.end() ? 0 : tb->second.header.tier;
                     return tier_a < tier_b;
                   });

  std::vector<std::uint8_t> buf;
  std::vector<ChunkRef> bad;
  for (const ChunkRef* c : order) {
    const int fd = fd_for_segment(c->segment_id);
    buf.resize(c->payload_len);
    if (!cache_.read(c->segment_id, fd, c->payload_offset,
                     std::span<std::uint8_t>(buf))) {
      continue;
    }
    // Never serve a byte that fails its frame CRC: rot that crept onto the
    // disk since the seal (and past the cache) is quarantined, not
    // returned.
    if (resilience::crc32c(buf.data(), buf.size()) != c->payload_crc) {
      bad.push_back(*c);
      continue;
    }
    const auto seg = segments_.find(c->segment_id);
    ChunkView view;
    view.tier = seg == segments_.end() ? 0 : seg->second.header.tier;
    view.kind = c->kind;
    view.confidence = c->confidence;
    if (c->kind == RecordKind::kSparseCurve) {
      const auto rec = decode_sparse(buf);
      if (!rec.has_value()) continue;
      view.sparse = &*rec;
      fn(view);
    } else if (c->kind == RecordKind::kCoeffCurve) {
      const auto rec = decode_coeff(buf);
      if (!rec.has_value()) continue;
      view.coeff = &*rec;
      fn(view);
    }
  }
  if (!bad.empty()) {
    // Quarantine inline: the offending read already skipped the bytes;
    // removing the chunks (and promoting any surviving shadow copies)
    // makes the next query see the repaired view, and the generation bump
    // invalidates every cached response assembled before the rot surfaced.
    quarantine_chunks_locked(flow.packed(), bad, nullptr, nullptr);
    ++generation_;
  }
}

std::vector<Store::ScrubTarget> Store::scrub_snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<ScrubTarget> targets;
  for (const auto& [id, seg] : segments_) {
    if (!seg.reader.has_value()) continue;  // active writer: tail unsealed
    targets.push_back(ScrubTarget{id, seg.header.tier, seg.path, seg.bytes});
  }
  return targets;
}

void Store::scrub_commit(const std::vector<ScrubDamage>& damaged,
                         ScrubReport* report) {
  std::lock_guard lock(mutex_);
  bool changed = false;
  for (const ScrubDamage& d : damaged) {
    const auto sit = segments_.find(d.target.id);
    if (sit == segments_.end() || !sit->second.reader.has_value() ||
        sit->second.path != d.target.path ||
        sit->second.bytes != d.target.bytes) {
      continue;  // compacted or rewritten since the snapshot: findings stale
    }
    for (const auto& [off, len] : d.ranges) {
      ScrubFinding finding;
      finding.segment_id = d.target.id;
      finding.tier = d.target.tier;
      finding.offset = off;
      finding.length = len;
      const std::uint64_t q_before = stats_.chunks_quarantined;
      const std::uint64_t r_before = stats_.chunks_repaired;
      for (auto& [packed, entry] : flows_) {
        std::vector<ChunkRef> bad;
        for (const ChunkRef& c : entry.chunks) {
          if (c.segment_id != d.target.id) continue;
          const std::uint64_t frame_begin =
              c.payload_offset - kRecordHeaderBytes;
          const std::uint64_t frame_end = c.payload_offset + c.payload_len;
          if (frame_end <= off || frame_begin >= off + len) continue;
          bad.push_back(c);
        }
        if (!bad.empty()) {
          std::size_t repaired = 0;
          quarantine_chunks_locked(packed, bad, &repaired,
                                   &report->windows_lost);
        }
      }
      finding.chunks_quarantined =
          static_cast<std::size_t>(stats_.chunks_quarantined - q_before);
      finding.chunks_repaired =
          static_cast<std::size_t>(stats_.chunks_repaired - r_before);
      report->chunks_quarantined += finding.chunks_quarantined;
      report->chunks_repaired += finding.chunks_repaired;
      if (finding.chunks_quarantined > 0 || finding.chunks_repaired > 0) {
        changed = true;
      }
      report->findings.push_back(finding);
    }
  }
  ++stats_.scrub_passes;
  stats_.scrub_corrupt_records += report->corrupt_records;
  ins_->scrub_passes->inc();
  ins_->scrub_records->inc(report->records_verified);
  ins_->scrub_corrupt->inc(report->corrupt_records);
  if (changed) ++generation_;
  publish_gauges_locked();
}

ScrubReport Store::scrub() {
  ScrubReport report;
  const std::vector<ScrubTarget> targets = scrub_snapshot();

  // Raw CRC walk, no store lock held: scrub competes with queries and the
  // writer for disk bandwidth only, never for the index. The walk reads
  // through its own fd — NOT the page cache — because the cache may still
  // hold the good pre-rot copy of a page and would mask on-disk damage.
  std::vector<ScrubDamage> damaged;
  std::vector<std::uint8_t> buf;
  for (const ScrubTarget& t : targets) {
    const int fd = io_->open(t.path.c_str(), O_RDONLY | O_CLOEXEC, 0);
    if (fd < 0) continue;  // compacted away since the snapshot
    ++report.segments_scanned;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    std::uint64_t pos = kSegmentHeaderBytes;
    while (pos + kRecordHeaderBytes <= t.bytes) {
      std::uint8_t raw[kRecordHeaderBytes];
      RecordHeader rh;
      if (io_->pread(fd, raw, sizeof(raw), static_cast<off_t>(pos)) !=
              static_cast<ssize_t>(sizeof(raw)) ||
          !decode_record_header(
              std::span<const std::uint8_t>(raw, sizeof(raw)), rh) ||
          !valid_record_kind(rh.kind) ||
          rh.payload_len > kMaxRecordPayload ||
          pos + kRecordHeaderBytes + rh.payload_len > t.bytes) {
        // The framing itself is destroyed: record lengths chain, so
        // nothing at or past this offset can be walked — treat the whole
        // tail as corrupt.
        ranges.emplace_back(pos, t.bytes - pos);
        ++report.corrupt_records;
        break;
      }
      buf.resize(rh.payload_len);
      bool ok = true;
      if (rh.payload_len > 0 &&
          io_->pread(fd, buf.data(), rh.payload_len,
                     static_cast<off_t>(pos + kRecordHeaderBytes)) !=
              static_cast<ssize_t>(rh.payload_len)) {
        ok = false;
      }
      if (ok &&
          resilience::crc32c(buf.data(), buf.size()) != rh.payload_crc) {
        ok = false;
      }
      if (ok) {
        ++report.records_verified;
      } else {
        ranges.emplace_back(pos, kRecordHeaderBytes + rh.payload_len);
        ++report.corrupt_records;
      }
      pos += kRecordHeaderBytes + rh.payload_len;
    }
    report.bytes_scanned += t.bytes;
    io_->close(fd);
    if (!ranges.empty()) {
      damaged.push_back(ScrubDamage{t, std::move(ranges)});
    }
  }

  scrub_commit(damaged, &report);
  return report;
}

std::vector<FlowKey> Store::flows() const {
  std::lock_guard lock(mutex_);
  std::vector<FlowKey> out;
  out.reserve(flows_.size());
  for (const auto& [packed, entry] : flows_) out.push_back(entry.key);
  std::sort(out.begin(), out.end(), [](const FlowKey& a, const FlowKey& b) {
    return a.packed() < b.packed();
  });
  return out;
}

bool Store::window_extent(WindowId& first, WindowId& last) const {
  std::lock_guard lock(mutex_);
  bool any = false;
  auto widen = [&](WindowId lo, WindowId hi) {
    if (!any) {
      first = lo;
      last = hi;
      any = true;
    } else {
      first = std::min(first, lo);
      last = std::max(last, hi);
    }
  };
  for (const auto& [packed, entry] : flows_) {
    for (const ChunkRef& c : entry.chunks) widen(c.w0, c.w1);
  }
  if (!marks_.empty()) {
    widen(marks_.begin()->first, std::prev(marks_.end())->first);
  }
  return any;
}

bool Store::flow_extent(const FlowKey& flow, WindowId& first,
                        WindowId& last) const {
  std::lock_guard lock(mutex_);
  const auto it = flows_.find(flow.packed());
  if (it == flows_.end() || it->second.chunks.empty()) return false;
  first = it->second.chunks.front().w0;
  last = it->second.chunks.front().w1;
  for (const ChunkRef& c : it->second.chunks) {
    first = std::min(first, c.w0);
    last = std::max(last, c.w1);
  }
  return true;
}

analyzer::WindowConfidence Store::worst_confidence(WindowId from,
                                                   WindowId to) const {
  std::lock_guard lock(mutex_);
  WindowConfidence worst = WindowConfidence::kCovered;
  for (auto it = marks_.lower_bound(from); it != marks_.end() && it->first < to;
       ++it) {
    worst = worse(worst, it->second);
  }
  return worst;
}

std::uint64_t Store::generation() const {
  std::lock_guard lock(mutex_);
  return generation_;
}

std::uint32_t Store::current_epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

std::optional<std::uint32_t> Store::last_sealed_epoch() const {
  std::lock_guard lock(mutex_);
  return last_sealed_;
}

StoreStats Store::stats() const {
  std::lock_guard lock(mutex_);
  StoreStats s = stats_;
  TierUsage usage[3];
  for (const auto& [id, seg] : segments_) {
    const std::uint8_t tier = std::min<std::uint8_t>(seg.header.tier, 2);
    ++usage[tier].segments;
    usage[tier].bytes += (active_ != nullptr && active_->file_id() == id)
                             ? active_->bytes()
                             : seg.bytes;
  }
  for (int t = 0; t < 3; ++t) s.tiers[t] = usage[t];
  s.cache = cache_.stats();
  return s;
}

}  // namespace umon::store
