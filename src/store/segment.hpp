// umon::store — append-only segment files: writer, reader, recovery.
//
// SegmentWriter buffers records in an in-memory tail (write-through into
// the page cache so fresh windows are queryable immediately) and makes them
// durable at epoch granularity: seal_epoch() appends a kEpochSeal record,
// pwrite()s the tail, and fsync()s. A crash can therefore only lose the
// epoch in flight, never a sealed one.
//
// SegmentReader walks the frames front to back, validating each payload's
// CRC32C, and reports where the trusted bytes end: `sealed_end` (one past
// the last verified kEpochSeal — everything before it is durable and
// consistent) and `valid_end` (one past the last record that merely framed
// and checksummed clean). Recovery truncates a writable segment to
// `sealed_end`, discarding both torn bytes and unsealed epochs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analyzer/curve_store.hpp"
#include "common/types.hpp"
#include "store/format.hpp"
#include "store/page_cache.hpp"
#include "wavelet/coeff.hpp"

namespace umon::store {

class FileIo;

/// Decoded kSparseCurve payload: exact (window, bytes) pairs of one flow.
struct SparseCurveRecord {
  FlowKey flow;
  std::vector<std::pair<WindowId, double>> windows;  ///< sorted by window
};

/// Decoded kCoeffCurve payload: one flow's curve chunk as last-level block
/// sums plus retained top-K detail coefficients, reconstructable with
/// wavelet::reconstruct(approx, details, length, levels).
struct CoeffCurveRecord {
  FlowKey flow;
  WindowId w0 = 0;            ///< absolute window of the chunk's first sample
  std::uint32_t length = 0;   ///< windows covered (reconstruction length)
  int levels = 0;
  std::vector<Count> approx;
  std::vector<wavelet::DetailCoeff> details;
};

/// One entry of a kConfidenceRun payload: [from, to) carries `conf`.
struct ConfidenceRun {
  WindowId from = 0;
  WindowId to = 0;
  analyzer::WindowConfidence conf = analyzer::WindowConfidence::kCovered;
};

// --- payload codecs ---------------------------------------------------------
void encode_sparse(const SparseCurveRecord& rec, std::vector<std::uint8_t>& out);
void encode_coeff(const CoeffCurveRecord& rec, std::vector<std::uint8_t>& out);
void encode_confidence(std::span<const ConfidenceRun> runs,
                       std::vector<std::uint8_t>& out);
[[nodiscard]] std::optional<SparseCurveRecord> decode_sparse(
    std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<CoeffCurveRecord> decode_coeff(
    std::span<const std::uint8_t> in);
[[nodiscard]] std::optional<std::vector<ConfidenceRun>> decode_confidence(
    std::span<const std::uint8_t> in);
/// Decode one on-disk record frame header (scrubber's raw walk).
[[nodiscard]] bool decode_record_header(std::span<const std::uint8_t> in,
                                        RecordHeader& header);

class SegmentWriter {
 public:
  /// Creates (truncating) `path` and stages the header. Nothing touches the
  /// disk until the first seal. Check ok() before use. A null `io` means
  /// real_io().
  SegmentWriter(std::string path, const SegmentHeader& header,
                PageCache* cache, std::uint32_t file_id,
                bool fsync_on_seal = true, FileIo* io = nullptr);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  struct AppendRef {
    std::uint64_t payload_offset = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t payload_crc = 0;
  };

  AppendRef append_sparse(std::uint32_t epoch, const SparseCurveRecord& rec,
                          analyzer::WindowConfidence worst);
  AppendRef append_coeff(std::uint32_t epoch, const CoeffCurveRecord& rec,
                         analyzer::WindowConfidence worst);
  void append_confidence(std::uint32_t epoch,
                         std::span<const ConfidenceRun> runs);

  /// Append the seal record, pwrite the buffered tail, fsync. Returns false
  /// on an IO error (the tail stays buffered; the epoch is not durable).
  /// Equivalent to seal_prepare + seal_sync + seal_commit back to back.
  [[nodiscard]] bool seal_epoch(std::uint32_t epoch);

  /// Phase 1 of a split seal: append the kEpochSeal record and pwrite the
  /// buffered tail (cheap — OS page cache). Records the extent that the
  /// next seal_sync makes durable. Call with the store lock held.
  [[nodiscard]] bool seal_prepare(std::uint32_t epoch);

  /// Phase 2: fsync the prepared extent. This is the expensive durability
  /// stall — call it WITHOUT the store lock so appends and queries proceed.
  /// Only fd_ is touched; concurrent appends (which buffer and
  /// write-through) are safe.
  [[nodiscard]] bool seal_sync() const;

  /// Phase 3: flip page-cache pages fully below the synced extent to clean
  /// and count the seal. Call with the store lock re-taken after seal_sync
  /// succeeded. Pages dirtied by appends that ran during the sync stay
  /// dirty.
  void seal_commit();

  /// Flush any remaining tail and close. Idempotent. On a failed flush or
  /// fsync the file's dirty page-cache pages are left dirty: the bytes they
  /// hold may no longer exist on disk, and cleaning them would let eviction
  /// replace acknowledged data with whatever the failed disk kept.
  bool finish();

  [[nodiscard]] std::uint64_t bytes() const { return offset_; }
  [[nodiscard]] std::uint32_t epochs_sealed() const { return epochs_sealed_; }
  [[nodiscard]] const SegmentHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint32_t file_id() const { return file_id_; }

 private:
  AppendRef append_record(RecordKind kind, std::uint32_t epoch,
                          std::uint8_t confidence, std::uint16_t flow_hash16,
                          std::span<const std::uint8_t> payload);
  bool flush_tail();

  std::string path_;
  SegmentHeader header_;
  PageCache* cache_;
  std::uint32_t file_id_;
  bool fsync_on_seal_;
  FileIo* io_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;      ///< logical end of the segment
  std::uint64_t tail_base_ = 0;   ///< file offset the tail buffer starts at
  std::vector<std::uint8_t> tail_;
  std::vector<std::uint8_t> scratch_;
  std::uint32_t epochs_sealed_ = 0;
  std::uint64_t prepared_end_ = 0;  ///< extent pwritten by seal_prepare
};

class SegmentReader {
 public:
  /// Opens and validates the fixed header. Returns nullopt when the file is
  /// missing, too short, or the header fails magic/version/CRC checks.
  static std::optional<SegmentReader> open(const std::string& path,
                                           PageCache* cache,
                                           std::uint32_t file_id,
                                           bool writable = false,
                                           FileIo* io = nullptr);

  struct ScanResult {
    std::uint64_t valid_end = 0;    ///< one past the last clean record
    std::uint64_t sealed_end = 0;   ///< one past the last verified seal
    std::optional<std::uint32_t> max_sealed_epoch;
    bool torn = false;              ///< bytes past valid_end exist
    std::size_t sealed_records = 0;
    std::size_t unsealed_records = 0;  ///< clean but past the last seal
  };

  using RecordFn = std::function<void(const RecordHeader&,
                                      std::uint64_t payload_offset,
                                      std::span<const std::uint8_t> payload)>;

  /// Two passes: frame-walk to find sealed_end, then deliver every record
  /// strictly before it (second pass mostly hits the page cache). `fn` may
  /// be null to probe the file without consuming it.
  ScanResult scan(const RecordFn& fn);

  /// Truncate the file to `end` (recovery of a torn/unsealed tail).
  /// Requires the reader to have been opened writable.
  [[nodiscard]] bool truncate_to(std::uint64_t end);

  /// Read one payload (for on-demand query reads). Returns false on IO
  /// error or out-of-range reads.
  [[nodiscard]] bool read_payload(std::uint64_t payload_offset,
                                  std::uint32_t payload_len,
                                  std::vector<std::uint8_t>& out);

  [[nodiscard]] const SegmentHeader& header() const { return header_; }
  [[nodiscard]] std::uint64_t file_size() const { return file_size_; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint32_t file_id() const { return file_id_; }

  void close();
  ~SegmentReader();
  SegmentReader(SegmentReader&& other) noexcept;
  SegmentReader& operator=(SegmentReader&& other) noexcept;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

 private:
  SegmentReader() = default;

  SegmentHeader header_;
  PageCache* cache_ = nullptr;
  FileIo* io_ = nullptr;
  std::uint32_t file_id_ = 0;
  int fd_ = -1;
  std::uint64_t file_size_ = 0;
};

/// Encoded size of the header as laid out on disk (== sizeof, all fields
/// naturally aligned — pinned by the static_asserts in format.hpp).
constexpr std::uint64_t kSegmentHeaderBytes = sizeof(SegmentHeader);
constexpr std::uint64_t kRecordHeaderBytes = sizeof(RecordHeader);

/// Canonical segment file name: seg-<id 8 hex>-t<tier>.useg
[[nodiscard]] std::string segment_file_name(std::uint32_t segment_id,
                                            std::uint8_t tier);
/// Parse a segment file name; returns false for foreign files.
[[nodiscard]] bool parse_segment_file_name(const std::string& name,
                                           std::uint32_t& segment_id,
                                           std::uint8_t& tier);

}  // namespace umon::store
