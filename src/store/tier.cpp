#include "store/tier.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "wavelet/haar.hpp"
#include "wavelet/reconstruct.hpp"
#include "wavelet/store.hpp"

namespace umon::store {
namespace {

/// Shrink `details` (already sorted by descending L2 weight) until the
/// record fits `params`, then restore (level, index) order for the wire.
void clamp_and_sort(std::vector<wavelet::DetailCoeff>& details,
                    std::size_t approx_count, const TierParams& params) {
  std::size_t keep = std::min(details.size(), params.budget_coeffs);
  if (params.max_payload_bytes > 0) {
    while (keep > 0 &&
           coeff_payload_bytes(approx_count, keep) > params.max_payload_bytes) {
      --keep;
    }
  }
  details.resize(keep);
  std::sort(details.begin(), details.end(),
            [](const wavelet::DetailCoeff& a, const wavelet::DetailCoeff& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.index < b.index;
            });
}

}  // namespace

CoeffCurveRecord tier_from_dense(const FlowKey& flow, WindowId w0,
                                 std::span<const double> dense,
                                 const TierParams& params) {
  CoeffCurveRecord rec;
  rec.flow = flow;
  rec.w0 = w0;
  rec.length = static_cast<std::uint32_t>(dense.size());

  std::vector<Count> counts(dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    counts[i] = static_cast<Count>(std::llround(dense[i]));
  }

  const std::uint32_t padded = wavelet::next_pow2(rec.length);
  const int full_depth =
      wavelet::effective_levels(padded, 8 * static_cast<int>(sizeof(padded)));
  const wavelet::Decomposition d = wavelet::haar_forward(counts, full_depth);
  rec.levels = d.levels;
  rec.approx = d.approx;

  // Rank every nonzero detail by L2 weight; clamp_and_sort keeps the head.
  std::vector<wavelet::DetailCoeff> ranked;
  for (int l = 0; l < d.levels; ++l) {
    const auto& row = d.details[static_cast<std::size_t>(l)];
    for (std::uint32_t j = 0; j < row.size(); ++j) {
      if (row[j] == 0) continue;
      ranked.push_back(wavelet::DetailCoeff{static_cast<std::uint8_t>(l), j,
                                            row[j]});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const wavelet::DetailCoeff& a, const wavelet::DetailCoeff& b) {
              const double wa = wavelet::l2_weight(a);
              const double wb = wavelet::l2_weight(b);
              if (wa != wb) return wa > wb;
              if (a.level != b.level) return a.level < b.level;
              return a.index < b.index;
            });
  clamp_and_sort(ranked, rec.approx.size(), params);
  rec.details = std::move(ranked);
  return rec;
}

CoeffCurveRecord truncate_coeffs(const CoeffCurveRecord& in,
                                 const TierParams& params) {
  CoeffCurveRecord rec;
  rec.flow = in.flow;
  rec.w0 = in.w0;
  rec.length = in.length;
  rec.levels = in.levels;
  rec.approx = in.approx;
  rec.details = in.details;
  std::sort(rec.details.begin(), rec.details.end(),
            [](const wavelet::DetailCoeff& a, const wavelet::DetailCoeff& b) {
              const double wa = wavelet::l2_weight(a);
              const double wb = wavelet::l2_weight(b);
              if (wa != wb) return wa > wb;
              if (a.level != b.level) return a.level < b.level;
              return a.index < b.index;
            });
  clamp_and_sort(rec.details, rec.approx.size(), params);
  return rec;
}

double reconstruction_nmse(const CoeffCurveRecord& rec,
                           std::span<const double> reference) {
  const std::vector<double> got =
      wavelet::reconstruct(rec.approx, rec.details, rec.length, rec.levels);
  double err = 0.0;
  double ref = 0.0;
  const std::size_t n = std::min(got.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double want = reference[i];
    const double have = i < n ? got[i] : 0.0;
    err += (have - want) * (have - want);
    ref += want * want;
  }
  if (ref == 0.0) return err == 0.0 ? 0.0 : 1.0;
  return err / ref;
}

}  // namespace umon::store
