// Deterministic fault injection for chaos runs. A FaultPlan is a seeded
// schedule of faults parsed from a small text format; a FaultInjector is the
// runtime that UploadChannel, the epoch driver, and the Collector consult.
// Every stochastic decision comes from one seeded Rng consumed in
// send/tick order, so two executions of the same plan against the same
// workload seed are byte-reproducible end to end.
//
// Plan file format — one directive per line, '#' starts a comment, times
// accept ns/us/ms/s suffixes (bare numbers are nanoseconds):
//
//   seed 42
//   burst-loss from=2ms to=4ms loss=1.0        # channel drop prob in window
//   blackout   from=6ms to=7ms                 # shorthand for loss=1.0
//   duplicate  from=0 to=20ms prob=0.05        # deliver the payload twice
//   reorder    from=0 to=20ms prob=0.2 jitter=300us  # extra delivery delay
//   corrupt    from=3ms to=5ms prob=0.1 bits=3 # flip N payload bits
//   stall-host host=2 from=4ms to=6ms          # host neither flushes nor sends
//   crash-shard shard=1 at=5ms restart=7ms     # collector shard loses state
//
// Disk directives drive the store's injectable file-I/O shim
// (store::FaultyIo). Counts are 1-based occurrence indices over the whole
// run, in deterministic syscall order:
//
//   disk-fail    op=write nth=3 errno=enospc   # Nth pwrite fails (eio|enospc)
//   disk-fail    op=fsync nth=2                # Nth fsync "lies": returns -1
//                                              # and the kernel drops the
//                                              # not-yet-durable tail
//   disk-short   nth=4 bytes=7                 # Nth pwrite lands only B bytes
//   disk-corrupt seal=2 bits=5                 # flip N seeded record bits
//                                              # after the 2nd durable fsync
//   disk-abort   nth=9                         # _exit at the Nth mutating
//                                              # I/O op (crash torture)
//
// Directives of the same type may repeat (e.g. several loss bursts); windows
// are inclusive of `from`, exclusive of `to`. Two disk directives aiming at
// the same occurrence of the same operation overlap and are rejected at
// parse time, as is any unknown directive key.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace umon::resilience {

/// One channel-level fault window.
struct ChannelFault {
  enum class Kind { kLoss, kDuplicate, kReorder, kCorrupt };
  Kind kind = Kind::kLoss;
  Nanos from = 0;
  Nanos to = 0;          ///< exclusive
  double prob = 1.0;     ///< per-payload trigger probability
  Nanos extra_jitter = 0;  ///< kReorder: extra delay drawn from [0, jitter)
  int bits = 1;          ///< kCorrupt: payload bits flipped per trigger
};

struct HostStall {
  int host = -1;
  Nanos from = 0;
  Nanos to = 0;  ///< exclusive
};

struct ShardCrash {
  int shard = -1;
  Nanos at = 0;
  Nanos restart = 0;  ///< <= at means the shard never restarts
};

/// One disk-level fault, consumed by the store's injectable I/O shim.
struct DiskFault {
  enum class Kind {
    kFail,     ///< the Nth matching syscall returns -1 (with `err`)
    kShort,    ///< the Nth pwrite lands only `bytes` bytes
    kCorrupt,  ///< after the Nth durable fsync, flip `bits` seeded bits
    kAbort,    ///< _exit the process at the Nth mutating I/O op
  };
  enum class Op { kWrite, kFsync, kAny };
  Kind kind = Kind::kFail;
  Op op = Op::kAny;
  std::uint64_t nth = 0;     ///< 1-based occurrence index
  int err = 0;               ///< kFail: injected errno (EIO / ENOSPC)
  std::uint32_t bytes = 0;   ///< kShort: bytes actually written
  int bits = 1;              ///< kCorrupt: record bits flipped
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<ChannelFault> channel;
  std::vector<HostStall> stalls;
  std::vector<ShardCrash> crashes;
  std::vector<DiskFault> disk;

  [[nodiscard]] bool empty() const {
    return channel.empty() && stalls.empty() && crashes.empty() &&
           disk.empty();
  }

  /// Parse the text format above. Returns nullopt and sets *error on the
  /// first malformed, overlapping, or unknown-key directive; `source` names
  /// the plan in error messages as `<source>:<line>: <msg>`.
  [[nodiscard]] static std::optional<FaultPlan> parse(
      std::istream& in, std::string* error,
      const std::string& source = "fault plan");
  [[nodiscard]] static std::optional<FaultPlan> parse_file(
      const std::string& path, std::string* error);
};

/// What the injector decided for one payload about to enter the channel.
struct FaultAction {
  bool drop = false;
  bool corrupted = false;
  int duplicates = 0;    ///< extra copies to enqueue
  Nanos extra_delay = 0; ///< added to the copy's delivery time
};

/// Tally of injected faults, for the end-of-run chaos summary.
struct FaultStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t delays = 0;
  std::uint64_t stalled_flushes = 0;
};

/// Runtime for one plan. Not thread-safe: on_send/host_stalled/
/// take_due_shard_events are called from the (single-threaded) driver and
/// channel in deterministic order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed ^ 0xFA17ED00ULL) {}

  /// Decide the fate of one payload sent at `now`; corruption mutates
  /// `payload` in place (deterministic bit flips).
  [[nodiscard]] FaultAction on_send(int host, Nanos now,
                                    std::vector<std::uint8_t>& payload);

  /// True while `host` is inside a stall window (the driver then skips the
  /// epoch flush; the sketch keeps accumulating).
  [[nodiscard]] bool host_stalled(int host, Nanos now);

  /// Shard crash/restart events that became due at or before `now`, in
  /// schedule order; each event is returned exactly once.
  struct ShardEvent {
    int shard = -1;
    bool restart = false;  ///< false = crash, true = restart
    Nanos at = 0;
  };
  [[nodiscard]] std::vector<ShardEvent> take_due_shard_events(Nanos now);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  std::vector<ShardEvent> schedule_;   ///< lazily built, sorted by time
  std::size_t next_event_ = 0;
  bool schedule_built_ = false;
};

}  // namespace umon::resilience
