// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the reliable uplink stamps on every frame so corrupted payloads
// are rejected at the collector instead of decoded into garbage curves.
//
// Software slice-by-1 table implementation: the uplink path checksums a few
// KB per measurement epoch, far below where slice-by-8 or SSE4.2 would
// matter, and a single table keeps the header freestanding (no SIMD
// dispatch, no build flags). The table is built constexpr so there is no
// runtime init order to reason about.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace umon::resilience {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// Extend a running CRC32C with `len` bytes. Start from crc32c_init() and
/// pass the previous return value to process data in chunks; finalize with
/// crc32c_finish().
[[nodiscard]] constexpr std::uint32_t crc32c_update(std::uint32_t crc,
                                                    const std::uint8_t* data,
                                                    std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    crc = detail::kCrc32cTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32c_init() { return 0xFFFFFFFFu; }
[[nodiscard]] constexpr std::uint32_t crc32c_finish(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot convenience over a whole buffer.
[[nodiscard]] constexpr std::uint32_t crc32c(const std::uint8_t* data,
                                             std::size_t len) {
  return crc32c_finish(crc32c_update(crc32c_init(), data, len));
}

// RFC 3720 B.4 test vector: 32 zero bytes -> 0x8A9136AA. Checked at compile
// time so a table or polynomial regression cannot reach runtime.
namespace detail {
constexpr std::array<std::uint8_t, 32> kRfc3720Zeros{};
static_assert(crc32c(kRfc3720Zeros.data(), kRfc3720Zeros.size()) ==
                  0x8A9136AAu,
              "CRC32C does not match the RFC 3720 reference vector");
}  // namespace detail

}  // namespace umon::resilience
