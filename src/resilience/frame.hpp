// Reliable-uplink frame format, layered *around* the v2 report wire format:
// the inner payload bytes (a sketch::encode_batch() buffer, or an ACK body)
// are untouched, so the collector's framing scan and decoders never change.
//
// Frame layout (little-endian, 28-byte header):
//
//   uint16 magic      0x5AFE
//   uint8  version    1
//   uint8  kind       0 = data, 1 = ack
//   uint32 host       sending host (data) / addressed host (ack)
//   uint32 frame_seq  per-host frame sequence (data); acks echo 0
//   uint32 epoch      measurement epoch the payload belongs to
//   uint32 base_seq   sender's lowest retained frame_seq (data); acks echo 0.
//                     Every seq below it was acked or abandoned, so the
//                     receiver advances its cumulative counter past holes
//                     the sender will never resend instead of NACKing them
//                     forever.
//   uint32 payload_len
//   uint32 crc32c     over the header (crc field zeroed) + payload
//   payload_len bytes of payload
//
// ACK payload body (collector -> host, over the reverse channel):
//
//   uint32 cum_ack            every frame_seq < cum_ack was received
//   uint32 max_seen           one past the highest frame_seq received; with
//                             the nack list this bounds the scanned range,
//                             letting the sender release any seq in it that
//                             was not NACKed (SACK-style release)
//   uint32 nack_count         explicit retransmit requests that follow
//   nack_count x uint32       missing frame_seqs in [cum_ack, max_seen)
//
// The CRC covers the header too, so a frame whose length field was corrupted
// in flight cannot trick the decoder into reading a stale tail as payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

namespace umon::resilience {

enum class FrameKind : std::uint8_t { kData = 0, kAck = 1 };

/// Decoded view of one frame. `payload` is a copy of the inner bytes (the
/// channel consumed the buffer they arrived in).
// umon-lint: wire-struct
struct Frame {
  FrameKind kind = FrameKind::kData;
  std::uint32_t host = 0;
  std::uint32_t frame_seq = 0;
  std::uint32_t epoch = 0;
  std::uint32_t base_seq = 0;
  std::vector<std::uint8_t> payload;
};
static_assert(std::is_nothrow_move_constructible_v<Frame>,
              "frames move through the retransmit buffer and the channel");

/// Cumulative ACK + NACK list carried by a kAck frame.
// umon-lint: wire-struct
struct AckBody {
  std::uint32_t cum_ack = 0;
  std::uint32_t max_seen = 0;  ///< one past the highest frame_seq received
  std::vector<std::uint32_t> nacks;
};
static_assert(std::is_nothrow_move_constructible_v<AckBody>);

/// Bytes of the fixed frame header on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 28;
/// Upper bound on the nack list one ack frame carries; anything still
/// missing is requested by a later ack (or recovered by sender timeout).
inline constexpr std::size_t kMaxNacksPerAck = 64;

/// Encode a data frame wrapping `payload`. `base_seq` is the sender's
/// lowest retained frame_seq at encode time.
[[nodiscard]] std::vector<std::uint8_t> encode_data_frame(
    std::uint32_t host, std::uint32_t frame_seq, std::uint32_t epoch,
    std::uint32_t base_seq, std::span<const std::uint8_t> payload);

/// Patch the base_seq field of an already-encoded data frame (retransmits
/// advertise the sender's *current* base) and fix up the CRC.
void rewrite_base_seq(std::vector<std::uint8_t>& frame,
                      std::uint32_t base_seq);

/// Encode an ack frame addressed to `host`.
[[nodiscard]] std::vector<std::uint8_t> encode_ack_frame(std::uint32_t host,
                                                         const AckBody& body);

/// Decode and CRC-verify one frame. nullopt on truncation, bad magic/version,
/// length mismatch, or checksum failure — the caller counts those as
/// corrupt and drops them (the retransmit protocol recovers the data).
[[nodiscard]] std::optional<Frame> decode_frame(
    std::span<const std::uint8_t> in);

/// Parse the payload of a kAck frame. nullopt if the body is malformed.
[[nodiscard]] std::optional<AckBody> decode_ack_body(
    std::span<const std::uint8_t> payload);

}  // namespace umon::resilience
