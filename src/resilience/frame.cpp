#include "resilience/frame.hpp"

#include <cstring>

#include "resilience/crc32c.hpp"

namespace umon::resilience {
namespace {

constexpr std::uint16_t kMagic = 0x5AFE;
constexpr std::uint8_t kVersion = 1;
/// A frame payload never exceeds one upload payload (a few hundred reports)
/// or one ack body; reject absurd lengths before allocating.
constexpr std::uint32_t kMaxPayload = 1u << 24;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &value, sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t> in, std::size_t& offset, T& value) {
  if (in.size() - offset < sizeof(T)) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

/// Field offsets within the header (see the layout in frame.hpp):
/// magic(2) version(1) kind(1) host(4) frame_seq(4) epoch(4) base_seq(4)
/// payload_len(4) crc(4).
constexpr std::size_t kBaseSeqOffset = 16;
constexpr std::size_t kCrcOffset = 24;

std::vector<std::uint8_t> encode_frame(FrameKind kind, std::uint32_t host,
                                       std::uint32_t frame_seq,
                                       std::uint32_t epoch,
                                       std::uint32_t base_seq,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint8_t>(kind));
  put(out, host);
  put(out, frame_seq);
  put(out, epoch);
  put(out, base_seq);
  put(out, static_cast<std::uint32_t>(payload.size()));
  put(out, std::uint32_t{0});  // crc placeholder
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32c(out.data(), out.size());
  std::memcpy(out.data() + kCrcOffset, &crc, sizeof(crc));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_data_frame(
    std::uint32_t host, std::uint32_t frame_seq, std::uint32_t epoch,
    std::uint32_t base_seq, std::span<const std::uint8_t> payload) {
  return encode_frame(FrameKind::kData, host, frame_seq, epoch, base_seq,
                      payload);
}

void rewrite_base_seq(std::vector<std::uint8_t>& frame,
                      std::uint32_t base_seq) {
  std::memcpy(frame.data() + kBaseSeqOffset, &base_seq, sizeof(base_seq));
  std::memset(frame.data() + kCrcOffset, 0, 4);
  const std::uint32_t crc = crc32c(frame.data(), frame.size());
  std::memcpy(frame.data() + kCrcOffset, &crc, sizeof(crc));
}

std::vector<std::uint8_t> encode_ack_frame(std::uint32_t host,
                                           const AckBody& body) {
  std::vector<std::uint8_t> payload;
  payload.reserve(12 + body.nacks.size() * 4);
  put(payload, body.cum_ack);
  put(payload, body.max_seen);
  put(payload, static_cast<std::uint32_t>(body.nacks.size()));
  for (std::uint32_t seq : body.nacks) put(payload, seq);
  return encode_frame(FrameKind::kAck, host, /*frame_seq=*/0, /*epoch=*/0,
                      /*base_seq=*/0, payload);
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> in) {
  if (in.size() < kFrameHeaderBytes) return std::nullopt;
  std::size_t offset = 0;
  std::uint16_t magic;
  std::uint8_t version, kind;
  Frame f;
  std::uint32_t payload_len, stored_crc;
  if (!get(in, offset, magic) || magic != kMagic) return std::nullopt;
  if (!get(in, offset, version) || version != kVersion) return std::nullopt;
  if (!get(in, offset, kind) || kind > 1) return std::nullopt;
  if (!get(in, offset, f.host) || !get(in, offset, f.frame_seq) ||
      !get(in, offset, f.epoch) || !get(in, offset, f.base_seq) ||
      !get(in, offset, payload_len) || !get(in, offset, stored_crc)) {
    return std::nullopt;
  }
  if (payload_len > kMaxPayload) return std::nullopt;
  // The declared payload must match the delivered buffer exactly: the CRC
  // covers everything, so trailing or missing bytes are always detectable.
  if (in.size() - kFrameHeaderBytes != payload_len) return std::nullopt;
  std::uint32_t crc = crc32c_init();
  crc = crc32c_update(crc, in.data(), kCrcOffset);
  constexpr std::uint8_t kZeroCrc[4] = {0, 0, 0, 0};
  crc = crc32c_update(crc, kZeroCrc, sizeof(kZeroCrc));
  crc = crc32c_update(crc, in.data() + kFrameHeaderBytes, payload_len);
  if (crc32c_finish(crc) != stored_crc) return std::nullopt;
  f.kind = static_cast<FrameKind>(kind);
  f.payload.assign(in.begin() + kFrameHeaderBytes, in.end());
  return f;
}

std::optional<AckBody> decode_ack_body(std::span<const std::uint8_t> payload) {
  std::size_t offset = 0;
  AckBody body;
  std::uint32_t count;
  if (!get(payload, offset, body.cum_ack) ||
      !get(payload, offset, body.max_seen) || !get(payload, offset, count)) {
    return std::nullopt;
  }
  if (count > kMaxNacksPerAck) return std::nullopt;
  body.nacks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t seq;
    if (!get(payload, offset, seq)) return std::nullopt;
    body.nacks.push_back(seq);
  }
  if (offset != payload.size()) return std::nullopt;
  return body;
}

}  // namespace umon::resilience
