// umon::resilience — the reliable uplink layered over the lossy upload
// channel. The raw channel drops, delays, duplicates, and (under fault
// injection) corrupts payloads; PR 1 only *counted* the resulting sequence
// gaps. This wrapper makes the host→collector path recover instead:
//
//   host payload ──frame(CRC32C, frame_seq)──▶ forward UploadChannel ──▶
//     receiver: CRC reject ▸ dedup ▸ deliver ▸ cum-ACK + NACK frame ──▶
//   reverse UploadChannel (also lossy) ──▶ sender: release / retransmit
//
//   * Sender keeps every unacked frame in a bounded per-host retransmit
//     buffer; when the buffer is full the oldest frame is evicted and its
//     epoch declared unrecoverable (bounded memory beats unbounded hope).
//   * Retransmits fire on NACK (fast path, holdoff-guarded so ack storms
//     don't multiply traffic) and on RTO timeout with exponential backoff
//     capped at rto_max — the cap keeps late attempts frequent enough to
//     outlive a sustained fault window; after max_retries the frame
//     expires and its epoch is marked lost.
//   * Receiver verifies the CRC32C over header+payload (corrupted frames
//     are rejected, never decoded), suppresses duplicates/reorders with a
//     cumulative counter + above-window set, and acks every arrival so a
//     lost ack is repaired by the next one.
//   * An abandoned frame never wedges the stream: data frames advertise the
//     sender's lowest retained seq (base_seq) so the receiver advances its
//     cumulative counter past holes that will never be resent, and acks
//     carry max_seen so the sender releases any seq the NACK list did not
//     name (SACK-style) even while a hole is outstanding.
//
// Passthrough mode (cfg.enabled = false) keeps the exact legacy behavior —
// unframed payloads, fire-and-forget — so every driver routes through this
// wrapper unconditionally (umon-lint UL006 forbids raw channel sends) and
// reliability is a config bit, not a code path fork.
//
// Threading: single-threaded by design. send / tick / the channel sink
// callbacks all run on the driver thread in deterministic order; two runs
// with the same seeds replay byte-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "netsim/upload_channel.hpp"
#include "resilience/frame.hpp"
#include "telemetry/metrics.hpp"

namespace umon::obs {
class LineageTracker;
}

namespace umon::resilience {

struct ReliableConfig {
  /// false = passthrough: unframed payloads, no acks, no retransmits.
  bool enabled = true;
  /// Unacked frames held per host before the oldest is evicted (and its
  /// epoch declared unrecoverable). This is the protocol's memory bound.
  std::size_t retx_buffer_frames = 1024;
  /// First retransmit timeout; doubles (rto_backoff) per attempt until the
  /// rto_max ceiling. Capping the backoff keeps later attempts *frequent*:
  /// a sustained fault window (burst loss, corruption storm) is survived by
  /// whichever attempts land after it ends, so the retry budget buys
  /// independent chances instead of one ever-longer silence. At the
  /// defaults the full expiry horizon is Σ min(base_rto·2^i, rto_max)
  /// for i < max_retries ≈ 12.6 ms — the same bound the retransmit-buffer
  /// sizing math assumes.
  Nanos base_rto = 200 * kMicro;
  double rto_backoff = 2.0;
  Nanos rto_max = 1600 * kMicro;
  /// Send attempts per frame (initial + retransmits) before it expires.
  int max_retries = 10;
  /// Minimum spacing between retransmits of one frame, so a burst of acks
  /// carrying the same NACK does not multiply the resend.
  Nanos nack_holdoff = 100 * kMicro;
};

/// Counter view materialized from the link's private registry (same pattern
/// as CollectorStats: the registry is the source of truth).
struct ReliableStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_retransmitted = 0;
  std::uint64_t frames_acked = 0;
  std::uint64_t frames_expired = 0;   ///< retry cap hit
  std::uint64_t frames_evicted = 0;   ///< retx buffer overflow
  std::uint64_t frames_corrupt = 0;   ///< CRC / framing reject at receiver
  std::uint64_t frames_duplicate = 0; ///< dedup suppressed
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t epochs_settled = 0;
  std::uint64_t epochs_recovered = 0;    ///< settled with zero expired frames
  std::uint64_t epochs_unrecovered = 0;  ///< settled with data declared lost
};

/// Outcome of one (host, epoch) as the protocol saw it. The driver maps
/// this onto FlowCurveStore confidence flags when sealing.
struct EpochStatus {
  bool settled = true;        ///< no frames outstanding
  bool recovered = true;      ///< no frame expired or was evicted
  bool retransmitted = false; ///< at least one frame needed a resend
};

class ReliableLink {
 public:
  /// Receives every in-order-or-not, deduplicated, CRC-clean data payload.
  using DeliverFn =
      std::function<void(int host, std::uint32_t epoch,
                         std::vector<std::uint8_t>&& payload)>;

  /// `reverse` may be null only in passthrough mode: a reliable link
  /// without an ack path cannot release anything, so the constructor forces
  /// cfg.enabled = false (with a warning) when `reverse` is null. The
  /// caller wires the channels' sinks to on_forward_delivery /
  /// on_reverse_delivery.
  ReliableLink(const ReliableConfig& cfg, netsim::UploadChannel& forward,
               netsim::UploadChannel* reverse);

  void set_deliver_hook(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Report-lineage tap: every frame event (send, retransmit, expiry,
  /// ack release, delivery) is recorded against its (host, epoch). Not
  /// owned; keep the tracker alive for the link's lifetime.
  void set_lineage(obs::LineageTracker* lineage) { lineage_ = lineage; }

  // --- host side -----------------------------------------------------------
  /// Submit one epoch payload at local time `now`. In reliable mode the
  /// payload is framed, buffered for retransmit, and tracked against its
  /// epoch; in passthrough mode it goes straight to the channel.
  void send(int host, std::uint32_t epoch, std::vector<std::uint8_t> payload,
            Nanos now);

  /// Drive retransmit timeouts up to `now`. Call once per simulation tick.
  void tick(Nanos now);

  // --- channel sinks -------------------------------------------------------
  void on_forward_delivery(netsim::UploadChannel::Delivery&& d);
  void on_reverse_delivery(netsim::UploadChannel::Delivery&& d);

  // --- settlement ----------------------------------------------------------
  /// Status of one epoch. Epochs the link never saw a frame for settle as
  /// recovered (an empty epoch has nothing to lose).
  [[nodiscard]] EpochStatus epoch_status(int host, std::uint32_t epoch) const;

  /// True once no frame is outstanding anywhere (end-of-run barrier).
  [[nodiscard]] bool all_settled() const;

  /// Earliest pending retransmit deadline, or -1 when nothing is
  /// outstanding. Lets the end-of-run settle loop step time instead of
  /// spinning.
  [[nodiscard]] Nanos next_deadline() const;

  /// Force-expire every outstanding frame (end of run, after the settle
  /// loop gave up): their epochs become unrecoverable.
  void expire_outstanding();

  [[nodiscard]] ReliableStats stats() const;
  [[nodiscard]] const ReliableConfig& config() const { return cfg_; }
  /// Private umon_resilience_* instruments, for the health sampler.
  [[nodiscard]] const telemetry::MetricRegistry& telemetry_registry() const {
    return reg_;
  }

 private:
  struct RetxEntry {
    std::uint32_t seq = 0;
    std::uint32_t epoch = 0;
    std::vector<std::uint8_t> frame;  ///< pristine framed bytes
    Nanos last_send = 0;
    Nanos next_retry = 0;
    int attempts = 1;  ///< sends so far (initial send counts)
  };
  struct SenderState {
    std::uint32_t next_frame_seq = 0;
    std::deque<RetxEntry> buffer;  ///< ascending seq
  };
  struct ReceiverState {
    std::uint32_t cum = 0;  ///< every frame_seq < cum received
    std::set<std::uint32_t> above;  ///< received out of order, >= cum
    std::uint32_t max_seen_next = 0;
  };
  struct EpochState {
    std::uint64_t outstanding = 0;
    std::uint64_t expired = 0;
    std::uint64_t retransmits = 0;
    bool counted_settled = false;
  };

  void retransmit(int host, SenderState& st, RetxEntry& e, Nanos now);
  void expire_entry(int host, const RetxEntry& e, bool evicted);
  void release_entry(int host, const RetxEntry& e);
  void release_acked(int host, SenderState& st, const AckBody& body);
  void send_ack(int host, const ReceiverState& rs, Nanos now);
  void settle_if_done(EpochState& es);

  ReliableConfig cfg_;
  netsim::UploadChannel& forward_;
  netsim::UploadChannel* reverse_;
  DeliverFn deliver_;
  obs::LineageTracker* lineage_ = nullptr;

  std::unordered_map<int, SenderState> senders_;
  std::unordered_map<int, ReceiverState> receivers_;
  std::map<std::uint64_t, EpochState> epochs_;  ///< key = host<<32 | epoch

  telemetry::MetricRegistry reg_;
  telemetry::Counter* frames_sent_;
  telemetry::Counter* frames_retransmitted_;
  telemetry::Counter* frames_acked_;
  telemetry::Counter* frames_expired_;
  telemetry::Counter* frames_evicted_;
  telemetry::Counter* frames_corrupt_;
  telemetry::Counter* frames_duplicate_;
  telemetry::Counter* acks_sent_;
  telemetry::Counter* acks_received_;
  telemetry::Counter* epochs_settled_;
  telemetry::Counter* epochs_recovered_;
  telemetry::Counter* epochs_unrecovered_;
  telemetry::Gauge* retx_resident_;
};

}  // namespace umon::resilience
