#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <fstream>
#include <initializer_list>
#include <sstream>

namespace umon::resilience {
namespace {

/// Parse "12ms" / "300us" / "5s" / "8192" (bare = ns) into Nanos.
bool parse_duration(const std::string& text, Nanos* out) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.' || text[pos] == '-')) {
    ++pos;
  }
  if (pos == 0) return false;
  double value;
  try {
    value = std::stod(text.substr(0, pos));
  } catch (...) {
    return false;
  }
  const std::string unit = text.substr(pos);
  double scale = 1.0;
  if (unit == "ns" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "us") {
    scale = static_cast<double>(kMicro);
  } else if (unit == "ms") {
    scale = static_cast<double>(kMilli);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else {
    return false;
  }
  *out = static_cast<Nanos>(value * scale);
  return true;
}

/// Split "key=value" tokens after the directive word into a flat list.
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool duration(const std::string& key, Nanos* out) const {
    const std::string* v = find(key);
    return v != nullptr && parse_duration(*v, out);
  }
  bool number(const std::string& key, double* out) const {
    const std::string* v = find(key);
    if (v == nullptr) return false;
    try {
      *out = std::stod(*v);
    } catch (...) {
      return false;
    }
    return true;
  }
  bool integer(const std::string& key, int* out) const {
    double d;
    if (!number(key, &d)) return false;
    *out = static_cast<int>(d);
    return true;
  }
};

bool fail(std::string* error, const std::string& source, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << source << ":" << line << ": " << msg;
  if (error != nullptr) *error = os.str();
  return false;
}

/// Which deterministic occurrence stream a disk directive consumes; two
/// directives in the same stream with the same `nth` would race for one
/// syscall — that is the overlap the parser rejects.
int disk_stream(const DiskFault& d) {
  switch (d.kind) {
    case DiskFault::Kind::kFail:
      return d.op == DiskFault::Op::kWrite ? 0 : 1;
    case DiskFault::Kind::kShort:
      return 0;  // shares the pwrite stream with disk-fail op=write
    case DiskFault::Kind::kCorrupt:
      return 2;  // durable-fsync (seal) stream
    case DiskFault::Kind::kAbort:
      return 3;  // mutating-op stream
  }
  return -1;
}

bool parse_line(const std::string& raw, const std::string& source, int lineno,
                FaultPlan* plan, std::string* error) {
  std::string line = raw.substr(0, raw.find('#'));
  std::istringstream is(line);
  std::string word;
  if (!(is >> word)) return true;  // blank / comment-only

  Args args;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      // `seed 42` style positional value.
      args.kv.emplace_back("", token);
    } else {
      args.kv.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }

  // Every directive declares its full key set; a stray key is a typo the
  // operator needs to hear about, not something to silently ignore.
  auto reject_unknown_keys =
      [&](std::initializer_list<const char*> allowed) {
        for (const auto& [k, v] : args.kv) {
          (void)v;
          bool ok = false;
          for (const char* a : allowed) {
            if (k == a) ok = true;
          }
          if (!ok) {
            return fail(error, source, lineno,
                        "unknown key '" + (k.empty() ? v : k) + "' for '" +
                            word + "'");
          }
        }
        return true;
      };

  auto add_disk = [&](const DiskFault& d) {
    for (const DiskFault& prev : plan->disk) {
      if (disk_stream(prev) == disk_stream(d) && prev.nth == d.nth) {
        std::ostringstream os;
        os << "overlapping disk directive: occurrence " << d.nth
           << " of this operation is already claimed";
        return fail(error, source, lineno, os.str());
      }
    }
    plan->disk.push_back(d);
    return true;
  };

  auto window = [&](ChannelFault* f) {
    return args.duration("from", &f->from) && args.duration("to", &f->to) &&
           f->to > f->from;
  };

  if (word == "seed") {
    if (!reject_unknown_keys({""})) return false;
    const std::string* v = args.find("");
    if (v == nullptr) return fail(error, source, lineno, "seed needs a value");
    try {
      plan->seed = std::stoull(*v);
    } catch (...) {
      return fail(error, source, lineno, "bad seed value");
    }
    return true;
  }
  if (word == "burst-loss" || word == "blackout") {
    if (word == "burst-loss") {
      if (!reject_unknown_keys({"from", "to", "loss"})) return false;
    } else {
      if (!reject_unknown_keys({"from", "to"})) return false;
    }
    ChannelFault f;
    f.kind = ChannelFault::Kind::kLoss;
    f.prob = 1.0;
    if (!window(&f)) return fail(error, source, lineno, "need from=<t> to=<t>");
    if (word == "burst-loss" && !args.number("loss", &f.prob)) {
      return fail(error, source, lineno, "burst-loss needs loss=<prob>");
    }
    plan->channel.push_back(f);
    return true;
  }
  if (word == "duplicate" || word == "reorder" || word == "corrupt") {
    if (word == "duplicate") {
      if (!reject_unknown_keys({"from", "to", "prob"})) return false;
    } else if (word == "reorder") {
      if (!reject_unknown_keys({"from", "to", "prob", "jitter"})) return false;
    } else {
      if (!reject_unknown_keys({"from", "to", "prob", "bits"})) return false;
    }
    ChannelFault f;
    if (!window(&f)) return fail(error, source, lineno, "need from=<t> to=<t>");
    if (!args.number("prob", &f.prob)) {
      return fail(error, source, lineno, word + " needs prob=<p>");
    }
    if (word == "duplicate") {
      f.kind = ChannelFault::Kind::kDuplicate;
    } else if (word == "reorder") {
      f.kind = ChannelFault::Kind::kReorder;
      if (!args.duration("jitter", &f.extra_jitter) || f.extra_jitter <= 0) {
        return fail(error, source, lineno, "reorder needs jitter=<dur>");
      }
    } else {
      f.kind = ChannelFault::Kind::kCorrupt;
      f.bits = 1;
      (void)args.integer("bits", &f.bits);
      if (f.bits < 1) {
        return fail(error, source, lineno, "corrupt bits must be >= 1");
      }
    }
    plan->channel.push_back(f);
    return true;
  }
  if (word == "stall-host") {
    if (!reject_unknown_keys({"host", "from", "to"})) return false;
    HostStall s;
    if (!args.integer("host", &s.host) || s.host < 0) {
      return fail(error, source, lineno, "stall-host needs host=<n>");
    }
    if (!args.duration("from", &s.from) || !args.duration("to", &s.to) ||
        s.to <= s.from) {
      return fail(error, source, lineno, "need from=<t> to=<t>");
    }
    plan->stalls.push_back(s);
    return true;
  }
  if (word == "crash-shard") {
    if (!reject_unknown_keys({"shard", "at", "restart"})) return false;
    ShardCrash c;
    if (!args.integer("shard", &c.shard) || c.shard < 0) {
      return fail(error, source, lineno, "crash-shard needs shard=<n>");
    }
    if (!args.duration("at", &c.at)) {
      return fail(error, source, lineno, "crash-shard needs at=<t>");
    }
    c.restart = 0;
    (void)args.duration("restart", &c.restart);
    plan->crashes.push_back(c);
    return true;
  }
  if (word == "disk-fail") {
    if (!reject_unknown_keys({"op", "nth", "errno"})) return false;
    DiskFault d;
    d.kind = DiskFault::Kind::kFail;
    const std::string* op = args.find("op");
    if (op == nullptr || (*op != "write" && *op != "fsync")) {
      return fail(error, source, lineno, "disk-fail needs op=write|fsync");
    }
    d.op = *op == "write" ? DiskFault::Op::kWrite : DiskFault::Op::kFsync;
    int nth = 0;
    if (!args.integer("nth", &nth) || nth < 1) {
      return fail(error, source, lineno, "disk-fail needs nth=<n> (>= 1)");
    }
    d.nth = static_cast<std::uint64_t>(nth);
    d.err = EIO;
    if (const std::string* e = args.find("errno")) {
      if (*e == "eio") {
        d.err = EIO;
      } else if (*e == "enospc") {
        d.err = ENOSPC;
      } else {
        return fail(error, source, lineno, "disk-fail errno must be eio|enospc");
      }
    }
    return add_disk(d);
  }
  if (word == "disk-short") {
    if (!reject_unknown_keys({"nth", "bytes"})) return false;
    DiskFault d;
    d.kind = DiskFault::Kind::kShort;
    d.op = DiskFault::Op::kWrite;
    int nth = 0, bytes = -1;
    if (!args.integer("nth", &nth) || nth < 1) {
      return fail(error, source, lineno, "disk-short needs nth=<n> (>= 1)");
    }
    if (!args.integer("bytes", &bytes) || bytes < 0) {
      return fail(error, source, lineno, "disk-short needs bytes=<n> (>= 0)");
    }
    d.nth = static_cast<std::uint64_t>(nth);
    d.bytes = static_cast<std::uint32_t>(bytes);
    return add_disk(d);
  }
  if (word == "disk-corrupt") {
    if (!reject_unknown_keys({"seal", "bits"})) return false;
    DiskFault d;
    d.kind = DiskFault::Kind::kCorrupt;
    int seal = 0;
    if (!args.integer("seal", &seal) || seal < 1) {
      return fail(error, source, lineno, "disk-corrupt needs seal=<n> (>= 1)");
    }
    d.nth = static_cast<std::uint64_t>(seal);
    d.bits = 1;
    (void)args.integer("bits", &d.bits);
    if (d.bits < 1) {
      return fail(error, source, lineno, "disk-corrupt bits must be >= 1");
    }
    return add_disk(d);
  }
  if (word == "disk-abort") {
    if (!reject_unknown_keys({"nth"})) return false;
    DiskFault d;
    d.kind = DiskFault::Kind::kAbort;
    d.op = DiskFault::Op::kAny;
    int nth = 0;
    if (!args.integer("nth", &nth) || nth < 1) {
      return fail(error, source, lineno, "disk-abort needs nth=<n> (>= 1)");
    }
    d.nth = static_cast<std::uint64_t>(nth);
    return add_disk(d);
  }
  return fail(error, source, lineno, "unknown directive '" + word + "'");
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::istream& in, std::string* error,
                                          const std::string& source) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!parse_line(line, source, lineno, &plan, error)) return std::nullopt;
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::parse_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fault plan: " + path;
    return std::nullopt;
  }
  return parse(in, error, path);
}

FaultAction FaultInjector::on_send(int host, Nanos now,
                                   std::vector<std::uint8_t>& payload) {
  (void)host;
  FaultAction action;
  for (const ChannelFault& f : plan_.channel) {
    if (now < f.from || now >= f.to) continue;
    // One Rng draw per active window keeps the stream aligned across runs:
    // the draw happens whether or not the fault triggers.
    const bool hit = rng_.uniform() < f.prob;
    switch (f.kind) {
      case ChannelFault::Kind::kLoss:
        if (hit) action.drop = true;
        break;
      case ChannelFault::Kind::kDuplicate:
        if (hit) action.duplicates += 1;
        break;
      case ChannelFault::Kind::kReorder:
        if (hit) {
          action.extra_delay += static_cast<Nanos>(
              rng_.below(static_cast<std::uint64_t>(f.extra_jitter)));
        }
        break;
      case ChannelFault::Kind::kCorrupt:
        if (hit && !payload.empty()) {
          action.corrupted = true;
          for (int b = 0; b < f.bits; ++b) {
            const std::uint64_t bit = rng_.below(payload.size() * 8);
            payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          }
        }
        break;
    }
  }
  if (action.drop) {
    ++stats_.drops;
    // A dropped payload never reaches the wire; the other decisions are
    // moot but their Rng draws above already happened, keeping determinism.
    action.duplicates = 0;
    action.extra_delay = 0;
  } else {
    stats_.duplicates += static_cast<std::uint64_t>(action.duplicates);
    if (action.corrupted) ++stats_.corruptions;
    if (action.extra_delay > 0) ++stats_.delays;
  }
  return action;
}

bool FaultInjector::host_stalled(int host, Nanos now) {
  for (const HostStall& s : plan_.stalls) {
    if (s.host == host && now >= s.from && now < s.to) {
      ++stats_.stalled_flushes;
      return true;
    }
  }
  return false;
}

std::vector<FaultInjector::ShardEvent> FaultInjector::take_due_shard_events(
    Nanos now) {
  if (!schedule_built_) {
    for (const ShardCrash& c : plan_.crashes) {
      schedule_.push_back({c.shard, /*restart=*/false, c.at});
      if (c.restart > c.at) {
        schedule_.push_back({c.shard, /*restart=*/true, c.restart});
      }
    }
    std::sort(schedule_.begin(), schedule_.end(),
              [](const ShardEvent& a, const ShardEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.restart < b.restart;  // crash before restart
              });
    schedule_built_ = true;
  }
  std::vector<ShardEvent> due;
  while (next_event_ < schedule_.size() && schedule_[next_event_].at <= now) {
    due.push_back(schedule_[next_event_++]);
  }
  return due;
}

}  // namespace umon::resilience
