#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace umon::resilience {
namespace {

/// Parse "12ms" / "300us" / "5s" / "8192" (bare = ns) into Nanos.
bool parse_duration(const std::string& text, Nanos* out) {
  std::size_t pos = 0;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) ||
          text[pos] == '.' || text[pos] == '-')) {
    ++pos;
  }
  if (pos == 0) return false;
  double value;
  try {
    value = std::stod(text.substr(0, pos));
  } catch (...) {
    return false;
  }
  const std::string unit = text.substr(pos);
  double scale = 1.0;
  if (unit == "ns" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "us") {
    scale = static_cast<double>(kMicro);
  } else if (unit == "ms") {
    scale = static_cast<double>(kMilli);
  } else if (unit == "s") {
    scale = static_cast<double>(kSecond);
  } else {
    return false;
  }
  *out = static_cast<Nanos>(value * scale);
  return true;
}

/// Split "key=value" tokens after the directive word into a flat list.
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool duration(const std::string& key, Nanos* out) const {
    const std::string* v = find(key);
    return v != nullptr && parse_duration(*v, out);
  }
  bool number(const std::string& key, double* out) const {
    const std::string* v = find(key);
    if (v == nullptr) return false;
    try {
      *out = std::stod(*v);
    } catch (...) {
      return false;
    }
    return true;
  }
  bool integer(const std::string& key, int* out) const {
    double d;
    if (!number(key, &d)) return false;
    *out = static_cast<int>(d);
    return true;
  }
};

bool fail(std::string* error, int line, const std::string& msg) {
  std::ostringstream os;
  os << "fault plan line " << line << ": " << msg;
  if (error != nullptr) *error = os.str();
  return false;
}

bool parse_line(const std::string& raw, int lineno, FaultPlan* plan,
                std::string* error) {
  std::string line = raw.substr(0, raw.find('#'));
  std::istringstream is(line);
  std::string word;
  if (!(is >> word)) return true;  // blank / comment-only

  Args args;
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      // `seed 42` style positional value.
      args.kv.emplace_back("", token);
    } else {
      args.kv.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }
  }

  auto window = [&](ChannelFault* f) {
    return args.duration("from", &f->from) && args.duration("to", &f->to) &&
           f->to > f->from;
  };

  if (word == "seed") {
    const std::string* v = args.find("");
    if (v == nullptr) return fail(error, lineno, "seed needs a value");
    try {
      plan->seed = std::stoull(*v);
    } catch (...) {
      return fail(error, lineno, "bad seed value");
    }
    return true;
  }
  if (word == "burst-loss" || word == "blackout") {
    ChannelFault f;
    f.kind = ChannelFault::Kind::kLoss;
    f.prob = 1.0;
    if (!window(&f)) return fail(error, lineno, "need from=<t> to=<t>");
    if (word == "burst-loss" && !args.number("loss", &f.prob)) {
      return fail(error, lineno, "burst-loss needs loss=<prob>");
    }
    plan->channel.push_back(f);
    return true;
  }
  if (word == "duplicate" || word == "reorder" || word == "corrupt") {
    ChannelFault f;
    if (!window(&f)) return fail(error, lineno, "need from=<t> to=<t>");
    if (!args.number("prob", &f.prob)) {
      return fail(error, lineno, word + " needs prob=<p>");
    }
    if (word == "duplicate") {
      f.kind = ChannelFault::Kind::kDuplicate;
    } else if (word == "reorder") {
      f.kind = ChannelFault::Kind::kReorder;
      if (!args.duration("jitter", &f.extra_jitter) || f.extra_jitter <= 0) {
        return fail(error, lineno, "reorder needs jitter=<dur>");
      }
    } else {
      f.kind = ChannelFault::Kind::kCorrupt;
      f.bits = 1;
      (void)args.integer("bits", &f.bits);
      if (f.bits < 1) return fail(error, lineno, "corrupt bits must be >= 1");
    }
    plan->channel.push_back(f);
    return true;
  }
  if (word == "stall-host") {
    HostStall s;
    if (!args.integer("host", &s.host) || s.host < 0) {
      return fail(error, lineno, "stall-host needs host=<n>");
    }
    if (!args.duration("from", &s.from) || !args.duration("to", &s.to) ||
        s.to <= s.from) {
      return fail(error, lineno, "need from=<t> to=<t>");
    }
    plan->stalls.push_back(s);
    return true;
  }
  if (word == "crash-shard") {
    ShardCrash c;
    if (!args.integer("shard", &c.shard) || c.shard < 0) {
      return fail(error, lineno, "crash-shard needs shard=<n>");
    }
    if (!args.duration("at", &c.at)) {
      return fail(error, lineno, "crash-shard needs at=<t>");
    }
    c.restart = 0;
    (void)args.duration("restart", &c.restart);
    plan->crashes.push_back(c);
    return true;
  }
  return fail(error, lineno, "unknown directive '" + word + "'");
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::istream& in,
                                          std::string* error) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!parse_line(line, lineno, &plan, error)) return std::nullopt;
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::parse_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fault plan: " + path;
    return std::nullopt;
  }
  return parse(in, error);
}

FaultAction FaultInjector::on_send(int host, Nanos now,
                                   std::vector<std::uint8_t>& payload) {
  (void)host;
  FaultAction action;
  for (const ChannelFault& f : plan_.channel) {
    if (now < f.from || now >= f.to) continue;
    // One Rng draw per active window keeps the stream aligned across runs:
    // the draw happens whether or not the fault triggers.
    const bool hit = rng_.uniform() < f.prob;
    switch (f.kind) {
      case ChannelFault::Kind::kLoss:
        if (hit) action.drop = true;
        break;
      case ChannelFault::Kind::kDuplicate:
        if (hit) action.duplicates += 1;
        break;
      case ChannelFault::Kind::kReorder:
        if (hit) {
          action.extra_delay += static_cast<Nanos>(
              rng_.below(static_cast<std::uint64_t>(f.extra_jitter)));
        }
        break;
      case ChannelFault::Kind::kCorrupt:
        if (hit && !payload.empty()) {
          action.corrupted = true;
          for (int b = 0; b < f.bits; ++b) {
            const std::uint64_t bit = rng_.below(payload.size() * 8);
            payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
          }
        }
        break;
    }
  }
  if (action.drop) {
    ++stats_.drops;
    // A dropped payload never reaches the wire; the other decisions are
    // moot but their Rng draws above already happened, keeping determinism.
    action.duplicates = 0;
    action.extra_delay = 0;
  } else {
    stats_.duplicates += static_cast<std::uint64_t>(action.duplicates);
    if (action.corrupted) ++stats_.corruptions;
    if (action.extra_delay > 0) ++stats_.delays;
  }
  return action;
}

bool FaultInjector::host_stalled(int host, Nanos now) {
  for (const HostStall& s : plan_.stalls) {
    if (s.host == host && now >= s.from && now < s.to) {
      ++stats_.stalled_flushes;
      return true;
    }
  }
  return false;
}

std::vector<FaultInjector::ShardEvent> FaultInjector::take_due_shard_events(
    Nanos now) {
  if (!schedule_built_) {
    for (const ShardCrash& c : plan_.crashes) {
      schedule_.push_back({c.shard, /*restart=*/false, c.at});
      if (c.restart > c.at) {
        schedule_.push_back({c.shard, /*restart=*/true, c.restart});
      }
    }
    std::sort(schedule_.begin(), schedule_.end(),
              [](const ShardEvent& a, const ShardEvent& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.restart < b.restart;  // crash before restart
              });
    schedule_built_ = true;
  }
  std::vector<ShardEvent> due;
  while (next_event_ < schedule_.size() && schedule_[next_event_].at <= now) {
    due.push_back(schedule_[next_event_++]);
  }
  return due;
}

}  // namespace umon::resilience
