#include "resilience/reliable.hpp"

#include <algorithm>

#include "obs/lineage.hpp"
#include "telemetry/log.hpp"

namespace umon::resilience {
namespace {

std::uint64_t epoch_key(int host, std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 32) |
         epoch;
}

std::uint32_t uhost(int host) { return static_cast<std::uint32_t>(host); }

}  // namespace

ReliableLink::ReliableLink(const ReliableConfig& cfg,
                           netsim::UploadChannel& forward,
                           netsim::UploadChannel* reverse)
    : cfg_(cfg), forward_(forward), reverse_(reverse) {
  if (cfg_.enabled && reverse_ == nullptr) {
    // Reliable mode without an ack path would never release a frame:
    // everything expires at the retry cap and every epoch reports
    // unrecovered. Degrade loudly to passthrough instead.
    UMON_LOG(kWarn, "resilience",
             "reliable mode requires a reverse channel; forcing passthrough");
    cfg_.enabled = false;
  }
  if (cfg_.retx_buffer_frames == 0) cfg_.retx_buffer_frames = 1;
  if (cfg_.max_retries < 1) cfg_.max_retries = 1;
  if (cfg_.base_rto < kMicro) cfg_.base_rto = kMicro;
  if (cfg_.rto_backoff < 1.0) cfg_.rto_backoff = 1.0;
  if (cfg_.rto_max < cfg_.base_rto) cfg_.rto_max = cfg_.base_rto;
  frames_sent_ = reg_.counter("umon_resilience_frames_sent_total", {},
                              "Data frames handed to the forward channel");
  frames_retransmitted_ =
      reg_.counter("umon_resilience_frames_retransmitted_total", {},
                   "Data frames resent after NACK or RTO");
  frames_acked_ = reg_.counter("umon_resilience_frames_acked_total", {},
                               "Frames released by cumulative acks");
  frames_expired_ = reg_.counter("umon_resilience_frames_expired_total", {},
                                 "Frames abandoned at the retry cap");
  frames_evicted_ =
      reg_.counter("umon_resilience_frames_evicted_total", {},
                   "Frames evicted by the bounded retransmit buffer");
  frames_corrupt_ =
      reg_.counter("umon_resilience_frames_corrupt_total", {},
                   "Frames rejected by CRC or framing checks");
  frames_duplicate_ =
      reg_.counter("umon_resilience_frames_duplicate_total", {},
                   "Duplicate data frames suppressed at the receiver");
  acks_sent_ = reg_.counter("umon_resilience_acks_sent_total", {},
                            "ACK frames sent over the reverse channel");
  acks_received_ = reg_.counter("umon_resilience_acks_received_total", {},
                                "ACK frames decoded by the sender");
  epochs_settled_ = reg_.counter("umon_resilience_epochs_settled_total", {},
                                 "Epochs with no frame outstanding");
  epochs_recovered_ =
      reg_.counter("umon_resilience_epochs_recovered_total", {},
                   "Settled epochs with every frame delivered");
  epochs_unrecovered_ =
      reg_.counter("umon_resilience_epochs_unrecovered_total", {},
                   "Settled epochs that lost at least one frame");
  retx_resident_ = reg_.gauge("umon_resilience_retx_buffer_frames", {},
                              "Unacked frames resident across all hosts");
}

void ReliableLink::send(int host, std::uint32_t epoch,
                        std::vector<std::uint8_t> payload, Nanos now) {
  if (!cfg_.enabled) {
    // Passthrough keeps the legacy fire-and-forget path byte-identical.
    // umon-lint: allow(UL006) — this wrapper IS the sanctioned send site.
    (void)forward_.send(host, epoch, std::move(payload), now);
    return;
  }
  SenderState& st = senders_[host];
  RetxEntry e;
  e.seq = st.next_frame_seq++;
  e.epoch = epoch;
  e.last_send = now;
  e.next_retry = now + cfg_.base_rto;
  e.attempts = 1;

  EpochState& es = epochs_[epoch_key(host, epoch)];
  es.outstanding += 1;

  if (st.buffer.size() >= cfg_.retx_buffer_frames) {
    // Bounded memory: the oldest unacked frame gives way and its epoch is
    // declared unrecoverable — visible degradation, not silent growth.
    expire_entry(host, st.buffer.front(), /*evicted=*/true);
    st.buffer.pop_front();
  }
  // base_seq = lowest retained seq after the eviction above: every seq
  // below it was acked or abandoned, so the receiver stops waiting for it.
  const std::uint32_t base = st.buffer.empty() ? e.seq : st.buffer.front().seq;
  e.frame = encode_data_frame(static_cast<std::uint32_t>(host), e.seq, epoch,
                              base, payload);
  frames_sent_->inc();
  retx_resident_->add(1);
  if (lineage_ != nullptr) lineage_->on_frame_sent(uhost(host), epoch);
  // umon-lint: allow(UL006) — this wrapper IS the sanctioned send site.
  (void)forward_.send(host, epoch, e.frame, now);
  st.buffer.push_back(std::move(e));
}

void ReliableLink::retransmit(int host, SenderState& st, RetxEntry& e,
                              Nanos now) {
  e.attempts += 1;
  e.last_send = now;
  double rto = static_cast<double>(cfg_.base_rto);
  const double cap = static_cast<double>(cfg_.rto_max);
  for (int i = 1; i < e.attempts && rto < cap; ++i) rto *= cfg_.rto_backoff;
  if (rto > cap) rto = cap;
  e.next_retry = now + static_cast<Nanos>(rto);
  frames_retransmitted_->inc();
  epochs_[epoch_key(host, e.epoch)].retransmits += 1;
  if (lineage_ != nullptr) {
    lineage_->on_frame_retransmitted(uhost(host), e.epoch);
  }
  // Retransmits carry the *current* base so the receiver learns about any
  // frame abandoned since the original send.
  rewrite_base_seq(e.frame, st.buffer.front().seq);
  // umon-lint: allow(UL006) — this wrapper IS the sanctioned send site.
  (void)forward_.send(host, e.epoch, e.frame, now);
}

void ReliableLink::expire_entry(int host, const RetxEntry& e, bool evicted) {
  (evicted ? frames_evicted_ : frames_expired_)->inc();
  retx_resident_->add(-1);
  if (lineage_ != nullptr) {
    lineage_->on_frame_expired(uhost(host), e.epoch, evicted);
  }
  const std::uint64_t key = epoch_key(host, e.epoch);
  EpochState& es = epochs_[key];
  es.expired += 1;
  if (es.outstanding > 0) es.outstanding -= 1;
  UMON_LOG(kWarn, "resilience",
           evicted ? "retx buffer evicted frame" : "frame expired at retry cap",
           {"host", std::to_string(host)},
           {"epoch", std::to_string(e.epoch)},
           {"seq", std::to_string(e.seq)});
  settle_if_done(es);
}

void ReliableLink::release_entry(int host, const RetxEntry& e) {
  frames_acked_->inc();
  retx_resident_->add(-1);
  if (lineage_ != nullptr) lineage_->on_frame_acked(uhost(host), e.epoch);
  EpochState& es = epochs_[epoch_key(host, e.epoch)];
  if (es.outstanding > 0) es.outstanding -= 1;
  settle_if_done(es);
}

void ReliableLink::release_acked(int host, SenderState& st,
                                 const AckBody& body) {
  while (!st.buffer.empty() && st.buffer.front().seq < body.cum_ack) {
    release_entry(host, st.buffer.front());
    st.buffer.pop_front();
  }
  // SACK-style release. The receiver scanned [cum_ack, horizon) and NACKed
  // every hole it found, so any retained seq in that range absent from the
  // list was received — release it even though the cumulative ack is stuck
  // behind a hole the sender has already abandoned. Without this, one
  // expired frame would pin every later frame until its own retry cap,
  // flagging recovered epochs as lost. A full NACK list means the scan was
  // truncated: only the range up to the last listed hole is known.
  std::uint32_t horizon = body.max_seen;
  if (body.nacks.size() >= kMaxNacksPerAck) horizon = body.nacks.back();
  for (auto it = st.buffer.begin();
       it != st.buffer.end() && it->seq < horizon;) {
    if (std::find(body.nacks.begin(), body.nacks.end(), it->seq) ==
        body.nacks.end()) {
      release_entry(host, *it);
      it = st.buffer.erase(it);
    } else {
      ++it;
    }
  }
}

void ReliableLink::settle_if_done(EpochState& es) {
  if (es.outstanding != 0 || es.counted_settled) return;
  es.counted_settled = true;
  epochs_settled_->inc();
  (es.expired == 0 ? epochs_recovered_ : epochs_unrecovered_)->inc();
}

void ReliableLink::tick(Nanos now) {
  if (!cfg_.enabled) return;
  for (auto& [host, st] : senders_) {
    for (auto it = st.buffer.begin(); it != st.buffer.end();) {
      if (it->next_retry > now) {
        ++it;
        continue;
      }
      if (it->attempts >= cfg_.max_retries) {
        expire_entry(host, *it, /*evicted=*/false);
        it = st.buffer.erase(it);
      } else {
        retransmit(host, st, *it, now);
        ++it;
      }
    }
  }
}

void ReliableLink::send_ack(int host, const ReceiverState& rs, Nanos now) {
  if (reverse_ == nullptr) return;
  AckBody body;
  body.cum_ack = rs.cum;
  body.max_seen = rs.max_seen_next;
  for (std::uint32_t s = rs.cum; s < rs.max_seen_next; ++s) {
    if (rs.above.count(s) != 0) continue;
    body.nacks.push_back(s);
    if (body.nacks.size() >= kMaxNacksPerAck) break;
  }
  acks_sent_->inc();
  // umon-lint: allow(UL006) — this wrapper IS the sanctioned send site.
  (void)reverse_->send(host, /*epoch=*/0,
                       encode_ack_frame(static_cast<std::uint32_t>(host), body),
                       now);
}

void ReliableLink::on_forward_delivery(netsim::UploadChannel::Delivery&& d) {
  if (!cfg_.enabled) {
    if (deliver_) deliver_(d.host, d.epoch, std::move(d.payload));
    return;
  }
  auto frame = decode_frame(d.payload);
  if (!frame || frame->kind != FrameKind::kData) {
    frames_corrupt_->inc();
    return;  // the retransmit protocol recovers the data
  }
  ReceiverState& rs = receivers_[d.host];
  if (frame->frame_seq + 1 > rs.max_seen_next) {
    rs.max_seen_next = frame->frame_seq + 1;
  }
  // The sender's base_seq is its lowest retained seq: everything below was
  // acked or abandoned, so stop waiting for it (and stop NACKing holes the
  // sender will never fill — an abandoned frame must not pin cum forever).
  if (frame->base_seq > rs.cum) {
    rs.above.erase(rs.above.begin(), rs.above.lower_bound(frame->base_seq));
    rs.cum = frame->base_seq;
  }
  const bool dup = frame->frame_seq < rs.cum ||
                   rs.above.count(frame->frame_seq) != 0;
  if (lineage_ != nullptr) {
    lineage_->on_frame_delivered(uhost(d.host), frame->epoch, dup);
  }
  if (dup) {
    frames_duplicate_->inc();
  } else {
    rs.above.insert(frame->frame_seq);
    if (deliver_) deliver_(d.host, frame->epoch, std::move(frame->payload));
  }
  // Drain outside the dup branch: a base_seq jump above can land cum on
  // already-received (out-of-order) frames even when this frame is a dup.
  while (rs.above.count(rs.cum) != 0) {
    rs.above.erase(rs.cum);
    rs.cum += 1;
  }
  // Ack every arrival, duplicates included: a duplicate means the sender
  // never saw our earlier ack, so repeat it.
  send_ack(d.host, rs, d.deliver_at);
}

void ReliableLink::on_reverse_delivery(netsim::UploadChannel::Delivery&& d) {
  if (!cfg_.enabled) return;
  auto frame = decode_frame(d.payload);
  if (!frame || frame->kind != FrameKind::kAck) {
    frames_corrupt_->inc();
    return;
  }
  auto body = decode_ack_body(frame->payload);
  if (!body) {
    frames_corrupt_->inc();
    return;
  }
  acks_received_->inc();
  const int host = static_cast<int>(frame->host);
  SenderState& st = senders_[host];
  release_acked(host, st, *body);
  for (std::uint32_t seq : body->nacks) {
    auto it = std::find_if(st.buffer.begin(), st.buffer.end(),
                           [seq](const RetxEntry& e) { return e.seq == seq; });
    if (it == st.buffer.end()) continue;
    // Holdoff: a burst of acks repeats the same NACK list; resend once per
    // holdoff window, not once per ack.
    if (d.deliver_at - it->last_send < cfg_.nack_holdoff) continue;
    if (it->attempts >= cfg_.max_retries) {
      expire_entry(host, *it, /*evicted=*/false);
      st.buffer.erase(it);
    } else {
      retransmit(host, st, *it, d.deliver_at);
    }
  }
}

EpochStatus ReliableLink::epoch_status(int host, std::uint32_t epoch) const {
  EpochStatus out;
  auto it = epochs_.find(epoch_key(host, epoch));
  if (it == epochs_.end()) return out;  // empty epoch: settled + recovered
  out.settled = it->second.outstanding == 0;
  out.recovered = it->second.expired == 0;
  out.retransmitted = it->second.retransmits > 0;
  return out;
}

bool ReliableLink::all_settled() const {
  for (const auto& [key, es] : epochs_) {
    if (es.outstanding != 0) return false;
  }
  return true;
}

Nanos ReliableLink::next_deadline() const {
  Nanos best = -1;
  for (const auto& [host, st] : senders_) {
    for (const RetxEntry& e : st.buffer) {
      if (best < 0 || e.next_retry < best) best = e.next_retry;
    }
  }
  return best;
}

void ReliableLink::expire_outstanding() {
  for (auto& [host, st] : senders_) {
    for (const RetxEntry& e : st.buffer) {
      expire_entry(host, e, /*evicted=*/false);
    }
    st.buffer.clear();
  }
}

ReliableStats ReliableLink::stats() const {
  ReliableStats out;
  for (const auto& s : reg_.snapshot()) {
    if (s.kind != telemetry::MetricRegistry::Kind::kCounter) continue;
    const std::uint64_t v = s.counter_value;
    if (s.name == "umon_resilience_frames_sent_total") {
      out.frames_sent = v;
    } else if (s.name == "umon_resilience_frames_retransmitted_total") {
      out.frames_retransmitted = v;
    } else if (s.name == "umon_resilience_frames_acked_total") {
      out.frames_acked = v;
    } else if (s.name == "umon_resilience_frames_expired_total") {
      out.frames_expired = v;
    } else if (s.name == "umon_resilience_frames_evicted_total") {
      out.frames_evicted = v;
    } else if (s.name == "umon_resilience_frames_corrupt_total") {
      out.frames_corrupt = v;
    } else if (s.name == "umon_resilience_frames_duplicate_total") {
      out.frames_duplicate = v;
    } else if (s.name == "umon_resilience_acks_sent_total") {
      out.acks_sent = v;
    } else if (s.name == "umon_resilience_acks_received_total") {
      out.acks_received = v;
    } else if (s.name == "umon_resilience_epochs_settled_total") {
      out.epochs_settled = v;
    } else if (s.name == "umon_resilience_epochs_recovered_total") {
      out.epochs_recovered = v;
    } else if (s.name == "umon_resilience_epochs_unrecovered_total") {
      out.epochs_unrecovered = v;
    }
  }
  return out;
}

}  // namespace umon::resilience
