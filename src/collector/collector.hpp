// umon::collector — the telemetry ingest tier between hosts and the
// analyzer (the collection layer the paper's Section 6 assumes but the
// in-process benches short-circuit).
//
// Pipeline shape:
//
//   host uplinks ──payloads──▶ front door ──frames──▶ shard queues
//                              (framing scan,          (bounded,
//                               flow-hash split,        backpressure
//                               seq-gap accounting)     policy)
//                                                          │ decode +
//                                                          ▼ reconstruct
//                                                   per-shard epoch staging
//                                                          │ seal barrier
//                                                          ▼
//                                                 Analyzer::ingest_report_batch
//                                                 (serialized, one batch per
//                                                  sealed (host, epoch))
//
// * The front door performs a cheap framing-level scan (no coefficient
//   parsing, no allocation per coefficient) and routes every report frame by
//   FlowKey hash, so all fragments of a flow land on the same shard; light
//   (grid-addressed) reports route by (host, row, col).
// * Shard workers do the expensive work in parallel: full decode, wavelet
//   reconstruction, and zero-stripping into sparse fragments.
// * The epoch manager seals a (host, epoch) once every shard has drained its
//   share, then flushes the merged fragments into the Analyzer in one batch
//   under the sink mutex — the Analyzer itself stays single-threaded.
// * Loss is first-class: per-host sequence accounting counts reports that
//   never arrived (upload-channel drops), bounded queues count what the
//   backpressure policy shed, and malformed payloads are counted instead of
//   trusted. decode_report()'s nullopt path finally has a consumer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "collector/batch_queue.hpp"
#include "common/types.hpp"
#include "telemetry/metrics.hpp"
#include "uevent/acl.hpp"

namespace umon::obs {
class LineageTracker;
}

namespace umon::collector {

struct CollectorConfig {
  int shards = 4;
  /// Batches (not reports) each shard queue holds before the policy kicks in.
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  int window_shift = kDefaultWindowShift;
};

/// Snapshot of the collector's counters. Reports can leave the pipeline for
/// exactly four reasons, each with its own counter: lost upstream (sequence
/// gaps), shed by backpressure, malformed, or decoded and delivered.
///
/// This struct is a *view*: the source of truth is the collector's private
/// telemetry::MetricRegistry (umon_collector_* instruments), and stats()
/// materializes the view from one registry snapshot pass.
struct CollectorStats {
  std::uint64_t payloads_submitted = 0;
  std::uint64_t payloads_malformed = 0;  ///< framing scan failed; discarded
  std::uint64_t batches_enqueued = 0;
  std::uint64_t batches_shed = 0;        ///< overflow policy dropped a batch
  std::uint64_t batches_rejected = 0;    ///< shed subset: incoming batch refused
  std::uint64_t batches_evicted = 0;     ///< shed subset: oldest batch evicted
  std::uint64_t reports_scanned = 0;
  std::uint64_t reports_decoded = 0;
  std::uint64_t reports_malformed = 0;   ///< shard-side decode_report failed
  std::uint64_t reports_shed = 0;        ///< inside batches_shed
  std::uint64_t reports_lost = 0;        ///< sequence gaps (upstream loss)
  std::uint64_t mirror_packets = 0;
  std::uint64_t epochs_flushed = 0;
  std::uint64_t fragments_ingested = 0;
  std::uint64_t batches_crashed = 0;    ///< discarded by a crashed shard
  std::uint64_t reports_crashed = 0;    ///< reports inside those batches
  std::uint64_t fragments_crashed = 0;  ///< staged fragments lost at crash
  std::uint64_t shard_crashes = 0;
  std::uint64_t shard_restarts = 0;
  std::unordered_map<int, std::uint64_t> bytes_by_host;
};

class Collector {
 public:
  Collector(const CollectorConfig& cfg, analyzer::Analyzer& sink);
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Spawn the shard workers. Must be called before submitting.
  void start();
  /// Drain every queue, flush all staged epochs (sealed or not), and join
  /// the workers. Idempotent. After stop() the sink holds everything the
  /// pipeline accepted.
  void stop();

  /// Block until every message enqueued before this call has been fully
  /// processed — including the sink flush of any epoch whose seal was
  /// already submitted. Workers keep running. This is the synchronization
  /// point deterministic drivers (health sampling, tests) use to observe a
  /// quiescent pipeline without stopping it. Returns the number of shards
  /// that were *live* (not crashed) when they acked the barrier, so a
  /// driver can tell a quiescent pipeline from one that merely discarded
  /// its backlog: a crashed shard still consumes (and counts) its queue, so
  /// the barrier never wedges, but its data was shed, not processed.
  /// Returns 0 before start().
  int drain();

  /// Simulate a shard crash: the shard loses its staged epoch state and
  /// discards every data batch until restart_shard(). Control messages
  /// (seals, barriers) keep flowing so the epoch barrier and drain() stay
  /// live — a crashed shard contributes nothing, it does not wedge the
  /// pipeline. Thread-safe; no-op for out-of-range shards.
  void crash_shard(int shard);
  void restart_shard(int shard);

  /// Fires when the pipeline discovers `lost` reports missing for
  /// (host, epoch) — the signal graceful-degradation drivers use to flag
  /// the affected windows instead of silently serving zeros. Sequence gaps
  /// fire inside seal_epoch() with the front mutex held. Shard-crash
  /// damage fires from drain() or stop() on the calling thread, once the
  /// epoch's seal barrier proved every batch enqueued before the seal was
  /// consumed — damage a worker records after the seal call can then never
  /// be missed. Must be cheap and must not call back into the collector.
  /// Set before start().
  void set_epoch_loss_hook(
      std::function<void(int host, std::uint32_t epoch, std::uint64_t lost)>
          hook) {
    epoch_loss_hook_ = std::move(hook);
  }

  /// Observability taps for end-to-end freshness tracking. `decode` fires
  /// from shard workers after a batch decode with the largest *event time*
  /// (window-end, collector clock domain) reconstructed in that batch —
  /// flow-tagged reports only. `curve` fires after a sealed epoch lands in
  /// the analyzer, with the largest event time that epoch made queryable.
  /// Set before start(); hooks must be thread-safe.
  void set_decode_event_hook(std::function<void(Nanos)> hook) {
    decode_event_hook_ = std::move(hook);
  }
  void set_curve_event_hook(std::function<void(Nanos)> hook) {
    curve_event_hook_ = std::move(hook);
  }

  /// Fires after a sealed (host, epoch) batch has fully flushed into the
  /// analyzer sink — everything that epoch carried is now queryable (and,
  /// with a spill sink attached, already written through). Durable-store
  /// drivers use it as their flush barrier: sealing the store epoch here
  /// guarantees the on-disk epoch never contains half a collector epoch.
  /// Runs on the flushing thread with the sink lock released; must not call
  /// back into the collector. Set before start().
  void set_epoch_seal_hook(std::function<void(int host, std::uint32_t epoch)> hook) {
    epoch_seal_hook_ = std::move(hook);
  }

  /// Report-lineage tap: shard workers record every (host, epoch) batch
  /// decode through it. Thread-safe on the tracker's side; set before
  /// start() and keep the tracker alive until after stop().
  void set_lineage(obs::LineageTracker* lineage) { lineage_ = lineage; }

  // --- producer side (thread-safe; serialized at the front door) -----------
  /// One encode_batch() payload from `host` for measurement period `epoch`.
  /// Returns false if the payload failed the framing scan (malformed).
  /// The rejection is also counted in stats(); callers that deliberately
  /// tolerate malformed uplinks should still say so with a (void) cast.
  [[nodiscard]] bool submit_report_payload(int host, std::uint32_t epoch,
                                           std::vector<std::uint8_t> payload);

  /// A batch of mirrored event packets from the uEvent pipeline.
  void submit_mirror_batch(std::vector<uevent::MirroredPacket> packets);

  /// Declare `epoch` of `host` complete. `end_seq` is the host's next unused
  /// sequence number; providing it lets the collector count trailing losses
  /// (payloads dropped after the last one that arrived). Once every shard
  /// drains its share of the epoch, the merged batch flushes to the sink.
  void seal_epoch(int host, std::uint32_t epoch,
                  std::optional<std::uint32_t> end_seq = std::nullopt);

  /// One-pass snapshot of every counter through the registry (consistent
  /// enough for monitoring; exact once stop() returned).
  [[nodiscard]] CollectorStats stats() const;
  [[nodiscard]] const CollectorConfig& config() const { return cfg_; }

  /// The collector's private metric registry (umon_collector_* series:
  /// the CollectorStats counters plus per-shard queue-depth gauges and
  /// decode/flush latency histograms). Pass it to the telemetry exporters
  /// alongside MetricRegistry::global().
  [[nodiscard]] const telemetry::MetricRegistry& telemetry_registry() const;

 private:
  struct ShardMsg;
  struct Shard;
  struct HostSeqState;
  struct PendingEpoch;

  void worker(int shard_id);
  void handle_reports(int shard_id, ShardMsg& msg);
  void handle_seal(int shard_id, const ShardMsg& msg);
  void flush_epoch_to_sink(PendingEpoch&& done);

  CollectorConfig cfg_;
  analyzer::Analyzer& sink_;
  obs::LineageTracker* lineage_ = nullptr;
  std::function<void(Nanos)> decode_event_hook_;
  std::function<void(Nanos)> curve_event_hook_;
  std::function<void(int, std::uint32_t, std::uint64_t)> epoch_loss_hook_;
  std::function<void(int, std::uint32_t)> epoch_seal_hook_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  bool running_ = false;

  /// Serializes submit/seal callers; owns the sequence accounting and the
  /// per-host byte tallies.
  mutable std::mutex front_mutex_;
  std::unordered_map<int, HostSeqState> seq_state_;
  std::unordered_map<int, std::uint64_t> bytes_by_host_;
  std::size_t mirror_rr_ = 0;  ///< round-robin cursor for mirror batches

  /// Guards the epoch-completion barrier state.
  mutable std::mutex epoch_mutex_;
  std::unordered_map<std::uint64_t, PendingEpoch> pending_;

  /// Record that `count` reports/fragments of (host, epoch) were discarded
  /// by a crashed shard (called from shard workers).
  void note_crash_damage(int host, std::uint32_t epoch, std::uint64_t count);
  /// Move (host, epoch)'s accumulated crash damage to the settled list.
  /// Called once the epoch's seal barrier completed (all shards acked), so
  /// queue FIFO guarantees every pre-seal batch was already consumed and
  /// its damage recorded.
  void settle_crash_damage(std::uint64_t key);
  /// Fire the loss hook for every settled damage record (caller thread).
  void fire_settled_damage();

  struct SettledDamage {
    int host;
    std::uint32_t epoch;
    std::uint64_t lost;
  };

  /// (host << 32 | epoch) keys that lost batches or staged fragments to a
  /// shard crash. Written by shard workers; moved to settled_damage_ at the
  /// epoch seal barrier (or the stop() sweep) and dispatched through the
  /// loss hook from drain()/stop() so the hook never races the workers.
  mutable std::mutex crash_mutex_;
  std::map<std::uint64_t, std::uint64_t> crash_damage_;
  std::vector<SettledDamage> settled_damage_;

  /// Serializes every call into the (externally synchronized) Analyzer.
  std::mutex sink_mutex_;

  // Registry-backed instruments shared across threads (relaxed; exact once
  // stop() returns). Private per instance so stats stay attributable.
  struct Instruments;
  std::unique_ptr<Instruments> ins_;
};

}  // namespace umon::collector
