#include "collector/collector.hpp"

#include <atomic>
#include <cstring>
#include <span>

#include "sketch/serialize.hpp"

namespace umon::collector {
namespace {

/// (host, epoch) packed into one map key.
std::uint64_t epoch_key(int host, std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 32) |
         epoch;
}

/// Shard routing for light (grid-addressed) reports: a flow always maps to
/// the same (host, row, col) buckets, so this keeps its fragments together
/// even without a flow tag.
std::uint64_t mix_route(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 29;
  return x;
}

}  // namespace

struct Collector::ShardMsg {
  enum class Kind { kReports, kMirror, kSeal, kStop };
  Kind kind = Kind::kStop;
  int host = -1;
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> bytes;  ///< kReports: concatenated report frames
  std::uint32_t report_count = 0;
  std::vector<uevent::MirroredPacket> mirror;
};

struct Collector::Shard {
  struct StagedEpoch {
    std::vector<analyzer::Analyzer::SparseFragment> fragments;
    std::size_t wire_bytes = 0;
  };

  Shard(std::size_t capacity, OverflowPolicy policy)
      : queue(capacity, policy) {}

  BatchQueue<ShardMsg> queue;
  /// Touched only by this shard's worker thread (and by stop() after join).
  std::unordered_map<std::uint64_t, StagedEpoch> staging;
};

struct Collector::HostSeqState {
  std::uint32_t epoch_start_seq = 0;  ///< first seq of the open epoch
  std::uint32_t max_seq_next = 0;     ///< highest (seq + 1) seen
  std::uint64_t received = 0;         ///< reports arrived this epoch
};

struct Collector::PendingEpoch {
  int host = -1;
  std::uint32_t epoch = 0;
  std::vector<analyzer::Analyzer::SparseFragment> fragments;
  std::size_t wire_bytes = 0;
  int acks = 0;  ///< shards that have drained their share
};

struct Collector::Counters {
  std::atomic<std::uint64_t> payloads_submitted{0};
  std::atomic<std::uint64_t> payloads_malformed{0};
  std::atomic<std::uint64_t> batches_enqueued{0};
  std::atomic<std::uint64_t> batches_shed{0};
  std::atomic<std::uint64_t> reports_scanned{0};
  std::atomic<std::uint64_t> reports_decoded{0};
  std::atomic<std::uint64_t> reports_malformed{0};
  std::atomic<std::uint64_t> reports_shed{0};
  std::atomic<std::uint64_t> reports_lost{0};
  std::atomic<std::uint64_t> mirror_packets{0};
  std::atomic<std::uint64_t> epochs_flushed{0};
  std::atomic<std::uint64_t> fragments_ingested{0};
};

Collector::Collector(const CollectorConfig& cfg, analyzer::Analyzer& sink)
    : cfg_(cfg), sink_(sink), counters_(std::make_unique<Counters>()) {
  if (cfg_.shards < 1) cfg_.shards = 1;
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(cfg_.queue_capacity, cfg_.overflow));
  }
}

Collector::~Collector() { stop(); }

void Collector::start() {
  if (running_) return;
  running_ = true;
  workers_.reserve(shards_.size());
  for (int s = 0; s < cfg_.shards; ++s) {
    workers_.emplace_back([this, s] { worker(s); });
  }
}

void Collector::stop() {
  if (!running_) return;
  for (auto& sh : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kStop;
    sh->queue.push_control(std::move(msg));
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_ = false;

  // Flush whatever never got sealed (end of run): merge the per-shard
  // staging remainders and deliver them. Workers are joined, so this is
  // plain single-threaded code.
  std::unordered_map<std::uint64_t, PendingEpoch> leftovers;
  {
    std::lock_guard el(epoch_mutex_);
    leftovers = std::move(pending_);
    pending_.clear();
  }
  for (auto& sh : shards_) {
    for (auto& [key, staged] : sh->staging) {
      PendingEpoch& p = leftovers[key];
      p.host = static_cast<int>(key >> 32);
      p.epoch = static_cast<std::uint32_t>(key);
      p.wire_bytes += staged.wire_bytes;
      p.fragments.insert(p.fragments.end(),
                         std::make_move_iterator(staged.fragments.begin()),
                         std::make_move_iterator(staged.fragments.end()));
    }
    sh->staging.clear();
  }
  for (auto& [key, p] : leftovers) flush_epoch_to_sink(std::move(p));
}

bool Collector::submit_report_payload(int host, std::uint32_t epoch,
                                      std::vector<std::uint8_t> payload) {
  std::lock_guard lock(front_mutex_);
  counters_->payloads_submitted.fetch_add(1, std::memory_order_relaxed);

  const std::span<const std::uint8_t> in(payload);
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (in.size() < sizeof(count)) {
    counters_->payloads_malformed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::memcpy(&count, in.data(), sizeof(count));
  offset += sizeof(count);

  // Scan the whole payload before committing anything: a payload that fails
  // the framing scan is discarded atomically, not half-routed.
  const auto n_shards = static_cast<std::size_t>(cfg_.shards);
  std::vector<std::vector<std::uint8_t>> route_bytes(n_shards);
  std::vector<std::uint32_t> route_count(n_shards, 0);
  std::uint32_t max_seq_next = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto frame = sketch::scan_report(in, offset);
    if (!frame) {
      counters_->payloads_malformed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    std::size_t shard;
    if (frame->has_flow) {
      shard = std::hash<FlowKey>{}(frame->flow) % n_shards;
    } else {
      shard = mix_route((static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(host))
                         << 40) ^
                        (static_cast<std::uint64_t>(frame->row) << 32) ^
                        frame->col) %
              n_shards;
    }
    route_bytes[shard].insert(route_bytes[shard].end(),
                              in.begin() + frame->begin,
                              in.begin() + frame->end);
    route_count[shard] += 1;
    if (frame->seq + 1 > max_seq_next) max_seq_next = frame->seq + 1;
  }
  if (offset != in.size()) {  // trailing garbage
    counters_->payloads_malformed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  counters_->reports_scanned.fetch_add(count, std::memory_order_relaxed);
  bytes_by_host_[host] += payload.size();
  HostSeqState& st = seq_state_[host];
  st.received += count;
  if (max_seq_next > st.max_seq_next) st.max_seq_next = max_seq_next;

  for (std::size_t s = 0; s < n_shards; ++s) {
    if (route_bytes[s].empty()) continue;
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kReports;
    msg.host = host;
    msg.epoch = epoch;
    msg.report_count = route_count[s];
    msg.bytes = std::move(route_bytes[s]);
    ShardMsg evicted;
    switch (shards_[s]->queue.push(std::move(msg), evicted)) {
      case BatchQueue<ShardMsg>::PushResult::kOk:
        counters_->batches_enqueued.fetch_add(1, std::memory_order_relaxed);
        break;
      case BatchQueue<ShardMsg>::PushResult::kRejected:
        counters_->batches_shed.fetch_add(1, std::memory_order_relaxed);
        counters_->reports_shed.fetch_add(route_count[s],
                                          std::memory_order_relaxed);
        break;
      case BatchQueue<ShardMsg>::PushResult::kEvictedOldest:
        counters_->batches_enqueued.fetch_add(1, std::memory_order_relaxed);
        counters_->batches_shed.fetch_add(1, std::memory_order_relaxed);
        counters_->reports_shed.fetch_add(evicted.report_count,
                                          std::memory_order_relaxed);
        break;
    }
  }
  return true;
}

void Collector::submit_mirror_batch(
    std::vector<uevent::MirroredPacket> packets) {
  if (packets.empty()) return;
  std::lock_guard lock(front_mutex_);
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kMirror;
  msg.mirror = std::move(packets);
  // Mirror ingest is a cheap sorted merge; round-robin keeps any shard from
  // becoming the designated mirror worker.
  const std::size_t s = mirror_rr_++ % shards_.size();
  ShardMsg evicted;
  switch (shards_[s]->queue.push(std::move(msg), evicted)) {
    case BatchQueue<ShardMsg>::PushResult::kOk:
      counters_->batches_enqueued.fetch_add(1, std::memory_order_relaxed);
      break;
    case BatchQueue<ShardMsg>::PushResult::kRejected:
      counters_->batches_shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case BatchQueue<ShardMsg>::PushResult::kEvictedOldest:
      counters_->batches_enqueued.fetch_add(1, std::memory_order_relaxed);
      counters_->batches_shed.fetch_add(1, std::memory_order_relaxed);
      counters_->reports_shed.fetch_add(evicted.report_count,
                                        std::memory_order_relaxed);
      break;
  }
}

void Collector::seal_epoch(int host, std::uint32_t epoch,
                           std::optional<std::uint32_t> end_seq) {
  {
    std::lock_guard lock(front_mutex_);
    HostSeqState& st = seq_state_[host];
    std::uint32_t end = end_seq.value_or(st.max_seq_next);
    if (end < st.epoch_start_seq) end = st.epoch_start_seq;
    const std::uint64_t expected = end - st.epoch_start_seq;
    if (expected > st.received) {
      counters_->reports_lost.fetch_add(expected - st.received,
                                        std::memory_order_relaxed);
    }
    st.epoch_start_seq = end;
    st.max_seq_next = end;
    st.received = 0;
  }
  for (auto& sh : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kSeal;
    msg.host = host;
    msg.epoch = epoch;
    sh->queue.push_control(std::move(msg));
  }
}

void Collector::worker(int shard_id) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  ShardMsg msg;
  while (sh.queue.pop(msg)) {
    switch (msg.kind) {
      case ShardMsg::Kind::kReports:
        handle_reports(shard_id, msg);
        break;
      case ShardMsg::Kind::kMirror: {
        const std::uint64_t n = msg.mirror.size();
        {
          std::lock_guard sink_lock(sink_mutex_);
          sink_.ingest_mirrored(msg.mirror);
        }
        counters_->mirror_packets.fetch_add(n, std::memory_order_relaxed);
        break;
      }
      case ShardMsg::Kind::kSeal:
        handle_seal(shard_id, msg);
        break;
      case ShardMsg::Kind::kStop:
        return;
    }
  }
}

void Collector::handle_reports(int shard_id, ShardMsg& msg) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  Shard::StagedEpoch& staged = sh.staging[epoch_key(msg.host, msg.epoch)];
  staged.wire_bytes += msg.bytes.size();

  const std::span<const std::uint8_t> in(msg.bytes);
  std::size_t offset = 0;
  while (offset < in.size()) {
    auto report = sketch::decode_report(in, offset);
    if (!report) {
      // Frames passed the front-door scan, so this is defensive; count the
      // remainder of the batch as malformed and move on.
      counters_->reports_malformed.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    counters_->reports_decoded.fetch_add(1, std::memory_order_relaxed);
    if (!report->flow) continue;  // light-part report: accounting only
    const std::vector<double> series = report->report.reconstruct();
    analyzer::Analyzer::SparseFragment frag;
    frag.flow = *report->flow;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i] == 0) continue;
      frag.windows.emplace_back(
          report->report.w0 + static_cast<WindowId>(i), series[i]);
    }
    if (!frag.windows.empty()) staged.fragments.push_back(std::move(frag));
  }
}

void Collector::handle_seal(int shard_id, const ShardMsg& msg) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  const std::uint64_t key = epoch_key(msg.host, msg.epoch);
  Shard::StagedEpoch staged;
  if (auto it = sh.staging.find(key); it != sh.staging.end()) {
    staged = std::move(it->second);
    sh.staging.erase(it);
  }

  std::unique_lock el(epoch_mutex_);
  PendingEpoch& p = pending_[key];
  p.host = msg.host;
  p.epoch = msg.epoch;
  p.wire_bytes += staged.wire_bytes;
  p.fragments.insert(p.fragments.end(),
                     std::make_move_iterator(staged.fragments.begin()),
                     std::make_move_iterator(staged.fragments.end()));
  p.acks += 1;
  if (p.acks < cfg_.shards) return;
  PendingEpoch done = std::move(p);
  pending_.erase(key);
  el.unlock();
  flush_epoch_to_sink(std::move(done));
}

void Collector::flush_epoch_to_sink(PendingEpoch&& done) {
  analyzer::Analyzer::DecodedReportBatch batch;
  batch.host = done.host;
  batch.epoch = done.epoch;
  batch.wire_bytes = done.wire_bytes;
  batch.fragments = std::move(done.fragments);
  const std::uint64_t n = batch.fragments.size();
  {
    std::lock_guard sink_lock(sink_mutex_);
    sink_.ingest_report_batch(batch);
  }
  counters_->epochs_flushed.fetch_add(1, std::memory_order_relaxed);
  counters_->fragments_ingested.fetch_add(n, std::memory_order_relaxed);
}

CollectorStats Collector::stats() const {
  CollectorStats out;
  out.payloads_submitted =
      counters_->payloads_submitted.load(std::memory_order_relaxed);
  out.payloads_malformed =
      counters_->payloads_malformed.load(std::memory_order_relaxed);
  out.batches_enqueued =
      counters_->batches_enqueued.load(std::memory_order_relaxed);
  out.batches_shed = counters_->batches_shed.load(std::memory_order_relaxed);
  out.reports_scanned =
      counters_->reports_scanned.load(std::memory_order_relaxed);
  out.reports_decoded =
      counters_->reports_decoded.load(std::memory_order_relaxed);
  out.reports_malformed =
      counters_->reports_malformed.load(std::memory_order_relaxed);
  out.reports_shed = counters_->reports_shed.load(std::memory_order_relaxed);
  out.reports_lost = counters_->reports_lost.load(std::memory_order_relaxed);
  out.mirror_packets =
      counters_->mirror_packets.load(std::memory_order_relaxed);
  out.epochs_flushed =
      counters_->epochs_flushed.load(std::memory_order_relaxed);
  out.fragments_ingested =
      counters_->fragments_ingested.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(front_mutex_);
    out.bytes_by_host = bytes_by_host_;
  }
  return out;
}

}  // namespace umon::collector
