#include "collector/collector.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <span>

#include "obs/lineage.hpp"
#include "obs/prof.hpp"
#include "sketch/serialize.hpp"
#include "telemetry/log.hpp"
#include "telemetry/tracing.hpp"

namespace umon::collector {
namespace {

/// (host, epoch) packed into one map key.
std::uint64_t epoch_key(int host, std::uint32_t epoch) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 32) |
         epoch;
}

/// Shard routing for light (grid-addressed) reports: a flow always maps to
/// the same (host, row, col) buckets, so this keeps its fragments together
/// even without a flow tag.
std::uint64_t mix_route(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 29;
  return x;
}

}  // namespace

namespace {

/// Rendezvous for Collector::drain(): each shard worker acks once it pops
/// the barrier message, and because queues are FIFO that ack proves every
/// earlier message on that shard — including seal processing and any sink
/// flush it triggered — has completed.
struct DrainBarrier {
  std::mutex mu;
  std::condition_variable cv;
  int acks = 0;
  int live_acks = 0;  ///< acks from shards that were not crashed

  void ack(bool live) {
    {
      std::lock_guard lock(mu);
      acks += 1;
      if (live) live_acks += 1;
    }
    cv.notify_all();
  }
  int wait_for(int n) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return acks >= n; });
    return live_acks;
  }
};

}  // namespace

struct Collector::ShardMsg {
  enum class Kind { kReports, kMirror, kSeal, kBarrier, kCrash, kRestart,
                    kStop };
  Kind kind = Kind::kStop;
  int host = -1;
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> bytes;  ///< kReports: concatenated report frames
  std::uint32_t report_count = 0;
  std::vector<uevent::MirroredPacket> mirror;
  std::shared_ptr<DrainBarrier> barrier;  ///< kBarrier only
};

struct Collector::Shard {
  struct StagedEpoch {
    std::vector<analyzer::Analyzer::SparseFragment> fragments;
    std::size_t wire_bytes = 0;
    Nanos max_event_ns = -1;  ///< largest window-end event time decoded
  };

  Shard(std::size_t capacity, OverflowPolicy policy)
      : queue(capacity, policy) {}

  BatchQueue<ShardMsg> queue;
  /// Touched only by this shard's worker thread (and by stop() after join).
  std::unordered_map<std::uint64_t, StagedEpoch> staging;
  /// Crash state. Only the worker thread writes it (kCrash/kRestart are
  /// ordinary queue messages), so no synchronization is needed.
  bool down = false;
};

struct Collector::HostSeqState {
  std::uint32_t epoch_start_seq = 0;  ///< first seq of the open epoch
  /// Arrival accounting, keyed by the epoch a payload was submitted under.
  /// A reliable uplink defers an epoch's seal until its frames settle, so
  /// later epochs' reports can land first — epoch-oblivious counting would
  /// zero them at the earlier seal and then read them back as gaps.
  struct EpochRecv {
    std::uint64_t count = 0;         ///< reports arrived for this epoch
    std::uint32_t max_seq_next = 0;  ///< highest (seq + 1) seen in it
  };
  std::map<std::uint32_t, EpochRecv> received_by_epoch;
};

struct Collector::PendingEpoch {
  int host = -1;
  std::uint32_t epoch = 0;
  std::vector<analyzer::Analyzer::SparseFragment> fragments;
  std::size_t wire_bytes = 0;
  Nanos max_event_ns = -1;  ///< max across the contributing shards
  int acks = 0;  ///< shards that have drained their share
};

/// Every counter lives in the collector's private registry so stats() can
/// materialize the whole CollectorStats view from one snapshot pass and the
/// exporters can dump the same instruments verbatim.
struct Collector::Instruments {
  explicit Instruments(int shards) {
    payloads_submitted = reg.counter(
        "umon_collector_payloads_submitted_total", {},
        "Upload payloads offered to the front door");
    payloads_malformed = reg.counter(
        "umon_collector_payloads_malformed_total", {},
        "Payloads rejected by the framing scan");
    batches_enqueued = reg.counter(
        "umon_collector_batches_enqueued_total", {},
        "Routed batches admitted to shard queues");
    batches_shed = reg.counter("umon_collector_batches_shed_total", {},
                               "Batches shed by the overflow policy");
    batches_rejected = reg.counter(
        "umon_collector_batches_rejected_total", {},
        "Shed breakdown: incoming batches refused (drop-newest)");
    batches_evicted = reg.counter(
        "umon_collector_batches_evicted_total", {},
        "Shed breakdown: resident batches evicted (drop-oldest)");
    reports_scanned = reg.counter("umon_collector_reports_scanned_total", {},
                                  "Report frames seen by the framing scan");
    reports_decoded = reg.counter("umon_collector_reports_decoded_total", {},
                                  "Reports fully decoded by shard workers");
    reports_malformed = reg.counter(
        "umon_collector_reports_malformed_total", {},
        "Reports that failed shard-side decode");
    reports_shed = reg.counter("umon_collector_reports_shed_total", {},
                               "Reports inside shed batches");
    reports_lost = reg.counter("umon_collector_reports_lost_total", {},
                               "Reports lost upstream (sequence gaps)");
    mirror_packets = reg.counter("umon_collector_mirror_packets_total", {},
                                 "Mirrored event packets delivered");
    epochs_flushed = reg.counter("umon_collector_epochs_flushed_total", {},
                                 "Sealed (host, epoch) batches flushed");
    fragments_ingested = reg.counter(
        "umon_collector_fragments_ingested_total", {},
        "Sparse curve fragments handed to the analyzer");
    batches_crashed = reg.counter(
        "umon_collector_batches_crashed_total", {},
        "Data batches discarded by a crashed shard");
    reports_crashed = reg.counter(
        "umon_collector_reports_crashed_total", {},
        "Reports inside batches discarded by a crashed shard");
    fragments_crashed = reg.counter(
        "umon_collector_fragments_crashed_total", {},
        "Staged curve fragments lost when a shard crashed");
    shard_crashes = reg.counter("umon_collector_shard_crashes_total", {},
                                "Shard crash events injected");
    shard_restarts = reg.counter("umon_collector_shard_restarts_total", {},
                                 "Shard restart events injected");
    decode_latency_us = reg.histogram(
        "umon_collector_decode_latency_us",
        telemetry::Histogram::latency_us_bounds(), {},
        "Shard-side batch decode + reconstruct latency");
    flush_latency_us = reg.histogram(
        "umon_collector_epoch_flush_latency_us",
        telemetry::Histogram::latency_us_bounds(), {},
        "Sealed-epoch flush into the analyzer");
    queue_depth.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      queue_depth.push_back(
          reg.gauge("umon_collector_queue_depth_batches",
                    {{"shard", std::to_string(s)}},
                    "Batches resident in one shard queue"));
    }
  }

  telemetry::MetricRegistry reg;
  telemetry::Counter* payloads_submitted;
  telemetry::Counter* payloads_malformed;
  telemetry::Counter* batches_enqueued;
  telemetry::Counter* batches_shed;
  telemetry::Counter* batches_rejected;
  telemetry::Counter* batches_evicted;
  telemetry::Counter* reports_scanned;
  telemetry::Counter* reports_decoded;
  telemetry::Counter* reports_malformed;
  telemetry::Counter* reports_shed;
  telemetry::Counter* reports_lost;
  telemetry::Counter* mirror_packets;
  telemetry::Counter* epochs_flushed;
  telemetry::Counter* fragments_ingested;
  telemetry::Counter* batches_crashed;
  telemetry::Counter* reports_crashed;
  telemetry::Counter* fragments_crashed;
  telemetry::Counter* shard_crashes;
  telemetry::Counter* shard_restarts;
  telemetry::Histogram* decode_latency_us;
  telemetry::Histogram* flush_latency_us;
  std::vector<telemetry::Gauge*> queue_depth;
};

Collector::Collector(const CollectorConfig& cfg, analyzer::Analyzer& sink)
    : cfg_(cfg), sink_(sink) {
  if (cfg_.shards < 1) cfg_.shards = 1;
  ins_ = std::make_unique<Instruments>(cfg_.shards);
  shards_.reserve(static_cast<std::size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(cfg_.queue_capacity, cfg_.overflow));
  }
}

Collector::~Collector() { stop(); }

const telemetry::MetricRegistry& Collector::telemetry_registry() const {
  return ins_->reg;
}

void Collector::start() {
  if (running_) return;
  running_ = true;
  workers_.reserve(shards_.size());
  for (int s = 0; s < cfg_.shards; ++s) {
    workers_.emplace_back([this, s] { worker(s); });
  }
}

void Collector::stop() {
  if (!running_) return;
  for (auto& sh : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kStop;
    sh->queue.push_control(std::move(msg));
  }
  for (auto& w : workers_) w.join();
  workers_.clear();
  running_ = false;

  // Flush whatever never got sealed (end of run): merge the per-shard
  // staging remainders and deliver them. Workers are joined, so this is
  // plain single-threaded code.
  std::unordered_map<std::uint64_t, PendingEpoch> leftovers;
  {
    std::lock_guard el(epoch_mutex_);
    leftovers = std::move(pending_);
    pending_.clear();
  }
  for (auto& sh : shards_) {
    for (auto& [key, staged] : sh->staging) {
      PendingEpoch& p = leftovers[key];
      p.host = static_cast<int>(key >> 32);
      p.epoch = static_cast<std::uint32_t>(key);
      p.wire_bytes += staged.wire_bytes;
      if (staged.max_event_ns > p.max_event_ns) {
        p.max_event_ns = staged.max_event_ns;
      }
      p.fragments.insert(p.fragments.end(),
                         std::make_move_iterator(staged.fragments.begin()),
                         std::make_move_iterator(staged.fragments.end()));
    }
    sh->staging.clear();
  }
  for (auto& [key, p] : leftovers) flush_epoch_to_sink(std::move(p));

  // Workers are joined, so every crash-damage record is in. Sweep whatever
  // never settled at a seal barrier — epochs whose every batch crashed
  // leave no staged data and may never have been sealed — then dispatch
  // the lot so no loss escapes the hook.
  {
    std::lock_guard lock(crash_mutex_);
    for (const auto& [key, lost] : crash_damage_) {
      settled_damage_.push_back({static_cast<int>(key >> 32),
                                 static_cast<std::uint32_t>(key), lost});
    }
    crash_damage_.clear();
  }
  fire_settled_damage();
}

int Collector::drain() {
  if (!running_) return 0;
  auto barrier = std::make_shared<DrainBarrier>();
  {
    // Take the front mutex so the barrier lands after any in-flight submit
    // on every queue; control push bypasses the overflow policy.
    std::lock_guard lock(front_mutex_);
    for (auto& sh : shards_) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kBarrier;
      msg.barrier = barrier;
      sh->queue.push_control(std::move(msg));
    }
  }
  // Every shard acks, crashed or not: a crashed worker keeps consuming its
  // queue (discarding data), so the barrier still proves FIFO completion of
  // everything enqueued before it — including batches that were in flight
  // when the crash message landed. The live count tells the caller how many
  // shards actually *processed* rather than shed their backlog.
  const int live = barrier->wait_for(cfg_.shards);
  // Crash damage settled at seal barriers since the last drain is now
  // final; dispatch it on this (caller) thread so the hook never races the
  // shard workers.
  fire_settled_damage();
  return live;
}

void Collector::crash_shard(int shard) {
  if (shard < 0 || shard >= cfg_.shards || !running_) return;
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kCrash;
  shards_[static_cast<std::size_t>(shard)]->queue.push_control(std::move(msg));
}

void Collector::restart_shard(int shard) {
  if (shard < 0 || shard >= cfg_.shards || !running_) return;
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kRestart;
  shards_[static_cast<std::size_t>(shard)]->queue.push_control(std::move(msg));
}

bool Collector::submit_report_payload(int host, std::uint32_t epoch,
                                      std::vector<std::uint8_t> payload) {
  // The framing scan below is pure local computation (plus atomic telemetry
  // counters); run it before taking front_mutex_ so a large or malformed
  // payload never stalls other submitters or the seal drain barrier.
  ins_->payloads_submitted->inc();

  const std::span<const std::uint8_t> in(payload);
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (in.size() < sizeof(count)) {
    ins_->payloads_malformed->inc();
    UMON_LOG(kWarn, "collector", "payload shorter than its header",
             {"host", std::to_string(host)},
             {"bytes", std::to_string(in.size())});
    return false;
  }
  std::memcpy(&count, in.data(), sizeof(count));
  offset += sizeof(count);

  // Scan the whole payload before committing anything: a payload that fails
  // the framing scan is discarded atomically, not half-routed.
  const auto n_shards = static_cast<std::size_t>(cfg_.shards);
  std::vector<std::vector<std::uint8_t>> route_bytes(n_shards);
  std::vector<std::uint32_t> route_count(n_shards, 0);
  std::uint32_t max_seq_next = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    auto frame = sketch::scan_report(in, offset);
    if (!frame) {
      ins_->payloads_malformed->inc();
      UMON_LOG(kWarn, "collector", "payload failed framing scan",
               {"host", std::to_string(host)},
               {"frame", std::to_string(i)});
      return false;
    }
    std::size_t shard;
    if (frame->has_flow) {
      shard = std::hash<FlowKey>{}(frame->flow) % n_shards;
    } else {
      shard = mix_route((static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(host))
                         << 40) ^
                        (static_cast<std::uint64_t>(frame->row) << 32) ^
                        frame->col) %
              n_shards;
    }
    route_bytes[shard].insert(route_bytes[shard].end(),
                              in.begin() + frame->begin,
                              in.begin() + frame->end);
    route_count[shard] += 1;
    if (frame->seq + 1 > max_seq_next) max_seq_next = frame->seq + 1;
  }
  if (offset != in.size()) {  // trailing garbage
    ins_->payloads_malformed->inc();
    UMON_LOG(kWarn, "collector", "payload has trailing garbage",
             {"host", std::to_string(host)});
    return false;
  }

  ins_->reports_scanned->inc(count);

  // State commit + routing: everything past this point must stay ordered
  // with seal_epoch's drain barrier, which serializes on the same mutex.
  std::lock_guard lock(front_mutex_);
  bytes_by_host_[host] += payload.size();
  HostSeqState& st = seq_state_[host];
  HostSeqState::EpochRecv& er = st.received_by_epoch[epoch];
  er.count += count;
  if (max_seq_next > er.max_seq_next) er.max_seq_next = max_seq_next;

  for (std::size_t s = 0; s < n_shards; ++s) {
    if (route_bytes[s].empty()) continue;
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kReports;
    msg.host = host;
    msg.epoch = epoch;
    msg.report_count = route_count[s];
    msg.bytes = std::move(route_bytes[s]);
    ShardMsg evicted;
    // umon-sca: allow(SA002) kBlock backpressure wait must happen under
    // front_mutex_: the seal drain barrier's FIFO argument needs pushes and
    // submits ordered by the same lock, and the wait is bounded by worker
    // drain progress.
    switch (shards_[s]->queue.push(std::move(msg), evicted)) {
      case BatchQueue<ShardMsg>::PushResult::kOk:
        ins_->batches_enqueued->inc();
        ins_->queue_depth[s]->add(1);
        break;
      case BatchQueue<ShardMsg>::PushResult::kRejected:
        ins_->batches_shed->inc();
        ins_->batches_rejected->inc();
        ins_->reports_shed->inc(route_count[s]);
        UMON_LOG(kDebug, "collector", "backpressure shed incoming batch",
                 {"shard", std::to_string(s)},
                 {"reports", std::to_string(route_count[s])});
        break;
      case BatchQueue<ShardMsg>::PushResult::kEvictedOldest:
        ins_->batches_enqueued->inc();
        ins_->batches_shed->inc();
        ins_->batches_evicted->inc();
        ins_->reports_shed->inc(evicted.report_count);
        UMON_LOG(kDebug, "collector", "backpressure evicted oldest batch",
                 {"shard", std::to_string(s)},
                 {"reports", std::to_string(evicted.report_count)});
        break;
    }
  }
  return true;
}

void Collector::submit_mirror_batch(
    std::vector<uevent::MirroredPacket> packets) {
  if (packets.empty()) return;
  std::lock_guard lock(front_mutex_);
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kMirror;
  msg.mirror = std::move(packets);
  // Mirror ingest is a cheap sorted merge; round-robin keeps any shard from
  // becoming the designated mirror worker.
  const std::size_t s = mirror_rr_++ % shards_.size();
  ShardMsg evicted;
  // umon-sca: allow(SA002) same drain-barrier ordering argument as
  // submit_report_payload: the bounded kBlock wait must stay under
  // front_mutex_ so seals observe a FIFO submit/push order.
  switch (shards_[s]->queue.push(std::move(msg), evicted)) {
    case BatchQueue<ShardMsg>::PushResult::kOk:
      ins_->batches_enqueued->inc();
      ins_->queue_depth[s]->add(1);
      break;
    case BatchQueue<ShardMsg>::PushResult::kRejected:
      ins_->batches_shed->inc();
      ins_->batches_rejected->inc();
      break;
    case BatchQueue<ShardMsg>::PushResult::kEvictedOldest:
      ins_->batches_enqueued->inc();
      ins_->batches_shed->inc();
      ins_->batches_evicted->inc();
      ins_->reports_shed->inc(evicted.report_count);
      break;
  }
}

void Collector::seal_epoch(int host, std::uint32_t epoch,
                           std::optional<std::uint32_t> end_seq) {
  {
    std::lock_guard lock(front_mutex_);
    HostSeqState& st = seq_state_[host];
    std::uint64_t received = 0;
    std::uint32_t seen_next = st.epoch_start_seq;
    auto rcv = st.received_by_epoch.find(epoch);
    if (rcv != st.received_by_epoch.end()) {
      received = rcv->second.count;
      seen_next = rcv->second.max_seq_next;
      st.received_by_epoch.erase(rcv);
    }
    std::uint32_t end = end_seq.value_or(seen_next);
    if (end < st.epoch_start_seq) end = st.epoch_start_seq;
    const std::uint64_t expected = end - st.epoch_start_seq;
    if (expected > received) {
      ins_->reports_lost->inc(expected - received);
      if (epoch_loss_hook_) {
        epoch_loss_hook_(host, epoch, expected - received);
      }
      UMON_LOG(kInfo, "collector", "sequence gap at epoch seal",
               {"host", std::to_string(host)},
               {"epoch", std::to_string(epoch)},
               {"lost", std::to_string(expected - received)});
    }
    st.epoch_start_seq = end;
  }
  for (auto& sh : shards_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kSeal;
    msg.host = host;
    msg.epoch = epoch;
    sh->queue.push_control(std::move(msg));
  }
}

void Collector::note_crash_damage(int host, std::uint32_t epoch,
                                  std::uint64_t count) {
  if (count == 0) return;
  std::lock_guard lock(crash_mutex_);
  crash_damage_[epoch_key(host, epoch)] += count;
}

void Collector::settle_crash_damage(std::uint64_t key) {
  std::lock_guard lock(crash_mutex_);
  auto it = crash_damage_.find(key);
  if (it == crash_damage_.end()) return;
  settled_damage_.push_back({static_cast<int>(key >> 32),
                             static_cast<std::uint32_t>(key), it->second});
  crash_damage_.erase(it);
}

void Collector::fire_settled_damage() {
  std::vector<SettledDamage> due;
  {
    std::lock_guard lock(crash_mutex_);
    due.swap(settled_damage_);
  }
  if (!epoch_loss_hook_) return;
  for (const SettledDamage& d : due) {
    epoch_loss_hook_(d.host, d.epoch, d.lost);
  }
}

void Collector::worker(int shard_id) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  telemetry::Gauge* depth =
      ins_->queue_depth[static_cast<std::size_t>(shard_id)];
  ShardMsg msg;
  while (sh.queue.pop(msg)) {
    switch (msg.kind) {
      case ShardMsg::Kind::kReports:
        depth->add(-1);
        if (sh.down) {
          // A crashed shard sheds its traffic instead of wedging the
          // producers; the loss is counted, never silent.
          ins_->batches_crashed->inc();
          ins_->reports_crashed->inc(msg.report_count);
          note_crash_damage(msg.host, msg.epoch, msg.report_count);
          break;
        }
        handle_reports(shard_id, msg);
        break;
      case ShardMsg::Kind::kMirror: {
        depth->add(-1);
        if (sh.down) {
          ins_->batches_crashed->inc();
          break;
        }
        const std::uint64_t n = msg.mirror.size();
        {
          std::lock_guard sink_lock(sink_mutex_);
          sink_.ingest_mirrored(msg.mirror);
        }
        ins_->mirror_packets->inc(n);
        break;
      }
      case ShardMsg::Kind::kSeal:
        // Seals process even while down: the crashed shard contributes its
        // (empty) share so the epoch barrier completes with partial data
        // instead of holding every other shard's fragments hostage.
        handle_seal(shard_id, msg);
        break;
      case ShardMsg::Kind::kBarrier:
        msg.barrier->ack(/*live=*/!sh.down);
        break;
      case ShardMsg::Kind::kCrash: {
        sh.down = true;
        ins_->shard_crashes->inc();
        std::uint64_t staged_fragments = 0;
        for (const auto& [key, staged] : sh.staging) {
          staged_fragments += staged.fragments.size();
          note_crash_damage(static_cast<int>(key >> 32),
                            static_cast<std::uint32_t>(key),
                            staged.fragments.size());
        }
        ins_->fragments_crashed->inc(staged_fragments);
        sh.staging.clear();  // a crash loses in-memory state
        UMON_LOG(kWarn, "collector", "shard crashed",
                 {"shard", std::to_string(shard_id)},
                 {"staged_fragments", std::to_string(staged_fragments)});
        break;
      }
      case ShardMsg::Kind::kRestart:
        sh.down = false;
        ins_->shard_restarts->inc();
        UMON_LOG(kInfo, "collector", "shard restarted",
                 {"shard", std::to_string(shard_id)});
        break;
      case ShardMsg::Kind::kStop:
        return;
    }
  }
}

void Collector::handle_reports(int shard_id, ShardMsg& msg) {
  UMON_TRACE_SPAN_LINEAGE("collector/batch_decode",
                          obs::LineageTracker::key_of(
                              static_cast<std::uint32_t>(msg.host),
                              msg.epoch));
  UMON_PROF_SCOPE(kShardDecode);
  telemetry::ScopedTimer timer(ins_->decode_latency_us);
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  Shard::StagedEpoch& staged = sh.staging[epoch_key(msg.host, msg.epoch)];
  staged.wire_bytes += msg.bytes.size();

  const std::span<const std::uint8_t> in(msg.bytes);
  std::size_t offset = 0;
  std::uint64_t decoded = 0;  // batched into the counter once per payload
  while (offset < in.size()) {
    auto report = sketch::decode_report(in, offset);
    if (!report) {
      // Frames passed the front-door scan, so this is defensive; count the
      // remainder of the batch as malformed and move on.
      ins_->reports_malformed->inc();
      UMON_LOG(kWarn, "collector", "shard-side decode failed",
               {"host", std::to_string(msg.host)},
               {"shard", std::to_string(shard_id)});
      break;
    }
    ++decoded;
    if (!report->flow) continue;  // light-part report: accounting only
    const std::vector<double> series = report->report.reconstruct();
    const Nanos end_ns = window_start(
        report->report.w0 + static_cast<WindowId>(series.size()),
        cfg_.window_shift);
    if (end_ns > staged.max_event_ns) staged.max_event_ns = end_ns;
    analyzer::Analyzer::SparseFragment frag;
    frag.flow = *report->flow;
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (series[i] == 0) continue;
      frag.windows.emplace_back(
          report->report.w0 + static_cast<WindowId>(i), series[i]);
    }
    if (!frag.windows.empty()) staged.fragments.push_back(std::move(frag));
  }
  ins_->reports_decoded->inc(decoded);
  if (lineage_ != nullptr) {
    lineage_->on_decode(static_cast<std::uint32_t>(msg.host), msg.epoch,
                        shard_id, static_cast<std::uint32_t>(decoded));
  }
  if (decode_event_hook_ && staged.max_event_ns >= 0) {
    decode_event_hook_(staged.max_event_ns);
  }
}

void Collector::handle_seal(int shard_id, const ShardMsg& msg) {
  UMON_TRACE_SPAN("collector/epoch_seal");
  Shard& sh = *shards_[static_cast<std::size_t>(shard_id)];
  const std::uint64_t key = epoch_key(msg.host, msg.epoch);
  Shard::StagedEpoch staged;
  if (auto it = sh.staging.find(key); it != sh.staging.end()) {
    staged = std::move(it->second);
    sh.staging.erase(it);
  }

  std::unique_lock el(epoch_mutex_);
  PendingEpoch& p = pending_[key];
  p.host = msg.host;
  p.epoch = msg.epoch;
  p.wire_bytes += staged.wire_bytes;
  if (staged.max_event_ns > p.max_event_ns) {
    p.max_event_ns = staged.max_event_ns;
  }
  p.fragments.insert(p.fragments.end(),
                     std::make_move_iterator(staged.fragments.begin()),
                     std::make_move_iterator(staged.fragments.end()));
  p.acks += 1;
  if (p.acks < cfg_.shards) return;
  PendingEpoch done = std::move(p);
  pending_.erase(key);
  el.unlock();
  flush_epoch_to_sink(std::move(done));
}

void Collector::flush_epoch_to_sink(PendingEpoch&& done) {
  UMON_TRACE_SPAN_LINEAGE("collector/epoch_flush",
                          obs::LineageTracker::key_of(
                              static_cast<std::uint32_t>(done.host),
                              done.epoch));
  UMON_PROF_SCOPE(kEpochFlush);
  telemetry::ScopedTimer timer(ins_->flush_latency_us);
  // The seal barrier just completed (every shard acked), so queue FIFO
  // guarantees any batch of this epoch a crashed shard discarded has been
  // dequeued and its damage recorded — settle it for the loss hook.
  settle_crash_damage(epoch_key(done.host, done.epoch));
  analyzer::Analyzer::DecodedReportBatch batch;
  batch.host = done.host;
  batch.epoch = done.epoch;
  batch.wire_bytes = done.wire_bytes;
  batch.fragments = std::move(done.fragments);
  const std::uint64_t n = batch.fragments.size();
  {
    std::lock_guard sink_lock(sink_mutex_);
    sink_.ingest_report_batch(batch);
  }
  ins_->epochs_flushed->inc();
  ins_->fragments_ingested->inc(n);
  if (curve_event_hook_ && done.max_event_ns >= 0) {
    curve_event_hook_(done.max_event_ns);
  }
  if (epoch_seal_hook_) epoch_seal_hook_(done.host, done.epoch);
}

CollectorStats Collector::stats() const {
  CollectorStats out;
  // One pass over the registry snapshot instead of field-by-field counter
  // reads: every series is resolved at the same point in the snapshot loop,
  // and new instruments show up in exports without touching this view.
  for (const auto& s : ins_->reg.snapshot()) {
    if (s.kind != telemetry::MetricRegistry::Kind::kCounter) continue;
    const std::uint64_t v = s.counter_value;
    if (s.name == "umon_collector_payloads_submitted_total") {
      out.payloads_submitted = v;
    } else if (s.name == "umon_collector_payloads_malformed_total") {
      out.payloads_malformed = v;
    } else if (s.name == "umon_collector_batches_enqueued_total") {
      out.batches_enqueued = v;
    } else if (s.name == "umon_collector_batches_shed_total") {
      out.batches_shed = v;
    } else if (s.name == "umon_collector_batches_rejected_total") {
      out.batches_rejected = v;
    } else if (s.name == "umon_collector_batches_evicted_total") {
      out.batches_evicted = v;
    } else if (s.name == "umon_collector_reports_scanned_total") {
      out.reports_scanned = v;
    } else if (s.name == "umon_collector_reports_decoded_total") {
      out.reports_decoded = v;
    } else if (s.name == "umon_collector_reports_malformed_total") {
      out.reports_malformed = v;
    } else if (s.name == "umon_collector_reports_shed_total") {
      out.reports_shed = v;
    } else if (s.name == "umon_collector_reports_lost_total") {
      out.reports_lost = v;
    } else if (s.name == "umon_collector_mirror_packets_total") {
      out.mirror_packets = v;
    } else if (s.name == "umon_collector_epochs_flushed_total") {
      out.epochs_flushed = v;
    } else if (s.name == "umon_collector_fragments_ingested_total") {
      out.fragments_ingested = v;
    } else if (s.name == "umon_collector_batches_crashed_total") {
      out.batches_crashed = v;
    } else if (s.name == "umon_collector_reports_crashed_total") {
      out.reports_crashed = v;
    } else if (s.name == "umon_collector_fragments_crashed_total") {
      out.fragments_crashed = v;
    } else if (s.name == "umon_collector_shard_crashes_total") {
      out.shard_crashes = v;
    } else if (s.name == "umon_collector_shard_restarts_total") {
      out.shard_restarts = v;
    }
  }
  {
    std::lock_guard lock(front_mutex_);
    out.bytes_by_host = bytes_by_host_;
  }
  return out;
}

}  // namespace umon::collector
