// Bounded per-shard ingest queue with explicit overflow policy. The
// collector is backpressure-aware by construction: a queue never grows past
// its capacity, and what happens at the limit is a policy decision the
// operator picks (shed newest, shed oldest, or stall the producer).
//
// Concurrency model: one logical producer (the collector front door, which
// serializes submitters behind its own mutex) and one consumer (the shard
// worker). Items are whole byte-batches — hundreds of reports each — so the
// short critical section here is amortized across a lot of decode work; a
// mutex-guarded ring is indistinguishable from a lock-free SPSC ring at this
// granularity and supports drop-oldest, which a pure SPSC ring cannot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace umon::collector {

/// What a full queue does with the next batch.
enum class OverflowPolicy {
  kDropNewest,  ///< shed the incoming batch (freshest data sacrificed)
  kDropOldest,  ///< evict the queue head to admit the incoming batch
  kBlock,       ///< stall the producer until the consumer drains a slot
};

template <typename T>
class BatchQueue {
 public:
  enum class PushResult {
    kOk,             ///< admitted without shedding
    kRejected,       ///< policy kDropNewest shed the incoming item
    kEvictedOldest,  ///< admitted; policy kDropOldest shed the head
  };

  BatchQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  /// Push under the configured policy. When the result is kEvictedOldest,
  /// `evicted` receives the shed item so the caller can account for it.
  /// Ignoring the result silently loses the shed-batch accounting.
  [[nodiscard]] PushResult push(T item, T& evicted) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kDropNewest:
          return PushResult::kRejected;
        case OverflowPolicy::kDropOldest:
          evicted = std::move(items_.front());
          items_.pop_front();
          items_.push_back(std::move(item));
          not_empty_.notify_one();
          return PushResult::kEvictedOldest;
        case OverflowPolicy::kBlock:
          not_full_.wait(lock, [&] {
            return items_.size() < capacity_ || closed_;
          });
          if (closed_) return PushResult::kRejected;
          break;
      }
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Push ignoring capacity (control messages — seal/stop markers must
  /// never be shed or the pipeline wedges).
  void push_control(T item) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
  }

  /// Blocking pop; returns false once the queue is closed and drained.
  /// Ignoring the result risks consuming a default-constructed T.
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace umon::collector
