// Host-side upload agent: the producer end of the collector pipeline. At
// each measurement-period boundary it flushes the host's sketch, stamps
// monotonically increasing per-host sequence numbers, and encodes the
// reports into bounded payloads (one upload datagram each). The end_seq it
// tracks is what seal_epoch() needs to count trailing losses exactly.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "obs/prof.hpp"
#include "sketch/serialize.hpp"
#include "sketch/wavesketch_full.hpp"

namespace umon::collector {

class HostUplink {
 public:
  // umon-lint: wire-struct
  struct Payload {
    std::uint32_t epoch = 0;
    std::vector<std::uint8_t> bytes;
    std::size_t reports = 0;
  };
  static_assert(std::is_nothrow_move_constructible_v<Payload>,
                "payloads move through the lossy upload channel");
  // umon-lint: wire-struct
  struct EpochUpload {
    std::uint32_t epoch = 0;
    std::uint32_t end_seq = 0;  ///< pass to Collector::seal_epoch
    std::size_t reports = 0;
    std::vector<Payload> payloads;
  };
  static_assert(std::is_nothrow_move_constructible_v<EpochUpload>);

  explicit HostUplink(int host, std::size_t max_reports_per_payload = 256)
      : host_(host),
        max_reports_(max_reports_per_payload == 0 ? 1
                                                  : max_reports_per_payload) {}

  /// Flush the sketch and encode one epoch's upload. Advances the epoch and
  /// sequence counters even if the result is later lost in transit — that
  /// is exactly how the collector detects the loss. Discarding the return
  /// value silently loses the epoch while still consuming its sequence
  /// range, hence [[nodiscard]].
  [[nodiscard]] EpochUpload flush_epoch(sketch::WaveSketchFull& sk,
                                        bool include_light = true) {
    return encode_epoch(sk.flush_reports(include_light));
  }

  /// Encode an explicit report batch as one epoch (synthetic sources and
  /// tests). Reports are stamped seq = next_seq, next_seq + 1, ...
  [[nodiscard]] EpochUpload encode_epoch(
      std::vector<sketch::TaggedReport> reports) {
    UMON_PROF_SCOPE(kUplinkEncode);
    EpochUpload up;
    up.epoch = epoch_++;
    up.reports = reports.size();
    const std::span<const sketch::TaggedReport> all(reports);
    for (std::size_t i = 0; i < all.size(); i += max_reports_) {
      const std::size_t n = std::min(max_reports_, all.size() - i);
      Payload p;
      p.epoch = up.epoch;
      p.reports = n;
      p.bytes = sketch::encode_batch(all.subspan(i, n), next_seq_);
      next_seq_ += static_cast<std::uint32_t>(n);
      up.payloads.push_back(std::move(p));
    }
    up.end_seq = next_seq_;
    return up;
  }

  [[nodiscard]] int host() const { return host_; }
  [[nodiscard]] std::uint32_t next_epoch() const { return epoch_; }
  [[nodiscard]] std::uint32_t next_seq() const { return next_seq_; }

 private:
  int host_;
  std::size_t max_reports_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t epoch_ = 0;
};

}  // namespace umon::collector
