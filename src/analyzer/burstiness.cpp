#include "analyzer/burstiness.hpp"

#include <algorithm>

namespace umon::analyzer {

std::vector<Burst> find_bursts(std::span<const double> curve,
                               double threshold) {
  std::vector<Burst> out;
  Burst cur;
  bool open = false;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    if (curve[i] >= threshold) {
      if (!open) {
        open = true;
        cur = Burst{};
        cur.start = i;
      }
      cur.length += 1;
      cur.peak = std::max(cur.peak, curve[i]);
      cur.bytes += curve[i];
    } else if (open) {
      out.push_back(cur);
      open = false;
    }
  }
  if (open) out.push_back(cur);
  return out;
}

BurstProfile burst_profile(std::span<const double> curve, double threshold) {
  BurstProfile p;
  const auto bursts = find_bursts(curve, threshold);
  p.bursts = bursts.size();

  double total = 0;
  std::size_t active = 0;
  for (double v : curve) {
    p.peak = std::max(p.peak, v);
    total += v;
    active += v > 0 ? 1 : 0;
  }
  p.mean = active == 0 ? 0 : total / static_cast<double>(active);
  p.peak_to_mean = p.mean == 0 ? 0 : p.peak / p.mean;

  double burst_windows = 0, burst_bytes = 0;
  for (const auto& b : bursts) {
    burst_windows += static_cast<double>(b.length);
    burst_bytes += b.bytes;
  }
  if (!bursts.empty()) {
    p.mean_burst_windows = burst_windows / static_cast<double>(bursts.size());
    double gaps = 0;
    for (std::size_t i = 1; i < bursts.size(); ++i) {
      gaps += static_cast<double>(bursts[i].start -
                                  (bursts[i - 1].start + bursts[i - 1].length));
    }
    p.mean_gap_windows =
        bursts.size() > 1 ? gaps / static_cast<double>(bursts.size() - 1) : 0;
  }
  p.burst_volume_fraction = total == 0 ? 0 : burst_bytes / total;
  return p;
}

double suggest_kmin_bytes(std::span<const Burst> bursts, double quantile) {
  if (bursts.empty()) return 0;
  std::vector<double> volumes;
  volumes.reserve(bursts.size());
  for (const auto& b : bursts) volumes.push_back(b.bytes);
  std::sort(volumes.begin(), volumes.end());
  const auto idx = static_cast<std::size_t>(
      std::clamp(quantile, 0.0, 1.0) *
      static_cast<double>(volumes.size() - 1));
  return volumes[idx];
}

}  // namespace umon::analyzer
