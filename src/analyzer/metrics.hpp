// Accuracy metrics from Appendix E: Euclidean distance, cosine similarity,
// energy similarity, and average relative error (ARE) between a true and an
// estimated flow-rate curve.
#pragma once

#include <span>

namespace umon::analyzer {

double euclidean_distance(std::span<const double> truth,
                          std::span<const double> estimate);

/// Cosine of the angle between the two curves as vectors (1 = identical
/// direction). Returns 1 when both curves are all-zero, 0 when only one is.
double cosine_similarity(std::span<const double> truth,
                         std::span<const double> estimate);

/// min(E1,E2)/max(E1,E2) on curve energies (sum of squares); 1 is best.
double energy_similarity(std::span<const double> truth,
                         std::span<const double> estimate);

/// Mean of |est - truth| / truth over windows where truth > 0.
double average_relative_error(std::span<const double> truth,
                              std::span<const double> estimate);

struct CurveMetrics {
  double euclidean = 0;
  double cosine = 0;
  double energy = 0;
  double are = 0;
};

CurveMetrics curve_metrics(std::span<const double> truth,
                           std::span<const double> estimate);

}  // namespace umon::analyzer
