#include "analyzer/transport.hpp"

#include <algorithm>
#include <cmath>

namespace umon::analyzer {

double jain_fairness(std::span<const double> rates) {
  if (rates.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0) return 1.0;
  return (sum * sum) /
         (static_cast<double>(rates.size()) * sum_sq);
}

std::vector<double> fairness_over_time(
    const std::vector<std::vector<double>>& curves) {
  std::size_t length = 0;
  for (const auto& c : curves) length = std::max(length, c.size());
  std::vector<double> out(length, 1.0);
  std::vector<double> column(curves.size());
  for (std::size_t w = 0; w < length; ++w) {
    for (std::size_t f = 0; f < curves.size(); ++f) {
      column[f] = w < curves[f].size() ? curves[f][w] : 0.0;
    }
    out[w] = jain_fairness(column);
  }
  return out;
}

std::int64_t convergence_window(std::span<const double> curve,
                                double tolerance) {
  if (curve.empty()) return -1;
  const double final_rate = curve.back();
  if (final_rate <= 0) return -1;
  const double lo = final_rate * (1 - tolerance);
  const double hi = final_rate * (1 + tolerance);
  // Walk backwards to the last window outside the band. A "settled" suffix
  // consisting only of the final window counts as never converging.
  for (std::size_t i = curve.size(); i-- > 0;) {
    if (curve[i] < lo || curve[i] > hi) {
      const auto settled_at = static_cast<std::int64_t>(i) + 1;
      return settled_at >= static_cast<std::int64_t>(curve.size()) - 1
                 ? -1
                 : settled_at;
    }
  }
  return 0;  // always within the band
}

double idle_fraction(std::span<const double> curve, double idle_threshold) {
  if (curve.empty()) return 0.0;
  std::size_t idle = 0;
  for (double v : curve) idle += v < idle_threshold ? 1 : 0;
  return static_cast<double>(idle) / static_cast<double>(curve.size());
}

double oscillation_index(std::span<const double> curve) {
  if (curve.size() < 2) return 0.0;
  double change = 0, sum = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    change += std::abs(curve[i] - curve[i - 1]);
    sum += curve[i];
  }
  const double mean_rate = sum / static_cast<double>(curve.size() - 1);
  return mean_rate == 0 ? 0.0
                        : change / static_cast<double>(curve.size() - 1) /
                              mean_rate;
}

}  // namespace umon::analyzer
