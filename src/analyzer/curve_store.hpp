// Multi-period rate-curve storage. WaveSketch uploads one report per bucket
// per measurement period ("longer flows are handled in multiple reporting
// periods", Section 7.1); the analyzer must stitch those fragments into one
// continuous per-flow curve and serve range queries over absolute windows.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {

/// One reconstructed fragment of a flow's curve (the analyzer-side form of
/// a bucket report).
struct CurveFragment {
  WindowId w0 = 0;
  std::vector<double> bytes_per_window;
};

class FlowCurveStore {
 public:
  explicit FlowCurveStore(int window_shift = kDefaultWindowShift)
      : window_shift_(window_shift) {}

  /// Add a fragment for `flow`. Overlapping windows accumulate (a window
  /// split across two periods uploads partial counts in each).
  void add(const FlowKey& flow, CurveFragment fragment);

  /// Add an already-sparse fragment: (absolute window, bytes) pairs, sorted
  /// by window. `window_offset` is subtracted from every window id (host
  /// clock correction). The collector's decode shards strip zeros in
  /// parallel so this serial section only touches non-zero windows.
  void add_sparse(const FlowKey& flow,
                  std::span<const std::pair<WindowId, double>> windows,
                  WindowId window_offset = 0);

  /// Dense curve over [from, to) absolute windows (zeros where unknown).
  [[nodiscard]] std::vector<double> range(const FlowKey& flow, WindowId from,
                                          WindowId to) const;

  /// Full extent of a flow's stored curve; false if unknown.
  bool extent(const FlowKey& flow, WindowId& first, WindowId& last) const;

  /// Total bytes stored for a flow (e.g., to rank heavy flows).
  [[nodiscard]] double total_bytes(const FlowKey& flow) const;

  /// Average rate in Gbps over the flow's active extent.
  [[nodiscard]] double average_gbps(const FlowKey& flow) const;

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::vector<FlowKey> flows() const;

  /// Total stored non-zero windows across all flows (tracked incrementally,
  /// O(1) to read).
  [[nodiscard]] std::size_t window_count() const { return total_windows_; }

  /// Approximate resident bytes of the store: per-flow entry overhead plus
  /// per-window map node cost (key + value + three pointers + color, the
  /// usual std::map node layout).
  [[nodiscard]] std::size_t memory_bytes() const {
    return flows_.size() * kEntryBytes + total_windows_ * kWindowNodeBytes;
  }

 private:
  struct Entry {
    FlowKey key;
    std::map<WindowId, double> windows;  // sparse accumulated counters
  };

  static constexpr std::size_t kEntryBytes =
      sizeof(Entry) + 2 * sizeof(void*);  // hash node overhead
  static constexpr std::size_t kWindowNodeBytes =
      sizeof(std::pair<WindowId, double>) + 4 * sizeof(void*);

  int window_shift_;
  std::unordered_map<std::uint64_t, Entry> flows_;
  std::size_t total_windows_ = 0;
};

}  // namespace umon::analyzer
