// Multi-period rate-curve storage. WaveSketch uploads one report per bucket
// per measurement period ("longer flows are handled in multiple reporting
// periods", Section 7.1); the analyzer must stitch those fragments into one
// continuous per-flow curve and serve range queries over absolute windows.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {

/// One reconstructed fragment of a flow's curve (the analyzer-side form of
/// a bucket report).
struct CurveFragment {
  WindowId w0 = 0;
  std::vector<double> bytes_per_window;
};

/// Trust level of one absolute window across the store. Reports can be
/// lost in transit; a window the pipeline could not fully recover must
/// never be indistinguishable from a genuinely idle one. Ordered by
/// severity: marking only ever upgrades (covered → ... → lost).
enum class WindowConfidence : std::uint8_t {
  kCovered = 0,        ///< delivered first try, nothing missing
  kRetransmitted = 1,  ///< recovered, but only after retransmits
  kGapFilled = 2,      ///< lost, values interpolated (gap-fill enabled)
  kLost = 3,           ///< lost, no recovery; stored values are partial
};

[[nodiscard]] constexpr const char* to_string(WindowConfidence c) {
  switch (c) {
    case WindowConfidence::kCovered: return "covered";
    case WindowConfidence::kRetransmitted: return "retransmitted";
    case WindowConfidence::kGapFilled: return "gap_filled";
    case WindowConfidence::kLost: return "lost";
  }
  return "unknown";
}

/// Write-through spill target for durable storage. The curve store remains
/// the authoritative in-RAM view; a sink (umon::store::Store) receives the
/// same sparse fragments and confidence marks as they arrive, so the
/// durable copy can never diverge from what the analyzer ingested. The
/// interface lives here (not in src/store) so the analyzer never depends on
/// the storage subsystem.
class CurveSink {
 public:
  virtual ~CurveSink() = default;
  /// One flow's non-zero windows, offset-corrected, sorted by window.
  virtual void on_sparse(
      const FlowKey& flow,
      std::span<const std::pair<WindowId, double>> windows) = 0;
  /// Mirror of mark_windows (upgrade-only confidence over [from, to)).
  virtual void on_mark(WindowId from, WindowId to, WindowConfidence conf) = 0;
};

class FlowCurveStore {
 public:
  explicit FlowCurveStore(int window_shift = kDefaultWindowShift)
      : window_shift_(window_shift) {}

  /// Attach (or detach with nullptr) a write-through spill sink. Not owned.
  void set_sink(CurveSink* sink) { sink_ = sink; }
  [[nodiscard]] CurveSink* sink() const { return sink_; }

  /// Add a fragment for `flow`. Overlapping windows accumulate (a window
  /// split across two periods uploads partial counts in each).
  void add(const FlowKey& flow, CurveFragment fragment);

  /// Add an already-sparse fragment: (absolute window, bytes) pairs, sorted
  /// by window. `window_offset` is subtracted from every window id (host
  /// clock correction). The collector's decode shards strip zeros in
  /// parallel so this serial section only touches non-zero windows.
  void add_sparse(const FlowKey& flow,
                  std::span<const std::pair<WindowId, double>> windows,
                  WindowId window_offset = 0);

  /// Dense curve over [from, to) absolute windows (zeros where unknown).
  /// When gap-fill is enabled, windows marked kLost are linearly
  /// interpolated between the flow's nearest stored neighbors instead of
  /// reading as (possibly partial) raw values — and only those windows;
  /// trusted data is never touched.
  [[nodiscard]] std::vector<double> range(const FlowKey& flow, WindowId from,
                                          WindowId to) const;

  // --- per-window confidence ------------------------------------------------
  /// Mark [from, to) with `conf`. Marks only upgrade: a window already
  /// flagged worse keeps its flag (several hosts may cover one window; if
  /// any of them lost it, the window is untrusted). Marking kCovered is a
  /// no-op — covered is the default.
  void mark_windows(WindowId from, WindowId to, WindowConfidence conf);

  /// Confidence of one window. Lost windows report kGapFilled only when
  /// gap-fill is enabled *and* range() will actually interpolate them:
  /// every flow whose stored curve spans the window has a trusted stored
  /// neighbor on both sides. A lost window range() would serve raw (at a
  /// flow's edge, or with no trusted neighbor) stays kLost — the label
  /// must never promise an interpolation the read path cannot deliver.
  [[nodiscard]] WindowConfidence confidence(WindowId w) const;

  /// Enable read-side interpolation across kLost windows. Off by default:
  /// untrusted data stays visibly degraded unless the operator opts in.
  void set_gap_fill(bool on) { gap_fill_ = on; }
  [[nodiscard]] bool gap_fill() const { return gap_fill_; }

  /// Count of explicitly marked windows per confidence class (kCovered is
  /// the unmarked default and always reports 0 here).
  [[nodiscard]] std::size_t marked_count(WindowConfidence conf) const;

  /// Every marked window and its flag, ascending by window (for exports).
  [[nodiscard]] const std::map<WindowId, WindowConfidence>& marks() const {
    return marks_;
  }

  /// Full extent of a flow's stored curve; false if unknown.
  bool extent(const FlowKey& flow, WindowId& first, WindowId& last) const;

  /// Total bytes stored for a flow (e.g., to rank heavy flows).
  [[nodiscard]] double total_bytes(const FlowKey& flow) const;

  /// Average rate in Gbps over the flow's active extent.
  [[nodiscard]] double average_gbps(const FlowKey& flow) const;

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::vector<FlowKey> flows() const;

  /// Total stored non-zero windows across all flows (tracked incrementally,
  /// O(1) to read).
  [[nodiscard]] std::size_t window_count() const { return total_windows_; }

  /// Approximate resident bytes of the store: per-flow entry overhead plus
  /// per-window map node cost (key + value + three pointers + color, the
  /// usual std::map node layout).
  [[nodiscard]] std::size_t memory_bytes() const {
    return flows_.size() * kEntryBytes + total_windows_ * kWindowNodeBytes;
  }

 private:
  struct Entry {
    FlowKey key;
    std::map<WindowId, double> windows;  // sparse accumulated counters
    /// Cached extent of `windows` (valid when the map is non-empty):
    /// range() consults these before walking the tree, so a query that
    /// misses the flow's lifetime entirely is O(1) after the hash lookup.
    WindowId first = 0;
    WindowId last = 0;
  };
  using WindowMap = std::map<WindowId, double>;

  /// Fold window `w` into the entry's cached extent (call after insert).
  static void touch_extent(Entry& e, WindowId w);

  [[nodiscard]] bool is_lost(WindowId w) const;
  /// Nearest stored neighbors of `w` in `windows` that are themselves
  /// trusted (not marked kLost); false when either side is missing.
  bool trusted_neighbors(const WindowMap& windows, WindowId w,
                         WindowMap::const_iterator& left,
                         WindowMap::const_iterator& right) const;
  /// True when range() can interpolate `w` for every flow spanning it.
  [[nodiscard]] bool gap_fillable(WindowId w) const;

  static constexpr std::size_t kEntryBytes =
      sizeof(Entry) + 2 * sizeof(void*);  // hash node overhead
  static constexpr std::size_t kWindowNodeBytes =
      sizeof(std::pair<WindowId, double>) + 4 * sizeof(void*);

  int window_shift_;
  std::unordered_map<std::uint64_t, Entry> flows_;
  std::size_t total_windows_ = 0;
  /// Store-global confidence marks (absent = kCovered). Global rather than
  /// per-flow: a lost epoch hides *which* flows it carried, so every flow's
  /// view of the affected windows is suspect.
  std::map<WindowId, WindowConfidence> marks_;
  bool gap_fill_ = false;
  CurveSink* sink_ = nullptr;
};

}  // namespace umon::analyzer
