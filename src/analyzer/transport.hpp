// Transport-algorithm analysis helpers (use case B1): convergence and
// fairness of congestion control, computed from microsecond-level rate
// curves reconstructed by the analyzer.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {

/// Jain's fairness index over per-flow average rates: 1 = perfectly fair,
/// 1/n = one flow takes everything.
double jain_fairness(std::span<const double> rates);

/// Per-window Jain's index across a set of aligned rate curves (all series
/// must share the same length; shorter ones are zero-padded by the caller).
std::vector<double> fairness_over_time(
    const std::vector<std::vector<double>>& curves);

/// Convergence time: the first window after which the rate stays within
/// +-`tolerance` (fraction) of the final value for the rest of the curve.
/// Returns the window index, or -1 if the curve never settles.
std::int64_t convergence_window(std::span<const double> curve,
                                double tolerance = 0.2);

/// Fraction of windows with rate below `idle_threshold` — the "gaps"
/// signature of app-limited flows (Figure 9a).
double idle_fraction(std::span<const double> curve, double idle_threshold);

/// Rate oscillation measure: mean absolute window-to-window change divided
/// by the mean rate (0 = steady, large = thrashing).
double oscillation_index(std::span<const double> curve);

}  // namespace umon::analyzer
