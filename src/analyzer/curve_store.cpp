#include "analyzer/curve_store.hpp"

namespace umon::analyzer {

void FlowCurveStore::add(const FlowKey& flow, CurveFragment fragment) {
  Entry& e = flows_[flow.packed()];
  e.key = flow;
  std::vector<std::pair<WindowId, double>> spilled;
  for (std::size_t i = 0; i < fragment.bytes_per_window.size(); ++i) {
    const double v = fragment.bytes_per_window[i];
    if (v == 0) continue;  // keep the map sparse
    const WindowId key = fragment.w0 + static_cast<WindowId>(i);
    auto [it, inserted] = e.windows.try_emplace(key, 0.0);
    it->second += v;
    if (inserted) ++total_windows_;
    touch_extent(e, key);
    if (sink_ != nullptr) spilled.emplace_back(key, v);
  }
  if (sink_ != nullptr && !spilled.empty()) sink_->on_sparse(flow, spilled);
}

void FlowCurveStore::add_sparse(
    const FlowKey& flow,
    std::span<const std::pair<WindowId, double>> windows,
    WindowId window_offset) {
  if (windows.empty()) return;
  Entry& e = flows_[flow.packed()];
  e.key = flow;
  // Sorted input lets every insert reuse the previous position as a hint,
  // keeping the per-window cost amortized O(1) for fresh ranges.
  auto hint = e.windows.begin();
  std::vector<std::pair<WindowId, double>> spilled;
  if (sink_ != nullptr) spilled.reserve(windows.size());
  for (const auto& [w, v] : windows) {
    if (v == 0) continue;
    const WindowId key = w - window_offset;
    hint = e.windows.lower_bound(key);
    if (hint != e.windows.end() && hint->first == key) {
      hint->second += v;
    } else {
      hint = e.windows.emplace_hint(hint, key, v);
      ++total_windows_;
    }
    touch_extent(e, key);
    if (sink_ != nullptr) spilled.emplace_back(key, v);
  }
  if (sink_ != nullptr && !spilled.empty()) sink_->on_sparse(flow, spilled);
}

void FlowCurveStore::touch_extent(Entry& e, WindowId w) {
  if (e.windows.size() == 1) {
    e.first = e.last = w;  // first stored window defines the extent
  } else {
    if (w < e.first) e.first = w;
    if (w > e.last) e.last = w;
  }
}

std::vector<double> FlowCurveStore::range(const FlowKey& flow, WindowId from,
                                          WindowId to) const {
  std::vector<double> out(
      static_cast<std::size_t>(to > from ? to - from : 0), 0.0);
  auto it = flows_.find(flow.packed());
  if (it == flows_.end()) return out;
  // Extent-index short-circuit: a range entirely outside the flow's
  // lifetime has no stored windows and nothing gap-fill could interpolate
  // (interpolation needs a stored neighbor on both sides), so skip the
  // tree walk and the marks scan outright.
  if (it->second.windows.empty() || to <= it->second.first ||
      from > it->second.last) {
    return out;
  }
  const auto& windows = it->second.windows;
  for (auto w = windows.lower_bound(from); w != windows.end() && w->first < to;
       ++w) {
    out[static_cast<std::size_t>(w->first - from)] = w->second;
  }
  if (!gap_fill_ || marks_.empty()) return out;
  // Interpolate ONLY windows flagged kLost, and only between two trusted
  // stored neighbors — extrapolation past the flow's known extent would
  // invent traffic that never existed.
  for (auto m = marks_.lower_bound(from); m != marks_.end() && m->first < to;
       ++m) {
    if (m->second != WindowConfidence::kLost) continue;
    const WindowId w = m->first;
    WindowMap::const_iterator left, right;
    if (!trusted_neighbors(windows, w, left, right)) continue;
    const double span = static_cast<double>(right->first - left->first);
    const double frac = static_cast<double>(w - left->first) / span;
    out[static_cast<std::size_t>(w - from)] =
        left->second + (right->second - left->second) * frac;
  }
  return out;
}

bool FlowCurveStore::is_lost(WindowId w) const {
  auto it = marks_.find(w);
  return it != marks_.end() && it->second == WindowConfidence::kLost;
}

bool FlowCurveStore::trusted_neighbors(const WindowMap& windows, WindowId w,
                                       WindowMap::const_iterator& left,
                                       WindowMap::const_iterator& right) const {
  right = windows.upper_bound(w);
  while (right != windows.end() && is_lost(right->first)) ++right;
  if (right == windows.end()) return false;
  left = windows.lower_bound(w);
  while (left != windows.begin()) {
    --left;
    if (!is_lost(left->first)) return true;
  }
  return false;
}

bool FlowCurveStore::gap_fillable(WindowId w) const {
  // kGapFilled is only honest when range() will interpolate the window for
  // every flow it could matter to: each flow whose stored extent spans `w`
  // must have a trusted neighbor on both sides, and at least one flow must
  // span it at all. Otherwise some read still serves the raw (partial or
  // zero) values and the label would overstate trust.
  bool any = false;
  for (const auto& [k, e] : flows_) {
    if (e.windows.empty() || e.windows.begin()->first > w ||
        e.windows.rbegin()->first < w) {
      continue;  // flow's stored curve does not span this window
    }
    WindowMap::const_iterator left, right;
    if (!trusted_neighbors(e.windows, w, left, right)) return false;
    any = true;
  }
  return any;
}

void FlowCurveStore::mark_windows(WindowId from, WindowId to,
                                  WindowConfidence conf) {
  if (conf == WindowConfidence::kCovered) return;  // the unmarked default
  for (WindowId w = from; w < to; ++w) {
    auto [it, inserted] = marks_.try_emplace(w, conf);
    if (!inserted && conf > it->second) it->second = conf;  // upgrade only
  }
  if (sink_ != nullptr && from < to) sink_->on_mark(from, to, conf);
}

WindowConfidence FlowCurveStore::confidence(WindowId w) const {
  auto it = marks_.find(w);
  if (it == marks_.end()) return WindowConfidence::kCovered;
  if (it->second == WindowConfidence::kLost && gap_fill_ && gap_fillable(w)) {
    return WindowConfidence::kGapFilled;
  }
  return it->second;
}

std::size_t FlowCurveStore::marked_count(WindowConfidence conf) const {
  std::size_t n = 0;
  for (const auto& [w, c] : marks_) {
    if (c == conf) ++n;
  }
  return n;
}

bool FlowCurveStore::extent(const FlowKey& flow, WindowId& first,
                            WindowId& last) const {
  auto it = flows_.find(flow.packed());
  if (it == flows_.end() || it->second.windows.empty()) return false;
  first = it->second.first;
  last = it->second.last;
  return true;
}

double FlowCurveStore::total_bytes(const FlowKey& flow) const {
  auto it = flows_.find(flow.packed());
  if (it == flows_.end()) return 0;
  double total = 0;
  for (const auto& [w, v] : it->second.windows) total += v;
  return total;
}

double FlowCurveStore::average_gbps(const FlowKey& flow) const {
  WindowId first = 0, last = 0;
  if (!extent(flow, first, last)) return 0;
  const Nanos span_ns = (last - first + 1) * window_length(window_shift_);
  return total_bytes(flow) * 8.0 / static_cast<double>(span_ns);
}

std::vector<FlowKey> FlowCurveStore::flows() const {
  std::vector<FlowKey> out;
  out.reserve(flows_.size());
  for (const auto& [k, e] : flows_) out.push_back(e.key);
  return out;
}

}  // namespace umon::analyzer
