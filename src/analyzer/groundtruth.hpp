// Ground-truth collection: exact per-flow window-counter series built from
// the simulator's host-TX stream, used by tests and the accuracy benches.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {

class GroundTruth {
 public:
  explicit GroundTruth(int window_shift = kDefaultWindowShift)
      : window_shift_(window_shift) {}

  void add(const FlowKey& flow, Nanos ts, Count bytes) {
    auto& e = flows_[flow.packed()];
    e.key = flow;
    e.windows[window_of(ts, window_shift_)] += bytes;
  }

  /// Dense series for one flow, from its first to last active window.
  struct Series {
    WindowId w0 = 0;
    std::vector<double> values;
    [[nodiscard]] bool empty() const { return values.empty(); }
  };
  [[nodiscard]] Series series(const FlowKey& flow) const {
    auto it = flows_.find(flow.packed());
    Series s;
    if (it == flows_.end() || it->second.windows.empty()) return s;
    const auto& w = it->second.windows;
    s.w0 = w.begin()->first;
    const WindowId last = w.rbegin()->first;
    s.values.assign(static_cast<std::size_t>(last - s.w0 + 1), 0.0);
    for (const auto& [win, count] : w) {
      s.values[static_cast<std::size_t>(win - s.w0)] =
          static_cast<double>(count);
    }
    return s;
  }

  [[nodiscard]] std::vector<FlowKey> flows() const {
    std::vector<FlowKey> out;
    out.reserve(flows_.size());
    for (const auto& [k, e] : flows_) out.push_back(e.key);
    return out;
  }

  /// Number of active (flow, window) counters — the quantity whose blow-up
  /// Figure 3 plots.
  [[nodiscard]] std::uint64_t active_counters() const {
    std::uint64_t total = 0;
    for (const auto& [k, e] : flows_) total += e.windows.size();
    return total;
  }

  /// Active windows of one flow (its "flow length" for Figures 17/18).
  [[nodiscard]] std::size_t flow_length(const FlowKey& flow) const {
    auto it = flows_.find(flow.packed());
    return it == flows_.end() ? 0 : it->second.windows.size();
  }

  [[nodiscard]] int window_shift() const { return window_shift_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

 private:
  struct Entry {
    FlowKey key;
    std::map<WindowId, Count> windows;
  };
  int window_shift_;
  std::unordered_map<std::uint64_t, Entry> flows_;
};

}  // namespace umon::analyzer
