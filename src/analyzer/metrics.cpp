#include "analyzer/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace umon::analyzer {
namespace {

double at_or_zero(std::span<const double> xs, std::size_t i) {
  return i < xs.size() ? xs[i] : 0.0;
}

std::size_t common_length(std::span<const double> a,
                          std::span<const double> b) {
  return std::max(a.size(), b.size());
}

}  // namespace

double euclidean_distance(std::span<const double> truth,
                          std::span<const double> estimate) {
  const std::size_t n = common_length(truth, estimate);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = at_or_zero(truth, i) - at_or_zero(estimate, i);
    sum += d * d;
  }
  return std::sqrt(sum);
}

double cosine_similarity(std::span<const double> truth,
                         std::span<const double> estimate) {
  const std::size_t n = common_length(truth, estimate);
  double dot = 0, n1 = 0, n2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = at_or_zero(truth, i);
    const double b = at_or_zero(estimate, i);
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  if (n1 == 0 && n2 == 0) return 1.0;
  if (n1 == 0 || n2 == 0) return 0.0;
  return dot / (std::sqrt(n1) * std::sqrt(n2));
}

double energy_similarity(std::span<const double> truth,
                         std::span<const double> estimate) {
  const std::size_t n = common_length(truth, estimate);
  double e1 = 0, e2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    e1 += at_or_zero(truth, i) * at_or_zero(truth, i);
    e2 += at_or_zero(estimate, i) * at_or_zero(estimate, i);
  }
  if (e1 == 0 && e2 == 0) return 1.0;
  if (e1 == 0 || e2 == 0) return 0.0;
  return e1 <= e2 ? std::sqrt(e1 / e2) : std::sqrt(e2 / e1);
}

double average_relative_error(std::span<const double> truth,
                              std::span<const double> estimate) {
  double sum = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] <= 0) continue;
    sum += std::abs(at_or_zero(estimate, i) - truth[i]) / truth[i];
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

CurveMetrics curve_metrics(std::span<const double> truth,
                           std::span<const double> estimate) {
  return CurveMetrics{
      euclidean_distance(truth, estimate),
      cosine_similarity(truth, estimate),
      energy_similarity(truth, estimate),
      average_relative_error(truth, estimate),
  };
}

}  // namespace umon::analyzer
