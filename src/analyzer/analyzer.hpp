// The uMon analyzer (Section 6): collects WaveSketch reports from hosts and
// mirrored event packets from switches, aligns their clocks, reconstructs
// per-flow rate curves, groups event packets into congestion events, and
// replays an event by plotting the rate variation of the flows involved.
//
// Thread safety: the Analyzer is externally synchronized. The collector tier
// (umon::collector) decodes in parallel but serializes every sink call (epoch
// flushes, mirror batches) behind its own mutex; direct in-process users are
// single-threaded. Do not call mutating and querying members concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyzer/curve_store.hpp"
#include "common/types.hpp"
#include "sketch/report.hpp"
#include "sketch/wavesketch_full.hpp"
#include "uevent/acl.hpp"

namespace umon::obs {
class LineageTracker;
}

namespace umon::analyzer {

/// A reconstructed rate curve pinned to absolute windows. Values are bytes
/// per window; gbps() converts using the window length.
struct RateCurve {
  WindowId w0 = 0;
  int window_shift = kDefaultWindowShift;
  std::vector<double> bytes_per_window;

  [[nodiscard]] bool empty() const { return bytes_per_window.empty(); }
  [[nodiscard]] double bytes_at(WindowId w) const {
    if (w < w0 ||
        w >= w0 + static_cast<WindowId>(bytes_per_window.size())) {
      return 0;
    }
    return bytes_per_window[static_cast<std::size_t>(w - w0)];
  }
  [[nodiscard]] double gbps_at(WindowId w) const {
    return bytes_at(w) * 8.0 /
           static_cast<double>(window_length(window_shift));
  }
  [[nodiscard]] std::vector<double> gbps() const {
    std::vector<double> out(bytes_per_window.size());
    const double len = static_cast<double>(window_length(window_shift));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = bytes_per_window[i] * 8.0 / len;
    }
    return out;
  }
};

/// A congestion event assembled from mirrored packets on one switch egress
/// port: consecutive CE-marked arrivals separated by less than a quiet gap.
struct CongestionEvent {
  int switch_id = -1;
  int egress_port = -1;
  Nanos start = 0;
  Nanos end = 0;
  std::size_t packets = 0;
  std::vector<FlowKey> flows;  ///< distinct flows, by first appearance
  [[nodiscard]] Nanos duration() const { return end - start; }
};

/// Host clock model: a fixed offset per host (PTP residual error). The
/// analyzer subtracts it when aligning measurements (Section 6.1).
struct ClockModel {
  std::unordered_map<int, Nanos> host_offset;
  [[nodiscard]] Nanos correct(int host, Nanos local) const {
    auto it = host_offset.find(host);
    return it == host_offset.end() ? local : local - it->second;
  }
};

class Analyzer {
 public:
  explicit Analyzer(int window_shift = kDefaultWindowShift)
      : window_shift_(window_shift), curves_(window_shift) {}

  // --- ingestion -----------------------------------------------------------
  /// Ingest one host's full-sketch state at period end. The analyzer stitches
  /// per-flow curves for heavy flows across measurement periods ("longer
  /// flows are handled in multiple reporting periods") and accounts report
  /// bytes.
  void ingest_host_sketch(int host, const sketch::WaveSketchFull& sk);

  /// Ingest a directly reconstructed per-flow curve (e.g., from a basic
  /// sketch owned by the caller, or ground truth in tests).
  void ingest_flow_curve(const FlowKey& flow, RateCurve curve);

  /// Ingest the mirror stream from the uEvent pipeline.
  void ingest_mirrored(const std::vector<uevent::MirroredPacket>& packets);

  /// One sealed epoch's worth of decoded reports from a single host, as
  /// delivered by the collector tier. Fragments are sparse (zero windows
  /// already stripped by the decode shards) so the serial ingest section
  /// only pays for windows that carry bytes.
  struct SparseFragment {
    FlowKey flow;
    std::vector<std::pair<WindowId, double>> windows;
  };
  struct DecodedReportBatch {
    int host = -1;
    std::uint32_t epoch = 0;
    std::vector<SparseFragment> fragments;
    std::size_t wire_bytes = 0;  ///< encoded payload bytes, for accounting
  };
  /// Batch-ingest a sealed epoch: applies the host's clock correction and
  /// stitches every fragment into the per-flow curve store in one pass.
  void ingest_report_batch(const DecodedReportBatch& batch);

  void set_clock_model(ClockModel m) { clocks_ = std::move(m); }

  // --- graceful degradation -------------------------------------------------
  /// Flag [from, to) windows with a confidence class (a lost epoch covered
  /// them, retransmits recovered them, ...). Upgrade-only; see
  /// FlowCurveStore::mark_windows.
  void mark_windows(WindowId from, WindowId to, WindowConfidence conf) {
    curves_.mark_windows(from, to, conf);
  }
  /// Opt into read-side interpolation across kLost windows.
  void set_gap_fill(bool on) { curves_.set_gap_fill(on); }

  /// Attach a durable write-through spill sink to the curve store (see
  /// analyzer::CurveSink). Not owned; set before ingest starts.
  void set_curve_sink(CurveSink* sink) { curves_.set_sink(sink); }

  /// Report-lineage tap: every ingest_report_batch is recorded and arms the
  /// tracker's spill-attribution context, so store appends triggered by the
  /// write-through sink are credited to the right (host, epoch). Not owned.
  void set_lineage(obs::LineageTracker* lineage) { lineage_ = lineage; }
  [[nodiscard]] WindowConfidence window_confidence(WindowId w) const {
    return curves_.confidence(w);
  }

  // --- queries --------------------------------------------------------------
  /// Rate curve of a flow (empty if unknown).
  [[nodiscard]] RateCurve query_rate(const FlowKey& flow) const;

  /// Group mirrored packets into congestion events; a gap larger than
  /// `quiet_gap` splits events.
  [[nodiscard]] std::vector<CongestionEvent> events(
      Nanos quiet_gap = 50 * kMicro) const;

  /// Event replay (Figure 10c): the rate curves of every flow captured in
  /// the event, over [start - margin, end + margin] windows.
  struct Replay {
    CongestionEvent event;
    WindowId from = 0;
    WindowId to = 0;  ///< exclusive
    std::vector<std::pair<FlowKey, std::vector<double>>> gbps_series;
  };
  [[nodiscard]] Replay replay(const CongestionEvent& ev,
                              Nanos margin = 200 * kMicro) const;

  /// Congestion duration CDF input (Figure 10b).
  [[nodiscard]] std::vector<double> event_durations_us(
      Nanos quiet_gap = 50 * kMicro) const;

  // --- accounting -------------------------------------------------------------
  [[nodiscard]] std::size_t report_bytes_ingested() const {
    return report_bytes_;
  }
  /// Report bytes attributed to one host (0 if never heard from).
  [[nodiscard]] std::size_t report_bytes_from(int host) const {
    auto it = report_bytes_by_host_.find(host);
    return it == report_bytes_by_host_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::unordered_map<int, std::size_t>&
  report_bytes_by_host() const {
    return report_bytes_by_host_;
  }
  [[nodiscard]] std::size_t mirror_bytes_ingested() const {
    return mirror_bytes_;
  }
  [[nodiscard]] std::size_t known_flows() const {
    return curves_.flow_count();
  }
  /// Direct access to the stitched per-flow curve storage.
  [[nodiscard]] const FlowCurveStore& curves() const { return curves_; }

 private:
  int window_shift_;
  obs::LineageTracker* lineage_ = nullptr;
  ClockModel clocks_;
  FlowCurveStore curves_;
  std::vector<uevent::MirroredPacket> mirrored_;
  std::size_t report_bytes_ = 0;
  std::size_t mirror_bytes_ = 0;
  std::unordered_map<int, std::size_t> report_bytes_by_host_;
};

}  // namespace umon::analyzer
