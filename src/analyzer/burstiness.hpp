// Microscopic traffic-behavior modeling (use case B3): burst statistics
// extracted from microsecond-level rate curves — peak rates, burst
// durations, inter-burst gaps, and peak-to-mean ratios. These are the
// quantities the paper says inform chip parameters (buffer sizing, ECN
// thresholds, meters).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace umon::analyzer {

/// One burst: a maximal run of windows with rate above the threshold.
struct Burst {
  std::size_t start = 0;     ///< window offset in the curve
  std::size_t length = 0;    ///< windows
  double peak = 0;           ///< max rate inside the burst
  double bytes = 0;          ///< total volume (same unit as the curve)
};

/// Segment a curve into bursts: windows with value >= threshold.
std::vector<Burst> find_bursts(std::span<const double> curve,
                               double threshold);

struct BurstProfile {
  std::size_t bursts = 0;
  double peak = 0;                  ///< global peak
  double mean = 0;                  ///< mean over active (nonzero) windows
  double peak_to_mean = 0;
  double mean_burst_windows = 0;    ///< average burst length
  double mean_gap_windows = 0;      ///< average inter-burst gap
  double burst_volume_fraction = 0; ///< bytes inside bursts / total bytes
};

/// Aggregate burst statistics of one curve.
BurstProfile burst_profile(std::span<const double> curve, double threshold);

/// Suggested ECN KMin for a link, derived from the observed burst volumes:
/// the q-th percentile of per-burst byte volume (a burst smaller than KMin
/// should not trigger marking). This is the paper's "guide network
/// specifications" use, made concrete.
double suggest_kmin_bytes(std::span<const Burst> bursts, double quantile);

}  // namespace umon::analyzer
