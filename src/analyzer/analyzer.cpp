#include "analyzer/analyzer.hpp"

#include <algorithm>

#include "obs/lineage.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace umon::analyzer {

namespace {

// Process-global umon_analyzer_* instruments. Analyzers are usually
// singletons; when tests construct several, totals aggregate, which is what
// the fleet view wants (per-instance accounting stays on the Analyzer's own
// report_bytes_* members).
struct Instruments {
  telemetry::Counter* host_sketches;
  telemetry::Counter* report_batches;
  telemetry::Counter* fragments;
  telemetry::Counter* report_bytes;
  telemetry::Counter* mirror_packets;
  telemetry::Gauge* curve_store_bytes;
  telemetry::Histogram* reconstruct_latency_us;
};

const Instruments& instruments() {
  static const Instruments ins = [] {
    auto& reg = telemetry::MetricRegistry::global();
    Instruments i;
    i.host_sketches =
        reg.counter("umon_analyzer_host_sketches_total", {},
                    "Full host sketches ingested at period end");
    i.report_batches =
        reg.counter("umon_analyzer_report_batches_total", {},
                    "Sealed epoch report batches ingested");
    i.fragments = reg.counter("umon_analyzer_fragments_total", {},
                              "Curve fragments stitched into the store");
    i.report_bytes = reg.counter("umon_analyzer_report_bytes_total", {},
                                 "Encoded report bytes ingested");
    i.mirror_packets = reg.counter("umon_analyzer_mirror_packets_total", {},
                                   "Mirrored event packets ingested");
    i.curve_store_bytes =
        reg.gauge("umon_analyzer_curve_store_bytes", {},
                  "Approximate resident bytes of the per-flow curve store");
    i.reconstruct_latency_us = reg.histogram(
        "umon_analyzer_reconstruct_latency_us",
        telemetry::Histogram::latency_us_bounds(), {},
        "Per-flow rate curve reconstruction latency (query_rate)");
    return i;
  }();
  return ins;
}

}  // namespace

void Analyzer::ingest_host_sketch(int host,
                                  const sketch::WaveSketchFull& sk) {
  const Nanos offset =
      clocks_.host_offset.contains(host) ? clocks_.host_offset.at(host) : 0;
  // PTP residuals are nanosecond-scale, far below a window, so correcting a
  // window id means shifting by whole windows of offset (usually zero).
  const WindowId window_offset = offset >> window_shift_;
  for (const FlowKey& f : sk.heavy_flows()) {
    auto q = sk.query(f);
    if (q.empty()) continue;
    CurveFragment frag;
    frag.w0 = q.w0 - window_offset;
    frag.bytes_per_window = std::move(q.series);
    curves_.add(f, std::move(frag));
  }
  const std::size_t wire = sk.report_wire_bytes();
  report_bytes_ += wire;
  report_bytes_by_host_[host] += wire;
  instruments().host_sketches->inc();
  instruments().report_bytes->inc(wire);
  instruments().curve_store_bytes->set(
      static_cast<std::int64_t>(curves_.memory_bytes()));
}

void Analyzer::ingest_report_batch(const DecodedReportBatch& batch) {
  UMON_TRACE_SPAN_LINEAGE("analyzer/ingest_batch",
                          obs::LineageTracker::key_of(
                              static_cast<std::uint32_t>(batch.host),
                              batch.epoch));
  if (lineage_ != nullptr) {
    // Arms the spill-attribution context before add_sparse fans out into
    // the write-through sink, so the store's spill taps land on this epoch.
    lineage_->on_analyzer_ingest(static_cast<std::uint32_t>(batch.host),
                                 batch.epoch, batch.fragments.size(),
                                 batch.wire_bytes);
  }
  const Nanos offset = clocks_.host_offset.contains(batch.host)
                           ? clocks_.host_offset.at(batch.host)
                           : 0;
  const WindowId window_offset = offset >> window_shift_;
  for (const SparseFragment& f : batch.fragments) {
    curves_.add_sparse(f.flow, f.windows, window_offset);
  }
  report_bytes_ += batch.wire_bytes;
  report_bytes_by_host_[batch.host] += batch.wire_bytes;
  instruments().report_batches->inc();
  instruments().fragments->inc(batch.fragments.size());
  instruments().report_bytes->inc(batch.wire_bytes);
  instruments().curve_store_bytes->set(
      static_cast<std::int64_t>(curves_.memory_bytes()));
}

void Analyzer::ingest_flow_curve(const FlowKey& flow, RateCurve curve) {
  report_bytes_ += curve.bytes_per_window.size() / 8;  // rough wire share
  CurveFragment frag;
  frag.w0 = curve.w0;
  frag.bytes_per_window = std::move(curve.bytes_per_window);
  curves_.add(flow, std::move(frag));
}

void Analyzer::ingest_mirrored(
    const std::vector<uevent::MirroredPacket>& packets) {
  const auto less = [](const uevent::MirroredPacket& a,
                       const uevent::MirroredPacket& b) {
    if (a.switch_id != b.switch_id) return a.switch_id < b.switch_id;
    if (a.egress_port != b.egress_port) return a.egress_port < b.egress_port;
    return a.switch_timestamp < b.switch_timestamp;
  };
  // Sort only the incoming batch and merge it in; re-sorting the whole
  // accumulated vector per batch is O(n log n) every time, which turns the
  // collector's many-small-batches delivery pattern quadratic.
  const auto middle_idx = mirrored_.size();
  mirrored_.insert(mirrored_.end(), packets.begin(), packets.end());
  mirror_bytes_ += packets.size() * uevent::MirroredPacket::kWireBytes;
  instruments().mirror_packets->inc(packets.size());
  const auto middle =
      mirrored_.begin() + static_cast<std::ptrdiff_t>(middle_idx);
  std::sort(middle, mirrored_.end(), less);
  std::inplace_merge(mirrored_.begin(), middle, mirrored_.end(), less);
}

RateCurve Analyzer::query_rate(const FlowKey& flow) const {
  UMON_TRACE_SPAN("analyzer/curve_reconstruct");
  telemetry::ScopedTimer timer(instruments().reconstruct_latency_us);
  WindowId first = 0, last = 0;
  if (!curves_.extent(flow, first, last)) return RateCurve{};
  RateCurve out;
  out.w0 = first;
  out.window_shift = window_shift_;
  out.bytes_per_window = curves_.range(flow, first, last + 1);
  return out;
}

std::vector<CongestionEvent> Analyzer::events(Nanos quiet_gap) const {
  UMON_TRACE_SPAN("analyzer/event_grouping");
  std::vector<CongestionEvent> out;
  CongestionEvent cur;
  std::vector<std::uint64_t> seen;
  auto flush = [&] {
    if (cur.packets > 0) out.push_back(cur);
    cur = CongestionEvent{};
    seen.clear();
  };
  for (const auto& m : mirrored_) {
    const bool same_port =
        m.switch_id == cur.switch_id && m.egress_port == cur.egress_port;
    const bool contiguous =
        same_port && m.switch_timestamp - cur.end <= quiet_gap;
    if (!contiguous) flush();
    if (cur.packets == 0) {
      cur.switch_id = m.switch_id;
      cur.egress_port = m.egress_port;
      cur.start = m.switch_timestamp;
    }
    cur.end = m.switch_timestamp;
    cur.packets += 1;
    const std::uint64_t fk = m.pkt.flow.packed();
    if (std::find(seen.begin(), seen.end(), fk) == seen.end()) {
      seen.push_back(fk);
      cur.flows.push_back(m.pkt.flow);
    }
  }
  flush();
  return out;
}

Analyzer::Replay Analyzer::replay(const CongestionEvent& ev,
                                  Nanos margin) const {
  Replay r;
  r.event = ev;
  r.from = window_of(ev.start - margin, window_shift_);
  r.to = window_of(ev.end + margin, window_shift_) + 1;
  for (const FlowKey& f : ev.flows) {
    const RateCurve curve = query_rate(f);
    if (curve.empty()) continue;
    std::vector<double> series;
    series.reserve(static_cast<std::size_t>(r.to - r.from));
    for (WindowId w = r.from; w < r.to; ++w) {
      series.push_back(curve.gbps_at(w));
    }
    r.gbps_series.emplace_back(f, std::move(series));
  }
  return r;
}

std::vector<double> Analyzer::event_durations_us(Nanos quiet_gap) const {
  std::vector<double> out;
  for (const auto& ev : events(quiet_gap)) {
    out.push_back(static_cast<double>(ev.duration()) / 1000.0);
  }
  return out;
}

}  // namespace umon::analyzer
