// Deterministic random number generation. Every stochastic component takes an
// explicit Rng so whole-system runs are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

#include "common/hash.hpp"

namespace umon {

/// xoshiro256** — small, fast, high-quality PRNG. Satisfies
/// std::uniform_random_bit_generator so <random> distributions accept it.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL) {
    // Seed the full 256-bit state via splitmix64, per the reference impl.
    for (auto& word : state_) {
      seed = seed + 0x9E3779B97F4A7C15ULL;
      word = mix64(seed);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Exponential variate with the given mean (for Poisson arrivals).
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace umon
