// Small statistics helpers shared by benches and the analyzer.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace umon {

/// Empirical CDF over a sample: quantile() and fraction-below queries.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Value at quantile q in [0,1].
  [[nodiscard]] double quantile(double q) const {
    if (sorted_.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_.size() - 1));
    return sorted_[idx];
  }

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_below(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
  }

  [[nodiscard]] const std::vector<double>& samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

double mean(std::span<const double> xs);
double percentile(std::vector<double> xs, double p);

}  // namespace umon
