#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace umon {

std::string FlowKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u.%u:%u->%u.%u:%u/%u", src_ip >> 16,
                src_ip & 0xFFFF, src_port, dst_ip >> 16, dst_ip & 0xFFFF,
                dst_port, proto);
  return buf;
}

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; uniform() < 1 so the log argument stays positive.
  return -mean * std::log(1.0 - uniform());
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::clamp(p, 0.0, 1.0) * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

}  // namespace umon
