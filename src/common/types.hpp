// Core value types shared by every uMon module.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>

namespace umon {

/// Simulation / measurement timestamps, in nanoseconds.
using Nanos = std::int64_t;

/// Index of a microsecond-level measurement window (timestamp >> window_shift).
using WindowId = std::int64_t;

/// Value accumulated per window (bytes or packets, per configuration).
using Count = std::int64_t;

constexpr Nanos kMicro = 1'000;
constexpr Nanos kMilli = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

/// The paper's default window: 8.192 us == 2^13 ns, so the window id is the
/// nanosecond hardware timestamp right-shifted by 13 bits (Section 7.1).
constexpr int kDefaultWindowShift = 13;

constexpr WindowId window_of(Nanos t, int shift = kDefaultWindowShift) {
  return t >> shift;
}
constexpr Nanos window_start(WindowId w, int shift = kDefaultWindowShift) {
  return w << shift;
}
constexpr Nanos window_length(int shift = kDefaultWindowShift) {
  return Nanos{1} << shift;
}

/// 5-tuple flow identifier.
// umon-lint: wire-struct
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// Canonical 13-byte packing folded into a single 64-bit word; all sketch
  /// hashing operates on this value.
  [[nodiscard]] std::uint64_t packed() const {
    std::uint64_t hi = (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip;
    std::uint64_t lo = (static_cast<std::uint64_t>(src_port) << 24) |
                       (static_cast<std::uint64_t>(dst_port) << 8) | proto;
    // Mix the two words so distinct tuples rarely collide pre-hash.
    return hi ^ (lo * 0x9E3779B97F4A7C15ULL);
  }

  [[nodiscard]] std::string to_string() const;
};

// The 13 canonical bytes pad to 16; the v2 wire encoding writes the five
// fields individually, so layout changes here must show up in review.
static_assert(std::is_trivially_copyable_v<FlowKey>);
static_assert(std::is_standard_layout_v<FlowKey>);
static_assert(sizeof(FlowKey) == 16, "5-tuple is 13 bytes padded to 16");

/// ECN codepoints (RFC 3168 two-bit field).
enum class Ecn : std::uint8_t {
  kNotEct = 0b00,
  kEct1 = 0b01,
  kEct0 = 0b10,
  kCe = 0b11,  ///< Congestion Experienced
};

/// A measured packet as seen by the monitoring layer. The simulator produces
/// richer internal events; this is the projection both WaveSketch and the
/// uEvent pipeline consume.
// umon-lint: wire-struct
struct PacketRecord {
  FlowKey flow;
  Nanos timestamp = 0;       ///< local observation time (ns)
  std::uint32_t size = 0;    ///< wire bytes
  std::uint32_t psn = 0;     ///< packet sequence number (RoCEv2 PSN / TCP seq proxy)
  Ecn ecn = Ecn::kEct0;
  std::uint16_t port = 0;    ///< switch egress port (uEvent context)
};

static_assert(std::is_trivially_copyable_v<PacketRecord>,
              "PacketRecord is copied by value across the mirror path");
static_assert(std::is_standard_layout_v<PacketRecord>);

}  // namespace umon

template <>
struct std::hash<umon::FlowKey> {
  std::size_t operator()(const umon::FlowKey& k) const noexcept {
    std::uint64_t x = k.packed();
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
