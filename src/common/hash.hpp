// Seeded 64-bit hash family used by all sketches (pairwise-independent in
// practice via splitmix64 finalization over seed-perturbed input).
#pragma once

#include <cstdint>

namespace umon {

/// splitmix64 finalizer: a fast, well-distributed 64->64 mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One member of a seeded hash family. Different `seed` values give
/// independent hash functions, as required by the Count-Min rows.
class SeededHash {
 public:
  explicit constexpr SeededHash(std::uint64_t seed) : seed_(mix64(seed)) {}

  [[nodiscard]] constexpr std::uint64_t operator()(std::uint64_t key) const {
    return mix64(key ^ seed_);
  }

  /// Hash reduced to a bucket index in [0, width).
  [[nodiscard]] constexpr std::uint32_t bucket(std::uint64_t key,
                                               std::uint32_t width) const {
    // Lemire fast-range: unbiased multiply-shift reduction.
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>((*this)(key)) * width) >> 64);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace umon
