#include "obs/lineage.hpp"

#include <bit>
#include <ostream>
#include <vector>

#include "telemetry/tracing.hpp"

namespace umon::obs {

EpochLineage& LineageTracker::entry_locked(std::uint32_t host,
                                           std::uint32_t epoch) {
  EpochLineage& e = epochs_[key_of(host, epoch)];
  e.host = host;
  e.epoch = epoch;
  return e;
}

void LineageTracker::trace_tap(const char* name, std::uint32_t host,
                               std::uint32_t epoch) {
  auto& rec = telemetry::TraceRecorder::global();
  if (!rec.enabled()) return;
  rec.record_instant(name, "lineage", key_of(host, epoch));
}

void LineageTracker::on_uplink_flush(std::uint32_t host, std::uint32_t epoch,
                                     std::uint32_t reports,
                                     std::uint32_t payloads,
                                     std::uint64_t sim_ns, WindowId wfrom,
                                     WindowId wto) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    e.flushed = true;
    e.flush_ns = sim_ns;
    e.reports += reports;
    e.payloads += payloads;
    e.wfrom = wfrom;
    e.wto = wto;
  }
  trace_tap("lineage/uplink_flush", host, epoch);
}

void LineageTracker::on_verdict(std::uint32_t host, std::uint32_t epoch,
                                Verdict v) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    if (static_cast<std::uint8_t>(v) > static_cast<std::uint8_t>(e.verdict)) {
      e.verdict = v;
    }
  }
  trace_tap("lineage/verdict", host, epoch);
}

void LineageTracker::on_frame_sent(std::uint32_t host, std::uint32_t epoch) {
  {
    std::lock_guard lock(mutex_);
    ++entry_locked(host, epoch).frames_sent;
  }
  trace_tap("lineage/frame_sent", host, epoch);
}

void LineageTracker::on_frame_retransmitted(std::uint32_t host,
                                            std::uint32_t epoch) {
  {
    std::lock_guard lock(mutex_);
    ++entry_locked(host, epoch).retransmits;
  }
  trace_tap("lineage/frame_retransmit", host, epoch);
}

void LineageTracker::on_frame_expired(std::uint32_t host, std::uint32_t epoch,
                                      bool evicted) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    if (evicted) {
      ++e.frames_evicted;
    } else {
      ++e.frames_expired;
    }
  }
  trace_tap("lineage/frame_expired", host, epoch);
}

void LineageTracker::on_frame_acked(std::uint32_t host, std::uint32_t epoch) {
  {
    std::lock_guard lock(mutex_);
    ++entry_locked(host, epoch).frames_acked;
  }
  trace_tap("lineage/frame_acked", host, epoch);
}

void LineageTracker::on_frame_delivered(std::uint32_t host,
                                        std::uint32_t epoch, bool duplicate) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    if (duplicate) {
      ++e.duplicates;
    } else {
      ++e.frames_delivered;
    }
  }
  trace_tap("lineage/frame_delivered", host, epoch);
}

void LineageTracker::on_decode(std::uint32_t host, std::uint32_t epoch,
                               int shard, std::uint32_t reports) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    ++e.decode_batches;
    e.decoded_reports += reports;
    if (shard >= 0 && shard < 64) e.shard_mask |= 1ull << shard;
  }
  trace_tap("lineage/shard_decode", host, epoch);
}

void LineageTracker::on_analyzer_ingest(std::uint32_t host,
                                        std::uint32_t epoch,
                                        std::uint64_t fragments,
                                        std::uint64_t wire_bytes) {
  {
    std::lock_guard lock(mutex_);
    EpochLineage& e = entry_locked(host, epoch);
    ++e.ingest_batches;
    e.ingest_fragments += fragments;
    e.ingest_bytes += wire_bytes;
    spill_ctx_ = key_of(host, epoch);
  }
  trace_tap("lineage/analyzer_ingest", host, epoch);
}

void LineageTracker::on_store_spill(std::uint64_t records,
                                    std::uint64_t bytes) {
  std::uint64_t key = 0;
  {
    std::lock_guard lock(mutex_);
    if (!spill_ctx_.has_value()) return;  // spill outside any ingest context
    key = *spill_ctx_;
    EpochLineage& e = epochs_[key];
    e.spill_records += records;
    e.spill_bytes += bytes;
  }
  trace_tap("lineage/store_spill", static_cast<std::uint32_t>(key >> 32),
            static_cast<std::uint32_t>(key & 0xFFFFFFFFull));
}

std::vector<EpochLineage> LineageTracker::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<EpochLineage> out;
  out.reserve(epochs_.size());
  for (const auto& [key, e] : epochs_) out.push_back(e);
  return out;
}

std::optional<EpochLineage> LineageTracker::find(std::uint32_t host,
                                                 std::uint32_t epoch) const {
  std::lock_guard lock(mutex_);
  const auto it = epochs_.find(key_of(host, epoch));
  if (it == epochs_.end()) return std::nullopt;
  return it->second;
}

void LineageTracker::write_audit_record(std::ostream& os,
                                        const EpochLineage& e) {
  os << "{\"host\":" << e.host << ",\"epoch\":" << e.epoch
     << ",\"flush_ns\":" << e.flush_ns << ",\"wfrom\":" << e.wfrom
     << ",\"wto\":" << e.wto << ",\"reports\":" << e.reports
     << ",\"payloads\":" << e.payloads
     << ",\"frames_sent\":" << e.frames_sent
     << ",\"retransmits\":" << e.retransmits
     << ",\"frames_expired\":" << e.frames_expired
     << ",\"frames_evicted\":" << e.frames_evicted
     << ",\"frames_acked\":" << e.frames_acked
     << ",\"frames_delivered\":" << e.frames_delivered
     << ",\"duplicates\":" << e.duplicates
     << ",\"decode_batches\":" << e.decode_batches
     << ",\"decoded_reports\":" << e.decoded_reports
     << ",\"decode_shards\":" << std::popcount(e.shard_mask)
     << ",\"ingest_fragments\":" << e.ingest_fragments
     << ",\"ingest_bytes\":" << e.ingest_bytes
     << ",\"spill_records\":" << e.spill_records
     << ",\"spill_bytes\":" << e.spill_bytes << ",\"verdict\":\""
     << to_string(e.verdict) << "\"}\n";
}

void LineageTracker::write_audit_jsonl(std::ostream& os) const {
  for (const EpochLineage& e : snapshot()) write_audit_record(os, e);
}

}  // namespace umon::obs
