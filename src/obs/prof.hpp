// umon::obs — always-on hot-path cycle profiler (sampling shim).
//
// UMON_PROF_SCOPE(stage) wraps one hot-path scope in an rdtsc pair, but only
// for 1-in-N calls per stage (N is a per-stage power of two, chosen so the
// per-packet stages pay one thread-local counter increment and a mask test
// on the non-sampled calls). Sampled cycles land in three global relaxed
// aggregates:
//
//   * a per-stage log2 cycle histogram,
//   * per-stage total sampled cycles + sample counts (the attribution
//     table multiplies back by the sampling period),
//   * a folded-stack table keyed on the packed scope stack (4 bits per
//     frame, bottom 4 frames), exportable as flamegraph "folded" lines.
//
// Cost model, enforced by bench_obs_overhead: disabled, a scope is one
// relaxed load and a branch (≤5 ns/op, same budget as the telemetry shims);
// enabled, the whole pipeline must stay within 2% of its uninstrumented
// wall time. rdtsc is calibrated against telemetry::monotonic_ns() at
// prof_enable() so exports can convert cycles to nanoseconds.
//
// This header is the only place in the tree allowed to touch rdtsc or a raw
// OS clock on a hot path (umon-lint UL007 bans it everywhere else).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace umon::telemetry {
class MetricRegistry;
}

namespace umon::obs {

/// One value per instrumented hot path. Keep kCount <= 15: folded-stack
/// slots pack (stage + 1) into 4 bits per frame.
enum class ProfStage : std::uint8_t {
  kCmUpdate = 0,      ///< WaveSketch Count-Min row update (per packet)
  kHaarTransform,     ///< streaming Haar butterfly fold (per window roll)
  kTopkOffer,         ///< top-K coefficient heap offer
  kUplinkEncode,      ///< HostUplink epoch encode
  kShardDecode,       ///< collector shard batch decode + reconstruct
  kEpochFlush,        ///< collector sealed-epoch flush into the analyzer
  kStoreAppend,       ///< durable-store sparse append
  kPageRead,          ///< page-cache read (query side)
  kPageWrite,         ///< page-cache write_through (spill side)
  kQueryExec,         ///< query-engine execute (cache miss)
  kCount
};

inline constexpr std::size_t kProfStageCount =
    static_cast<std::size_t>(ProfStage::kCount);
static_assert(kProfStageCount <= 15, "folded-stack frames pack into 4 bits");

/// Scope stack frames folded into the 16-bit path key.
inline constexpr std::size_t kProfMaxDepth = 4;

/// 1-in-N sampling period per stage (powers of two; the non-sampled path
/// tests `calls & (N - 1)`). Per-packet stages sample sparsely; per-epoch
/// stages sample every call so short runs still attribute them.
inline constexpr std::uint32_t kProfPeriod[kProfStageCount] = {
    64,  // kCmUpdate
    64,  // kHaarTransform
    64,  // kTopkOffer
    1,   // kUplinkEncode
    4,   // kShardDecode
    1,   // kEpochFlush
    16,  // kStoreAppend
    4,   // kPageRead
    4,   // kPageWrite
    1,   // kQueryExec
};

[[nodiscard]] const char* to_string(ProfStage stage);
/// Inverse of to_string; kCount when `name` is not a stage.
[[nodiscard]] ProfStage parse_prof_stage(std::string_view name);

namespace detail {

extern std::atomic<bool> g_prof_enabled;

struct ProfTls {
  std::uint32_t calls[kProfStageCount];
  std::uint32_t path;  ///< (stage + 1) per nibble, leaf in the low nibble
  std::uint32_t depth;
};
[[nodiscard]] ProfTls& prof_tls();

void record_sample(ProfStage stage, std::uint16_t path_key,
                   std::uint64_t cycles);

}  // namespace detail

[[nodiscard]] inline bool prof_enabled() {
  return detail::g_prof_enabled.load(std::memory_order_relaxed);
}

/// Serializing-free cycle counter; falls back to the monotonic clock (1
/// "cycle" per ns) off x86.
[[nodiscard]] inline std::uint64_t prof_rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  extern std::uint64_t prof_fallback_ticks();
  return prof_fallback_ticks();
#endif
}

/// Calibrate rdtsc against monotonic_ns (~2 ms spin), zero the aggregates,
/// and start sampling. Idempotent.
void prof_enable();
void prof_disable();
/// Zero every aggregate (calibration is kept). Thread-local call counters
/// are per-thread and not reset; only the sampling phase shifts.
void prof_reset();
/// TSC rate measured by the last prof_enable(); 1.0 before calibration.
[[nodiscard]] double prof_cycles_per_ns();

struct ProfStageSnapshot {
  ProfStage stage = ProfStage::kCount;
  const char* name = "";
  std::uint32_t period = 1;
  std::uint64_t samples = 0;         ///< rdtsc pairs actually taken
  std::uint64_t sampled_cycles = 0;  ///< cycles inside those pairs
  /// Per-stage log2 histogram: bucket b counts samples with
  /// bit_width(cycles) == b (clamped to kProfHistBuckets - 1).
  std::vector<std::uint64_t> hist;
};
inline constexpr std::size_t kProfHistBuckets = 32;

/// Stages with at least one sample, in enum order.
[[nodiscard]] std::vector<ProfStageSnapshot> prof_snapshot();

/// Flamegraph "folded" lines: `umon;stage;...;leaf <cycles>` where cycles
/// is the sampled total scaled back by the leaf stage's period. One line
/// per distinct scope stack, stable (slot-index) order.
void prof_write_folded(std::ostream& os);

/// Publish per-stage totals as umon_obs_stage_{cycles,samples}_total
/// counters (one shot — call once at export time).
void prof_publish(telemetry::MetricRegistry& registry);

/// RAII sampling scope. Disabled: one relaxed load + branch. Enabled: push
/// the stage onto the thread-local scope stack, bump the stage call
/// counter, and on the 1-in-N sampled calls read rdtsc at entry and exit.
class ProfScope {
 public:
  explicit ProfScope(ProfStage stage) {
    if (!prof_enabled()) return;
    active_ = true;
    stage_ = stage;
    auto& tls = detail::prof_tls();
    if (tls.depth < kProfMaxDepth) {
      tls.path = (tls.path << 4) |
                 (static_cast<std::uint32_t>(stage) + 1);
    }
    ++tls.depth;
    const auto idx = static_cast<std::size_t>(stage);
    const std::uint32_t call = tls.calls[idx]++;
    if ((call & (kProfPeriod[idx] - 1)) == 0) {
      sampled_ = true;
      start_ = prof_rdtsc();
    }
  }

  ~ProfScope() {
    if (!active_) return;
    auto& tls = detail::prof_tls();
    if (sampled_) {
      const std::uint64_t end = prof_rdtsc();
      detail::record_sample(
          stage_,
          tls.depth <= kProfMaxDepth ? static_cast<std::uint16_t>(tls.path)
                                     : 0,
          end > start_ ? end - start_ : 0);
    }
    if (tls.depth <= kProfMaxDepth) tls.path >>= 4;
    --tls.depth;
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::uint64_t start_ = 0;
  ProfStage stage_ = ProfStage::kCount;
  bool active_ = false;
  bool sampled_ = false;
};

#define UMON_PROF_CONCAT_(a, b) a##b
#define UMON_PROF_CONCAT(a, b) UMON_PROF_CONCAT_(a, b)
/// Profile the enclosing scope as one `stage` sample site.
#define UMON_PROF_SCOPE(stage)                        \
  ::umon::obs::ProfScope UMON_PROF_CONCAT(            \
      umon_prof_scope_, __COUNTER__)(::umon::obs::ProfStage::stage)

}  // namespace umon::obs
