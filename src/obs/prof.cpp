#include "obs/prof.hpp"

#include <bit>
#include <cstring>
#include <ostream>

#include "telemetry/metrics.hpp"

namespace umon::obs {
namespace {

// Global aggregates. Relaxed atomics: every cell is an independent
// monotonic accumulator read only at export time (after the pipeline
// quiesced), the same policy as the telemetry counters.
std::atomic<std::uint64_t> g_stage_cycles[kProfStageCount];
std::atomic<std::uint64_t> g_stage_samples[kProfStageCount];
std::atomic<std::uint64_t> g_stage_hist[kProfStageCount][kProfHistBuckets];

/// Folded-stack slots: one per packed scope-stack key (4 bits per frame,
/// up to kProfMaxDepth frames => 16-bit key space). ~1 MiB of zero-init
/// statics, touched only on sampled exits.
constexpr std::size_t kFoldSlots = 1u << (4 * kProfMaxDepth);
std::atomic<std::uint64_t> g_fold_cycles[kFoldSlots];
std::atomic<std::uint64_t> g_fold_samples[kFoldSlots];

double g_cycles_per_ns = 1.0;  ///< written before enable, read after

constexpr const char* kStageNames[kProfStageCount] = {
    "cm_update",     "haar_transform", "topk_offer", "uplink_encode",
    "shard_decode",  "epoch_flush",    "store_append", "page_read",
    "page_write",    "query_exec",
};

void zero_aggregates() {
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    g_stage_cycles[s].store(0, std::memory_order_relaxed);
    g_stage_samples[s].store(0, std::memory_order_relaxed);
    for (auto& bucket : g_stage_hist[s]) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kFoldSlots; ++i) {
    g_fold_cycles[i].store(0, std::memory_order_relaxed);
    g_fold_samples[i].store(0, std::memory_order_relaxed);
  }
}

/// Decode a packed path key into root-first stage indices; false when the
/// key holds a nibble that is not a stage (torn slot — never written).
bool decode_path(std::uint16_t key, std::vector<std::size_t>& frames) {
  frames.clear();
  while (key != 0) {
    const std::uint16_t nibble = key & 0xF;
    if (nibble == 0 || nibble > kProfStageCount) return false;
    frames.push_back(static_cast<std::size_t>(nibble - 1));  // leaf first
    key = static_cast<std::uint16_t>(key >> 4);
  }
  for (std::size_t i = 0, j = frames.size(); i + 1 < j; ++i, --j) {
    std::swap(frames[i], frames[j - 1]);
  }
  return !frames.empty();
}

}  // namespace

namespace detail {

std::atomic<bool> g_prof_enabled{false};

ProfTls& prof_tls() {
  thread_local ProfTls tls{};
  return tls;
}

void record_sample(ProfStage stage, std::uint16_t path_key,
                   std::uint64_t cycles) {
  const auto s = static_cast<std::size_t>(stage);
  g_stage_cycles[s].fetch_add(cycles, std::memory_order_relaxed);
  g_stage_samples[s].fetch_add(1, std::memory_order_relaxed);
  auto bucket = static_cast<std::size_t>(std::bit_width(cycles));
  if (bucket >= kProfHistBuckets) bucket = kProfHistBuckets - 1;
  g_stage_hist[s][bucket].fetch_add(1, std::memory_order_relaxed);
  g_fold_cycles[path_key].fetch_add(cycles, std::memory_order_relaxed);
  g_fold_samples[path_key].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

const char* to_string(ProfStage stage) {
  const auto s = static_cast<std::size_t>(stage);
  return s < kProfStageCount ? kStageNames[s] : "unknown";
}

ProfStage parse_prof_stage(std::string_view name) {
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    if (name == kStageNames[s]) return static_cast<ProfStage>(s);
  }
  return ProfStage::kCount;
}

#if !defined(__x86_64__) && !defined(__i386__)
std::uint64_t prof_fallback_ticks() { return telemetry::monotonic_ns(); }
#endif

void prof_enable() {
  if (prof_enabled()) return;
#if defined(__x86_64__) || defined(__i386__)
  // Calibrate: ~2 ms spin comparing rdtsc against the monotonic clock.
  // Short enough to be invisible at startup, long enough that clock
  // granularity is noise.
  const std::uint64_t ns0 = telemetry::monotonic_ns();
  const std::uint64_t c0 = prof_rdtsc();
  std::uint64_t ns1 = ns0;
  while (ns1 - ns0 < 2'000'000) ns1 = telemetry::monotonic_ns();
  const std::uint64_t c1 = prof_rdtsc();
  g_cycles_per_ns =
      static_cast<double>(c1 - c0) / static_cast<double>(ns1 - ns0);
#else
  g_cycles_per_ns = 1.0;  // fallback ticks *are* nanoseconds
#endif
  zero_aggregates();
  detail::g_prof_enabled.store(true, std::memory_order_relaxed);
}

void prof_disable() {
  detail::g_prof_enabled.store(false, std::memory_order_relaxed);
}

void prof_reset() { zero_aggregates(); }

double prof_cycles_per_ns() { return g_cycles_per_ns; }

std::vector<ProfStageSnapshot> prof_snapshot() {
  std::vector<ProfStageSnapshot> out;
  for (std::size_t s = 0; s < kProfStageCount; ++s) {
    const std::uint64_t samples =
        g_stage_samples[s].load(std::memory_order_relaxed);
    if (samples == 0) continue;
    ProfStageSnapshot snap;
    snap.stage = static_cast<ProfStage>(s);
    snap.name = kStageNames[s];
    snap.period = kProfPeriod[s];
    snap.samples = samples;
    snap.sampled_cycles = g_stage_cycles[s].load(std::memory_order_relaxed);
    snap.hist.resize(kProfHistBuckets);
    for (std::size_t b = 0; b < kProfHistBuckets; ++b) {
      snap.hist[b] = g_stage_hist[s][b].load(std::memory_order_relaxed);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void prof_write_folded(std::ostream& os) {
  std::vector<std::size_t> frames;
  for (std::size_t slot = 0; slot < kFoldSlots; ++slot) {
    const std::uint64_t samples =
        g_fold_samples[slot].load(std::memory_order_relaxed);
    if (samples == 0) continue;
    const std::uint64_t cycles =
        g_fold_cycles[slot].load(std::memory_order_relaxed);
    if (slot == 0 || !decode_path(static_cast<std::uint16_t>(slot), frames)) {
      // Slot 0 collects samples taken deeper than kProfMaxDepth.
      os << "umon;(deep) " << cycles << "\n";
      continue;
    }
    os << "umon";
    for (const std::size_t frame : frames) os << ";" << kStageNames[frame];
    // Scale the sampled cycles back up by the leaf's period so the
    // flamegraph widths approximate real totals.
    os << " " << cycles * kProfPeriod[frames.back()] << "\n";
  }
}

void prof_publish(telemetry::MetricRegistry& registry) {
  for (const ProfStageSnapshot& snap : prof_snapshot()) {
    registry
        .counter("umon_obs_stage_cycles_total", {{"stage", snap.name}},
                 "Sampled hot-path cycles per profiler stage")
        ->inc(snap.sampled_cycles);
    registry
        .counter("umon_obs_stage_samples_total", {{"stage", snap.name}},
                 "rdtsc sample pairs taken per profiler stage")
        ->inc(snap.samples);
  }
}

}  // namespace umon::obs
