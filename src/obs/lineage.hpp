// umon::obs — end-to-end report lineage tracing.
//
// One measurement epoch's reports leave a host as a flushed uplink batch,
// ride v2 frames through the (possibly lossy) control channel, get decoded
// by collector shards, land in the analyzer as one sealed batch, and spill
// through the curve sink into the durable store. The v2 frame header
// already carries the compact trace context — (host, epoch, frame_seq) —
// so lineage tracing is a matter of tapping each hop with that key and
// folding the taps into one record per (host, epoch).
//
// The tracker produces two artifacts:
//
//   * causally-linked trace spans: every tap also emits an instant event
//     (lineage id = host << 32 | epoch) into the TraceRecorder, which the
//     Chrome-JSON exporter stitches together with flow arrows so one
//     report's full life is one connected path in the trace viewer;
//   * a per-epoch lineage audit (JSONL, one line per (host, epoch), sorted
//     by key): every counter in it derives from simulation-deterministic
//     events and sim timestamps, so two same-seed runs write byte-identical
//     audits — wall-clock only ever enters the trace, never the audit.
//
// Hooks run on driver, shard-worker, and flush threads; one mutex guards
// the map (lineage taps are per-report/per-frame, not per-packet, so the
// lock is far off the packet hot path).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace umon::obs {

/// Mirror of analyzer::WindowConfidence (same values, worst-last order) so
/// the obs layer does not need an analyzer link; the driver maps between
/// the two at the seal points.
enum class Verdict : std::uint8_t {
  kCovered = 0,
  kRetransmitted = 1,
  kGapFilled = 2,
  kLost = 3,
};

[[nodiscard]] constexpr const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kCovered: return "covered";
    case Verdict::kRetransmitted: return "retransmitted";
    case Verdict::kGapFilled: return "gap_filled";
    case Verdict::kLost: return "lost";
  }
  return "unknown";
}

/// Everything one (host, epoch) report batch went through.
struct EpochLineage {
  std::uint32_t host = 0;
  std::uint32_t epoch = 0;
  // Uplink flush (driver side, sim clock).
  bool flushed = false;
  std::uint64_t flush_ns = 0;   ///< sim time of the epoch flush
  std::uint32_t reports = 0;    ///< sketch reports in the flushed batch
  std::uint32_t payloads = 0;   ///< encoded uplink payloads
  WindowId wfrom = 0;           ///< window range the epoch covers
  WindowId wto = 0;
  // Reliable-uplink frame life (0 everywhere in passthrough mode).
  std::uint32_t frames_sent = 0;
  std::uint32_t retransmits = 0;
  std::uint32_t frames_expired = 0;  ///< retry budget exhausted
  std::uint32_t frames_evicted = 0;  ///< pushed out of the retransmit buffer
  std::uint32_t frames_acked = 0;
  std::uint32_t frames_delivered = 0;  ///< non-duplicate deliveries
  std::uint32_t duplicates = 0;
  // Collector decode (shard workers).
  std::uint32_t decode_batches = 0;
  std::uint32_t decoded_reports = 0;
  std::uint64_t shard_mask = 0;  ///< bit per shard id that decoded for us
  // Analyzer ingest (sealed-epoch flush).
  std::uint32_t ingest_batches = 0;
  std::uint64_t ingest_fragments = 0;
  std::uint64_t ingest_bytes = 0;
  // Store spill attributed to this epoch's ingest.
  std::uint64_t spill_records = 0;
  std::uint64_t spill_bytes = 0;
  // Final per-window outcome (worst-wins, upgrade only).
  Verdict verdict = Verdict::kCovered;
};

class LineageTracker {
 public:
  LineageTracker() = default;
  LineageTracker(const LineageTracker&) = delete;
  LineageTracker& operator=(const LineageTracker&) = delete;

  static constexpr std::uint64_t key_of(std::uint32_t host,
                                        std::uint32_t epoch) {
    return (static_cast<std::uint64_t>(host) << 32) | epoch;
  }

  // --- driver (sim clock) ---------------------------------------------------
  void on_uplink_flush(std::uint32_t host, std::uint32_t epoch,
                       std::uint32_t reports, std::uint32_t payloads,
                       std::uint64_t sim_ns, WindowId wfrom, WindowId wto);
  /// Worst-wins: a later, worse verdict overwrites; a better one is ignored.
  void on_verdict(std::uint32_t host, std::uint32_t epoch, Verdict v);

  // --- resilience (uplink frames) -------------------------------------------
  void on_frame_sent(std::uint32_t host, std::uint32_t epoch);
  void on_frame_retransmitted(std::uint32_t host, std::uint32_t epoch);
  void on_frame_expired(std::uint32_t host, std::uint32_t epoch, bool evicted);
  void on_frame_acked(std::uint32_t host, std::uint32_t epoch);
  void on_frame_delivered(std::uint32_t host, std::uint32_t epoch,
                          bool duplicate);

  // --- collector (shard workers) --------------------------------------------
  void on_decode(std::uint32_t host, std::uint32_t epoch, int shard,
                 std::uint32_t reports);

  // --- analyzer (serialized under the collector sink mutex) -----------------
  /// Also arms the spill-attribution context: store appends until the next
  /// ingest are charged to this (host, epoch).
  void on_analyzer_ingest(std::uint32_t host, std::uint32_t epoch,
                          std::uint64_t fragments, std::uint64_t wire_bytes);

  // --- store (same call stack as the ingest that triggered the spill) -------
  void on_store_spill(std::uint64_t records, std::uint64_t bytes);

  /// One JSON line per (host, epoch), sorted by key; stable key order
  /// inside each line. Deterministic for same-seed runs (sim time only).
  void write_audit_jsonl(std::ostream& os) const;

  /// One audit JSONL line for a single record — the exact bytes
  /// write_audit_jsonl emits for that (host, epoch), so the HTTP
  /// `/lineage/{host}/{epoch}` endpoint and the audit file cannot drift.
  static void write_audit_record(std::ostream& os, const EpochLineage& e);

  /// Snapshot sorted by (host, epoch).
  [[nodiscard]] std::vector<EpochLineage> snapshot() const;

  /// Copy of one (host, epoch) record, if any taps have touched it.
  [[nodiscard]] std::optional<EpochLineage> find(std::uint32_t host,
                                                std::uint32_t epoch) const;

 private:
  EpochLineage& entry_locked(std::uint32_t host, std::uint32_t epoch);
  /// Emit the lineage-tagged instant span for a tap (no-op unless the
  /// TraceRecorder is enabled). `name` must be a string literal.
  void trace_tap(const char* name, std::uint32_t host, std::uint32_t epoch);

  mutable std::mutex mutex_;
  std::map<std::uint64_t, EpochLineage> epochs_;  ///< sorted by key
  std::optional<std::uint64_t> spill_ctx_;        ///< armed by analyzer ingest
};

}  // namespace umon::obs
