#include "serve/endpoints.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/prof.hpp"
#include "telemetry/export.hpp"

namespace umon::serve {
namespace {

constexpr const char* kJson = "application/json";
constexpr const char* kNdjson = "application/x-ndjson";
constexpr const char* kPromText = "text/plain; version=0.0.4";

[[nodiscard]] HttpResponse err(int status, const std::string& what) {
  return HttpResponse{status, kJson, "{\"error\":\"" + what + "\"}\n", false};
}

[[nodiscard]] bool parse_u32(const std::string& s, std::uint32_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

[[nodiscard]] bool parse_f64(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Same grammar as umon_query --flow: SRC:SPORT:DST:DPORT[:PROTO].
[[nodiscard]] bool parse_flow(const std::string& text, FlowKey& out) {
  unsigned src = 0, sport = 0, dst = 0, dport = 0, proto = 6;
  const int n = std::sscanf(text.c_str(), "%u:%u:%u:%u:%u", &src, &sport,
                            &dst, &dport, &proto);
  if (n < 4 || sport > 0xFFFF || dport > 0xFFFF || proto > 0xFF) return false;
  out = FlowKey{src, dst, static_cast<std::uint16_t>(sport),
                static_cast<std::uint16_t>(dport),
                static_cast<std::uint8_t>(proto)};
  return true;
}

}  // namespace

Endpoints::Endpoints(Server& server, Services services)
    : server_(server), svc_(std::move(services)) {
  if (svc_.store != nullptr) engine_.emplace(*svc_.store);
  cache_hits_ = server_.registry().counter(
      "umon_serve_query_cache_hits_total", {},
      "serialized /api/v1/query responses served from the LRU");
  cache_misses_ = server_.registry().counter(
      "umon_serve_query_cache_misses_total", {},
      "/api/v1/query responses that ran the engine and serializer");
  shed_total_ = server_.registry().counter(
      "umon_serve_shed_total", {},
      "uncached /api/v1/query requests refused with 503 + Retry-After by "
      "the admission controller");
  server_.set_dispatch([this](const HttpRequest& req, const LoadHint& hint) {
    return route(req, hint);
  });
}

Routed Endpoints::route(const HttpRequest& req, const LoadHint& hint) {
  const bool is_get = req.method == "GET" || req.method == "HEAD";
  const std::string& p = req.path;

  if (p == "/api/v1/shutdown") {
    if (!is_get && req.method != "POST") {
      return Routed{err(405, "use GET or POST"), "/api/v1/shutdown"};
    }
    server_.request_shutdown();
    return Routed{HttpResponse{200, kJson, "{\"ok\":true}\n", false},
                  "/api/v1/shutdown"};
  }

  // Everything below is read-only.
  if (p == "/" || p == "/metrics" || p == "/health" || p == "/health/alarms" ||
      p == "/dashboard" || p == "/prof" || p == "/lineage" ||
      p == "/api/v1/query" || p == "/api/v1/stream" || p == "/api/v1/status" ||
      p.rfind("/lineage/", 0) == 0) {
    if (!is_get) return Routed{err(405, "read-only endpoint"), p};
  }

  if (p == "/") return Routed{get_index(), "/"};
  if (p == "/metrics") return Routed{get_metrics(), "/metrics"};
  if (p == "/health") {
    return Routed{get_snapshot_slot("health_jsonl", kNdjson,
                                    "health monitoring not enabled"),
                  "/health"};
  }
  if (p == "/health/alarms") {
    return Routed{get_snapshot_slot("health_alarms", kNdjson,
                                    "health monitoring not enabled"),
                  "/health/alarms"};
  }
  if (p == "/dashboard") {
    HttpResponse r = get_snapshot_slot("health_html", "text/html",
                                       "health monitoring not enabled");
    return Routed{std::move(r), "/dashboard"};
  }
  if (p == "/prof") return Routed{get_prof(), "/prof"};
  if (p == "/lineage") return Routed{get_lineage_all(), "/lineage"};
  if (p.rfind("/lineage/", 0) == 0) {
    bool bad_path = false;
    HttpResponse r = get_lineage_one(p, bad_path);
    return Routed{std::move(r), "/lineage/{host}/{epoch}"};
  }
  if (p == "/api/v1/query") {
    return Routed{get_query(req, hint), "/api/v1/query"};
  }
  if (p == "/api/v1/status") {
    return Routed{get_snapshot_slot("status", kJson, "status not published"),
                  "/api/v1/status"};
  }
  if (p == "/api/v1/stream") {
    HttpResponse r;
    r.status = 200;
    r.sse = true;
    r.body = server_.snapshot("status");  // initial `hello` event payload
    return Routed{std::move(r), "/api/v1/stream"};
  }
  return Routed{err(404, "no such endpoint"), ""};
}

HttpResponse Endpoints::get_index() {
  static const char* kIndex =
      "{\"endpoints\":[\"/metrics\",\"/health\",\"/health/alarms\","
      "\"/dashboard\",\"/prof\",\"/lineage\",\"/lineage/{host}/{epoch}\","
      "\"/api/v1/query\",\"/api/v1/stream\",\"/api/v1/status\","
      "\"/api/v1/shutdown\"]}\n";
  return HttpResponse{200, kJson, kIndex, false};
}

HttpResponse Endpoints::get_metrics() {
  std::vector<const telemetry::MetricRegistry*> regs = svc_.registries;
  regs.push_back(&server_.registry());
  std::ostringstream oss;
  telemetry::write_prometheus(
      oss, std::span<const telemetry::MetricRegistry* const>(regs));
  return HttpResponse{200, kPromText, oss.str(), false};
}

HttpResponse Endpoints::get_snapshot_slot(const std::string& key,
                                          const char* content_type,
                                          const char* missing_error) {
  if (!server_.has_snapshot(key)) return err(404, missing_error);
  return HttpResponse{200, content_type, server_.snapshot(key), false};
}

HttpResponse Endpoints::get_prof() {
  std::ostringstream oss;
  obs::prof_write_folded(oss);
  return HttpResponse{200, "text/plain", oss.str(), false};
}

HttpResponse Endpoints::get_lineage_all() {
  if (svc_.lineage == nullptr) return err(404, "lineage not enabled");
  std::ostringstream oss;
  svc_.lineage->write_audit_jsonl(oss);
  return HttpResponse{200, kNdjson, oss.str(), false};
}

HttpResponse Endpoints::get_lineage_one(const std::string& path,
                                        bool& bad_path) {
  bad_path = false;
  if (svc_.lineage == nullptr) return err(404, "lineage not enabled");
  // path = /lineage/{host}/{epoch}
  const std::size_t h0 = std::string("/lineage/").size();
  const std::size_t slash = path.find('/', h0);
  if (slash == std::string::npos || slash + 1 >= path.size()) {
    bad_path = true;
    return err(400, "want /lineage/{host}/{epoch}");
  }
  std::uint32_t host = 0, epoch = 0;
  if (!parse_u32(path.substr(h0, slash - h0), host) ||
      !parse_u32(path.substr(slash + 1), epoch)) {
    bad_path = true;
    return err(400, "host and epoch must be unsigned integers");
  }
  const auto rec = svc_.lineage->find(host, epoch);
  if (!rec.has_value()) return err(404, "no lineage for that (host, epoch)");
  std::ostringstream oss;
  obs::LineageTracker::write_audit_record(oss, *rec);
  return HttpResponse{200, kNdjson, oss.str(), false};
}

HttpResponse Endpoints::shed_overloaded() {
  shed_total_->inc();
  HttpResponse r = err(503, "overloaded; uncached query shed, retry shortly");
  r.extra_headers = "Retry-After: 1\r\n";
  return r;
}

HttpResponse Endpoints::get_query(const HttpRequest& req,
                                  const LoadHint& hint) {
  // --- parameter validation (umon_query exit 2 <=> HTTP 400) --------------
  // Runs before the store check to mirror umon_query, where usage errors
  // are reported before the store is opened.
  std::uint32_t resolution = 8;
  store::GroupOp op = store::GroupOp::kSum;
  std::optional<double> from_us, to_us;
  std::optional<std::uint32_t> host;
  std::vector<FlowKey> flows;
  bool list_flows = false;
  bool csv = false;
  for (const auto& [k, v] : req.params) {
    if (k == "from_us") {
      double d = 0;
      if (!parse_f64(v, d)) return err(400, "bad from_us");
      from_us = d;
    } else if (k == "to_us") {
      double d = 0;
      if (!parse_f64(v, d)) return err(400, "bad to_us");
      to_us = d;
    } else if (k == "resolution") {
      if (!parse_u32(v, resolution) || resolution == 0) {
        return err(400, "resolution must be a positive integer");
      }
    } else if (k == "op") {
      const auto parsed = store::parse_group_op(v);
      if (!parsed) return err(400, "op must be sum|avg|max|p99");
      op = *parsed;
    } else if (k == "host") {
      std::uint32_t h = 0;
      if (!parse_u32(v, h)) return err(400, "bad host");
      host = h;
    } else if (k == "flow") {
      FlowKey f;
      if (!parse_flow(v, f)) {
        return err(400, "bad flow (want SRC:SPORT:DST:DPORT[:PROTO])");
      }
      flows.push_back(f);
    } else if (k == "list") {
      if (v != "flows") return err(400, "list supports only list=flows");
      list_flows = true;
    } else if (k == "format") {
      if (v == "csv") {
        csv = true;
      } else if (v != "json") {
        return err(400, "format must be json or csv");
      }
    } else {
      return err(400, "unknown parameter: " + k);
    }
  }
  const char* content_type = csv ? "text/csv" : kJson;

  if (svc_.store == nullptr || !engine_.has_value()) {
    return err(503, "no store attached (run with --store-dir)");
  }

  // The head and the per-flow extent scan walk every segment index under
  // the store mutex — miss-path work only. A cache hit must touch nothing
  // beyond the fingerprint and the generation counter, or the scrape-heavy
  // read path pays a full store scan per request.
  const auto live_head = [this]() {
    store::StoreHead head = store::make_head(
        svc_.store_dir, svc_.store_rinfo, svc_.store->flows().size());
    head.last_sealed_epoch = svc_.store->last_sealed_epoch();
    return head;
  };

  if (list_flows) {
    // The flow listing is never cached and walks every segment index —
    // always expensive, so it sheds under load.
    if (hint.shed_expensive) return shed_overloaded();
    const auto extents = store::flow_extents(*svc_.store);
    std::ostringstream oss;
    if (csv) {
      store::write_flow_list_csv(oss, extents);
    } else {
      store::write_flow_list_json(oss, live_head(), extents);
    }
    return HttpResponse{200, content_type, oss.str(), false};
  }

  store::Query q;
  if (!from_us || !to_us) {
    // The default range needs an extent scan before the cache key can even
    // be computed, so under load these shed outright; explicit-range
    // queries below can still be answered from the cache.
    if (hint.shed_expensive) return shed_overloaded();
    // Default range = union of every flow's extent (the umon_query
    // behavior); only this path needs the extent scan.
    WindowId lo = 0, hi = 0;
    if (!store::flow_extent_union(store::flow_extents(*svc_.store), lo,
                                  hi)) {
      std::ostringstream oss;
      if (csv) {
        store::write_query_csv(oss, store::QueryResult{});
      } else {
        store::write_empty_json(oss, live_head());
      }
      return HttpResponse{200, content_type, oss.str(), false};
    }
    q.from = lo;
    q.to = hi;
  }
  if (from_us) q.from = window_of(static_cast<Nanos>(*from_us * 1e3));
  if (to_us) q.to = window_of(static_cast<Nanos>(*to_us * 1e3)) + 1;
  q.resolution = resolution;
  q.op = op;
  q.flows = std::move(flows);
  q.src_host = host;

  // Serialized-response cache: same identity as the engine's LRU plus the
  // output format. A generation bump (seal/roll/compaction) simply stops
  // matching — stale bytes cannot be served.
  const CacheKey key{store::QueryEngine::fingerprint(q),
                     svc_.store->generation(),
                     static_cast<std::uint8_t>(csv ? 1 : 0)};
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    cache_hits_->inc();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return HttpResponse{200, content_type, it->second.body, false};
  }
  // Cost-based admission: a miss means engine + serializer work under
  // load — refuse it and tell the client when to come back.
  if (hint.shed_expensive) return shed_overloaded();
  cache_misses_->inc();

  if (from_us && to_us) {
    // umon_query parity: a store with no curve data answers with the empty
    // head even when the range is explicit. The default-range branch above
    // already proved an extent exists, so only this path re-checks — on
    // the miss path, where the engine scan dominates anyway.
    WindowId lo = 0, hi = 0;
    if (!store::flow_extent_union(store::flow_extents(*svc_.store), lo,
                                  hi)) {
      std::ostringstream oss;
      if (csv) {
        store::write_query_csv(oss, store::QueryResult{});
      } else {
        store::write_empty_json(oss, live_head());
      }
      return HttpResponse{200, content_type, oss.str(), false};
    }
  }

  const store::QueryResult r = engine_->run(q);
  std::ostringstream oss;
  if (csv) {
    store::write_query_csv(oss, r);
  } else {
    store::write_query_json(oss, live_head(), r);
  }
  std::string body = oss.str();
  lru_.push_front(key);
  cache_[key] = CacheEntry{body, lru_.begin()};
  while (cache_.size() > kResponseCacheEntries && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return HttpResponse{200, content_type, std::move(body), false};
}

}  // namespace umon::serve
