// umon::serve — route table binding the HTTP server to the subsystems.
//
// Endpoints (all GET/HEAD unless noted):
//
//   /                      endpoint index (JSON)
//   /metrics               Prometheus text: process registries + the
//                          server's own umon_serve_* instruments
//   /health                latest health JSONL snapshot (driver-published)
//   /health/alarms         alarm-state JSONL snapshot
//   /dashboard             live HTML dashboard (SSE-wired sparklines)
//   /prof                  folded-stack flamegraph lines (obs profiler)
//   /lineage               full per-epoch audit JSONL
//   /lineage/{host}/{epoch} one audit record, 404 when untracked
//   /api/v1/query          store QueryEngine; same params as umon_query
//                          (from_us, to_us, resolution, op, host, flow*,
//                          list=flows, format=json|csv)
//   /api/v1/stream         SSE: per-tick health samples + curve deltas
//   /api/v1/status         run phase snapshot (driver-published)
//   /api/v1/shutdown       GET|POST, asks the embedding driver to exit
//
// Handlers run on the server thread (see server.hpp), so the query engine
// and the serialized-response cache here are single-threaded by design.
// The response cache keys on (query fingerprint, store generation,
// format) — the same (fingerprint, generation) identity as the engine's
// own LRU, so it can never serve bytes from a superseded generation.
//
// Status mapping for /api/v1/query mirrors the umon_query exit codes
// (store/query_io.hpp): ran -> 200, store missing/unreadable -> 503,
// bad parameters -> 400.
//
// Admission control: when the server's LoadHint says shed_expensive, any
// /api/v1/query work that would walk the store (cache misses, list=flows,
// default-range extent scans) is refused with 503 + `Retry-After: 1`.
// Cache hits still serve, and every other endpoint — /health, /metrics,
// /api/v1/status, the SSE stream — stays on regardless of load.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/lineage.hpp"
#include "serve/server.hpp"
#include "store/query.hpp"
#include "store/query_io.hpp"
#include "store/store.hpp"
#include "telemetry/metrics.hpp"

namespace umon::serve {

/// What the process wires into the route table. Raw pointers are non-owning
/// and must outlive the Endpoints instance; null members disable their
/// endpoints (503/404 with a JSON error, never a crash).
struct Services {
  /// Exported by /metrics (the server's own registry is appended
  /// automatically). Pointers must stay valid for the server's lifetime.
  std::vector<const telemetry::MetricRegistry*> registries;
  store::Store* store = nullptr;
  std::string store_dir;
  store::RecoveryInfo store_rinfo;
  obs::LineageTracker* lineage = nullptr;
};

class Endpoints {
 public:
  /// Registers the dispatch on `server` (call before server.start()).
  Endpoints(Server& server, Services services);

  Endpoints(const Endpoints&) = delete;
  Endpoints& operator=(const Endpoints&) = delete;

  [[nodiscard]] Routed route(const HttpRequest& req, const LoadHint& hint);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const {
    return CacheStats{cache_hits_->value(), cache_misses_->value(),
                      cache_.size()};
  }

  /// Serialized-response LRU capacity (distinct (query, generation,
  /// format) bodies kept hot for the scrape-heavy read path).
  static constexpr std::size_t kResponseCacheEntries = 64;

 private:
  HttpResponse get_metrics();
  HttpResponse get_snapshot_slot(const std::string& key,
                                 const char* content_type,
                                 const char* missing_error);
  HttpResponse get_prof();
  HttpResponse get_lineage_all();
  HttpResponse get_lineage_one(const std::string& path, bool& bad_path);
  HttpResponse get_query(const HttpRequest& req, const LoadHint& hint);
  HttpResponse get_index();
  HttpResponse shed_overloaded();

  struct CacheKey {
    std::uint64_t fingerprint = 0;
    std::uint64_t generation = 0;
    std::uint8_t format = 0;  // 0 json, 1 csv
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(
          k.fingerprint ^ (k.generation * 0x9E3779B97F4A7C15ull) ^ k.format);
    }
  };
  struct CacheEntry {
    std::string body;
    std::list<CacheKey>::iterator lru_pos;
  };

  Server& server_;
  Services svc_;
  std::optional<store::QueryEngine> engine_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  ///< front = most recently used
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* cache_misses_ = nullptr;
  telemetry::Counter* shed_total_ = nullptr;
};

}  // namespace umon::serve
