#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace umon::serve {
namespace {

[[nodiscard]] std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::param(std::string_view key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_val(s[i + 1]);
      const int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

ParseStatus parse_request(std::string_view buf, std::size_t max_bytes,
                          HttpRequest& out) {
  const std::size_t end = buf.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    return buf.size() > max_bytes ? ParseStatus::kTooLarge
                                  : ParseStatus::kNeedMore;
  }
  const std::size_t header_bytes = end + 4;
  if (header_bytes > max_bytes) return ParseStatus::kTooLarge;

  out = HttpRequest{};
  out.consumed = header_bytes;

  // Request line: METHOD SP target SP HTTP/1.x
  std::string_view rest = buf.substr(0, end);
  const std::size_t line_end = rest.find("\r\n");
  std::string_view line = rest.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return ParseStatus::kMalformed;
  }
  out.method = std::string(line.substr(0, sp1));
  out.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    out.http11 = true;
  } else if (version == "HTTP/1.0") {
    out.http11 = false;
  } else {
    return ParseStatus::kMalformed;
  }
  if (out.method.empty() || out.target.empty() || out.target[0] != '/') {
    return ParseStatus::kMalformed;
  }

  // Header fields.
  rest = line_end == std::string_view::npos ? std::string_view{}
                                            : rest.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t he = rest.find("\r\n");
    const std::string_view hline =
        he == std::string_view::npos ? rest : rest.substr(0, he);
    rest = he == std::string_view::npos ? std::string_view{}
                                        : rest.substr(he + 2);
    if (hline.empty()) break;
    const std::size_t colon = hline.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseStatus::kMalformed;
    }
    out.headers.emplace_back(to_lower(trim(hline.substr(0, colon))),
                             std::string(trim(hline.substr(colon + 1))));
  }

  // Header-only protocol: any body signal is rejected, not skipped — a
  // half-consumed body would corrupt pipelined framing.
  if (const std::string* cl = out.header("content-length")) {
    if (*cl != "0") return ParseStatus::kMalformed;
  }
  if (out.header("transfer-encoding") != nullptr) {
    return ParseStatus::kMalformed;
  }

  out.keep_alive = out.http11;
  if (const std::string* conn = out.header("connection")) {
    const std::string c = to_lower(*conn);
    if (c.find("close") != std::string::npos) out.keep_alive = false;
    if (c.find("keep-alive") != std::string::npos) out.keep_alive = true;
  }

  // Split target into decoded path + params.
  const std::size_t q = out.target.find('?');
  out.path = percent_decode(std::string_view(out.target).substr(0, q));
  if (q != std::string::npos) {
    std::string_view qs = std::string_view(out.target).substr(q + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair =
          amp == std::string_view::npos ? qs : qs.substr(0, amp);
      qs = amp == std::string_view::npos ? std::string_view{}
                                         : qs.substr(amp + 1);
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.params.emplace_back(percent_decode(pair), "");
      } else {
        out.params.emplace_back(percent_decode(pair.substr(0, eq)),
                                percent_decode(pair.substr(eq + 1)));
      }
    }
  }
  return ParseStatus::kOk;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string make_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_header_lines) {
  std::string out;
  out.reserve(body.size() + 128 + extra_header_lines.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  if (status == 405) out += "\r\nAllow: GET, HEAD";
  out += "\r\n";
  out += extra_header_lines;
  out += "\r\n";
  out += body;
  return out;
}

std::string make_sse_head() {
  return "HTTP/1.1 200 OK\r\n"
         "Content-Type: text/event-stream\r\n"
         "Cache-Control: no-cache\r\n"
         "Connection: close\r\n"
         "\r\n";
}

std::string make_sse_event(std::string_view name, std::string_view data) {
  std::string out;
  out.reserve(data.size() + name.size() + 16);
  if (!name.empty()) {
    out += "event: ";
    out += name;
    out += '\n';
  }
  std::size_t start = 0;
  while (start <= data.size()) {
    const std::size_t nl = data.find('\n', start);
    const std::string_view seg =
        nl == std::string_view::npos ? data.substr(start)
                                     : data.substr(start, nl - start);
    out += "data: ";
    out += seg;
    out += '\n';
    if (nl == std::string_view::npos) break;
    start = nl + 1;
    if (start == data.size()) break;  // trailing newline: no empty frame
  }
  out += '\n';
  return out;
}

}  // namespace umon::serve
