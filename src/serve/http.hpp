// umon::serve — HTTP/1.1 request parsing and response building (no I/O).
//
// The parser is incremental: feed it whatever bytes have arrived and it
// answers NeedMore until a full header block is buffered, so the epoll loop
// can hand it torn requests byte-by-byte. It is deliberately narrow — the
// serving tier speaks GET/HEAD over header-only requests (no bodies, no
// chunked uploads, no TLS); anything outside that envelope is rejected
// early with a precise status instead of being half-understood:
//
//   * headers larger than `max_bytes`  -> kTooLarge   (431)
//   * malformed request line / body    -> kMalformed  (400)
//
// Keeping parse and serialize free of sockets makes the torn/pipelined
// robustness tests plain string tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace umon::serve {

struct HttpRequest {
  std::string method;  ///< uppercase as sent (GET, HEAD, ...)
  std::string target;  ///< raw request target, e.g. /api/v1/query?op=sum
  std::string path;    ///< percent-decoded path component
  /// Percent-decoded query parameters in request order (keys may repeat:
  /// `--flow` maps to repeated `flow=` params).
  std::vector<std::pair<std::string, std::string>> params;
  /// Header fields with lower-cased names, request order.
  std::vector<std::pair<std::string, std::string>> headers;
  bool http11 = true;      ///< HTTP/1.1 (else 1.0)
  bool keep_alive = true;  ///< after Connection header defaults
  std::size_t consumed = 0;  ///< bytes of input this request used

  /// First value for `key`, or nullptr.
  [[nodiscard]] const std::string* param(std::string_view key) const;
  [[nodiscard]] const std::string* header(std::string_view name) const;
};

enum class ParseStatus : std::uint8_t {
  kNeedMore = 0,  ///< header block not yet complete; read more bytes
  kOk,
  kTooLarge,   ///< header block exceeds max_bytes -> 431
  kMalformed,  ///< bad request line / header / unexpected body -> 400
};

/// Parse one request from the front of `buf`. On kOk, `out.consumed` says
/// how many bytes to pop so a pipelined follow-up can be parsed next.
[[nodiscard]] ParseStatus parse_request(std::string_view buf,
                                        std::size_t max_bytes,
                                        HttpRequest& out);

/// `%41` -> `A`, `+` -> space (query-string convention). Invalid escapes
/// pass through verbatim.
[[nodiscard]] std::string percent_decode(std::string_view s);

/// Canonical reason phrase for the handful of statuses the tier emits.
[[nodiscard]] const char* status_text(int status);

/// Full response bytes: status line, Content-Type/Length, Connection,
/// CRLF CRLF, body. No Date header — responses must be byte-deterministic
/// for same-seed replay comparisons. `extra_header_lines` is zero or more
/// pre-formatted `Name: value\r\n` lines (e.g. the admission controller's
/// `Retry-After: 1\r\n`) spliced in before the blank line.
[[nodiscard]] std::string make_response(int status,
                                        std::string_view content_type,
                                        std::string_view body,
                                        bool keep_alive,
                                        std::string_view extra_header_lines = {});

/// Response head for a Server-Sent Events stream (no Content-Length; the
/// connection stays open and events follow as `event:`/`data:` frames).
[[nodiscard]] std::string make_sse_head();

/// One SSE frame: `event: name\n` + one `data:` line per line of `data`
/// + blank line. Empty `name` omits the event line (default event type).
[[nodiscard]] std::string make_sse_event(std::string_view name,
                                         std::string_view data);

}  // namespace umon::serve
