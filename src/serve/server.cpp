#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace umon::serve {
namespace {

constexpr int kMaxEpollEvents = 64;
/// Loop tick: upper-bounds how late idle sweeps and SSE keepalives run.
constexpr int kEpollTickMillis = 50;
/// Compact a connection's out buffer once the flushed prefix passes this.
constexpr std::size_t kCompactThreshold = 64 * 1024;

}  // namespace

Server::Server(ServeConfig cfg) : cfg_(std::move(cfg)) {
  requests_total_ = registry_.counter("umon_serve_requests_total", {},
                                      "HTTP requests parsed");
  bytes_sent_total_ = registry_.counter("umon_serve_bytes_sent_total", {},
                                        "response bytes written to sockets");
  connections_total_ = registry_.counter("umon_serve_connections_total", {},
                                         "connections accepted");
  idle_closed_total_ =
      registry_.counter("umon_serve_idle_closed_total", {},
                        "connections closed by the idle/slowloris timeout");
  overflow_closed_total_ = registry_.counter(
      "umon_serve_overflow_closed_total", {},
      "connections refused over max_connections or closed over buffer caps");
  sse_events_total_ = registry_.counter("umon_serve_sse_events_total", {},
                                        "SSE frames queued to subscribers");
  sse_dropped_total_ =
      registry_.counter("umon_serve_sse_dropped_total", {},
                        "SSE frames dropped on full subscriber buffers");
  sse_laggards_closed_total_ = registry_.counter(
      "umon_serve_sse_laggards_closed_total", {},
      "SSE subscribers disconnected at the global backlog watermark");
  connections_active_ = registry_.gauge("umon_serve_connections_active", {},
                                        "open connections");
  sse_clients_ = registry_.gauge("umon_serve_sse_clients", {},
                                 "connected /api/v1/stream subscribers");
}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_relaxed)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    std::perror("umon-serve: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "umon-serve: bad bind address %s\n",
                 cfg_.bind_addr.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, cfg_.backlog) < 0) {
    std::perror("umon-serve: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    std::perror("umon-serve: epoll/eventfd");
    stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_relaxed);
    wake();
    thread_.join();
  }
  running_.store(false, std::memory_order_relaxed);
  for (auto& [fd, c] : conns_) ::close(fd);
  conns_.clear();
  inflight_total_ = 0;
  connections_active_->set(0);
  sse_clients_->set(0);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
}

void Server::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void Server::set_snapshot(const std::string& key, std::string value) {
  std::lock_guard lock(publish_mutex_);
  snapshots_[key] = std::move(value);
}

std::string Server::snapshot(const std::string& key) const {
  std::lock_guard lock(publish_mutex_);
  const auto it = snapshots_.find(key);
  return it == snapshots_.end() ? std::string{} : it->second;
}

bool Server::has_snapshot(const std::string& key) const {
  std::lock_guard lock(publish_mutex_);
  return snapshots_.count(key) != 0;
}

void Server::broadcast_sse(const std::string& event, const std::string& data) {
  {
    std::lock_guard lock(publish_mutex_);
    pending_events_.emplace_back(event, data);
  }
  // Nudge the loop after the guard scope: the eventfd write is a syscall
  // and must never run while publish_mutex_ is held (SA002).
  wake();
}

void Server::update_interest(Conn& c) {
  const bool want_write = c.out_off < c.out.size();
  // EPOLLIN must be disarmed while parsing is paused: the loop is
  // level-triggered, so leaving it armed with unread socket bytes would
  // spin the loop at 100% CPU instead of exerting TCP backpressure.
  const bool want_read = !c.read_paused;
  if (want_write == c.want_write && want_read == c.read_armed) return;
  c.want_write = want_write;
  c.read_armed = want_read;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.sse) sse_clients_->add(-1);
  inflight_total_ -= it->second.inflight;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  connections_active_->add(-1);
}

void Server::accept_ready(std::uint64_t now_ns) {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: try next tick
    if (conns_.size() >= cfg_.max_connections) {
      overflow_closed_total_->inc();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    Conn c;
    c.fd = fd;
    c.last_activity_ns = now_ns;
    conns_.emplace(fd, std::move(c));
    connections_total_->inc();
    connections_active_->add(1);
  }
}

void Server::queue_response(Conn& c, int status, const std::string& response) {
  auto it = status_responses_.find(status);
  if (it == status_responses_.end()) {
    it = status_responses_
             .emplace(status,
                      registry_.counter(
                          "umon_serve_responses_total",
                          {{"status", std::to_string(status)}},
                          "responses by status code"))
             .first;
  }
  it->second->inc();
  if (c.out.size() - c.out_off + response.size() > cfg_.max_buffered_bytes) {
    // One oversized response is allowed through, but the connection closes
    // after the flush so a pipelined burst cannot grow the buffer unbounded.
    overflow_closed_total_->inc();
    c.close_after_flush = true;
  }
  c.out += response;
  ++c.inflight;
  ++inflight_total_;
}

void Server::handle_parsed(Conn& c, const HttpRequest& req) {
  requests_total_->inc();
  Routed routed;
  if (dispatch_) {
    // Admission hint: the router sheds expensive uncached work when the
    // global in-flight backlog is at the cap (cheap endpoints stay on).
    LoadHint hint;
    hint.inflight = inflight_total_;
    hint.shed_expensive = inflight_total_ >= cfg_.max_inflight_requests;
    std::string endpoint = "other";
    // Per-endpoint latency is detail-gated: no clock is read when detail
    // is off, which also keeps /metrics byte-deterministic in replay runs.
    const bool timed = telemetry::detail_enabled();
    const std::uint64_t t0_ns = timed ? telemetry::monotonic_ns() : 0;
    routed = dispatch_(req, hint);
    if (!routed.endpoint.empty()) endpoint = routed.endpoint;
    if (timed) {
      auto hit = endpoint_latency_.find(endpoint);
      if (hit == endpoint_latency_.end()) {
        hit = endpoint_latency_
                  .emplace(endpoint,
                           registry_.histogram(
                               "umon_serve_request_latency_us",
                               telemetry::Histogram::latency_us_bounds(),
                               {{"endpoint", endpoint}},
                               "request handling latency by endpoint"))
                  .first;
      }
      const std::uint64_t dt_ns = telemetry::monotonic_ns() - t0_ns;
      hit->second->observe(static_cast<double>(dt_ns) / 1e3);
    }
    auto rit = endpoint_requests_.find(endpoint);
    if (rit == endpoint_requests_.end()) {
      rit = endpoint_requests_
                .emplace(endpoint, registry_.counter(
                                       "umon_serve_endpoint_requests_total",
                                       {{"endpoint", endpoint}},
                                       "requests by endpoint pattern"))
                .first;
    }
    rit->second->inc();
  } else {
    routed.response =
        HttpResponse{503, "application/json",
                     "{\"error\":\"no dispatcher attached\"}\n", false};
  }

  if (routed.response.sse) {
    c.sse = true;
    sse_clients_->add(1);
    queue_response(c, routed.response.status, make_sse_head());
    if (!routed.response.body.empty()) {
      c.out += make_sse_event("hello", routed.response.body);
    }
    return;
  }
  const bool keep = req.keep_alive && !c.close_after_flush;
  std::string bytes =
      make_response(routed.response.status, routed.response.content_type,
                    routed.response.body, keep,
                    routed.response.extra_headers);
  if (req.method == "HEAD") {
    const std::size_t head_end = bytes.find("\r\n\r\n");
    if (head_end != std::string::npos) bytes.resize(head_end + 4);
  }
  queue_response(c, routed.response.status, bytes);
  if (!keep) c.close_after_flush = true;
}

void Server::read_ready(Conn& c, std::uint64_t now_ns) {
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.in.append(buf, static_cast<std::size_t>(n));
      c.last_activity_ns = now_ns;
      continue;
    }
    if (n == 0) {  // peer closed
      c.close_after_flush = true;
      if (c.out_off >= c.out.size()) {
        close_conn(c.fd);
        return;
      }
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(c.fd);
    return;
  }

  process_input(c);
  write_ready(c);  // opportunistic flush; may close c
}

void Server::process_input(Conn& c) {
  // Drain complete pipelined requests already buffered, up to the
  // per-connection in-flight cap.
  while (!c.sse && !c.close_after_flush) {
    if (c.inflight >= cfg_.max_pipelined_requests) {
      // Pipelining backpressure: stop parsing — and stop reading the
      // socket — until the queued responses flush. The sender sees TCP
      // push back instead of the server buffering without bound.
      c.read_paused = true;
      break;
    }
    HttpRequest req;
    const ParseStatus st = parse_request(c.in, cfg_.max_request_bytes, req);
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kTooLarge) {
      queue_response(c, 431,
                     make_response(431, "application/json",
                                   "{\"error\":\"request header too "
                                   "large\"}\n",
                                   false));
      c.close_after_flush = true;
      break;
    }
    if (st == ParseStatus::kMalformed) {
      queue_response(c, 400,
                     make_response(400, "application/json",
                                   "{\"error\":\"malformed request\"}\n",
                                   false));
      c.close_after_flush = true;
      break;
    }
    c.in.erase(0, req.consumed);
    handle_parsed(c, req);
  }
}

void Server::write_ready(Conn& c) {
  for (;;) {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        bytes_sent_total_->inc(static_cast<std::uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (c.out_off > kCompactThreshold) {
          c.out.erase(0, c.out_off);
          c.out_off = 0;
        }
        update_interest(c);
        return;
      }
      close_conn(c.fd);
      return;
    }
    // Fully drained: every queued response has reached the socket.
    c.out.clear();
    c.out_off = 0;
    inflight_total_ -= c.inflight;
    c.inflight = 0;
    if (c.close_after_flush) {
      close_conn(c.fd);
      return;
    }
    if (c.read_paused) {
      // Backlog cleared: resume the requests deferred by the pipelining
      // cap, then loop to flush whatever they queued.
      c.read_paused = false;
      process_input(c);
      if (c.out_off < c.out.size()) continue;
    }
    update_interest(c);
    return;
  }
}

void Server::fan_out_events(std::uint64_t now_ns) {
  std::vector<std::pair<std::string, std::string>> events;
  {
    std::lock_guard lock(publish_mutex_);
    events.swap(pending_events_);
  }
  if (events.empty()) return;
  std::string frames;
  for (const auto& [name, data] : events) frames += make_sse_event(name, data);
  std::vector<int> flush;
  for (auto& [fd, c] : conns_) {
    if (!c.sse) continue;
    if (c.out.size() - c.out_off + frames.size() > cfg_.max_buffered_bytes) {
      sse_dropped_total_->inc(events.size());
      continue;
    }
    c.out += frames;
    c.last_activity_ns = now_ns;
    sse_events_total_->inc(events.size());
    flush.push_back(fd);
  }
  for (const int fd : flush) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) write_ready(it->second);
  }
  enforce_sse_watermark();
}

void Server::enforce_sse_watermark() {
  // Memory watermark: when the aggregate unflushed SSE backlog passes the
  // cap, disconnect the slowest subscriber (largest backlog) rather than
  // letting stream memory grow without bound.
  for (;;) {
    std::size_t total = 0;
    int worst_fd = -1;
    std::size_t worst = 0;
    for (const auto& [fd, c] : conns_) {
      if (!c.sse) continue;
      const std::size_t backlog = c.out.size() - c.out_off;
      total += backlog;
      if (backlog > worst) {
        worst = backlog;
        worst_fd = fd;
      }
    }
    if (total <= cfg_.sse_total_buffered_bytes || worst_fd < 0) return;
    sse_laggards_closed_total_->inc();
    close_conn(worst_fd);
  }
}

void Server::sweep_idle(std::uint64_t now_ns) {
  std::vector<int> idle;
  for (const auto& [fd, c] : conns_) {
    if (c.sse) continue;  // SSE streams are expected to sit idle on input
    if (now_ns - c.last_activity_ns >
        static_cast<std::uint64_t>(cfg_.idle_timeout)) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) {
    idle_closed_total_->inc();
    close_conn(fd);
  }

  if (now_ns - last_keepalive_ns_ >=
      static_cast<std::uint64_t>(cfg_.sse_keepalive_period)) {
    last_keepalive_ns_ = now_ns;
    std::vector<int> flush;
    for (auto& [fd, c] : conns_) {
      if (!c.sse) continue;
      if (c.out.size() - c.out_off + 16 > cfg_.max_buffered_bytes) continue;
      c.out += ": keepalive\n\n";
      flush.push_back(fd);
    }
    for (const int fd : flush) {
      const auto it = conns_.find(fd);
      if (it != conns_.end()) write_ready(it->second);
    }
  }
}

void Server::loop() {
  epoll_event evs[kMaxEpollEvents];
  bool draining = false;
  std::uint64_t drain_deadline_ns = 0;
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, evs, kMaxEpollEvents,
                               kEpollTickMillis);
    if (n < 0 && errno != EINTR) break;
    const std::uint64_t now_ns = telemetry::monotonic_ns();

    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const int fd = evs[i].data.fd;
      if (fd == listen_fd_) {
        if (!draining) accept_ready(now_ns);
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t tok = 0;
        [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &tok, sizeof tok);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(fd);
        continue;
      }
      if (evs[i].events & EPOLLOUT) write_ready(it->second);
      // write_ready may have closed (and erased) the connection.
      it = conns_.find(fd);
      if (it != conns_.end() && (evs[i].events & EPOLLIN)) {
        read_ready(it->second, now_ns);
      }
    }

    fan_out_events(now_ns);
    sweep_idle(now_ns);

    if (!draining && stop_.load(std::memory_order_relaxed)) {
      // Graceful shutdown: stop accepting, let pending response bytes
      // flush (bounded by drain_timeout), then fall out of the loop.
      draining = true;
      drain_deadline_ns =
          now_ns + static_cast<std::uint64_t>(cfg_.drain_timeout);
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    if (draining) {
      std::vector<int> done;
      for (auto& [fd, c] : conns_) {
        if (c.sse || c.out_off >= c.out.size()) done.push_back(fd);
      }
      for (const int fd : done) close_conn(fd);
      if (conns_.empty() || now_ns > drain_deadline_ns) break;
    }
  }
}

}  // namespace umon::serve
