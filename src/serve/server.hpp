// umon::serve — single-threaded epoll HTTP/1.1 + SSE server.
//
// One background thread owns every socket: it accepts, reads, parses,
// dispatches, and writes through a level-triggered epoll loop over
// nonblocking fds. Handlers therefore run on the server thread and may
// keep single-threaded state (the endpoints layer owns a QueryEngine and
// a response cache with no locks of their own); anything they touch that
// other threads write must be internally synchronized (Store is; the
// snapshot slots below are).
//
// Cross-thread surface (driver -> server), designed for the analyzers:
//
//   * set_snapshot(key, value): publish a pre-rendered artifact (health
//     JSONL, dashboard HTML, status line). A mutex guards only the string
//     map — no syscall ever runs under it (SA002).
//   * broadcast_sse(event, data): enqueue one event under the same rule;
//     the eventfd wake that nudges the loop is written *after* the lock
//     is released. The loop fans the event out to every /api/v1/stream
//     subscriber, dropping (and counting) per-connection when a slow
//     consumer's bounded buffer is full — a stuck reader cannot grow
//     memory or stall ingest.
//
// Robustness envelope: request headers are capped (431 past the cap),
// per-connection buffers are bounded, idle connections are closed after
// cfg.idle_timeout (slowloris), and stop() drains in-flight response
// bytes before closing (bounded by cfg.drain_timeout).
//
// Overload protection: each dispatched request carries a LoadHint so the
// router can shed expensive uncached work (503 + Retry-After) once the
// global in-flight cap is hit; a per-connection pipelining cap pauses
// reads (TCP backpressure) instead of buffering responses unboundedly;
// and a global SSE watermark disconnects the laggard with the largest
// backlog rather than letting aggregate stream memory grow.
//
// The server meters itself into its own MetricRegistry
// (umon_serve_*: request/response/byte counters, connection gauges, and
// detail-gated per-endpoint latency histograms); export it alongside the
// process registries to make the serving tier observable through its own
// /metrics endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "serve/http.hpp"
#include "telemetry/metrics.hpp"

namespace umon::serve {

struct ServeConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via Server::port()
  int backlog = 64;
  /// Request header cap; a connection that buffers more without finishing
  /// its header block gets 431 and is closed.
  std::size_t max_request_bytes = 8 * 1024;
  /// Per-connection outbound buffer cap. A normal response that would
  /// exceed it closes the connection after the flush; an SSE stream drops
  /// (and counts) events instead.
  std::size_t max_buffered_bytes = std::size_t{4} * 1024 * 1024;
  std::size_t max_connections = 256;
  /// Close a connection with no forward progress (slowloris guard).
  Nanos idle_timeout = 5 * kSecond;
  /// stop() flushes pending response bytes for at most this long.
  Nanos drain_timeout = 2 * kSecond;
  /// Comment frame cadence on idle SSE streams (keeps proxies from
  /// timing the stream out and lets smoke tests observe liveness).
  Nanos sse_keepalive_period = kSecond;
  /// Global in-flight cap: once this many responses are queued but not yet
  /// flushed to their sockets, the dispatcher is told to shed expensive
  /// (uncached) work; cheap always-on endpoints keep answering. 0 sheds
  /// everything expensive (useful in tests).
  std::size_t max_inflight_requests = 64;
  /// Per-connection pipelining cap: at most this many unflushed responses
  /// per connection. Past it the server stops *reading* the connection
  /// until the backlog drains — TCP backpressure instead of unbounded
  /// response buffering.
  std::size_t max_pipelined_requests = 8;
  /// Global SSE memory watermark: when the summed unflushed backlog of all
  /// SSE subscribers passes it, the laggard with the largest backlog is
  /// disconnected (and counted) instead of buffering without bound.
  std::size_t sse_total_buffered_bytes = std::size_t{8} * 1024 * 1024;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool sse = false;  ///< switch this connection to an SSE stream
  /// Pre-formatted `Name: value\r\n` lines appended to the header block
  /// (e.g. the admission controller's `Retry-After: 1\r\n`).
  std::string extra_headers;
};

/// Load snapshot handed to the dispatcher with each request so routing can
/// do cost-based admission control (shed uncached heavy work under
/// pressure while keeping /health and /metrics always-on).
struct LoadHint {
  std::size_t inflight = 0;    ///< responses queued, not yet flushed
  bool shed_expensive = false;  ///< at/over the global in-flight cap
};

/// What the router returns: the response plus a low-cardinality endpoint
/// label ("/metrics", "/lineage/{host}/{epoch}", ...) for the per-endpoint
/// instruments. Unmatched requests leave `endpoint` empty -> "other".
struct Routed {
  HttpResponse response;
  std::string endpoint;
};

class Server {
 public:
  using Dispatch = std::function<Routed(const HttpRequest&, const LoadHint&)>;

  explicit Server(ServeConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Install the router. Must be called before start().
  void set_dispatch(Dispatch dispatch) { dispatch_ = std::move(dispatch); }

  /// Bind + listen + spawn the event-loop thread. False on socket errors
  /// (the failure reason lands on stderr).
  [[nodiscard]] bool start();

  /// Graceful shutdown: stop accepting, flush in-flight response bytes
  /// (bounded by cfg.drain_timeout), close everything, join. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  /// Actual bound port (resolves cfg.port == 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // --- cross-thread publishing (any thread) -------------------------------
  void set_snapshot(const std::string& key, std::string value);
  [[nodiscard]] std::string snapshot(const std::string& key) const;
  [[nodiscard]] bool has_snapshot(const std::string& key) const;
  void broadcast_sse(const std::string& event, const std::string& data);

  // --- shutdown handshake (handler -> embedding driver) -------------------
  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] telemetry::MetricRegistry& registry() { return registry_; }
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;        ///< unparsed request bytes
    std::string out;       ///< pending response bytes
    std::size_t out_off = 0;
    bool sse = false;
    bool close_after_flush = false;
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool read_armed = true;    ///< EPOLLIN currently armed
    bool read_paused = false;  ///< parsing paused (pipelining backpressure)
    /// Responses queued on this connection and not yet fully flushed.
    std::size_t inflight = 0;
    std::uint64_t last_activity_ns = 0;
  };

  void loop();
  void accept_ready(std::uint64_t now_ns);
  void read_ready(Conn& c, std::uint64_t now_ns);
  void process_input(Conn& c);
  void write_ready(Conn& c);
  void enforce_sse_watermark();
  void handle_parsed(Conn& c, const HttpRequest& req);
  void queue_response(Conn& c, int status, const std::string& response);
  void fan_out_events(std::uint64_t now_ns);
  void close_conn(int fd);
  void update_interest(Conn& c);
  void sweep_idle(std::uint64_t now_ns);
  void wake();

  ServeConfig cfg_;
  Dispatch dispatch_;
  std::thread thread_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};

  // Snapshot slots + SSE queue: shared with publisher threads. The mutex
  // guards only in-memory strings; socket writes happen on the loop
  // thread after the guard scope ends (SA002).
  mutable std::mutex publish_mutex_;
  std::map<std::string, std::string> snapshots_;
  std::vector<std::pair<std::string, std::string>> pending_events_;

  std::unordered_map<int, Conn> conns_;  ///< loop thread only
  std::uint64_t last_keepalive_ns_ = 0;
  /// Sum of Conn::inflight across connections (loop thread only).
  std::size_t inflight_total_ = 0;

  telemetry::MetricRegistry registry_;
  telemetry::Counter* requests_total_ = nullptr;
  telemetry::Counter* bytes_sent_total_ = nullptr;
  telemetry::Counter* connections_total_ = nullptr;
  telemetry::Counter* idle_closed_total_ = nullptr;
  telemetry::Counter* overflow_closed_total_ = nullptr;
  telemetry::Counter* sse_events_total_ = nullptr;
  telemetry::Counter* sse_dropped_total_ = nullptr;
  telemetry::Counter* sse_laggards_closed_total_ = nullptr;
  telemetry::Gauge* connections_active_ = nullptr;
  telemetry::Gauge* sse_clients_ = nullptr;
  /// Per-endpoint instruments, created lazily on the loop thread.
  std::unordered_map<std::string, telemetry::Counter*> endpoint_requests_;
  std::unordered_map<std::string, telemetry::Histogram*> endpoint_latency_;
  std::unordered_map<int, telemetry::Counter*> status_responses_;
};

}  // namespace umon::serve
