#include "uevent/inband.hpp"

#include <algorithm>

namespace umon::uevent {

void QueueWatcher::observe(netsim::PortId port, std::uint64_t queue_bytes,
                           const PacketRecord& pkt) {
  OpenEvent& open = open_[Key{port.node, port.port}];
  if (!open.active) {
    if (queue_bytes < threshold_) return;
    open.active = true;
    open.ev = InbandEvent{};
    open.ev.port = port;
    open.ev.start = pkt.timestamp;
    open.flow_index.clear();
  }
  if (queue_bytes <= hysteresis_) {
    close(open, pkt.timestamp);
    return;
  }
  open.ev.end = pkt.timestamp;
  open.ev.max_queue_bytes = std::max(open.ev.max_queue_bytes, queue_bytes);
  auto [it, inserted] =
      open.flow_index.try_emplace(pkt.flow.packed(),
                                  open.ev.contributions.size());
  if (inserted) {
    open.ev.contributions.emplace_back(pkt.flow, pkt.size);
  } else {
    open.ev.contributions[it->second].second += pkt.size;
  }
}

void QueueWatcher::close(OpenEvent& open, Nanos now) {
  open.active = false;
  open.ev.end = std::max(open.ev.end, now);
  std::sort(open.ev.contributions.begin(), open.ev.contributions.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  report_bytes_ += open.ev.wire_bytes();
  events_.push_back(std::move(open.ev));
}

void QueueWatcher::finish(Nanos now) {
  for (auto& [key, open] : open_) {
    if (open.active) close(open, now);
  }
}

}  // namespace umon::uevent
