// Programmable-switch event detection (Section 5, last paragraph): when
// programmable switches are available, uMon can adopt ConQuest/BurstRadar-
// style designs that observe the queue directly in the data plane, achieve
// exact event capture, de-duplicate event packets, and batch-report
// [Flow Event Telemetry, SIGCOMM'20].
//
// QueueWatcher implements that vantage over the simulator's queue-observer
// hook: it opens an event when the queue depth crosses a threshold, tracks
// each flow's byte contribution while the event lasts (ConQuest's
// per-flow-in-queue query), and emits one compact batched record per event
// instead of mirroring packets.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "netsim/network.hpp"

namespace umon::uevent {

/// One batched event report, as a programmable switch would emit it.
struct InbandEvent {
  netsim::PortId port;
  Nanos start = 0;
  Nanos end = 0;
  std::uint64_t max_queue_bytes = 0;
  /// Distinct flows seen while the queue was congested, with their byte
  /// contribution (sorted descending by the reporter).
  std::vector<std::pair<FlowKey, std::uint64_t>> contributions;

  /// Report size on the wire: fixed header + one compact entry per flow.
  [[nodiscard]] std::size_t wire_bytes() const {
    return 32 + contributions.size() * 17;  // 13 B key + 4 B bytes
  }
};

class QueueWatcher {
 public:
  /// `threshold` opens an event; it closes when depth falls below
  /// `hysteresis` (defaults to half the threshold).
  explicit QueueWatcher(std::uint64_t threshold_bytes,
                        std::uint64_t hysteresis_bytes = 0)
      : threshold_(threshold_bytes),
        hysteresis_(hysteresis_bytes == 0 ? threshold_bytes / 2
                                          : hysteresis_bytes) {}

  /// Wire into netsim::Network::set_queue_observer_hook.
  void observe(netsim::PortId port, std::uint64_t queue_bytes,
               const PacketRecord& pkt);

  /// Close any open events (end of run).
  void finish(Nanos now);

  [[nodiscard]] const std::vector<InbandEvent>& events() const {
    return events_;
  }
  /// Total report bandwidth consumed (batched records, not mirrors).
  [[nodiscard]] std::size_t report_bytes() const { return report_bytes_; }

 private:
  struct Key {
    int node, port;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.node))
           << 32) |
          static_cast<std::uint32_t>(k.port));
    }
  };
  struct OpenEvent {
    bool active = false;
    InbandEvent ev;
    std::unordered_map<std::uint64_t, std::size_t> flow_index;
  };

  void close(OpenEvent& open, Nanos now);

  std::uint64_t threshold_;
  std::uint64_t hysteresis_;
  std::unordered_map<Key, OpenEvent, KeyHash> open_;
  std::vector<InbandEvent> events_;
  std::size_t report_bytes_ = 0;
};

/// Event-packet de-duplication for the mirror path: suppress repeats of the
/// same flow on the same port within a suppression window, so an elephant
/// flow contributes one mirrored packet per window instead of thousands
/// (the "effective de-duplication" of Section 5).
class DedupFilter {
 public:
  explicit DedupFilter(Nanos suppression_window)
      : window_(suppression_window) {}

  /// True if this packet should be mirrored (first of its flow+port within
  /// the suppression window).
  bool admit(netsim::PortId port, const FlowKey& flow, Nanos now) {
    const std::uint64_t key =
        flow.packed() ^ mix(static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(port.node)) << 16 |
                            static_cast<std::uint32_t>(port.port));
    auto [it, inserted] = last_.try_emplace(key, now);
    ++seen_;
    if (!inserted && now - it->second < window_) {
      ++suppressed_;
      return false;
    }
    it->second = now;
    return true;
  }

  [[nodiscard]] std::uint64_t seen() const { return seen_; }
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    return x ^ (x >> 29);
  }
  Nanos window_;
  std::unordered_map<std::uint64_t, Nanos> last_;
  std::uint64_t seen_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace umon::uevent
