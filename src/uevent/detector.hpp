// Analyzer-side event scoring: match mirrored packets against the ground
// truth congestion episodes the simulator recorded, producing the recall /
// captured-flow / bandwidth statistics of Figures 14 and 15.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "netsim/network.hpp"
#include "uevent/acl.hpp"

namespace umon::uevent {

/// Scoring result for one ground-truth episode.
struct EpisodeScore {
  netsim::PortId port;
  std::uint64_t max_queue_bytes = 0;
  Nanos duration = 0;
  std::size_t true_flows = 0;     ///< flows that traversed the queue
  bool detected = false;          ///< >= 1 mirrored packet in the window
  std::size_t captured_flows = 0; ///< distinct flows among mirrored packets
};

/// Buckets episodes by their maximum queue length and aggregates recall and
/// captured-flow statistics, as plotted in Figure 14.
struct RecallBucket {
  std::uint64_t queue_lo = 0;  ///< bucket lower edge (bytes)
  std::uint64_t queue_hi = 0;
  std::size_t episodes = 0;
  std::size_t detected = 0;
  double avg_captured_flows = 0;
  double avg_true_flows = 0;
  [[nodiscard]] double recall() const {
    return episodes == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(episodes);
  }
};

class EventScorer {
 public:
  /// Collector callback to wire into an AclMirror.
  void collect(const MirroredPacket& m) { mirrored_.push_back(m); }

  /// Score all episodes of `net` against the collected mirror stream.
  /// `slack` widens the match window to tolerate mirror-path latency.
  std::vector<EpisodeScore> score(const netsim::Network& net,
                                  Nanos slack = 10 * kMicro) const;

  /// Aggregate scores into queue-length buckets of `bucket_bytes`.
  static std::vector<RecallBucket> bucketize(
      const std::vector<EpisodeScore>& scores, std::uint64_t bucket_bytes);

  [[nodiscard]] const std::vector<MirroredPacket>& mirrored() const {
    return mirrored_;
  }
  [[nodiscard]] std::size_t mirrored_count() const { return mirrored_.size(); }

 private:
  std::vector<MirroredPacket> mirrored_;
};

}  // namespace umon::uevent
