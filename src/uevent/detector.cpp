#include "uevent/detector.hpp"

#include <algorithm>

namespace umon::uevent {

std::vector<EpisodeScore> EventScorer::score(const netsim::Network& net,
                                             Nanos slack) const {
  // Index the mirror stream per (switch, port), sorted by switch timestamp,
  // so each episode scan is a binary search plus a bounded walk.
  struct Key {
    int sw;
    int port;
    bool operator<(const Key& o) const {
      return sw != o.sw ? sw < o.sw : port < o.port;
    }
  };
  std::map<Key, std::vector<const MirroredPacket*>> by_port;
  for (const auto& m : mirrored_) {
    by_port[Key{m.switch_id, m.egress_port}].push_back(&m);
  }
  for (auto& [k, v] : by_port) {
    std::sort(v.begin(), v.end(),
              [](const MirroredPacket* a, const MirroredPacket* b) {
                return a->switch_timestamp < b->switch_timestamp;
              });
  }

  std::vector<EpisodeScore> out;
  for (const netsim::PortId& port : net.switch_ports()) {
    const auto* episodes = net.port_episodes(port);
    if (episodes == nullptr) continue;
    const auto it = by_port.find(Key{port.node, port.port});
    const std::vector<const MirroredPacket*>* stream =
        it == by_port.end() ? nullptr : &it->second;
    for (const auto& ep : *episodes) {
      EpisodeScore s;
      s.port = port;
      s.max_queue_bytes = ep.max_bytes;
      s.duration = ep.duration();
      s.true_flows = ep.flows.size();
      if (stream != nullptr) {
        const Nanos lo = ep.start - slack;
        const Nanos hi = ep.end + slack;
        auto first = std::lower_bound(
            stream->begin(), stream->end(), lo,
            [](const MirroredPacket* m, Nanos t) {
              return m->switch_timestamp < t;
            });
        std::unordered_set<std::uint64_t> flows;
        for (auto p = first; p != stream->end(); ++p) {
          if ((*p)->switch_timestamp > hi) break;
          s.detected = true;
          flows.insert((*p)->pkt.flow.packed());
        }
        s.captured_flows = flows.size();
      }
      out.push_back(s);
    }
  }
  return out;
}

std::vector<RecallBucket> EventScorer::bucketize(
    const std::vector<EpisodeScore>& scores, std::uint64_t bucket_bytes) {
  std::map<std::uint64_t, RecallBucket> buckets;
  for (const auto& s : scores) {
    const std::uint64_t idx = s.max_queue_bytes / bucket_bytes;
    RecallBucket& b = buckets[idx];
    b.queue_lo = idx * bucket_bytes;
    b.queue_hi = (idx + 1) * bucket_bytes;
    b.episodes += 1;
    b.detected += s.detected ? 1 : 0;
    b.avg_captured_flows += static_cast<double>(s.captured_flows);
    b.avg_true_flows += static_cast<double>(s.true_flows);
  }
  std::vector<RecallBucket> out;
  out.reserve(buckets.size());
  for (auto& [idx, b] : buckets) {
    if (b.episodes > 0) {
      b.avg_captured_flows /= static_cast<double>(b.episodes);
      b.avg_true_flows /= static_cast<double>(b.episodes);
    }
    out.push_back(b);
  }
  return out;
}

}  // namespace umon::uevent
