// ACL-based match / sample / mirror pipeline (Section 5): the commodity-
// switch mechanism that captures transient congestion events. A rule matches
// the ECN field (CE) and the low bits of the packet sequence number, so the
// mirroring probability is 1/2^w without per-flow state (Figure 8).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "netsim/network.hpp"

namespace umon::uevent {

/// One ternary ACL rule over the fields the paper matches. A zero
/// `psn_mask` matches every PSN (no sampling).
struct AclRule {
  Ecn ecn_match = Ecn::kCe;
  std::uint32_t psn_mask = 0;     ///< low-bit mask, e.g. 0b111 for 1/8
  std::uint32_t psn_value = 0;    ///< required masked value (usually 0)

  [[nodiscard]] bool matches(const PacketRecord& pkt) const {
    if (pkt.ecn != ecn_match) return false;
    return (pkt.psn & psn_mask) == psn_value;
  }

  /// Build the standard uMon rule for a sampling ratio of 1/2^w.
  static AclRule ce_sampled(int w_bits) {
    AclRule r;
    r.psn_mask = w_bits <= 0 ? 0u : ((1u << w_bits) - 1u);
    r.psn_value = 0;
    return r;
  }
};

/// A mirrored event packet as received by the analyzer: the original header
/// fields plus the switch timestamp and the VLAN tag encoding the egress
/// port (Section 5 "Match and mirror the event packets").
struct MirroredPacket {
  PacketRecord pkt;
  int switch_id = -1;
  int egress_port = -1;
  std::uint16_t vlan = 0;
  Nanos switch_timestamp = 0;

  /// Bytes on the mirror wire: truncated original header (64 B) plus the
  /// remote-mirroring encapsulation (VLAN + ERSPAN-style overhead).
  static constexpr std::uint32_t kWireBytes = 64 + 18;
};

/// The per-switch mirroring agent: applies the ACL to every egress packet
/// and forwards matches to the collector callback.
class AclMirror {
 public:
  using Collector = std::function<void(const MirroredPacket&)>;

  AclMirror(AclRule rule, Collector collector)
      : rule_(rule), collector_(std::move(collector)) {}

  /// Hook for netsim::Network::set_switch_enqueue_hook.
  void on_switch_enqueue(netsim::PortId port, const PacketRecord& pkt,
                         Nanos now) {
    ++seen_;
    if (!rule_.matches(pkt)) return;
    ++mirrored_;
    mirrored_bytes_ += MirroredPacket::kWireBytes;
    if (collector_) {
      MirroredPacket m;
      m.pkt = pkt;
      m.switch_id = port.node;
      m.egress_port = port.port;
      m.vlan = static_cast<std::uint16_t>(port.port + 100);
      m.switch_timestamp = now;
      collector_(m);
    }
  }

  [[nodiscard]] std::uint64_t packets_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t packets_mirrored() const { return mirrored_; }
  [[nodiscard]] std::uint64_t mirrored_bytes() const { return mirrored_bytes_; }

 private:
  AclRule rule_;
  Collector collector_;
  std::uint64_t seen_ = 0;
  std::uint64_t mirrored_ = 0;
  std::uint64_t mirrored_bytes_ = 0;
};

}  // namespace umon::uevent
