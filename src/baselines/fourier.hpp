// Fourier-transform baseline (Section 7.1): buffer each bucket's window
// series, then keep only the K spectral coefficients with the largest
// magnitude (conjugate pairs counted as two slots). This is CPU-only — the
// paper notes only WaveSketch and OmniWindow-Avg fit the data plane — so
// memory is charged at the *report* size: the retained coefficients.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "baselines/estimator.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace umon::baselines {

struct FourierParams {
  int depth = 3;
  std::uint32_t width = 256;
  std::uint32_t coefficients = 32;  ///< retained spectral slots per bucket
  std::uint32_t max_windows = 1u << 16;
  std::uint64_t seed = 0xC0FFEE;
};

/// In-place iterative radix-2 FFT (size must be a power of two).
void fft(std::vector<std::complex<double>>& a, bool inverse);

/// Keep the `budget` largest-magnitude bins of a real signal's spectrum
/// (DC/Nyquist cost one slot, other bins two for the conjugate), zero the
/// rest, and return the inverse transform truncated to `length`.
std::vector<double> fourier_compress(std::vector<double> signal,
                                     std::uint32_t budget);

class FourierSketch final : public SeriesEstimator {
 public:
  explicit FourierSketch(const FourierParams& p);

  void update(const FlowKey& flow, WindowId w, Count v) override;
  [[nodiscard]] Series query(const FlowKey& flow) const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return "Fourier"; }

 private:
  struct Bucket {
    bool started = false;
    WindowId w0 = 0;
    std::vector<Count> series;  // dense buffered window counters
  };

  FourierParams params_;
  std::vector<SeededHash> hashes_;
  std::vector<Bucket> grid_;
};

}  // namespace umon::baselines
