// The adapters are header-only; this translation unit anchors the vtables.
#include "baselines/wavesketch_adapter.hpp"

namespace umon::baselines {}  // namespace umon::baselines
