#include "baselines/fourier.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "wavelet/haar.hpp"  // next_pow2

namespace umon::baselines {

void fft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const auto u = a[i + j];
        const auto v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> fourier_compress(std::vector<double> signal,
                                     std::uint32_t budget) {
  const auto length = static_cast<std::uint32_t>(signal.size());
  if (length == 0) return {};
  const std::uint32_t n = wavelet::next_pow2(length);
  std::vector<std::complex<double>> spec(signal.begin(), signal.end());
  spec.resize(n, {0, 0});
  fft(spec, /*inverse=*/false);

  // Rank the non-redundant half-spectrum bins by magnitude.
  struct Bin {
    std::uint32_t idx;
    double mag;
    std::uint32_t cost;
  };
  std::vector<Bin> bins;
  bins.reserve(n / 2 + 1);
  for (std::uint32_t i = 0; i <= n / 2; ++i) {
    const std::uint32_t cost = (i == 0 || i == n / 2) ? 1u : 2u;
    bins.push_back(Bin{i, std::abs(spec[i]), cost});
  }
  std::sort(bins.begin(), bins.end(),
            [](const Bin& a, const Bin& b) { return a.mag > b.mag; });

  std::vector<bool> keep(n, false);
  std::uint32_t used = 0;
  for (const Bin& b : bins) {
    if (used + b.cost > budget) continue;
    used += b.cost;
    keep[b.idx] = true;
    if (b.idx != 0 && b.idx != n / 2) keep[n - b.idx] = true;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!keep[i]) spec[i] = {0, 0};
  }
  fft(spec, /*inverse=*/true);
  std::vector<double> out(length);
  for (std::uint32_t i = 0; i < length; ++i) out[i] = spec[i].real();
  return out;
}

FourierSketch::FourierSketch(const FourierParams& p) : params_(p) {
  hashes_.reserve(static_cast<std::size_t>(params_.depth));
  for (int r = 0; r < params_.depth; ++r) {
    hashes_.emplace_back(params_.seed + static_cast<std::uint64_t>(r) * 0xF0F0);
  }
  grid_.resize(static_cast<std::size_t>(params_.depth) * params_.width);
}

void FourierSketch::update(const FlowKey& flow, WindowId w, Count v) {
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    Bucket& b = grid_[static_cast<std::size_t>(r) * params_.width + col];
    if (!b.started) {
      b.started = true;
      b.w0 = w;
    }
    if (w < b.w0) continue;
    const auto offset = static_cast<std::uint64_t>(w - b.w0);
    if (offset >= params_.max_windows) continue;
    if (offset >= b.series.size()) b.series.resize(offset + 1, 0);
    b.series[offset] += v;
  }
}

Series FourierSketch::query(const FlowKey& flow) const {
  const Bucket* best = nullptr;
  Count best_total = 0;
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    const Bucket& b = grid_[static_cast<std::size_t>(r) * params_.width + col];
    if (!b.started) return Series{};
    Count total = 0;
    for (Count c : b.series) total += c;
    if (best == nullptr || total < best_total) {
      best = &b;
      best_total = total;
    }
  }
  Series s;
  if (best == nullptr) return s;
  s.w0 = best->w0;
  std::vector<double> sig(best->series.begin(), best->series.end());
  s.values = fourier_compress(std::move(sig), params_.coefficients);
  for (double& x : s.values) x = std::max(0.0, x);
  return s;
}

std::size_t FourierSketch::memory_bytes() const {
  // Report-size accounting: K complex coefficients (8B) + bin index (2B).
  return grid_.size() * (params_.coefficients * 10 + 12);
}

}  // namespace umon::baselines
