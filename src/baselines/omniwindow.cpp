#include "baselines/omniwindow.hpp"

#include <bit>

namespace umon::baselines {

OmniWindowAvg::OmniWindowAvg(const OmniWindowParams& p) : params_(p) {
  // Round the coarsening factor up to a power of two covering max_windows.
  std::uint32_t factor = 1;
  while (factor * params_.sub_windows < params_.max_windows) factor <<= 1;
  coarsening_ = factor;
  coarse_shift_ = std::countr_zero(factor);
  hashes_.reserve(static_cast<std::size_t>(params_.depth));
  for (int r = 0; r < params_.depth; ++r) {
    hashes_.emplace_back(params_.seed + static_cast<std::uint64_t>(r) * 0x9177);
  }
  grid_.resize(static_cast<std::size_t>(params_.depth) * params_.width);
  for (auto& b : grid_) b.coarse.assign(params_.sub_windows, 0);
}

void OmniWindowAvg::update(const FlowKey& flow, WindowId w, Count v) {
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    Bucket& b = grid_[static_cast<std::size_t>(r) * params_.width + col];
    if (!b.started) {
      b.started = true;
      b.w0 = w;
    }
    if (w < b.w0) continue;  // late packet before the bucket epoch: drop
    const auto offset = static_cast<std::uint64_t>(w - b.w0);
    const std::uint64_t idx = offset >> coarse_shift_;
    if (idx >= b.coarse.size()) continue;  // beyond the covered period
    b.coarse[idx] += v;
    if (offset > b.max_offset) b.max_offset = static_cast<std::uint32_t>(offset);
  }
}

Series OmniWindowAvg::query(const FlowKey& flow) const {
  const Bucket* best = nullptr;
  Count best_total = 0;
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    const Bucket& b = bucket(r, col);
    if (!b.started) return Series{};
    Count total = 0;
    for (Count c : b.coarse) total += c;
    if (best == nullptr || total < best_total) {
      best = &b;
      best_total = total;
    }
  }
  Series s;
  if (best == nullptr) return s;
  s.w0 = best->w0;
  const std::uint32_t length = best->max_offset + 1;
  s.values.resize(length);
  const double denom = static_cast<double>(coarsening_);
  for (std::uint32_t i = 0; i < length; ++i) {
    s.values[i] =
        static_cast<double>(best->coarse[i >> coarse_shift_]) / denom;
  }
  return s;
}

std::size_t OmniWindowAvg::memory_bytes() const {
  // 4-byte coarse counters plus per-bucket epoch metadata.
  return grid_.size() * (params_.sub_windows * 4 + 12);
}

}  // namespace umon::baselines
