// Common interface for rate-curve estimators, so the accuracy benches
// (Figures 11, 12, 17, 18) can sweep WaveSketch and every baseline with the
// same driver.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace umon::baselines {

struct Series {
  WindowId w0 = 0;
  std::vector<double> values;
  [[nodiscard]] bool empty() const { return values.empty(); }
  [[nodiscard]] double at(WindowId w) const {
    if (w < w0 || w >= w0 + static_cast<WindowId>(values.size())) return 0;
    return values[static_cast<std::size_t>(w - w0)];
  }
};

class SeriesEstimator {
 public:
  virtual ~SeriesEstimator() = default;
  virtual void update(const FlowKey& flow, WindowId w, Count v) = 0;
  [[nodiscard]] virtual Series query(const FlowKey& flow) const = 0;
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace umon::baselines
