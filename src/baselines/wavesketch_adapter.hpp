// SeriesEstimator adapters over the WaveSketch variants so the accuracy
// benches can sweep all schemes uniformly.
#pragma once

#include <string>

#include "baselines/estimator.hpp"
#include "sketch/params.hpp"
#include "sketch/wavesketch.hpp"
#include "sketch/wavesketch_full.hpp"

namespace umon::baselines {

class WaveSketchEstimator final : public SeriesEstimator {
 public:
  WaveSketchEstimator(const sketch::WaveSketchParams& p, std::string label)
      : sketch_(p), label_(std::move(label)) {}

  void update(const FlowKey& flow, WindowId w, Count v) override {
    sketch_.update_window(flow, w, v);
  }
  [[nodiscard]] Series query(const FlowKey& flow) const override {
    auto q = sketch_.query(flow);
    return Series{q.w0, std::move(q.series)};
  }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return sketch_.memory_bytes();
  }
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] sketch::WaveSketchBasic& sketch() { return sketch_; }

 private:
  sketch::WaveSketchBasic sketch_;
  std::string label_;
};

class WaveSketchFullEstimator final : public SeriesEstimator {
 public:
  WaveSketchFullEstimator(const sketch::WaveSketchParams& p, std::string label)
      : sketch_(p), label_(std::move(label)) {}

  void update(const FlowKey& flow, WindowId w, Count v) override {
    sketch_.update_window(flow, w, v);
  }
  [[nodiscard]] Series query(const FlowKey& flow) const override {
    auto q = sketch_.query(flow);
    return Series{q.w0, std::move(q.series)};
  }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return sketch_.memory_bytes();
  }
  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] sketch::WaveSketchFull& sketch() { return sketch_; }

 private:
  sketch::WaveSketchFull sketch_;
  std::string label_;
};

}  // namespace umon::baselines
