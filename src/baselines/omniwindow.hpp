// OmniWindow-Avg baseline (Section 7.1): the memory budget buys m coarse
// sub-windows per bucket; every microsecond-level window inside a sub-window
// is reported as the sub-window average.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/estimator.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace umon::baselines {

struct OmniWindowParams {
  int depth = 3;
  std::uint32_t width = 256;
  /// Coarse sub-windows per bucket.
  std::uint32_t sub_windows = 32;
  /// Fine windows covered per bucket period (defines the coarsening factor).
  std::uint32_t max_windows = 1u << 12;
  std::uint64_t seed = 0xC0FFEE;
};

class OmniWindowAvg final : public SeriesEstimator {
 public:
  explicit OmniWindowAvg(const OmniWindowParams& p);

  void update(const FlowKey& flow, WindowId w, Count v) override;
  [[nodiscard]] Series query(const FlowKey& flow) const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return "OmniWindow-Avg"; }

 private:
  struct Bucket {
    bool started = false;
    WindowId w0 = 0;
    std::uint32_t max_offset = 0;
    std::vector<Count> coarse;
  };

  /// Fine windows per coarse sub-window (power of two).
  [[nodiscard]] std::uint32_t coarsening() const { return coarsening_; }

  [[nodiscard]] const Bucket& bucket(int row, std::uint32_t col) const {
    return grid_[static_cast<std::size_t>(row) * params_.width + col];
  }

  OmniWindowParams params_;
  std::uint32_t coarsening_;
  int coarse_shift_;
  std::vector<SeededHash> hashes_;
  std::vector<Bucket> grid_;
};

}  // namespace umon::baselines
