#include "baselines/persist_cms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace umon::baselines {

void PlaFitter::add(double t, double y) {
  assert(!finished_);
  if (!open_) {
    if (knots_.empty()) {
      knots_.emplace_back(t, y);
      t0_ = t;
      y0_ = y;
    } else {
      // Continue from the last knot so segments join continuously.
      t0_ = knots_.back().first;
      y0_ = knots_.back().second;
    }
    slope_lo_ = -std::numeric_limits<double>::infinity();
    slope_hi_ = std::numeric_limits<double>::infinity();
    open_ = true;
    if (t == t0_) return;  // first point coincides with the origin knot
  }
  const double dt = t - t0_;
  if (dt <= 0) return;
  const double lo = (y - tolerance_ - y0_) / dt;
  const double hi = (y + tolerance_ - y0_) / dt;
  if (lo > slope_hi_ || hi < slope_lo_) {
    close_segment();
    // Re-open a segment anchored at the new knot and absorb this point.
    open_ = false;
    add(t, y);
    if (knots_.size() >= max_knots_) refit();
    return;
  }
  slope_lo_ = std::max(slope_lo_, lo);
  slope_hi_ = std::min(slope_hi_, hi);
  last_t_ = t;
  last_y_ = y;
}

void PlaFitter::close_segment() {
  if (!open_ || last_t_ <= t0_) return;
  double slope = (slope_lo_ + slope_hi_) / 2;
  if (!std::isfinite(slope)) slope = 0;
  knots_.emplace_back(last_t_, y0_ + slope * (last_t_ - t0_));
  open_ = false;
}

void PlaFitter::finish() {
  if (finished_) return;
  close_segment();
  finished_ = true;
}

void PlaFitter::refit() {
  // Double the tolerance and re-fit the existing knots until within budget.
  while (knots_.size() >= max_knots_) {
    tolerance_ *= 2;
    std::vector<std::pair<double, double>> pts;
    pts.swap(knots_);
    open_ = false;
    finished_ = false;
    for (const auto& [t, y] : pts) {
      // Recursion is bounded: re-adding strictly fewer points than before.
      const double dt0 = open_ ? t - t0_ : 1;
      (void)dt0;
      add(t, y);
    }
    close_segment();
    open_ = false;
    if (pts.size() <= knots_.size()) break;  // cannot shrink further
  }
}

double PlaFitter::value_at(double t) const {
  if (knots_.empty()) return 0;
  if (t <= knots_.front().first) return knots_.front().second;
  // Include the open segment's current extent when not finished.
  if (t >= knots_.back().first) {
    if (open_ && last_t_ > t0_ && t <= last_t_) {
      const double slope = (slope_lo_ + slope_hi_) / 2;
      if (std::isfinite(slope)) return y0_ + slope * (t - t0_);
    }
    if (open_ && last_t_ > t0_) {
      const double slope = (slope_lo_ + slope_hi_) / 2;
      if (std::isfinite(slope))
        return y0_ + slope * (std::min(t, last_t_) - t0_);
    }
    return knots_.back().second;
  }
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t,
      [](const auto& k, double x) { return k.first < x; });
  const auto& [t1, y1] = *it;
  const auto& [t0, y0] = *(it - 1);
  if (t1 == t0) return y1;
  return y0 + (y1 - y0) * (t - t0) / (t1 - t0);
}

void PersistCms::Bucket::close_window() {
  cumulative += static_cast<double>(cur_count);
  pla.add(static_cast<double>(cur_offset) + 1.0, cumulative);
  cur_count = 0;
}

PersistCms::PersistCms(const PersistCmsParams& p) : params_(p) {
  hashes_.reserve(static_cast<std::size_t>(params_.depth));
  for (int r = 0; r < params_.depth; ++r) {
    hashes_.emplace_back(params_.seed + static_cast<std::uint64_t>(r) * 0x51ED);
  }
  grid_.assign(static_cast<std::size_t>(params_.depth) * params_.width,
               Bucket(params_.segments_per_bucket, params_.initial_tolerance));
}

void PersistCms::update(const FlowKey& flow, WindowId w, Count v) {
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    Bucket& b = grid_[static_cast<std::size_t>(r) * params_.width + col];
    if (!b.started) {
      b.started = true;
      b.w0 = w;
      b.pla.add(0.0, 0.0);  // cumulative starts at zero
    }
    if (w < b.w0) continue;
    const auto offset = static_cast<std::uint32_t>(w - b.w0);
    if (offset == b.cur_offset) {
      b.cur_count += v;
    } else {
      b.close_window();
      b.cur_offset = offset;
      b.cur_count = v;
    }
    if (offset > b.max_offset) b.max_offset = offset;
  }
}

Series PersistCms::query(const FlowKey& flow) const {
  const Bucket* best = nullptr;
  double best_total = 0;
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col =
        hashes_[static_cast<std::size_t>(r)].bucket(flow.packed(), params_.width);
    const Bucket& b = grid_[static_cast<std::size_t>(r) * params_.width + col];
    if (!b.started) return Series{};
    const double total = b.cumulative + static_cast<double>(b.cur_count);
    if (best == nullptr || total < best_total) {
      best = &b;
      best_total = total;
    }
  }
  Series s;
  if (best == nullptr) return s;
  // Fold the still-open window into a copy so queries see current data.
  Bucket copy = *best;
  copy.close_window();
  copy.pla.finish();
  s.w0 = copy.w0;
  const std::uint32_t length = copy.max_offset + 1;
  s.values.resize(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    const double rate = copy.pla.value_at(static_cast<double>(i) + 1.0) -
                        copy.pla.value_at(static_cast<double>(i));
    s.values[i] = std::max(0.0, rate);
  }
  return s;
}

std::size_t PersistCms::memory_bytes() const {
  // Each knot is (t, y) packed into 8 bytes plus bucket metadata.
  return grid_.size() * (params_.segments_per_bucket * 8 + 16);
}

}  // namespace umon::baselines
