// Persist-CMS baseline [Wei et al., SIGMOD'15]: a Count-Min sketch whose
// buckets store a piecewise-linear approximation (PLA) of the cumulative
// count over window index, built online with the O'Rourke feasible-slope
// cone. The window rate is the slope of the cumulative curve.
//
// The segment budget per bucket is fixed by the memory grant; when a bucket
// exhausts it, the error tolerance doubles and the breakpoints are re-fitted
// (the standard budgeted-PLA fallback).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/estimator.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace umon::baselines {

struct PersistCmsParams {
  int depth = 3;
  std::uint32_t width = 256;
  std::uint32_t segments_per_bucket = 16;
  double initial_tolerance = 1500.0;  ///< one MTU of cumulative-byte error
  std::uint64_t seed = 0xC0FFEE;
};

/// Online PLA of an increasing step function y(t); emits knots (t, y).
class PlaFitter {
 public:
  PlaFitter(std::uint32_t max_knots, double tolerance)
      : max_knots_(max_knots), tolerance_(tolerance) {}

  void add(double t, double y);
  void finish();

  /// Piecewise-linear interpolation through the knots (clamped outside).
  [[nodiscard]] double value_at(double t) const;

  [[nodiscard]] const std::vector<std::pair<double, double>>& knots() const {
    return knots_;
  }
  [[nodiscard]] double tolerance() const { return tolerance_; }

 private:
  void close_segment();
  void refit();

  std::uint32_t max_knots_;
  double tolerance_;
  std::vector<std::pair<double, double>> knots_;
  // Current segment state (O'Rourke cone).
  bool open_ = false;
  double t0_ = 0, y0_ = 0;        // segment origin
  double last_t_ = 0, last_y_ = 0;
  double slope_lo_ = 0, slope_hi_ = 0;
  bool finished_ = false;
};

class PersistCms final : public SeriesEstimator {
 public:
  explicit PersistCms(const PersistCmsParams& p);

  void update(const FlowKey& flow, WindowId w, Count v) override;
  [[nodiscard]] Series query(const FlowKey& flow) const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] std::string name() const override { return "Persist-CMS"; }

 private:
  struct Bucket {
    bool started = false;
    WindowId w0 = 0;
    std::uint32_t cur_offset = 0;
    Count cur_count = 0;
    double cumulative = 0;
    std::uint32_t max_offset = 0;
    PlaFitter pla;
    Bucket(std::uint32_t knots, double tol) : pla(knots, tol) {}
    void close_window();
  };

  PersistCmsParams params_;
  std::vector<SeededHash> hashes_;
  std::vector<Bucket> grid_;
};

}  // namespace umon::baselines
