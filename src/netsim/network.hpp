// The simulated data center network: hosts, output-queued switches, links,
// ECMP routing, RoCEv2-like flows under DCQCN, and monitoring hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "telemetry/metrics.hpp"
#include "netsim/dcqcn.hpp"
#include "netsim/dctcp.hpp"
#include "netsim/engine.hpp"
#include "netsim/packet.hpp"
#include "netsim/queue.hpp"

namespace umon::netsim {

struct LinkConfig {
  double bandwidth_gbps = 100.0;
  Nanos propagation_delay = 1 * kMicro;  ///< 1 us per hop (Section 7)
};

/// Hop-level PFC backpressure: when any egress queue of a node exceeds
/// `xoff_bytes`, the node asks every neighbor to pause transmission toward
/// it; once all its queues drain below `xon_bytes` it resumes them. This is
/// the output-queued approximation of per-ingress PFC — it reproduces the
/// phenomena the paper cares about (losslessness, head-of-line blocking,
/// pause propagation) without per-ingress buffers.
struct PfcConfig {
  bool enabled = false;
  std::uint64_t xoff_bytes = 512 * 1024;
  std::uint64_t xon_bytes = 256 * 1024;
};

struct NetworkConfig {
  LinkConfig link;
  EcnConfig ecn;
  DcqcnConfig dcqcn;
  DctcpConfig dctcp;
  PfcConfig pfc;
  std::uint64_t switch_buffer_bytes = 12ull * 1024 * 1024;
  /// Host NIC TX buffer; senders stop pacing while their backlog exceeds
  /// `host_backlog_bytes` (the TX-ring-full condition), so hosts never drop.
  std::uint64_t host_buffer_bytes = 64ull * 1024 * 1024;
  std::uint64_t host_backlog_bytes = 1ull * 1024 * 1024;
  /// Queue depth at which a congestion episode opens (ground truth).
  std::uint64_t episode_threshold_bytes = 20 * 1024;
  /// Periodic queue-length sampling interval (0 disables).
  Nanos queue_sample_interval = 1 * kMicro;
  /// Residual clock error of the hosts' PTP sync: each host gets a fixed
  /// offset drawn uniformly from [-jitter, +jitter], applied to the
  /// timestamps its monitoring hooks observe (Section 6.1: nanosecond-level
  /// sync errors stay within two measurement windows).
  Nanos host_clock_jitter = 0;
  std::uint64_t seed = 1;
};

/// Traffic shapes for a flow's source.
struct OnOffPattern {
  Nanos on_duration = 0;
  Nanos off_duration = 0;
  [[nodiscard]] bool active() const { return on_duration > 0; }
};

struct FlowSpec {
  FlowKey key;
  int src_host = 0;
  int dst_host = 0;
  std::uint64_t bytes = 0;          ///< payload bytes to transfer
  Nanos start_time = 0;
  /// Optional fixed rate cap (e.g., app-limited); 0 = line rate / DCQCN.
  double rate_cap_gbps = 0.0;
  OnOffPattern on_off;              ///< optional duty cycle
  bool use_dcqcn = true;
  /// Window-based DCTCP transport instead of rate-based DCQCN (overrides
  /// use_dcqcn; ACK-clocked, go-back-N on timeout).
  bool use_dctcp = false;
};

struct FlowStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t cnps_received = 0;
  Nanos first_tx = -1;
  Nanos last_tx = -1;
  bool finished = false;
};

/// Identifies one unidirectional switch egress (a "link" for Figure 10a).
struct PortId {
  int node = -1;   ///< switch node id
  int port = -1;   ///< egress port index on that switch
  friend bool operator==(const PortId&, const PortId&) = default;
};

class Network {
 public:
  explicit Network(const NetworkConfig& cfg);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction ---------------------------------------------
  /// Add a host; returns its node id.
  int add_host(std::string name = {});
  /// Add a switch; returns its node id.
  int add_switch(std::string name = {});
  /// Connect two nodes with a bidirectional pair of links.
  void connect(int a, int b, std::optional<LinkConfig> link = std::nullopt);
  /// Compute shortest-path ECMP next-hop tables (call once after connect()).
  void build_routes();

  /// Convenience builder: a k-ary fat-tree (k even). Hosts are the first
  /// (k^3/4) node ids.
  static std::unique_ptr<Network> fat_tree(const NetworkConfig& cfg, int k);

  // --- workload -------------------------------------------------------------
  void start_flow(const FlowSpec& spec);

  // --- running ---------------------------------------------------------------
  void run_until(Nanos t);
  [[nodiscard]] Nanos now() const;
  Engine& engine() { return engine_; }

  // --- monitoring hooks ------------------------------------------------------
  /// Fired when a host NIC transmits a data packet (the uFlow vantage).
  using HostTxHook = std::function<void(int host, const PacketRecord&)>;
  /// Fired when a switch enqueues a packet on an egress port (the uEvent
  /// vantage; `record.ecn` reflects any CE mark just applied).
  using SwitchEnqueueHook =
      std::function<void(PortId, const PacketRecord&)>;
  /// Fired like SwitchEnqueueHook but with the post-enqueue queue depth —
  /// the programmable-switch vantage (ConQuest/BurstRadar-style designs
  /// observe the queue directly in the data plane, Section 5).
  using QueueObserverHook =
      std::function<void(PortId, std::uint64_t queue_bytes,
                         const PacketRecord&)>;
  void set_host_tx_hook(HostTxHook h) { host_tx_hook_ = std::move(h); }
  void set_switch_enqueue_hook(SwitchEnqueueHook h) {
    switch_enqueue_hook_ = std::move(h);
  }
  void set_queue_observer_hook(QueueObserverHook h) {
    queue_observer_hook_ = std::move(h);
  }

  // --- results ---------------------------------------------------------------
  [[nodiscard]] const FlowStats* flow_stats(const FlowKey& key) const;
  [[nodiscard]] std::vector<CongestionEpisode> all_episodes() const;
  /// Episodes of one egress port.
  [[nodiscard]] const std::vector<CongestionEpisode>* port_episodes(
      PortId id) const;
  /// All switch egress ports (stable order; index = "link id" in plots).
  [[nodiscard]] std::vector<PortId> switch_ports() const;
  /// Periodic queue length samples (bytes) across all switch ports.
  [[nodiscard]] const std::vector<std::uint64_t>& queue_samples() const {
    return queue_samples_;
  }
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] int host_count() const { return host_count_; }

  /// The fixed clock offset of one host (0 when jitter is disabled). The
  /// analyzer's ClockModel subtracts exactly this during alignment.
  [[nodiscard]] Nanos host_clock_offset(int host) const;

  /// PFC accounting (meaningful when cfg.pfc.enabled).
  struct PfcStats {
    std::uint64_t pause_frames = 0;   ///< PAUSE messages sent
    std::uint64_t resume_frames = 0;  ///< RESUME messages sent
    Nanos total_paused = 0;           ///< summed pause time across ports
    Nanos longest_pause = 0;          ///< longest single pause (storm hint)
  };
  [[nodiscard]] const PfcStats& pfc_stats() const { return pfc_stats_; }
  /// Close open episodes etc.; call after the final run_until. Also settles
  /// this run's umon_netsim_* totals into telemetry::MetricRegistry::global()
  /// (events processed, drops, CE marks, PFC pauses, queue occupancy).
  void finish();

  /// Mid-run telemetry settle for continuous monitoring: pushes the deltas
  /// of this run's umon_netsim_* counters into the global registry without
  /// finalizing the run (one-shot peak histograms are deferred to finish()).
  /// Call between run_until() steps; idempotent like finish().
  void settle_telemetry();

 private:
  struct Port;
  struct Node;
  struct FlowSender;

  void host_receive(Node& host, SimPacket pkt);
  void switch_receive(Node& sw, SimPacket pkt);
  void transmit(Node& node, std::size_t port_idx);
  void enqueue_on_port(Node& node, std::size_t port_idx, SimPacket pkt);
  void pace_flow(FlowSender& fs);
  void send_one_packet(FlowSender& fs);
  void window_send(FlowSender& fs);
  void arm_rto(FlowSender& fs);
  void sample_queues();
  void pfc_check(Node& node);
  void flush_telemetry(bool include_peaks);

  NetworkConfig cfg_;
  Engine engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int host_count_ = 0;
  std::unordered_map<std::uint64_t, std::unique_ptr<FlowSender>> senders_;
  std::unordered_map<std::uint64_t, FlowStats> stats_;
  HostTxHook host_tx_hook_;
  SwitchEnqueueHook switch_enqueue_hook_;
  QueueObserverHook queue_observer_hook_;
  std::vector<std::uint64_t> queue_samples_;
  PfcStats pfc_stats_;
  Rng rng_;

  /// Totals already settled into the global registry (finish() is
  /// idempotent; counters there stay monotonic across instances).
  struct TelemetryFlushed {
    std::uint64_t events = 0, drops = 0, ce_marks = 0, episodes = 0;
    std::uint64_t pause_frames = 0, resume_frames = 0, paused_ns = 0;
    std::size_t queue_samples = 0;
    bool peaks_done = false;
  };
  TelemetryFlushed flushed_;
};

}  // namespace umon::netsim
