// Egress queue with RED/ECN marking (the DCQCN CP algorithm) and congestion
// episode tracking for ground truth.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "netsim/packet.hpp"

namespace umon::netsim {

struct EcnConfig {
  std::uint64_t kmin_bytes = 20 * 1024;    ///< KMin = 20 KiB (Section 7.2)
  std::uint64_t kmax_bytes = 200 * 1024;   ///< KMax = 200 KiB
  double pmax = 0.01;                      ///< max marking probability
  bool enabled = true;
};

/// A maximal period during which the queue stayed above the episode
/// threshold; the unit of "congestion event" ground truth in Figure 14.
struct CongestionEpisode {
  Nanos start = 0;
  Nanos end = 0;
  std::uint64_t max_bytes = 0;           ///< peak queue length
  std::vector<FlowKey> flows;            ///< flows enqueued during episode
  [[nodiscard]] Nanos duration() const { return end - start; }
};

class EcnQueue {
 public:
  EcnQueue(const EcnConfig& cfg, std::uint64_t buffer_bytes,
           std::uint64_t episode_threshold_bytes, std::uint64_t rng_seed)
      : cfg_(cfg),
        buffer_bytes_(buffer_bytes),
        episode_threshold_(episode_threshold_bytes),
        rng_(rng_seed) {}

  /// Try to enqueue; marks CE per RED and tracks episodes. Returns false on
  /// tail drop.
  bool enqueue(SimPacket& pkt, Nanos now) {
    if (bytes_ + pkt.size > buffer_bytes_) {
      ++drops_;
      episode_maybe_close(now);
      return false;
    }
    if (cfg_.enabled && pkt.ecn != Ecn::kNotEct && should_mark()) {
      pkt.ecn = Ecn::kCe;
      ++ce_marks_;
    }
    bytes_ += pkt.size;
    if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
    episode_track(pkt, now);
    queue_.push_back(pkt);
    return true;
  }

  /// Pop the head (caller checks empty()).
  SimPacket dequeue(Nanos now) {
    SimPacket pkt = queue_.front();
    queue_.pop_front();
    bytes_ -= pkt.size;
    episode_maybe_close(now);
    return pkt;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t ce_marks() const { return ce_marks_; }

  /// Close any open episode at simulation end.
  void finish(Nanos now) {
    if (open_) {
      open_episode_.end = now;
      episodes_.push_back(std::move(open_episode_));
      open_ = false;
    }
  }

  [[nodiscard]] const std::vector<CongestionEpisode>& episodes() const {
    return episodes_;
  }

 private:
  [[nodiscard]] bool should_mark() {
    if (bytes_ <= cfg_.kmin_bytes) return false;
    if (bytes_ >= cfg_.kmax_bytes) return true;
    const double frac =
        static_cast<double>(bytes_ - cfg_.kmin_bytes) /
        static_cast<double>(cfg_.kmax_bytes - cfg_.kmin_bytes);
    return rng_.uniform() < frac * cfg_.pmax;
  }

  void episode_track(const SimPacket& pkt, Nanos now) {
    if (bytes_ < episode_threshold_) return;
    if (!open_) {
      open_ = true;
      open_episode_ = CongestionEpisode{};
      open_episode_.start = now;
      seen_.clear();
    }
    if (bytes_ > open_episode_.max_bytes) open_episode_.max_bytes = bytes_;
    if (pkt.kind == PacketKind::kData &&
        seen_.insert(pkt.flow.packed()).second) {
      open_episode_.flows.push_back(pkt.flow);
    }
  }

  void episode_maybe_close(Nanos now) {
    if (open_ && bytes_ < episode_threshold_) {
      open_episode_.end = now;
      episodes_.push_back(std::move(open_episode_));
      open_ = false;
    }
  }

  EcnConfig cfg_;
  std::uint64_t buffer_bytes_;
  std::uint64_t episode_threshold_;
  Rng rng_;
  std::deque<SimPacket> queue_;
  std::uint64_t bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t ce_marks_ = 0;

  bool open_ = false;
  CongestionEpisode open_episode_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<CongestionEpisode> episodes_;
};

}  // namespace umon::netsim
