// Simulated control-plane upload channel between hosts and the collector
// tier. Report uploads in a real deployment ride a best-effort management
// network: payloads can be delayed, reordered across hosts, and dropped.
// This channel models exactly that — configurable i.i.d. loss and uniform
// delivery jitter — so benches can show graceful accuracy degradation
// instead of assuming perfect delivery.
//
// Deterministic: loss and jitter derive from the seeded Rng only, and
// deliveries with equal deliver-time break ties by send order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace umon::netsim {

struct UploadChannelConfig {
  /// Probability that a payload is silently dropped in transit.
  double loss_rate = 0.0;
  /// Fixed one-way latency added to every surviving payload.
  Nanos base_delay = 50 * kMicro;
  /// Extra delay drawn uniformly from [0, jitter) per payload; large values
  /// reorder deliveries across (and within) hosts.
  Nanos jitter = 0;
  std::uint64_t seed = 1;
};

/// What a fault-injection hook decided for one payload entering the
/// channel. The hook may also mutate the payload bytes in place (bit
/// corruption); netsim stays ignorant of who makes these decisions.
struct SendFault {
  bool drop = false;
  int duplicates = 0;     ///< extra copies to enqueue
  Nanos extra_delay = 0;  ///< added to every copy's delivery time
};

/// Carries opaque report payloads from per-host uplinks to the collector.
/// `send()` decides loss/delay at enqueue time; `advance_to()`/`flush()`
/// hand surviving payloads to the sink in delivery-time order.
class UploadChannel {
 public:
  struct Delivery {
    int host = -1;
    std::uint32_t epoch = 0;
    std::vector<std::uint8_t> payload;
    Nanos deliver_at = 0;
  };
  using Sink = std::function<void(Delivery&&)>;
  using FaultHook =
      std::function<SendFault(int host, Nanos now,
                              std::vector<std::uint8_t>& payload)>;

  UploadChannel(const UploadChannelConfig& cfg, Sink sink)
      : cfg_(cfg), sink_(std::move(sink)), rng_(cfg.seed ^ 0x0C17A57EULL) {}

  /// Rebind the delivery sink (drivers that wire channels and their
  /// consumers in either order). Call before any advance_to/flush.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Install a deterministic fault-injection hook consulted on every
  /// send(); decisions layer on top of the configured i.i.d. loss.
  void set_fault_hook(FaultHook hook) { fault_ = std::move(hook); }

  /// Submit one payload at local time `now`. Returns false if the channel
  /// dropped it (the caller learns what a real host would not; drops are
  /// also tallied in payloads_dropped()).
  [[nodiscard]] bool send(int host, std::uint32_t epoch,
                          std::vector<std::uint8_t> payload, Nanos now) {
    ++payloads_sent_;
    bytes_sent_ += payload.size();
    SendFault fault;
    if (fault_) fault = fault_(host, now, payload);
    if (fault.drop || (cfg_.loss_rate > 0 && rng_.uniform() < cfg_.loss_rate)) {
      ++payloads_dropped_;
      bytes_dropped_ += payload.size();
      return false;
    }
    for (int copy = 0; copy <= fault.duplicates; ++copy) {
      Nanos at = now + cfg_.base_delay + fault.extra_delay;
      if (cfg_.jitter > 0) {
        at += static_cast<Nanos>(
            rng_.below(static_cast<std::uint64_t>(cfg_.jitter)));
      }
      std::vector<std::uint8_t> bytes =
          copy == fault.duplicates ? std::move(payload) : payload;
      in_flight_.push(
          InFlight{Delivery{host, epoch, std::move(bytes), at}, next_tie_++});
    }
    return true;
  }

  /// Deliver everything with deliver_at <= t, in delivery order.
  void advance_to(Nanos t) {
    while (!in_flight_.empty() && in_flight_.top().d.deliver_at <= t) {
      InFlight top = std::move(const_cast<InFlight&>(in_flight_.top()));
      in_flight_.pop();
      ++payloads_delivered_;
      if (sink_) sink_(std::move(top.d));
    }
  }

  /// Deliver every pending payload (end of run).
  void flush() {
    while (!in_flight_.empty()) {
      InFlight top = std::move(const_cast<InFlight&>(in_flight_.top()));
      in_flight_.pop();
      ++payloads_delivered_;
      if (sink_) sink_(std::move(top.d));
    }
  }

  [[nodiscard]] std::uint64_t payloads_sent() const { return payloads_sent_; }
  [[nodiscard]] std::uint64_t payloads_dropped() const {
    return payloads_dropped_;
  }
  [[nodiscard]] std::uint64_t payloads_delivered() const {
    return payloads_delivered_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_dropped() const { return bytes_dropped_; }
  [[nodiscard]] std::size_t pending() const { return in_flight_.size(); }

 private:
  struct InFlight {
    Delivery d;
    std::uint64_t tie = 0;
  };
  struct Later {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.d.deliver_at != b.d.deliver_at)
        return a.d.deliver_at > b.d.deliver_at;
      return a.tie > b.tie;
    }
  };

  UploadChannelConfig cfg_;
  Sink sink_;
  FaultHook fault_;
  Rng rng_;
  std::uint64_t next_tie_ = 0;
  std::uint64_t payloads_sent_ = 0;
  std::uint64_t payloads_dropped_ = 0;
  std::uint64_t payloads_delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_dropped_ = 0;
  std::priority_queue<InFlight, std::vector<InFlight>, Later> in_flight_;
};

}  // namespace umon::netsim
