// The in-flight packet representation inside the simulator.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/types.hpp"

namespace umon::netsim {

enum class PacketKind : std::uint8_t {
  kData,  ///< data segment (RoCEv2 or TCP-like)
  kCnp,   ///< Congestion Notification Packet (DCQCN NP -> RP)
  kAck,   ///< TCP-like ACK carrying the DCTCP ECN echo
};

struct SimPacket {
  FlowKey flow;
  PacketKind kind = PacketKind::kData;
  std::uint32_t psn = 0;
  std::uint32_t size = 0;        ///< wire bytes (header + payload)
  Ecn ecn = Ecn::kEct0;
  int src_host = -1;
  int dst_host = -1;
  Nanos sent_at = 0;             ///< NIC transmit timestamp
  bool wants_ack = false;        ///< window transport: receiver must ACK
  std::uint32_t acked_bytes = 0; ///< kAck: payload bytes acknowledged
};

// SimPackets cross queues and links by value millions of times per run; the
// copy must stay trivial and the footprint deliberate (queue memory model).
static_assert(std::is_trivially_copyable_v<SimPacket>);
static_assert(std::is_standard_layout_v<SimPacket>);
static_assert(sizeof(SimPacket) <= 64, "keep one packet within a cache line");

/// RoCEv2-ish framing constants.
constexpr std::uint32_t kMtuBytes = 1000;     ///< payload per data packet
constexpr std::uint32_t kHeaderBytes = 48;    ///< Eth+IP+UDP+BTH overhead
constexpr std::uint32_t kCnpBytes = 64;
constexpr std::uint32_t kAckBytes = 64;

}  // namespace umon::netsim
