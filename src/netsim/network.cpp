#include "netsim/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "common/hash.hpp"

namespace umon::netsim {

namespace {

/// Serialization time of `bytes` at `gbps` (1 Gbps == 1 bit/ns).
Nanos serialize_ns(std::uint64_t bytes, double gbps) {
  return static_cast<Nanos>(static_cast<double>(bytes) * 8.0 / gbps);
}

PacketRecord to_record(const SimPacket& pkt, Nanos now, int port) {
  PacketRecord r;
  r.flow = pkt.flow;
  r.timestamp = now;
  r.size = pkt.size;
  r.psn = pkt.psn;
  r.ecn = pkt.ecn;
  r.port = static_cast<std::uint16_t>(port);
  return r;
}

}  // namespace

struct Network::Port {
  int peer_node = -1;
  LinkConfig link;
  EcnQueue queue;
  bool transmitting = false;
  bool tx_paused = false;      ///< peer asked us to stop (PFC)
  Nanos pause_started = 0;
  bool pfc_over_xoff = false;  ///< this queue currently holds > XOFF bytes
  Port(const LinkConfig& l, const EcnConfig& ecn, std::uint64_t buffer,
       std::uint64_t episode_threshold, std::uint64_t seed)
      : link(l), queue(ecn, buffer, episode_threshold, seed) {}
};

struct Network::Node {
  int id = -1;
  bool is_host = false;
  std::string name;
  std::vector<Port> ports;
  /// routes[dst_host] = candidate egress port indices (ECMP set).
  std::vector<std::vector<std::uint16_t>> routes;
  /// Receiver-side DCQCN NP state per flow.
  std::unordered_map<std::uint64_t, DcqcnNp> np;
  /// PFC: number of this node's queues currently above XOFF; transitions
  /// 0->1 and 1->0 broadcast PAUSE / RESUME to every neighbor.
  int pfc_congested_queues = 0;
  bool pfc_pausing_peers = false;
};

struct Network::FlowSender {
  FlowSpec spec;
  DcqcnRp rp;
  DctcpSender dctcp;
  std::uint64_t bytes_left = 0;
  std::uint32_t psn = 0;
  Nanos cycle_start = 0;
  bool done = false;
  // Window-transport bookkeeping (payload bytes).
  std::uint64_t sent_bytes = 0;
  std::uint64_t acked_bytes = 0;
  Nanos last_progress = 0;
  bool rto_armed = false;
  bool resend_scheduled = false;
  FlowSender(const FlowSpec& s, const DcqcnConfig& cfg,
             const DctcpConfig& tcfg)
      : spec(s),
        rp(cfg),
        dctcp(tcfg),
        bytes_left(s.bytes),
        cycle_start(s.start_time) {}
};

Network::Network(const NetworkConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}
Network::~Network() = default;

Nanos Network::host_clock_offset(int host) const {
  if (cfg_.host_clock_jitter == 0) return 0;
  // Deterministic per-host offset in [-jitter, +jitter].
  const std::uint64_t h = mix64(cfg_.seed ^ (0xC10Cull << 32) ^
                                static_cast<std::uint64_t>(host));
  const auto span = static_cast<std::uint64_t>(2 * cfg_.host_clock_jitter + 1);
  return static_cast<Nanos>(h % span) - cfg_.host_clock_jitter;
}

int Network::add_host(std::string name) {
  auto node = std::make_unique<Node>();
  node->id = static_cast<int>(nodes_.size());
  node->is_host = true;
  node->name = name.empty() ? "host" + std::to_string(node->id) : std::move(name);
  nodes_.push_back(std::move(node));
  ++host_count_;
  return nodes_.back()->id;
}

int Network::add_switch(std::string name) {
  auto node = std::make_unique<Node>();
  node->id = static_cast<int>(nodes_.size());
  node->is_host = false;
  node->name = name.empty() ? "sw" + std::to_string(node->id) : std::move(name);
  nodes_.push_back(std::move(node));
  return nodes_.back()->id;
}

void Network::connect(int a, int b, std::optional<LinkConfig> link) {
  const LinkConfig l = link.value_or(cfg_.link);
  // Host NICs do not ECN-mark; switches do.
  auto make_port = [&](Node& from, int to) {
    EcnConfig ecn = cfg_.ecn;
    ecn.enabled = !from.is_host && cfg_.ecn.enabled;
    const std::uint64_t buffer =
        from.is_host ? cfg_.host_buffer_bytes : cfg_.switch_buffer_bytes;
    from.ports.emplace_back(l, ecn, buffer, cfg_.episode_threshold_bytes,
                            cfg_.seed ^ (static_cast<std::uint64_t>(from.id) << 20) ^
                                static_cast<std::uint64_t>(from.ports.size()));
    from.ports.back().peer_node = to;
  };
  make_port(*nodes_[static_cast<std::size_t>(a)], b);
  make_port(*nodes_[static_cast<std::size_t>(b)], a);
}

void Network::build_routes() {
  // BFS per destination host over the node graph; the ECMP next-hop set of a
  // node is every neighbor strictly closer to the destination.
  const std::size_t n = nodes_.size();
  for (auto& node : nodes_) {
    node->routes.assign(static_cast<std::size_t>(host_count_), {});
  }
  for (int dst = 0; dst < host_count_; ++dst) {
    std::vector<int> dist(n, -1);
    std::deque<int> bfs;
    dist[static_cast<std::size_t>(dst)] = 0;
    bfs.push_back(dst);
    while (!bfs.empty()) {
      const int u = bfs.front();
      bfs.pop_front();
      for (const Port& p : nodes_[static_cast<std::size_t>(u)]->ports) {
        if (dist[static_cast<std::size_t>(p.peer_node)] < 0) {
          dist[static_cast<std::size_t>(p.peer_node)] =
              dist[static_cast<std::size_t>(u)] + 1;
          bfs.push_back(p.peer_node);
        }
      }
    }
    for (auto& node : nodes_) {
      if (node->id == dst) continue;
      const int my_dist = dist[static_cast<std::size_t>(node->id)];
      if (my_dist < 0) continue;  // unreachable
      auto& candidates = node->routes[static_cast<std::size_t>(dst)];
      for (std::uint16_t i = 0; i < node->ports.size(); ++i) {
        const int peer = node->ports[i].peer_node;
        if (dist[static_cast<std::size_t>(peer)] == my_dist - 1) {
          candidates.push_back(i);
        }
      }
    }
  }
  if (cfg_.queue_sample_interval > 0) {
    engine_.schedule(cfg_.queue_sample_interval, [this] { sample_queues(); });
  }
}

std::unique_ptr<Network> Network::fat_tree(const NetworkConfig& cfg, int k) {
  assert(k % 2 == 0);
  auto net = std::make_unique<Network>(cfg);
  const int half = k / 2;
  const int hosts = k * half * half;
  const int edges_per_pod = half;
  std::vector<int> host_ids(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) host_ids[static_cast<std::size_t>(h)] = net->add_host();

  std::vector<std::vector<int>> edge(static_cast<std::size_t>(k));
  std::vector<std::vector<int>> agg(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < half; ++i) {
      edge[static_cast<std::size_t>(p)].push_back(
          net->add_switch("edge" + std::to_string(p) + "_" + std::to_string(i)));
      agg[static_cast<std::size_t>(p)].push_back(
          net->add_switch("agg" + std::to_string(p) + "_" + std::to_string(i)));
    }
  }
  std::vector<int> core;
  for (int c = 0; c < half * half; ++c) core.push_back(net->add_switch("core" + std::to_string(c)));

  for (int p = 0; p < k; ++p) {
    for (int e = 0; e < edges_per_pod; ++e) {
      // Hosts under this edge switch.
      for (int i = 0; i < half; ++i) {
        const int host = p * half * half + e * half + i;
        net->connect(host_ids[static_cast<std::size_t>(host)],
                     edge[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)]);
      }
      // Edge to every aggregation switch in the pod.
      for (int a = 0; a < half; ++a) {
        net->connect(edge[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)],
                     agg[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)]);
      }
    }
    // Aggregation a connects to core group a.
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        net->connect(agg[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)],
                     core[static_cast<std::size_t>(a * half + c)]);
      }
    }
  }
  net->build_routes();
  return net;
}

void Network::start_flow(const FlowSpec& spec) {
  auto fs = std::make_unique<FlowSender>(spec, cfg_.dcqcn, cfg_.dctcp);
  FlowSender* raw = fs.get();
  senders_[spec.key.packed()] = std::move(fs);
  stats_[spec.key.packed()] = FlowStats{};
  if (spec.use_dctcp) {
    engine_.schedule_at(spec.start_time, [this, raw] {
      raw->last_progress = engine_.now();
      window_send(*raw);
    });
  } else {
    engine_.schedule_at(spec.start_time, [this, raw] { pace_flow(*raw); });
  }
}

void Network::window_send(FlowSender& fs) {
  if (fs.done) return;
  const Nanos now = engine_.now();
  Node& host = *nodes_[static_cast<std::size_t>(fs.spec.src_host)];
  const std::uint32_t mss = fs.dctcp.config().mss;
  while (fs.sent_bytes < fs.spec.bytes &&
         fs.sent_bytes - fs.acked_bytes + mss <= fs.dctcp.cwnd()) {
    if (host.ports[0].queue.bytes() >= cfg_.host_backlog_bytes) {
      if (!fs.resend_scheduled) {
        fs.resend_scheduled = true;
        engine_.schedule(10 * kMicro, [this, &fs] {
          fs.resend_scheduled = false;
          window_send(fs);
        });
      }
      return;
    }
    SimPacket pkt;
    pkt.flow = fs.spec.key;
    pkt.kind = PacketKind::kData;
    pkt.psn = fs.psn++;
    const auto payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(mss, fs.spec.bytes - fs.sent_bytes));
    pkt.size = payload + kHeaderBytes;
    pkt.src_host = fs.spec.src_host;
    pkt.dst_host = fs.spec.dst_host;
    pkt.sent_at = now;
    pkt.wants_ack = true;
    pkt.acked_bytes = payload;  // echoed back by the receiver's ACK
    fs.sent_bytes += payload;
    FlowStats& st = stats_[fs.spec.key.packed()];
    st.bytes_sent += payload;
    st.packets_sent += 1;
    enqueue_on_port(host, 0, pkt);
  }
  arm_rto(fs);
}

void Network::arm_rto(FlowSender& fs) {
  if (fs.rto_armed || fs.done || fs.acked_bytes >= fs.sent_bytes) return;
  fs.rto_armed = true;
  const Nanos rto = fs.dctcp.config().rto;
  engine_.schedule_at(fs.last_progress + rto, [this, &fs] {
    fs.rto_armed = false;
    if (fs.done) return;
    const Nanos now = engine_.now();
    if (fs.acked_bytes < fs.sent_bytes &&
        now - fs.last_progress >= fs.dctcp.config().rto) {
      // Go-back-N: collapse the window and resend from the last ACK.
      fs.dctcp.on_timeout();
      fs.sent_bytes = fs.acked_bytes;
      fs.last_progress = now;
      window_send(fs);
    } else {
      arm_rto(fs);
    }
  });
}

void Network::pace_flow(FlowSender& fs) {
  if (fs.done) return;
  if (fs.bytes_left == 0) {
    fs.done = true;
    stats_[fs.spec.key.packed()].finished = true;
    return;
  }
  const Nanos now = engine_.now();
  // Honor the on-off duty cycle: sleep through off periods.
  if (fs.spec.on_off.active()) {
    const Nanos cycle =
        fs.spec.on_off.on_duration + fs.spec.on_off.off_duration;
    const Nanos pos = (now - fs.cycle_start) % cycle;
    if (pos >= fs.spec.on_off.on_duration) {
      const Nanos resume = now + (cycle - pos);
      engine_.schedule_at(resume, [this, &fs] { pace_flow(fs); });
      return;
    }
  }
  send_one_packet(fs);
}

void Network::send_one_packet(FlowSender& fs) {
  const Nanos now = engine_.now();
  Node& host = *nodes_[static_cast<std::size_t>(fs.spec.src_host)];
  // NIC TX ring full (e.g., the port is PFC-paused): hold off pacing.
  if (host.ports[0].queue.bytes() >= cfg_.host_backlog_bytes) {
    engine_.schedule(10 * kMicro, [this, &fs] { pace_flow(fs); });
    return;
  }
  if (fs.spec.use_dcqcn) fs.rp.on_time(now);

  SimPacket pkt;
  pkt.flow = fs.spec.key;
  pkt.kind = PacketKind::kData;
  pkt.psn = fs.psn++;
  const std::uint32_t payload =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(kMtuBytes, fs.bytes_left));
  pkt.size = payload + kHeaderBytes;
  pkt.src_host = fs.spec.src_host;
  pkt.dst_host = fs.spec.dst_host;
  pkt.sent_at = now;
  fs.bytes_left -= payload;

  FlowStats& st = stats_[fs.spec.key.packed()];
  st.bytes_sent += payload;
  st.packets_sent += 1;

  enqueue_on_port(host, 0, pkt);

  if (fs.spec.use_dcqcn) fs.rp.on_bytes_sent(pkt.size, now);

  double rate = fs.spec.use_dcqcn ? fs.rp.rate_gbps() : cfg_.link.bandwidth_gbps;
  if (fs.spec.rate_cap_gbps > 0) rate = std::min(rate, fs.spec.rate_cap_gbps);
  rate = std::min(rate, cfg_.link.bandwidth_gbps);
  const Nanos gap = serialize_ns(pkt.size, rate);
  engine_.schedule(std::max<Nanos>(gap, 1), [this, &fs] { pace_flow(fs); });
}

void Network::enqueue_on_port(Node& node, std::size_t port_idx, SimPacket pkt) {
  Port& port = node.ports[port_idx];
  const Nanos now = engine_.now();
  // The hook fires after enqueue so the record reflects the CE decision.
  if (!port.queue.enqueue(pkt, now)) return;  // tail drop
  if (!node.is_host && pkt.kind == PacketKind::kData) {
    const PortId pid{node.id, static_cast<int>(port_idx)};
    if (switch_enqueue_hook_) {
      switch_enqueue_hook_(pid, to_record(pkt, now, static_cast<int>(port_idx)));
    }
    if (queue_observer_hook_) {
      queue_observer_hook_(pid, port.queue.bytes(),
                           to_record(pkt, now, static_cast<int>(port_idx)));
    }
  }
  if (cfg_.pfc.enabled && !port.pfc_over_xoff &&
      port.queue.bytes() >= cfg_.pfc.xoff_bytes) {
    port.pfc_over_xoff = true;
    node.pfc_congested_queues += 1;
    pfc_check(node);
  }
  if (!port.transmitting && !port.tx_paused) transmit(node, port_idx);
}

void Network::transmit(Node& node, std::size_t port_idx) {
  Port& port = node.ports[port_idx];
  if (port.queue.empty() || port.tx_paused) {
    port.transmitting = false;
    return;
  }
  port.transmitting = true;
  const Nanos now = engine_.now();
  SimPacket pkt = port.queue.dequeue(now);
  if (cfg_.pfc.enabled && port.pfc_over_xoff &&
      port.queue.bytes() <= cfg_.pfc.xon_bytes) {
    port.pfc_over_xoff = false;
    node.pfc_congested_queues -= 1;
    pfc_check(node);
  }
  const Nanos ser = serialize_ns(pkt.size, port.link.bandwidth_gbps);

  if (node.is_host && pkt.kind == PacketKind::kData && host_tx_hook_) {
    // The host's local clock (PTP residual offset) stamps the record.
    host_tx_hook_(node.id,
                  to_record(pkt, now + host_clock_offset(node.id), 0));
    FlowStats& st = stats_[pkt.flow.packed()];
    if (st.first_tx < 0) st.first_tx = now;
    st.last_tx = now;
  }

  const int peer = port.peer_node;
  engine_.schedule(ser + port.link.propagation_delay,
                   [this, peer, pkt] {
                     Node& dst = *nodes_[static_cast<std::size_t>(peer)];
                     if (dst.is_host) {
                       host_receive(dst, pkt);
                     } else {
                       switch_receive(dst, pkt);
                     }
                   });
  engine_.schedule(ser, [this, id = node.id, port_idx] {
    transmit(*nodes_[static_cast<std::size_t>(id)], port_idx);
  });
}

void Network::switch_receive(Node& sw, SimPacket pkt) {
  const int dst =
      pkt.kind == PacketKind::kData ? pkt.dst_host : pkt.src_host;
  const auto& candidates = sw.routes[static_cast<std::size_t>(dst)];
  if (candidates.empty()) return;  // no route: drop
  const std::uint64_t h = mix64(pkt.flow.packed() ^ 0x5CA1AB1Eu);
  const std::uint16_t port = candidates[h % candidates.size()];
  enqueue_on_port(sw, port, pkt);
}

void Network::host_receive(Node& host, SimPacket pkt) {
  const Nanos now = engine_.now();
  if (pkt.kind == PacketKind::kCnp) {
    auto it = senders_.find(pkt.flow.packed());
    if (it != senders_.end() && it->second->spec.use_dcqcn) {
      it->second->rp.on_cnp(now);
      stats_[pkt.flow.packed()].cnps_received += 1;
    }
    return;
  }
  if (pkt.kind == PacketKind::kAck) {
    auto it = senders_.find(pkt.flow.packed());
    if (it == senders_.end()) return;
    FlowSender& fs = *it->second;
    if (fs.done) return;
    fs.acked_bytes += pkt.acked_bytes;
    fs.last_progress = now;
    fs.dctcp.on_ack(pkt.acked_bytes, pkt.ecn == Ecn::kCe, fs.acked_bytes,
                    fs.sent_bytes);
    if (fs.acked_bytes >= fs.spec.bytes) {
      fs.done = true;
      stats_[fs.spec.key.packed()].finished = true;
      return;
    }
    window_send(fs);
    return;
  }
  // Window-transport data at the receiver: ACK with the DCTCP ECN echo.
  if (pkt.wants_ack) {
    SimPacket ack;
    ack.flow = pkt.flow;  // original flow key; routed back via src_host
    ack.kind = PacketKind::kAck;
    ack.size = kAckBytes;
    ack.ecn = pkt.ecn == Ecn::kCe ? Ecn::kCe : Ecn::kNotEct;
    ack.src_host = pkt.src_host;
    ack.dst_host = pkt.dst_host;
    ack.sent_at = now;
    ack.acked_bytes = pkt.acked_bytes;
    enqueue_on_port(host, 0, ack);
    return;
  }
  // Rate-transport data at the receiver: DCQCN NP reacts to CE marks.
  if (pkt.ecn == Ecn::kCe) {
    auto [it, inserted] = host.np.try_emplace(pkt.flow.packed(),
                                              DcqcnNp(cfg_.dcqcn.cnp_interval));
    if (it->second.on_ce_arrival(now)) {
      SimPacket cnp;
      cnp.flow = pkt.flow;  // original flow key; routed by src_host
      cnp.kind = PacketKind::kCnp;
      cnp.size = kCnpBytes;
      cnp.ecn = Ecn::kNotEct;
      cnp.src_host = pkt.src_host;
      cnp.dst_host = pkt.dst_host;
      cnp.sent_at = now;
      enqueue_on_port(host, 0, cnp);
    }
  }
}

void Network::pfc_check(Node& node) {
  const bool want_pause = node.pfc_congested_queues > 0;
  if (want_pause == node.pfc_pausing_peers) return;
  node.pfc_pausing_peers = want_pause;
  // Broadcast PAUSE/RESUME to every neighbor after one propagation delay
  // (PFC frames are tiny, highest priority, and never queued behind data).
  for (const Port& p : node.ports) {
    const int peer = p.peer_node;
    const int me = node.id;
    engine_.schedule(p.link.propagation_delay, [this, peer, me, want_pause] {
      Node& n = *nodes_[static_cast<std::size_t>(peer)];
      const Nanos now = engine_.now();
      for (std::size_t i = 0; i < n.ports.size(); ++i) {
        Port& q = n.ports[i];
        if (q.peer_node != me || q.tx_paused == want_pause) continue;
        q.tx_paused = want_pause;
        if (want_pause) {
          q.pause_started = now;
        } else {
          const Nanos paused = now - q.pause_started;
          pfc_stats_.total_paused += paused;
          pfc_stats_.longest_pause = std::max(pfc_stats_.longest_pause, paused);
          if (!q.transmitting && !q.queue.empty()) transmit(n, i);
        }
      }
      if (want_pause) {
        pfc_stats_.pause_frames += 1;
      } else {
        pfc_stats_.resume_frames += 1;
      }
    });
  }
}

void Network::sample_queues() {
  for (const auto& node : nodes_) {
    if (node->is_host) continue;
    for (const Port& p : node->ports) {
      queue_samples_.push_back(p.queue.bytes());
    }
  }
  engine_.schedule(cfg_.queue_sample_interval, [this] { sample_queues(); });
}

void Network::run_until(Nanos t) { engine_.run_until(t); }
Nanos Network::now() const { return engine_.now(); }

const FlowStats* Network::flow_stats(const FlowKey& key) const {
  auto it = stats_.find(key.packed());
  return it == stats_.end() ? nullptr : &it->second;
}

std::vector<CongestionEpisode> Network::all_episodes() const {
  std::vector<CongestionEpisode> out;
  for (const auto& node : nodes_) {
    if (node->is_host) continue;
    for (const Port& p : node->ports) {
      out.insert(out.end(), p.queue.episodes().begin(),
                 p.queue.episodes().end());
    }
  }
  return out;
}

const std::vector<CongestionEpisode>* Network::port_episodes(PortId id) const {
  const Node& node = *nodes_[static_cast<std::size_t>(id.node)];
  if (id.port < 0 || static_cast<std::size_t>(id.port) >= node.ports.size()) {
    return nullptr;
  }
  return &node.ports[static_cast<std::size_t>(id.port)].queue.episodes();
}

std::vector<PortId> Network::switch_ports() const {
  std::vector<PortId> out;
  for (const auto& node : nodes_) {
    if (node->is_host) continue;
    for (std::size_t i = 0; i < node->ports.size(); ++i) {
      out.push_back(PortId{node->id, static_cast<int>(i)});
    }
  }
  return out;
}

std::uint64_t Network::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    for (const Port& p : node->ports) total += p.queue.drops();
  }
  return total;
}

void Network::finish() {
  const Nanos now = engine_.now();
  for (auto& node : nodes_) {
    for (Port& p : node->ports) p.queue.finish(now);
  }
  flush_telemetry(/*include_peaks=*/true);
}

void Network::settle_telemetry() { flush_telemetry(/*include_peaks=*/false); }

void Network::flush_telemetry(bool include_peaks) {
  // All netsim counting happens on plain single-threaded members in the sim
  // hot path; this settles the run's totals into the process-wide registry
  // in one pass (idempotent via delta tracking, so finish() stays safe to
  // call more than once).
  struct Instruments {
    telemetry::Counter* events;
    telemetry::Counter* drops;
    telemetry::Counter* ce_marks;
    telemetry::Counter* pause_frames;
    telemetry::Counter* resume_frames;
    telemetry::Counter* paused_ns;
    telemetry::Counter* episodes;
    telemetry::Histogram* peak_queue;
    telemetry::Histogram* sampled_queue;
  };
  static const Instruments ins = [] {
    auto& reg = telemetry::MetricRegistry::global();
    Instruments i;
    i.events = reg.counter("umon_netsim_events_processed_total", {},
                           "Discrete-event calendar callbacks executed");
    i.drops = reg.counter("umon_netsim_packet_drops_total", {},
                          "Packets tail-dropped at switch egress queues");
    i.ce_marks = reg.counter("umon_netsim_ecn_ce_marks_total", {},
                             "Packets CE-marked by RED/ECN");
    i.pause_frames = reg.counter("umon_netsim_pfc_pause_frames_total", {},
                                 "PFC PAUSE messages sent");
    i.resume_frames = reg.counter("umon_netsim_pfc_resume_frames_total", {},
                                  "PFC RESUME messages sent");
    i.paused_ns = reg.counter("umon_netsim_pfc_paused_ns_total", {},
                              "Summed pause time across ports");
    i.episodes = reg.counter("umon_netsim_congestion_episodes_total", {},
                             "Ground-truth congestion episodes closed");
    i.peak_queue = reg.histogram(
        "umon_netsim_port_peak_queue_bytes",
        {1024, 4096, 16384, 65536, 262144, 1048576, 4194304}, {},
        "Peak egress queue depth per switch port over the run");
    i.sampled_queue = reg.histogram(
        "umon_netsim_queue_occupancy_bytes",
        {1024, 4096, 16384, 65536, 262144, 1048576, 4194304}, {},
        "Periodic egress queue-depth samples");
    return i;
  }();

  std::uint64_t drops = 0, marks = 0, episodes = 0;
  for (const auto& node : nodes_) {
    for (const Port& p : node->ports) {
      drops += p.queue.drops();
      marks += p.queue.ce_marks();
      episodes += p.queue.episodes().size();
      if (include_peaks && !node->is_host && !flushed_.peaks_done) {
        ins.peak_queue->observe(static_cast<double>(p.queue.peak_bytes()));
      }
    }
  }
  // Peak histograms are one-shot per run: a mid-run settle must not record
  // a not-yet-final peak, so only finish() commits them.
  if (include_peaks) flushed_.peaks_done = true;
  // Deltas vs. the last flush of *this* network instance; the registry
  // aggregates across instances (it is a process-lifetime monotonic view).
  ins.events->inc(engine_.events_processed() - flushed_.events);
  ins.drops->inc(drops - flushed_.drops);
  ins.ce_marks->inc(marks - flushed_.ce_marks);
  ins.episodes->inc(episodes - flushed_.episodes);
  ins.pause_frames->inc(pfc_stats_.pause_frames - flushed_.pause_frames);
  ins.resume_frames->inc(pfc_stats_.resume_frames - flushed_.resume_frames);
  ins.paused_ns->inc(
      static_cast<std::uint64_t>(pfc_stats_.total_paused) -
      flushed_.paused_ns);
  for (std::size_t i = flushed_.queue_samples; i < queue_samples_.size();
       ++i) {
    ins.sampled_queue->observe(static_cast<double>(queue_samples_[i]));
  }
  flushed_.events = engine_.events_processed();
  flushed_.drops = drops;
  flushed_.ce_marks = marks;
  flushed_.episodes = episodes;
  flushed_.pause_frames = pfc_stats_.pause_frames;
  flushed_.resume_frames = pfc_stats_.resume_frames;
  flushed_.paused_ns = static_cast<std::uint64_t>(pfc_stats_.total_paused);
  flushed_.queue_samples = queue_samples_.size();
}

}  // namespace umon::netsim
