// DCTCP sender state machine [Alizadeh et al., SIGCOMM'10]: window-based
// congestion control that scales the window cut by the EWMA fraction of
// CE-marked ACKs:
//   per ACK:      track (marked, total)
//   per window:   alpha = (1-g) alpha + g * F,  F = marked/total
//                 if F > 0: cwnd *= (1 - alpha/2)
//   otherwise:    slow start (cwnd += acked) below ssthresh, else
//                 congestion avoidance (cwnd += MSS*MSS/cwnd per ACK).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace umon::netsim {

struct DctcpConfig {
  std::uint32_t mss = 1000;
  double g = 1.0 / 16.0;
  std::uint64_t init_cwnd = 10 * 1000;
  std::uint64_t min_cwnd = 1000;
  /// Bounded near the 100 Gbps x 40 us BDP; an uncapped window lets a
  /// bottleneck-rate-limited flow grow a multi-MB standing queue the moment
  /// a competitor arrives, which starves late joiners for milliseconds.
  std::uint64_t max_cwnd = 512ull * 1024;
  Nanos rto = 2 * kMilli;
};

class DctcpSender {
 public:
  explicit DctcpSender(const DctcpConfig& cfg)
      : cfg_(cfg), cwnd_(cfg.init_cwnd), ssthresh_(cfg.max_cwnd) {}

  /// Bytes that may be in flight right now.
  [[nodiscard]] std::uint64_t cwnd() const { return cwnd_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

  /// Process one ACK covering `bytes`, with the DCTCP ECN echo.
  void on_ack(std::uint64_t bytes, bool ece, std::uint64_t acked_total,
              std::uint64_t sent_total) {
    total_bytes_ += bytes;
    if (ece) marked_bytes_ += bytes;

    if (in_slow_start()) {
      cwnd_ += bytes;
    } else {
      // Congestion avoidance: ~one MSS per RTT.
      cwnd_ += static_cast<std::uint64_t>(
          std::max<double>(1.0, static_cast<double>(cfg_.mss) *
                                    static_cast<double>(cfg_.mss) /
                                    static_cast<double>(cwnd_)));
    }
    cwnd_ = std::min(cwnd_, cfg_.max_cwnd);

    // One observation window per RTT, delimited in sequence space: when the
    // ACKs cover everything sent at the time the window opened.
    if (acked_total >= window_end_) {
      const double f =
          total_bytes_ == 0
              ? 0.0
              : static_cast<double>(marked_bytes_) /
                    static_cast<double>(total_bytes_);
      alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * f;
      if (marked_bytes_ > 0) {
        cwnd_ = std::max<std::uint64_t>(
            cfg_.min_cwnd,
            static_cast<std::uint64_t>(static_cast<double>(cwnd_) *
                                       (1.0 - alpha_ / 2.0)));
        ssthresh_ = cwnd_;
      }
      marked_bytes_ = 0;
      total_bytes_ = 0;
      window_end_ = sent_total;
    }
  }

  /// Timeout: collapse to one segment and re-enter slow start.
  void on_timeout() {
    ssthresh_ = std::max<std::uint64_t>(cfg_.min_cwnd, cwnd_ / 2);
    cwnd_ = cfg_.mss;
  }

  [[nodiscard]] const DctcpConfig& config() const { return cfg_; }

 private:
  DctcpConfig cfg_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
  double alpha_ = 0.0;
  std::uint64_t marked_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t window_end_ = 0;
};

}  // namespace umon::netsim
