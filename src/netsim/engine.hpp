// Discrete-event simulation engine: a calendar of timestamped callbacks.
// Deterministic: ties break by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace umon::netsim {

class Engine {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now).
  void schedule_at(Nanos at, Callback fn) {
    events_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a relative delay.
  void schedule(Nanos delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the calendar empties or the clock passes `until`.
  void run_until(Nanos until) {
    while (!events_.empty()) {
      const Event& top = events_.top();
      if (top.at > until) break;
      // Move the callback out before popping so it may schedule new events.
      Event ev = std::move(const_cast<Event&>(top));
      events_.pop();
      now_ = ev.at;
      ++processed_;
      ev.fn();
    }
    if (now_ < until) now_ = until;
  }

  /// Drain every remaining event (use in tests with finite workloads).
  void run_all() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.at;
      ++processed_;
      ev.fn();
    }
  }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  /// Calendar events executed so far (telemetry).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Nanos at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace umon::netsim
