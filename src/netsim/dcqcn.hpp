// DCQCN reaction-point (RP) rate controller [Zhu et al., SIGCOMM'15].
//
// State machine summary:
//  * On CNP: target <- current, current *= (1 - alpha/2), alpha rises toward
//    1 (alpha = (1-g)alpha + g), and the increase stages reset.
//  * Without CNPs alpha decays every alpha_timer (alpha *= 1-g).
//  * Rate increases fire from two independent clocks — an elapsed-time timer
//    and a sent-bytes counter. The first F events of each clock run fast
//    recovery (current converges to target); after F of either, additive
//    increase raises the target by rai; after F of *both*, hyper increase
//    raises it by rhai.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace umon::netsim {

struct DcqcnConfig {
  double line_rate_gbps = 100.0;
  double min_rate_gbps = 0.1;
  double g = 1.0 / 256.0;
  Nanos alpha_timer = 55 * kMicro;    ///< alpha decay interval
  Nanos increase_timer = 55 * kMicro; ///< time-based increase interval
  std::uint64_t byte_counter = 10ull * 1024 * 1024;  ///< bytes per increase
  int fast_recovery_stages = 5;       ///< F
  double rai_gbps = 0.04;             ///< additive increase: 40 Mbps
  double rhai_gbps = 0.4;             ///< hyper increase: 400 Mbps
  /// NP side: minimum spacing between CNPs of one flow.
  Nanos cnp_interval = 50 * kMicro;
};

class DcqcnRp {
 public:
  explicit DcqcnRp(const DcqcnConfig& cfg)
      : cfg_(cfg),
        current_gbps_(cfg.line_rate_gbps),
        target_gbps_(cfg.line_rate_gbps) {}

  [[nodiscard]] double rate_gbps() const { return current_gbps_; }
  [[nodiscard]] double target_gbps() const { return target_gbps_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// RP reaction to a CNP at time `now`.
  void on_cnp(Nanos now) {
    target_gbps_ = current_gbps_;
    current_gbps_ = std::max(cfg_.min_rate_gbps,
                             current_gbps_ * (1.0 - alpha_ / 2.0));
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
    timer_stage_ = 0;
    byte_stage_ = 0;
    bytes_since_increase_ = 0;
    last_cnp_ = now;
    last_timer_fire_ = now;
    last_alpha_update_ = now;
  }

  /// Account transmitted bytes (drives the byte-counter clock).
  void on_bytes_sent(std::uint64_t bytes, Nanos now) {
    bytes_since_increase_ += bytes;
    while (bytes_since_increase_ >= cfg_.byte_counter) {
      bytes_since_increase_ -= cfg_.byte_counter;
      ++byte_stage_;
      increase(now);
    }
  }

  /// Poll the time-based clocks; call periodically (e.g., when pacing the
  /// next packet). Safe to call at any frequency.
  void on_time(Nanos now) {
    while (now - last_alpha_update_ >= cfg_.alpha_timer) {
      last_alpha_update_ += cfg_.alpha_timer;
      if (last_alpha_update_ > last_cnp_ + cfg_.alpha_timer) {
        alpha_ = (1.0 - cfg_.g) * alpha_;
      }
    }
    while (now - last_timer_fire_ >= cfg_.increase_timer) {
      last_timer_fire_ += cfg_.increase_timer;
      ++timer_stage_;
      increase(now);
    }
  }

 private:
  void increase(Nanos) {
    const bool timer_fast = timer_stage_ <= cfg_.fast_recovery_stages;
    const bool byte_fast = byte_stage_ <= cfg_.fast_recovery_stages;
    if (timer_fast && byte_fast) {
      // Fast recovery: converge halfway to the target.
    } else if (!timer_fast && !byte_fast) {
      target_gbps_ += cfg_.rhai_gbps;  // hyper increase
    } else {
      target_gbps_ += cfg_.rai_gbps;   // additive increase
    }
    target_gbps_ = std::min(target_gbps_, cfg_.line_rate_gbps);
    current_gbps_ = (target_gbps_ + current_gbps_) / 2.0;
  }

  DcqcnConfig cfg_;
  double current_gbps_;
  double target_gbps_;
  double alpha_ = 1.0;
  int timer_stage_ = 0;
  int byte_stage_ = 0;
  std::uint64_t bytes_since_increase_ = 0;
  Nanos last_cnp_ = 0;
  Nanos last_timer_fire_ = 0;
  Nanos last_alpha_update_ = 0;
};

/// DCQCN notification-point (NP): decides when a CE-marked arrival triggers
/// a CNP (at most one per cnp_interval per flow).
class DcqcnNp {
 public:
  explicit DcqcnNp(Nanos cnp_interval) : interval_(cnp_interval) {}

  /// Returns true if a CNP should be generated for this CE arrival.
  bool on_ce_arrival(Nanos now) {
    if (armed_ && now - last_cnp_ < interval_) return false;
    armed_ = true;
    last_cnp_ = now;
    return true;
  }

 private:
  Nanos interval_;
  bool armed_ = false;
  Nanos last_cnp_ = 0;
};

}  // namespace umon::netsim
