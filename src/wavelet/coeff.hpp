// Wavelet coefficient types shared by the transform, the coefficient stores,
// and the reconstruction path.
#pragma once

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "common/types.hpp"

namespace umon::wavelet {

/// A detail coefficient of the (un-normalized) Haar transform used by
/// WaveSketch. `level` is 0-based: level l pairs blocks of 2^l windows, so
///   d_l[j] = sum(block 2j at level l) - sum(block 2j+1 at level l).
struct DetailCoeff {
  std::uint8_t level = 0;
  std::uint32_t index = 0;
  Count value = 0;

  friend bool operator==(const DetailCoeff&, const DetailCoeff&) = default;
};

static_assert(std::is_trivially_copyable_v<DetailCoeff>);
static_assert(std::is_standard_layout_v<DetailCoeff>);
static_assert(sizeof(DetailCoeff) == 16,
              "u8 level + u32 index + i64 value, padded to 16 in memory "
              "(the wire spends kDetailWireBytes, not sizeof)");

/// L2 contribution of dropping an un-normalized detail coefficient: the
/// normalized Haar coefficient is value / sqrt(2^(level+1)), and by the
/// paper's Appendix A the squared reconstruction error of zeroing it equals
/// the squared normalized coefficient.
inline double l2_weight(const DetailCoeff& d) {
  return std::abs(static_cast<double>(d.value)) /
         std::sqrt(static_cast<double>(std::uint64_t{2} << d.level));
}

/// Serialized size of one retained detail coefficient: 4-byte value plus
/// 2 bytes of metadata (level + index). This is the alpha > 1 factor in the
/// paper's compression-ratio analysis (alpha = 1.5 for 4-byte coefficients).
constexpr std::size_t kDetailWireBytes = 6;
/// Approximation coefficients are sent positionally: 4 bytes each.
constexpr std::size_t kApproxWireBytes = 4;

}  // namespace umon::wavelet
