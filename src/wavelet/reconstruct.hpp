// Reconstruction (Algorithm 2): rebuild a window-counter series from the
// last-level approximations and the retained detail coefficients, treating
// every discarded detail as zero.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "wavelet/coeff.hpp"

namespace umon::wavelet {

/// Rebuild `length` window counters. `approx` are the level-
/// min(levels, log2(next_pow2(length))) block sums; `details` any subset of
/// the decomposition's detail coefficients (levels beyond the effective depth
/// are ignored). Returns real-valued counters (halving introduces fractions
/// once coefficients are missing).
std::vector<double> reconstruct(std::span<const Count> approx,
                                std::span<const DetailCoeff> details,
                                std::uint32_t length, int levels);

}  // namespace umon::wavelet
