// Daubechies-4 (db2) orthonormal wavelet transform, used by the
// mother-wavelet ablation: the paper picks the Haar variant because its
// integer add/subtract form fits switch pipelines; D4 is the natural
// alternative with smoother basis functions but real-valued multiplies.
// Periodic boundary handling; power-of-two lengths.
#pragma once

#include <span>
#include <vector>

namespace umon::wavelet {

/// One analysis step: n/2 approximations then n/2 details (n = in.size(),
/// power of two, >= 4).
void d4_step(std::span<const double> in, std::span<double> approx,
             std::span<double> detail);

/// One synthesis step (exact inverse of d4_step).
void d4_inverse_step(std::span<const double> approx,
                     std::span<const double> detail, std::span<double> out);

/// Full decomposition over `levels` (capped by the signal length). The
/// returned layout is [approx..., detail_Llast..., ..., detail_L0...]
/// like the classic pyramid ordering.
std::vector<double> d4_forward(std::span<const double> signal, int levels);

/// Inverse of d4_forward for the same length/levels.
std::vector<double> d4_inverse(std::span<const double> coeffs,
                               std::size_t length, int levels);

/// Compress a signal by keeping only the `keep` largest-magnitude D4
/// coefficients (orthonormal, so plain magnitude ranking is L2-optimal),
/// then reconstruct.
std::vector<double> d4_compress(std::span<const double> signal, int levels,
                                std::size_t keep);

/// Same operation with the paper's un-normalized Haar pipeline, for
/// side-by-side ablation.
std::vector<double> haar_compress(std::span<const double> signal, int levels,
                                  std::size_t keep);

}  // namespace umon::wavelet
