// Coefficient stores: the compression stage of WaveSketch.
//
// TopKStore is the ideal (CPU) version: a weighted min-heap keeping the K
// detail coefficients with the largest L2 contribution (Appendix A proves
// this minimizes reconstruction error).
//
// ThresholdStore is the hardware (PISA) approximation from Section 4.3:
// coefficients are split by level parity into two queues; within one parity
// the 1/sqrt(2^l) weights differ by exact powers of two, so weighting becomes
// a right shift, and top-k is approximated by a calibrated threshold.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "wavelet/coeff.hpp"

namespace umon::wavelet {

/// Ideal weighted top-K store (min-heap on the L2 weight).
class TopKStore {
 public:
  explicit TopKStore(std::size_t capacity) : capacity_(capacity) {
    // All heap storage up front: offer() may push until the heap is full,
    // and reserving here keeps that growth off the per-coefficient path.
    heap_.reserve(capacity_);
  }

  /// Offer one finished detail coefficient. Zero-valued coefficients are
  /// dropped losslessly (reconstruction already treats them as zero).
  /// Returns true when a nonzero coefficient was pruned by the offer — the
  /// incoming one or an evicted incumbent — so callers can count compression
  /// loss.
  bool offer(const DetailCoeff& d);

  /// Smallest retained weight, or 0 if the heap is not yet full. Used by the
  /// hardware-threshold calibrator.
  [[nodiscard]] double min_weight() const;

  [[nodiscard]] const std::vector<DetailCoeff>& retained() const {
    return heap_;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  void clear() { heap_.clear(); }

  /// Sorted copy (by level then index) for serialization and tests.
  [[nodiscard]] std::vector<DetailCoeff> sorted() const;

 private:
  struct WeightLess {
    bool operator()(const DetailCoeff& a, const DetailCoeff& b) const {
      const double wa = l2_weight(a);
      const double wb = l2_weight(b);
      if (wa != wb) return wa > wb;  // min-heap: largest weight sinks
      if (a.level != b.level) return a.level < b.level;
      return a.index < b.index;
    }
  };
  std::size_t capacity_;
  std::vector<DetailCoeff> heap_;  // std::*_heap with WeightLess
};

/// Hardware approximation: parity-split shift weighting + threshold filter.
class ThresholdStore {
 public:
  /// `threshold` is compared against |value| >> (level/2) (even levels) or
  /// |value| >> ((level-1)/2) (odd levels); see Figure 7. Capacity bounds
  /// each parity queue (register array size in hardware); once a queue is
  /// full further coefficients are dropped, as a pipeline cannot evict.
  ThresholdStore(std::size_t capacity_per_parity, Count threshold_even,
                 Count threshold_odd)
      : capacity_(capacity_per_parity),
        threshold_{threshold_even, threshold_odd} {}

  /// Returns true when the nonzero coefficient was filtered or dropped
  /// (below threshold, or its parity queue was full).
  bool offer(const DetailCoeff& d);

  [[nodiscard]] std::vector<DetailCoeff> sorted() const;
  [[nodiscard]] std::size_t size() const {
    return queue_[0].size() + queue_[1].size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_ * 2; }

  void clear() {
    queue_[0].clear();
    queue_[1].clear();
  }

  /// Shifted magnitude used for the threshold comparison.
  static Count shifted_magnitude(const DetailCoeff& d);

 private:
  std::size_t capacity_;
  Count threshold_[2];                   // [even parity, odd parity]
  std::vector<DetailCoeff> queue_[2];    // [even, odd]
};

}  // namespace umon::wavelet
