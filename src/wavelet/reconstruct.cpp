#include "wavelet/reconstruct.hpp"

#include <cassert>

#include "wavelet/haar.hpp"

namespace umon::wavelet {

std::vector<double> reconstruct(std::span<const Count> approx,
                                std::span<const DetailCoeff> details,
                                std::uint32_t length, int levels) {
  if (length == 0) return {};
  const std::uint32_t padded = next_pow2(length);
  const int eff = effective_levels(padded, levels);
  assert(approx.size() >= static_cast<std::size_t>(padded >> eff));

  // Bucket retained details per level for O(1) lookup during upsampling.
  std::vector<std::vector<double>> det_by_level(
      static_cast<std::size_t>(eff));
  for (int l = 0; l < eff; ++l) {
    det_by_level[static_cast<std::size_t>(l)].assign(padded >> (l + 1), 0.0);
  }
  for (const auto& d : details) {
    if (d.level >= eff) continue;  // padding artifact / beyond depth
    auto& row = det_by_level[d.level];
    if (d.index < row.size()) row[d.index] = static_cast<double>(d.value);
  }

  std::vector<double> current(approx.begin(),
                              approx.begin() + (padded >> eff));
  for (int l = eff - 1; l >= 0; --l) {
    const auto& det = det_by_level[static_cast<std::size_t>(l)];
    std::vector<double> next(current.size() * 2);
    for (std::size_t j = 0; j < current.size(); ++j) {
      next[2 * j] = (current[j] + det[j]) / 2.0;
      next[2 * j + 1] = (current[j] - det[j]) / 2.0;
    }
    current = std::move(next);
  }
  current.resize(length);
  return current;
}

}  // namespace umon::wavelet
