#include "wavelet/haar.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace umon::wavelet {

std::uint32_t next_pow2(std::uint32_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

int effective_levels(std::uint32_t padded_length, int levels) {
  const int depth = std::countr_zero(padded_length);  // log2 of a power of 2
  return levels < depth ? levels : depth;
}

Decomposition haar_forward(std::span<const Count> signal, int levels) {
  Decomposition out;
  out.padded_length = next_pow2(static_cast<std::uint32_t>(signal.size()));
  out.levels = effective_levels(out.padded_length, levels);

  std::vector<Count> current(signal.begin(), signal.end());
  current.resize(out.padded_length, 0);

  out.details.resize(static_cast<std::size_t>(out.levels));
  for (int l = 0; l < out.levels; ++l) {
    const std::size_t half = current.size() / 2;
    std::vector<Count> next(half);
    auto& det = out.details[static_cast<std::size_t>(l)];
    det.resize(half);
    for (std::size_t j = 0; j < half; ++j) {
      next[j] = current[2 * j] + current[2 * j + 1];
      det[j] = current[2 * j] - current[2 * j + 1];
    }
    current = std::move(next);
  }
  out.approx = std::move(current);
  return out;
}

std::vector<Count> haar_inverse(const Decomposition& d) {
  std::vector<Count> current = d.approx;
  for (int l = d.levels - 1; l >= 0; --l) {
    const auto& det = d.details[static_cast<std::size_t>(l)];
    assert(det.size() == current.size());
    std::vector<Count> next(current.size() * 2);
    for (std::size_t j = 0; j < current.size(); ++j) {
      // Integer-exact because a and d always share parity in a lossless
      // decomposition (a = x0 + x1, d = x0 - x1).
      next[2 * j] = (current[j] + det[j]) / 2;
      next[2 * j + 1] = (current[j] - det[j]) / 2;
    }
    current = std::move(next);
  }
  return current;
}

void haar_step_orthonormal(std::span<const double> in,
                           std::span<double> approx_out,
                           std::span<double> detail_out) {
  assert(in.size() % 2 == 0);
  assert(approx_out.size() == in.size() / 2);
  assert(detail_out.size() == in.size() / 2);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (std::size_t j = 0; j < approx_out.size(); ++j) {
    approx_out[j] = (in[2 * j] + in[2 * j + 1]) * inv_sqrt2;
    detail_out[j] = (in[2 * j] - in[2 * j + 1]) * inv_sqrt2;
  }
}

}  // namespace umon::wavelet
