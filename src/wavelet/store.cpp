#include "wavelet/store.hpp"

#include "obs/prof.hpp"

namespace umon::wavelet {

bool TopKStore::offer(const DetailCoeff& d) {
  UMON_PROF_SCOPE(kTopkOffer);
  if (d.value == 0) return false;  // lossless drop, not a prune
  if (capacity_ == 0) return true;
  if (heap_.size() < capacity_) {
    // umon-sca: allow(SA003) bounded by capacity_ and the constructor
    // reserves exactly that, so this push never reallocates.
    heap_.push_back(d);
    std::push_heap(heap_.begin(), heap_.end(), WeightLess{});
    return false;
  }
  // Replace the minimum only if strictly heavier (stable under ties).
  if (l2_weight(d) > l2_weight(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), WeightLess{});
    heap_.back() = d;
    std::push_heap(heap_.begin(), heap_.end(), WeightLess{});
  }
  return true;  // either the incumbent minimum or the offer was discarded
}

double TopKStore::min_weight() const {
  if (heap_.size() < capacity_ || heap_.empty()) return 0.0;
  return l2_weight(heap_.front());
}

std::vector<DetailCoeff> TopKStore::sorted() const {
  std::vector<DetailCoeff> out = heap_;
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.level != b.level) return a.level < b.level;
    return a.index < b.index;
  });
  return out;
}

Count ThresholdStore::shifted_magnitude(const DetailCoeff& d) {
  const Count mag = d.value < 0 ? -d.value : d.value;
  const int shift = d.level / 2;  // same for odd levels: (level-1)/2 == level/2
  return mag >> shift;
}

bool ThresholdStore::offer(const DetailCoeff& d) {
  if (d.value == 0) return false;  // lossless drop, not a prune
  if (capacity_ == 0) return true;
  const int parity = d.level & 1;
  auto& q = queue_[parity];
  if (q.size() >= capacity_) return true;  // register array full: drop
  if (shifted_magnitude(d) >= threshold_[parity]) {
    q.push_back(d);
    return false;
  }
  return true;  // below threshold: filtered out
}

std::vector<DetailCoeff> ThresholdStore::sorted() const {
  std::vector<DetailCoeff> out = queue_[0];
  out.insert(out.end(), queue_[1].begin(), queue_[1].end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.level != b.level) return a.level < b.level;
    return a.index < b.index;
  });
  return out;
}

}  // namespace umon::wavelet
