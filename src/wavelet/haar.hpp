// Offline reference implementations of the Haar transform.
//
// Two variants:
//  * the textbook orthonormal Haar DWT (used in tests to validate energy
//    arguments), and
//  * the paper's un-normalized integer variant (sum / difference without the
//    1/sqrt(2) factor), which is what WaveSketch computes online.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "wavelet/coeff.hpp"

namespace umon::wavelet {

/// Result of a full un-normalized decomposition over `levels` levels.
struct Decomposition {
  /// Last-level approximation coefficients: block sums over 2^levels windows.
  std::vector<Count> approx;
  /// details[l][j] = d_l[j], for l in [0, levels).
  std::vector<std::vector<Count>> details;
  int levels = 0;
  std::uint32_t padded_length = 0;  ///< input length padded to a power of two
};

/// Round up to the next power of two (minimum 1).
std::uint32_t next_pow2(std::uint32_t n);

/// Effective number of decomposition levels for a padded length: the paper's
/// L capped by log2(padded length).
int effective_levels(std::uint32_t padded_length, int levels);

/// Un-normalized forward Haar transform (pads with zeros to a power of two).
Decomposition haar_forward(std::span<const Count> signal, int levels);

/// Exact inverse of haar_forward; returns `padded_length` samples.
std::vector<Count> haar_inverse(const Decomposition& d);

/// Orthonormal Haar DWT over one level: out[i] = (x[2i]+x[2i+1])/sqrt(2),
/// detail[i] = (x[2i]-x[2i+1])/sqrt(2). Used by tests for Parseval checks.
void haar_step_orthonormal(std::span<const double> in,
                           std::span<double> approx_out,
                           std::span<double> detail_out);

}  // namespace umon::wavelet
