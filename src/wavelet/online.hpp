// Online (streaming) un-normalized Haar transform — Algorithm 1 of the paper.
//
// Window counters arrive in increasing offset order; each finished counter is
// folded into the last-level approximation array and into one pending detail
// coefficient per level. When a level's detail position advances, the
// finished coefficient is emitted to the coefficient store (the compression
// stage). Memory is O(n/2^L + L) plus whatever the store keeps.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/prof.hpp"
#include "wavelet/coeff.hpp"
#include "wavelet/haar.hpp"

namespace umon::wavelet {

/// Streaming transformer. `Sink` is any callable taking a DetailCoeff
/// (typically TopKStore::offer or ThresholdStore::offer via a lambda).
class OnlineHaar {
 public:
  explicit OnlineHaar(int levels)
      : levels_(levels),
        pending_(static_cast<std::size_t>(levels), Pending{}) {}

  /// Algorithm 1, Transformation(i, c): fold the finished counter for window
  /// offset `i` (0-based, strictly increasing across calls). Offsets may
  /// skip values; missing windows are implicit zeros.
  template <typename Sink>
  void transform(std::uint32_t i, Count c, Sink&& emit) {
    UMON_PROF_SCOPE(kHaarTransform);
    const std::size_t pos_a = i >> levels_;
    // umon-sca: allow(SA003) grows once per 2^levels windows — amortized
    // O(1/2^levels) per update, and doubling growth keeps the total number
    // of reallocations logarithmic in the observation length.
    if (pos_a >= approx_.size()) approx_.resize(pos_a + 1, 0);
    approx_[pos_a] += c;
    for (int l = 0; l < levels_; ++l) {
      auto& pend = pending_[static_cast<std::size_t>(l)];
      const std::uint32_t pos_d = i >> (l + 1);
      if (pos_d > pend.index && pend.touched) {
        if (pend.value != 0) {
          emit(DetailCoeff{static_cast<std::uint8_t>(l), pend.index,
                           pend.value});
        }
        pend = Pending{};
      }
      pend.index = pos_d;
      pend.touched = true;
      const bool sign = ((i >> l) & 1) != 0;
      pend.value += sign ? -c : c;
    }
    if (i >= length_) length_ = i + 1;
  }

  /// Flush all pending detail coefficients and return the finished
  /// decomposition geometry (Algorithm 2's preamble: pad to a power of two).
  /// Pending details at levels >= log2(padded length) are zero-padding
  /// artifacts that reconstruction derives from the approximations, so they
  /// are not emitted (they would waste top-K slots on redundant values).
  template <typename Sink>
  Decomposition finalize(Sink&& emit) {
    Decomposition geo;
    geo.padded_length = next_pow2(length_);
    geo.levels = effective_levels(geo.padded_length, levels_);
    for (int l = 0; l < geo.levels; ++l) {
      auto& pend = pending_[static_cast<std::size_t>(l)];
      if (pend.touched && pend.value != 0) {
        emit(DetailCoeff{static_cast<std::uint8_t>(l), pend.index, pend.value});
      }
      pend = Pending{};
    }
    // With padded_length < 2^L the single stored entry already equals the
    // level-`geo.levels` approximation (all deeper blocks are zero padding).
    geo.approx = approx_;
    const std::size_t approx_len =
        std::max<std::size_t>(1, geo.padded_length >> geo.levels);
    geo.approx.resize(approx_len, 0);
    return geo;
  }

  [[nodiscard]] const std::vector<Count>& approx() const { return approx_; }
  [[nodiscard]] std::uint32_t length() const { return length_; }
  [[nodiscard]] int levels() const { return levels_; }

  /// Number of resident counters (approximation array + L pending details);
  /// the memory bound from Section 4.2's compression-ratio analysis.
  [[nodiscard]] std::size_t resident_coefficients() const {
    return approx_.size() + pending_.size();
  }

  void reset() {
    approx_.clear();
    for (auto& p : pending_) p = Pending{};
    length_ = 0;
  }

 private:
  struct Pending {
    std::uint32_t index = 0;
    Count value = 0;
    bool touched = false;
  };

  int levels_;
  std::vector<Count> approx_;
  std::vector<Pending> pending_;
  std::uint32_t length_ = 0;  ///< highest offset seen + 1
};

}  // namespace umon::wavelet
