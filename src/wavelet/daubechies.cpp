#include "wavelet/daubechies.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/types.hpp"
#include "wavelet/haar.hpp"
#include "wavelet/online.hpp"
#include "wavelet/reconstruct.hpp"
#include "wavelet/store.hpp"

namespace umon::wavelet {
namespace {

// D4 scaling filter (sum = sqrt(2), orthonormal).
const double kSqrt3 = std::sqrt(3.0);
const double kDen = 4.0 * std::sqrt(2.0);
const double kH[4] = {(1 + kSqrt3) / kDen, (3 + kSqrt3) / kDen,
                      (3 - kSqrt3) / kDen, (1 - kSqrt3) / kDen};
// Wavelet filter g[k] = (-1)^k h[3-k].
const double kG[4] = {kH[3], -kH[2], kH[1], -kH[0]};

}  // namespace

void d4_step(std::span<const double> in, std::span<double> approx,
             std::span<double> detail) {
  const std::size_t n = in.size();
  assert(n >= 4 && (n & (n - 1)) == 0);
  assert(approx.size() == n / 2 && detail.size() == n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    double a = 0, d = 0;
    for (std::size_t k = 0; k < 4; ++k) {
      const double x = in[(2 * i + k) % n];  // periodic boundary
      a += kH[k] * x;
      d += kG[k] * x;
    }
    approx[i] = a;
    detail[i] = d;
  }
}

void d4_inverse_step(std::span<const double> approx,
                     std::span<const double> detail, std::span<double> out) {
  const std::size_t half = approx.size();
  const std::size_t n = half * 2;
  assert(detail.size() == half && out.size() == n);
  std::fill(out.begin(), out.end(), 0.0);
  // Transpose of the analysis operator (orthonormal => inverse).
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t j = (2 * i + k) % n;
      out[j] += kH[k] * approx[i] + kG[k] * detail[i];
    }
  }
}

std::vector<double> d4_forward(std::span<const double> signal, int levels) {
  std::size_t n = next_pow2(static_cast<std::uint32_t>(signal.size()));
  n = std::max<std::size_t>(n, 4);
  std::vector<double> buf(signal.begin(), signal.end());
  buf.resize(n, 0.0);
  std::vector<double> out(n);
  std::size_t cur = n;
  int done = 0;
  while (done < levels && cur >= 8) {  // keep >= 4 approximations
    std::vector<double> a(cur / 2), d(cur / 2);
    d4_step(std::span(buf.data(), cur), a, d);
    std::copy(d.begin(), d.end(), out.begin() + static_cast<long>(cur / 2));
    std::copy(a.begin(), a.end(), buf.begin());
    cur /= 2;
    ++done;
  }
  std::copy(buf.begin(), buf.begin() + static_cast<long>(cur), out.begin());
  return out;
}

std::vector<double> d4_inverse(std::span<const double> coeffs,
                               std::size_t length, int levels) {
  std::size_t n = coeffs.size();
  std::vector<double> buf(coeffs.begin(), coeffs.end());
  // Find the deepest level actually used (mirror of d4_forward).
  std::size_t cur = n;
  int done = 0;
  while (done < levels && cur >= 8) {
    cur /= 2;
    ++done;
  }
  while (cur < n) {
    std::vector<double> merged(cur * 2);
    d4_inverse_step(std::span(buf.data(), cur),
                    std::span(buf.data() + cur, cur), merged);
    std::copy(merged.begin(), merged.end(), buf.begin());
    cur *= 2;
  }
  buf.resize(length);
  return buf;
}

std::vector<double> d4_compress(std::span<const double> signal, int levels,
                                std::size_t keep) {
  std::vector<double> coeffs = d4_forward(signal, levels);
  if (keep < coeffs.size()) {
    std::vector<double> mags;
    mags.reserve(coeffs.size());
    for (double c : coeffs) mags.push_back(std::abs(c));
    std::nth_element(mags.begin(), mags.end() - static_cast<long>(keep),
                     mags.end());
    const double threshold = mags[mags.size() - keep];
    std::size_t kept = 0;
    for (double& c : coeffs) {
      if (std::abs(c) >= threshold && kept < keep) {
        ++kept;
      } else {
        c = 0.0;
      }
    }
  }
  return d4_inverse(coeffs, signal.size(), levels);
}

std::vector<double> haar_compress(std::span<const double> signal, int levels,
                                  std::size_t keep) {
  // Run the paper's streaming pipeline: online transform + weighted top-K
  // (the approximations are always kept, matching WaveSketch; `keep` counts
  // detail coefficients).
  OnlineHaar haar(levels);
  TopKStore store(keep);
  auto sink = [&store](const DetailCoeff& d) { store.offer(d); };
  for (std::uint32_t i = 0; i < signal.size(); ++i) {
    haar.transform(i, static_cast<Count>(std::llround(signal[i])), sink);
  }
  Decomposition geo = haar.finalize(sink);
  return reconstruct(geo.approx, store.sorted(),
                     static_cast<std::uint32_t>(signal.size()), levels);
}

}  // namespace umon::wavelet
