// One WaveSketch bucket: windowed counting (Algorithm 1 "Counting") feeding
// the online Haar transform and a coefficient store.
#pragma once

#include <optional>
#include <variant>

#include "common/types.hpp"
#include "sketch/instruments.hpp"
#include "sketch/params.hpp"
#include "sketch/report.hpp"
#include "wavelet/online.hpp"
#include "wavelet/store.hpp"

namespace umon::sketch {

class WaveBucket {
 public:
  WaveBucket(const WaveSketchParams& p)
      : levels_(p.levels),
        max_windows_(p.max_windows),
        haar_(p.levels),
        store_(make_store(p)) {}

  /// Add `v` (bytes or packets) at absolute window `w`. Returns a finished
  /// report when the bucket rolled over into a new measurement period
  /// (window offset exceeded max_windows).
  std::optional<BucketReport> add(WindowId w, Count v) {
    std::optional<BucketReport> rolled;
    if (started_ && w - w0_ >= static_cast<WindowId>(max_windows_)) {
      rolled = flush();
    }
    if (!started_) {
      started_ = true;
      w0_ = w;
      offset_ = 0;
      count_ = v;
      return rolled;
    }
    // Late (out-of-order) packets fold into the current window: the
    // transform requires monotone offsets, and at 8.192 us granularity a
    // reordered packet is at most one window late.
    if (w <= w0_ + static_cast<WindowId>(offset_)) {
      count_ += v;
      return rolled;
    }
    const auto offset = static_cast<std::uint32_t>(w - w0_);
    if (offset == offset_) {
      count_ += v;
    } else {
      transform_current();
      offset_ = offset;
      count_ = v;
    }
    return rolled;
  }

  /// Finish the period: flush the in-progress counter and pending details,
  /// emit the report, and reset for the next period.
  BucketReport flush() {
    BucketReport r = snapshot();
    reset();
    return r;
  }

  /// Report for the data collected so far without resetting (used for
  /// mid-period queries; the copy models the analyzer-side reconstruction).
  [[nodiscard]] BucketReport snapshot() const {
    WaveBucket copy = *this;
    if (copy.started_) copy.transform_current();
    BucketReport r;
    r.w0 = copy.w0_;
    auto emit = [&copy](const wavelet::DetailCoeff& d) { copy.emit(d); };
    wavelet::Decomposition geo = copy.haar_.finalize(emit);
    r.length = copy.haar_.length();
    r.levels = geo.levels;
    r.approx = std::move(geo.approx);
    r.details = std::visit([](const auto& s) { return s.sorted(); },
                           copy.store_);
    if (!copy.started_) r.length = 0;
    return r;
  }

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] WindowId w0() const { return w0_; }

  /// Resident memory charged to this bucket (Section 4.2 analysis): the
  /// window state, L pending details, the approximation array, and the
  /// coefficient store capacity. Counters are 32-bit (a 100 Gbps link moves
  /// at most ~102 KB per 8.192 us window) and stored details carry 2 bytes
  /// of level/index metadata, matching the wire format.
  [[nodiscard]] std::size_t memory_bytes() const {
    const std::size_t store_cap =
        std::visit([](const auto& s) { return s.capacity(); }, store_);
    return 12 +                                      // w0, i, c
           static_cast<std::size_t>(levels_) * 4 +   // pending details
           haar_.approx().size() * 4 + store_cap * 6;
  }

  void reset() {
    started_ = false;
    w0_ = 0;
    offset_ = 0;
    count_ = 0;
    haar_.reset();
    std::visit([](auto& s) { s.clear(); }, store_);
  }

 private:
  using Store = std::variant<wavelet::TopKStore, wavelet::ThresholdStore>;

  static Store make_store(const WaveSketchParams& p) {
    if (p.store == StoreKind::kTopK) return wavelet::TopKStore(p.k);
    // Split the budget between the two parity queues.
    return wavelet::ThresholdStore((p.k + 1) / 2, p.hw_threshold_even,
                                   p.hw_threshold_odd);
  }

  void emit(const wavelet::DetailCoeff& d) {
    const bool pruned = std::visit([&d](auto& s) { return s.offer(d); },
                                   store_);
    if (pruned) sketch_instruments().coeff_prunes->inc();
  }

  void transform_current() {
    haar_.transform(offset_, count_, [this](const wavelet::DetailCoeff& d) {
      emit(d);
    });
    count_ = 0;
  }

  int levels_;
  std::uint32_t max_windows_;
  bool started_ = false;
  WindowId w0_ = 0;
  std::uint32_t offset_ = 0;
  Count count_ = 0;
  wavelet::OnlineHaar haar_;
  Store store_;
};

}  // namespace umon::sketch
