#include "sketch/wavesketch.hpp"

#include "obs/prof.hpp"
#include "sketch/instruments.hpp"

namespace umon::sketch {

WaveSketchBasic::WaveSketchBasic(const WaveSketchParams& params)
    : params_(params) {
  hashes_.reserve(static_cast<std::size_t>(params_.depth));
  for (int r = 0; r < params_.depth; ++r) {
    hashes_.emplace_back(params_.seed + static_cast<std::uint64_t>(r) * 0x1234567);
  }
  grid_.assign(static_cast<std::size_t>(params_.depth) * params_.width,
               WaveBucket(params_));
  // One report per row can roll out of a single update; keep enough
  // capacity that the steady state never reallocates on the packet path.
  rolled_.reserve(static_cast<std::size_t>(params_.depth) * 4);
}

void WaveSketchBasic::update_window(const FlowKey& flow, WindowId w, Count v) {
  UMON_PROF_SCOPE(kCmUpdate);
  sketch_instruments().updates->inc();
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t c = column(r, flow);
    if (auto rolled = bucket_mut(r, c).add(w, v)) {
      TaggedReport t;
      t.row = r;
      t.col = c;
      t.report = std::move(*rolled);
      // umon-sca: allow(SA003) fires only on a period rollover (once per
      // bucket period, not per packet); capacity is reserved at
      // construction and reused after each drain, so the steady state
      // performs no allocation here.
      rolled_.push_back(std::move(t));
    }
  }
}

WaveSketchBasic::QueryResult WaveSketchBasic::query(const FlowKey& flow) const {
  QueryResult best;
  double best_total = -1;
  for (int r = 0; r < params_.depth; ++r) {
    const WaveBucket& b = bucket(r, column(r, flow));
    if (!b.started()) {
      // An untouched bucket proves the flow sent nothing this period.
      return QueryResult{};
    }
    BucketReport rep = b.snapshot();
    const double total = rep.total();
    if (best_total < 0 || total < best_total) {
      best_total = total;
      best.w0 = rep.w0;
      best.series = rep.reconstruct();
    }
  }
  return best;
}

std::vector<TaggedReport> WaveSketchBasic::flush() {
  std::vector<TaggedReport> out = std::move(rolled_);
  rolled_.clear();
  for (int r = 0; r < params_.depth; ++r) {
    for (std::uint32_t c = 0; c < params_.width; ++c) {
      WaveBucket& b = bucket_mut(r, c);
      if (!b.started()) continue;
      TaggedReport t;
      t.row = r;
      t.col = c;
      t.report = b.flush();
      out.push_back(std::move(t));
    }
  }
  return out;
}

std::size_t WaveSketchBasic::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& b : grid_) total += b.memory_bytes();
  return total;
}

}  // namespace umon::sketch
