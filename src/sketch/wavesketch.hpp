// WaveSketch basic version (Section 4.2): a Count-Min grid of WaveBuckets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "sketch/bucket.hpp"
#include "sketch/params.hpp"
#include "sketch/report.hpp"

namespace umon::sketch {

/// A bucket report tagged with its grid position, as uploaded to the
/// analyzer at the end of each measurement period.
// umon-lint: wire-struct
struct TaggedReport {
  int row = 0;
  std::uint32_t col = 0;
  /// Position in the host's upload stream (v2 wire field). The uplink stamps
  /// consecutive values so the collector can count gaps left by lost reports.
  std::uint32_t seq = 0;
  /// Set for heavy-part reports: the flow the bucket is dedicated to. Light
  /// (grid-addressed) reports leave it empty. v2 wire field.
  std::optional<FlowKey> flow;
  BucketReport report;
};

// Encoded field-wise by sketch::encode_report; batches of these move through
// the collector's shard queues, so moves must never throw mid-pipeline.
static_assert(std::is_nothrow_move_constructible_v<TaggedReport>);
static_assert(std::is_nothrow_move_assignable_v<TaggedReport>);

class WaveSketchBasic {
 public:
  explicit WaveSketchBasic(const WaveSketchParams& params);

  /// Update with a packet: `v` is its byte (or unit) contribution at
  /// timestamp `ts`.
  void update(const FlowKey& flow, Nanos ts, Count v) {
    update_window(flow, window_of(ts, params_.window_shift), v);
  }
  void update_window(const FlowKey& flow, WindowId w, Count v);

  /// Reconstruct the flow's window-counter series over the current period.
  /// Implements the Count-Min-style query: reconstruct the d candidate
  /// buckets and return the one with the smallest total count.
  /// The returned QueryResult pins the series to its absolute first window.
  struct QueryResult {
    WindowId w0 = 0;
    std::vector<double> series;
    [[nodiscard]] bool empty() const { return series.empty(); }
    /// Value at an absolute window id (0 outside the covered range).
    [[nodiscard]] double at(WindowId w) const {
      if (w < w0 || w >= w0 + static_cast<WindowId>(series.size())) return 0;
      return series[static_cast<std::size_t>(w - w0)];
    }
  };
  [[nodiscard]] QueryResult query(const FlowKey& flow) const;

  /// End the measurement period: upload every active bucket and reset.
  /// Discarding the result destroys the period's coefficients.
  [[nodiscard]] std::vector<TaggedReport> flush();

  /// Reports produced by mid-period rollovers (kept until flush()).
  [[nodiscard]] const std::vector<TaggedReport>& rolled_reports() const {
    return rolled_;
  }

  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] const WaveSketchParams& params() const { return params_; }

  /// Grid coordinates a flow hashes to (exposed for the full version's
  /// light-part subtraction and for tests).
  [[nodiscard]] std::uint32_t column(int row, const FlowKey& flow) const {
    return hashes_[static_cast<std::size_t>(row)].bucket(flow.packed(),
                                                         params_.width);
  }

  [[nodiscard]] const WaveBucket& bucket(int row, std::uint32_t col) const {
    return grid_[static_cast<std::size_t>(row) * params_.width + col];
  }

 private:
  WaveBucket& bucket_mut(int row, std::uint32_t col) {
    return grid_[static_cast<std::size_t>(row) * params_.width + col];
  }

  WaveSketchParams params_;
  std::vector<SeededHash> hashes_;
  std::vector<WaveBucket> grid_;
  std::vector<TaggedReport> rolled_;
};

}  // namespace umon::sketch
