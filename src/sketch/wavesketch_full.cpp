#include "sketch/wavesketch_full.hpp"

#include <algorithm>

#include "sketch/instruments.hpp"

namespace umon::sketch {

WaveSketchFull::WaveSketchFull(const WaveSketchParams& params)
    : params_(params),
      heavy_hash_(params.seed ^ 0xBEEFCAFEULL),
      heavy_(params.heavy_rows, HeavySlot(params)),
      light_(params) {}

void WaveSketchFull::update_window(const FlowKey& flow, WindowId w, Count v) {
  // The light part counts everything so heavy eviction is free (Section 4.2).
  light_.update_window(flow, w, v);

  HeavySlot& slot = heavy_[heavy_index(flow)];
  if (!slot.occupied) {
    slot.occupied = true;
    slot.key = flow;
    slot.vote = 1;
    slot.bucket.reset();
    slot.bucket.add(w, v);
    return;
  }
  if (slot.key == flow) {
    slot.vote += 1;
    if (auto rolled = slot.bucket.add(w, v)) {
      // A flow active past max_windows rolls its bucket into a new period;
      // keep the finished report so flush_reports() can upload it.
      sketch_instruments().heavy_rollovers->inc();
      TaggedReport t;
      t.flow = flow;
      t.report = std::move(*rolled);
      heavy_rolled_.push_back(std::move(t));
    }
    return;
  }
  // Majority vote: a competing flow decays the incumbent; on reaching zero
  // the challenger takes the slot and the incumbent's coefficients are
  // simply dropped (its complete series lives in the light part).
  slot.vote -= 1;
  if (slot.vote < 0) {
    sketch_instruments().heavy_evictions->inc();
    slot.key = flow;
    slot.vote = 1;
    slot.bucket.reset();
    slot.bucket.add(w, v);
  }
}

bool WaveSketchFull::is_heavy(const FlowKey& flow) const {
  const HeavySlot& slot = heavy_[heavy_index(flow)];
  return slot.occupied && slot.key == flow;
}

std::vector<FlowKey> WaveSketchFull::heavy_flows() const {
  std::vector<FlowKey> out;
  for (const auto& s : heavy_) {
    if (s.occupied) out.push_back(s.key);
  }
  return out;
}

WaveSketchBasic::QueryResult WaveSketchFull::query(const FlowKey& flow) const {
  if (is_heavy(flow)) {
    const HeavySlot& slot = heavy_[heavy_index(flow)];
    BucketReport rep = slot.bucket.snapshot();
    WaveSketchBasic::QueryResult r;
    r.w0 = rep.w0;
    r.series = rep.reconstruct();
    return r;
  }

  // Mice flow: take each light bucket's series, subtract the reconstructed
  // series of heavy flows that collide there, then keep the candidate with
  // the smallest residual total.
  WaveSketchBasic::QueryResult best;
  double best_total = -1;
  const std::vector<FlowKey> heavies = heavy_flows();
  for (int r = 0; r < params_.depth; ++r) {
    const std::uint32_t col = light_.column(r, flow);
    const WaveBucket& b = light_.bucket(r, col);
    if (!b.started()) return WaveSketchBasic::QueryResult{};
    BucketReport rep = b.snapshot();
    WaveSketchBasic::QueryResult cand;
    cand.w0 = rep.w0;
    cand.series = rep.reconstruct();

    for (const FlowKey& hf : heavies) {
      if (hf == flow || light_.column(r, hf) != col) continue;
      const HeavySlot& hs = heavy_[heavy_index(hf)];
      BucketReport hrep = hs.bucket.snapshot();
      if (hrep.empty()) continue;
      std::vector<double> hseries = hrep.reconstruct();
      for (std::size_t i = 0; i < hseries.size(); ++i) {
        const WindowId w = hrep.w0 + static_cast<WindowId>(i);
        const WindowId off = w - cand.w0;
        if (off < 0 || off >= static_cast<WindowId>(cand.series.size()))
          continue;
        cand.series[static_cast<std::size_t>(off)] =
            std::max(0.0, cand.series[static_cast<std::size_t>(off)] -
                              hseries[i]);
      }
    }

    double total = 0;
    for (double x : cand.series) total += x;
    if (best_total < 0 || total < best_total) {
      best_total = total;
      best = std::move(cand);
    }
  }
  return best;
}

std::size_t WaveSketchFull::memory_bytes() const {
  std::size_t total = light_.memory_bytes();
  for (const auto& s : heavy_) {
    total += 13 + 8 + s.bucket.memory_bytes();  // key + vote + bucket
  }
  return total;
}

std::vector<TaggedReport> WaveSketchFull::flush_reports(bool include_light) {
  std::vector<TaggedReport> out = std::move(heavy_rolled_);
  heavy_rolled_.clear();
  for (std::size_t i = 0; i < heavy_.size(); ++i) {
    HeavySlot& s = heavy_[i];
    if (!s.occupied) continue;
    TaggedReport t;
    t.col = static_cast<std::uint32_t>(i);
    t.flow = s.key;
    t.report = s.bucket.flush();
    if (!t.report.empty()) out.push_back(std::move(t));
    s.occupied = false;
    s.vote = 0;
  }
  if (include_light) {
    auto light = light_.flush();
    out.insert(out.end(), std::make_move_iterator(light.begin()),
               std::make_move_iterator(light.end()));
  }
  return out;
}

std::size_t WaveSketchFull::report_wire_bytes() const {
  std::size_t total = 0;
  for (const auto& s : heavy_) {
    if (s.occupied) total += 13 + s.bucket.snapshot().wire_bytes();
  }
  for (int r = 0; r < params_.depth; ++r) {
    for (std::uint32_t c = 0; c < params_.width; ++c) {
      const WaveBucket& b = light_.bucket(r, c);
      if (b.started()) total += b.snapshot().wire_bytes();
    }
  }
  return total;
}

}  // namespace umon::sketch
