// WaveSketch full version (Section 4.2): a heavy part (hash table with
// majority vote, one WaveBucket per elected heavy flow) plus a light part
// (the basic sketch) that counts *every* packet. Because heavy flows are
// counted in both parts simultaneously, evicting a heavy candidate requires
// no coefficient merge — the light part already holds its complete series.
// Conversely, querying a mice flow subtracts the reconstructed heavy-flow
// series that collide in its light buckets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "sketch/bucket.hpp"
#include "sketch/wavesketch.hpp"

namespace umon::sketch {

class WaveSketchFull {
 public:
  explicit WaveSketchFull(const WaveSketchParams& params);

  void update(const FlowKey& flow, Nanos ts, Count v) {
    update_window(flow, window_of(ts, params_.window_shift), v);
  }
  void update_window(const FlowKey& flow, WindowId w, Count v);

  /// True if the flow currently owns a heavy slot.
  [[nodiscard]] bool is_heavy(const FlowKey& flow) const;

  /// Rate-curve query: heavy flows answer from their dedicated bucket; mice
  /// flows answer from the light part with heavy contributions subtracted.
  [[nodiscard]] WaveSketchBasic::QueryResult query(const FlowKey& flow) const;

  /// All currently elected heavy flows.
  [[nodiscard]] std::vector<FlowKey> heavy_flows() const;

  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] const WaveSketchParams& params() const { return params_; }
  [[nodiscard]] const WaveSketchBasic& light() const { return light_; }

  /// Total bytes a full flush would upload (heavy + light reports).
  [[nodiscard]] std::size_t report_wire_bytes() const;

  /// End the measurement period for the wire path: emit one flow-tagged
  /// report per occupied heavy slot (plus any reports from mid-period heavy
  /// roll-overs) and, when `include_light`, every active light bucket's
  /// report, then reset all state. The returned batch is what a host's
  /// uplink serializes toward the collector. Discarding the result loses
  /// the period's reports while still resetting the sketch.
  [[nodiscard]] std::vector<TaggedReport> flush_reports(
      bool include_light = true);

 private:
  struct HeavySlot {
    bool occupied = false;
    FlowKey key;
    std::int64_t vote = 0;
    WaveBucket bucket;
    explicit HeavySlot(const WaveSketchParams& p) : bucket(heavy_params(p)) {}
  };

  static WaveSketchParams heavy_params(WaveSketchParams p) {
    p.k = p.heavy_k;
    return p;
  }

  [[nodiscard]] std::uint32_t heavy_index(const FlowKey& flow) const {
    return heavy_hash_.bucket(flow.packed(), params_.heavy_rows);
  }

  WaveSketchParams params_;
  SeededHash heavy_hash_;
  std::vector<HeavySlot> heavy_;
  WaveSketchBasic light_;
  /// Heavy-bucket reports produced by mid-period roll-overs (a flow active
  /// past max_windows); drained by flush_reports().
  std::vector<TaggedReport> heavy_rolled_;
};

}  // namespace umon::sketch
