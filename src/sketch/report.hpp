// The wire format a WaveSketch bucket uploads to the uMon analyzer:
// (w0, approximation coefficients A, retained detail coefficients D).
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/types.hpp"
#include "wavelet/coeff.hpp"
#include "wavelet/reconstruct.hpp"

namespace umon::sketch {

struct BucketReport {
  WindowId w0 = 0;              ///< absolute id of the first window
  std::uint32_t length = 0;     ///< number of windows covered (pre-padding)
  int levels = 0;               ///< effective decomposition depth
  std::vector<Count> approx;    ///< last-level approximation coefficients
  std::vector<wavelet::DetailCoeff> details;  ///< retained details

  [[nodiscard]] bool empty() const { return length == 0; }

  /// Bytes on the wire: w0 + length header, positional approximations, and
  /// details with level/index metadata (the alpha factor of Section 4.2).
  [[nodiscard]] std::size_t wire_bytes() const {
    return 12 + approx.size() * wavelet::kApproxWireBytes +
           details.size() * wavelet::kDetailWireBytes;
  }

  /// Reconstructed window counters (index 0 corresponds to window w0).
  [[nodiscard]] std::vector<double> reconstruct() const {
    return wavelet::reconstruct(approx, details, length, levels);
  }

  /// Reconstructed counter for one absolute window id (0 outside range).
  [[nodiscard]] double total() const {
    double sum = 0;
    for (Count a : approx) sum += static_cast<double>(a);
    return sum;
  }
};

// BucketReport owns heap-allocated coefficient vectors, so it is encoded
// field-by-field (serialize.cpp), never memcpy'd; what must hold is that
// moving a report between pipeline stages can never throw mid-batch.
static_assert(!std::is_trivially_copyable_v<BucketReport>,
              "encode field-wise; a memcpy would ship vector pointers");
static_assert(std::is_nothrow_move_constructible_v<BucketReport>);
static_assert(std::is_nothrow_move_assignable_v<BucketReport>);

}  // namespace umon::sketch
