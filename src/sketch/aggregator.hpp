// Agg-Evict-style software front-end (Section 8 "Future work"): a small
// direct-mapped cache that coalesces per-flow updates within the current
// window before they reach the sketch, cutting hash work on CPU platforms.
// Entries are flushed when the flow's window advances, when a colliding flow
// claims the slot, or at an explicit flush().
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace umon::sketch {

/// `Sink` receives (flow, window, aggregated value) — e.g., a lambda over
/// WaveSketchBasic::update_window.
template <typename Sink>
class AggregatingFrontEnd {
 public:
  AggregatingFrontEnd(std::size_t slots, Sink sink,
                      std::uint64_t seed = 0xA66E)
      : hash_(seed), slots_(slots), sink_(std::move(sink)) {}

  void update(const FlowKey& flow, WindowId w, Count v) {
    Slot& s = slots_[hash_.bucket(flow.packed(),
                                  static_cast<std::uint32_t>(slots_.size()))];
    if (s.valid && s.flow == flow && s.window == w) {
      s.value += v;  // hit: pure aggregation, no sketch work
      ++hits_;
      return;
    }
    if (s.valid) evict(s);
    s.valid = true;
    s.flow = flow;
    s.window = w;
    s.value = v;
    ++misses_;
  }

  /// Push every resident entry into the sink (call before querying or at
  /// period end — aggregated counts are not visible until evicted).
  void flush() {
    for (Slot& s : slots_) {
      if (s.valid) {
        evict(s);
        s.valid = false;
      }
    }
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }

 private:
  struct Slot {
    bool valid = false;
    FlowKey flow;
    WindowId window = 0;
    Count value = 0;
  };

  void evict(const Slot& s) { sink_(s.flow, s.window, s.value); }

  SeededHash hash_;
  std::vector<Slot> slots_;
  Sink sink_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Duty-cycled monitoring (Section 9, [64]): activate measurement only in
/// sampled epochs when continuous monitoring is not compulsory. Updates
/// outside an active epoch are dropped; the duty cycle bounds both CPU and
/// upload bandwidth proportionally.
class EpochSampler {
 public:
  /// Monitor `active` out of every `period` nanoseconds.
  EpochSampler(Nanos period, Nanos active) : period_(period), active_(active) {}

  [[nodiscard]] bool is_active(Nanos t) const {
    return t % period_ < active_;
  }

  [[nodiscard]] double duty_cycle() const {
    return static_cast<double>(active_) / static_cast<double>(period_);
  }

 private:
  Nanos period_;
  Nanos active_;
};

}  // namespace umon::sketch
