// Hardware threshold calibration (Section 4.3): run the *ideal* top-K store
// over sample traces, collect the minimum retained weight of every bucket's
// priority queue, and use the median as the threshold reference for the
// PISA implementation's parity queues.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sketch/params.hpp"

namespace umon::sketch {

/// One sample stream: (flow, window, value) updates in time order.
struct SampleUpdate {
  FlowKey flow;
  WindowId window = 0;
  Count value = 0;
};

struct HwThresholds {
  Count even = 1;
  Count odd = 1;
};

/// Measure `samples` with an ideal WaveSketch configured by `params` and
/// derive the per-parity integer thresholds for the hardware store.
HwThresholds calibrate_thresholds(const WaveSketchParams& params,
                                  std::span<const SampleUpdate> samples);

}  // namespace umon::sketch
