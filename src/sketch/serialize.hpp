// Binary wire format for WaveSketch reports — the bytes a host actually
// uploads to the uMon analyzer each measurement period.
//
// Layout (little-endian):
//   ReportHeader { magic, version, row, col, w0, length, levels,
//                  approx_count, detail_count }
//   approx_count x int32 approximation coefficients
//   detail_count x { uint8 level, uint24 index, int32 value } (6 bytes was
//   the analysis figure; we round the index to 3 bytes for alignment-free
//   packing, total 8 bytes per detail on the wire here)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sketch/report.hpp"
#include "sketch/wavesketch.hpp"

namespace umon::sketch {

/// Append the encoded report to `out`. Returns bytes written.
std::size_t encode_report(const TaggedReport& report,
                          std::vector<std::uint8_t>& out);

/// Encode a whole flush batch with a count prefix.
std::vector<std::uint8_t> encode_batch(std::span<const TaggedReport> reports);

/// Decode one report starting at `in[offset]`; advances `offset`. Returns
/// nullopt on malformed input (truncation, bad magic, absurd counts).
std::optional<TaggedReport> decode_report(std::span<const std::uint8_t> in,
                                          std::size_t& offset);

/// Decode a batch produced by encode_batch. Returns nullopt if any report
/// is malformed.
std::optional<std::vector<TaggedReport>> decode_batch(
    std::span<const std::uint8_t> in);

}  // namespace umon::sketch
