// Binary wire format for WaveSketch reports — the bytes a host actually
// uploads to the uMon analyzer each measurement period.
//
// Version 2 layout (little-endian):
//   ReportHeader { magic, version, flags, row, col, seq,
//                  [flow 5-tuple when flags & kFlagHasFlow],
//                  w0, length, levels, approx_count, detail_count }
//   approx_count x int32 approximation coefficients
//   detail_count x { uint8 level, uint24 index, int32 value } (6 bytes was
//   the analysis figure; we round the index to 3 bytes for alignment-free
//   packing, total 8 bytes per detail on the wire here)
//
// v2 adds the per-report sequence number (so the collector can count gaps
// left by lost uploads) and an optional flow tag (heavy-part reports carry
// the flow they are dedicated to, so the analyzer can stitch per-flow curves
// without host-side state). Version 1 payloads (no flags/seq/flow) still
// decode; encoding always writes version 2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "sketch/report.hpp"
#include "sketch/wavesketch.hpp"

namespace umon::sketch {

/// Append the encoded report to `out`. Returns bytes written.
std::size_t encode_report(const TaggedReport& report,
                          std::vector<std::uint8_t>& out);

/// Encode a whole flush batch with a count prefix.
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    std::span<const TaggedReport> reports);

/// Encode a batch stamping consecutive sequence numbers: report i is written
/// with seq = first_seq + i (the in-memory reports are left untouched).
[[nodiscard]] std::vector<std::uint8_t> encode_batch(
    std::span<const TaggedReport> reports, std::uint32_t first_seq);

/// Decode one report starting at `in[offset]`; advances `offset`. Returns
/// nullopt on malformed input (truncation, bad magic, absurd counts, or
/// coefficient counts inconsistent with `length`/`levels` — the last check
/// guarantees `report.reconstruct()` on a decoded report never reads out of
/// bounds, so adversarial bytes cannot reach UB downstream).
[[nodiscard]] std::optional<TaggedReport> decode_report(
    std::span<const std::uint8_t> in, std::size_t& offset);

/// Decode a batch produced by encode_batch. Returns nullopt if any report
/// is malformed.
[[nodiscard]] std::optional<std::vector<TaggedReport>> decode_batch(
    std::span<const std::uint8_t> in);

/// Routing metadata of one report, produced by a framing-level scan that
/// does not allocate or parse coefficients. The collector front-end uses it
/// to split a batch across ingest shards (by flow hash) while leaving the
/// expensive decode + reconstruction to the shard workers.
struct ReportFrame {
  std::size_t begin = 0;  ///< first byte of the report within the buffer
  std::size_t end = 0;    ///< one past the last byte
  std::uint32_t seq = 0;
  bool has_flow = false;
  FlowKey flow;           ///< valid when has_flow
  int row = 0;
  std::uint32_t col = 0;
};

// Frames are copied into per-shard routing vectors on the collector's front
// door; the copy must stay a flat memcpy-able value.
static_assert(std::is_trivially_copyable_v<ReportFrame>);
static_assert(std::is_standard_layout_v<ReportFrame>);

/// Scan one report's framing starting at `in[offset]`; advances `offset`
/// past the whole report. Applies the same header validation as
/// decode_report (a frame that scans clean also decodes clean).
[[nodiscard]] std::optional<ReportFrame> scan_report(
    std::span<const std::uint8_t> in, std::size_t& offset);

}  // namespace umon::sketch
