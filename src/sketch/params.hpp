// Configuration for all WaveSketch variants (Section 7.1 defaults).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace umon::sketch {

enum class StoreKind : std::uint8_t {
  kTopK,       ///< ideal weighted top-K (CPU / "WaveSketch-Ideal")
  kThreshold,  ///< calibrated threshold queues ("WaveSketch-HW")
};

struct WaveSketchParams {
  int depth = 3;               ///< d: number of hash rows
  std::uint32_t width = 256;   ///< w: buckets per row
  int levels = 8;              ///< L: wavelet decomposition depth
  std::size_t k = 64;          ///< K: retained detail coefficients per bucket
  int window_shift = kDefaultWindowShift;  ///< 8.192 us windows by default
  /// Offsets beyond this roll the bucket into a new reporting period
  /// ("longer flows are handled in multiple reporting periods").
  std::uint32_t max_windows = 1u << 16;
  StoreKind store = StoreKind::kTopK;
  /// Thresholds for the hardware store (per level parity), produced by
  /// calibrate_thresholds(). Ignored for kTopK.
  Count hw_threshold_even = 1;
  Count hw_threshold_odd = 1;
  std::uint64_t seed = 0xC0FFEE;

  /// Heavy-part rows for the full version (h in Table 1).
  std::uint32_t heavy_rows = 256;
  std::size_t heavy_k = 64;
};

}  // namespace umon::sketch
