// Shared umon_sketch_* instruments (process-wide registry). Sketches are
// created by the dozen — one per host — so per-instance registries would
// shred attribution without adding signal; the interesting numbers are the
// fleet totals: how much the hot path updates, how often heavy slots churn,
// and how many coefficients the compression stage prunes (the lossy step
// that trades accuracy for report bandwidth).
#pragma once

#include "telemetry/metrics.hpp"

namespace umon::sketch {

struct SketchInstruments {
  telemetry::Counter* updates;          ///< light-part update_window calls
  telemetry::Counter* heavy_evictions;  ///< majority-vote slot takeovers
  telemetry::Counter* heavy_rollovers;  ///< mid-period heavy bucket rollovers
  telemetry::Counter* coeff_prunes;     ///< nonzero coefficients discarded
};

inline const SketchInstruments& sketch_instruments() {
  static const SketchInstruments ins = [] {
    auto& reg = telemetry::MetricRegistry::global();
    SketchInstruments i;
    i.updates = reg.counter("umon_sketch_updates_total", {},
                            "Packet updates applied to the light part");
    i.heavy_evictions =
        reg.counter("umon_sketch_heavy_evictions_total", {},
                    "Heavy slots taken over by majority vote");
    i.heavy_rollovers =
        reg.counter("umon_sketch_heavy_rollovers_total", {},
                    "Mid-period heavy bucket rollovers");
    i.coeff_prunes =
        reg.counter("umon_sketch_coeff_prunes_total", {},
                    "Nonzero wavelet coefficients pruned by the store");
    return i;
  }();
  return ins;
}

}  // namespace umon::sketch
