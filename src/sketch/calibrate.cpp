#include "sketch/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "sketch/bucket.hpp"
#include "sketch/wavesketch.hpp"
#include "wavelet/store.hpp"

namespace umon::sketch {
namespace {

/// A shadow run that mirrors the real update path but records, per bucket,
/// the final min-weight of the top-K heap.
class ShadowSketch {
 public:
  explicit ShadowSketch(const WaveSketchParams& p) : sketch_(ideal(p)) {}

  static WaveSketchParams ideal(WaveSketchParams p) {
    p.store = StoreKind::kTopK;
    return p;
  }

  void add(const SampleUpdate& u) {
    sketch_.update_window(u.flow, u.window, u.value);
  }

  /// Min weights of all touched buckets' heaps.
  std::vector<double> min_weights() {
    std::vector<double> out;
    const auto& p = sketch_.params();
    for (int r = 0; r < p.depth; ++r) {
      for (std::uint32_t c = 0; c < p.width; ++c) {
        const WaveBucket& b = sketch_.bucket(r, c);
        if (!b.started()) continue;
        // The snapshot's retained details bound the heap's minimum weight;
        // take the smallest retained L2 weight as the queue minimum.
        auto rep = b.snapshot();
        if (rep.details.empty()) continue;
        double mn = -1;
        for (const auto& d : rep.details) {
          const double w = wavelet::l2_weight(d);
          if (mn < 0 || w < mn) mn = w;
        }
        // Only full queues define a meaningful eviction threshold.
        if (rep.details.size() >= p.k) out.push_back(mn);
      }
    }
    return out;
  }

 private:
  WaveSketchBasic sketch_;
};

}  // namespace

HwThresholds calibrate_thresholds(const WaveSketchParams& params,
                                  std::span<const SampleUpdate> samples) {
  ShadowSketch shadow(params);
  for (const auto& u : samples) shadow.add(u);
  std::vector<double> mins = shadow.min_weights();
  HwThresholds t;
  if (mins.empty()) return t;
  std::nth_element(mins.begin(), mins.begin() + mins.size() / 2, mins.end());
  const double median = mins[mins.size() / 2];

  // The ideal weight of a level-l coefficient is |v| / sqrt(2^(l+1)); the
  // hardware compares |v| >> (l/2) against an integer threshold. Matching
  // the two at the smallest level of each parity (l=0 and l=1):
  //   even: |v| >= median * sqrt(2)  ->  threshold_even = median * sqrt(2)
  //   odd:  |v| >= median * 2        ->  threshold_odd  = median * 2
  t.even = static_cast<Count>(std::llround(median * std::sqrt(2.0)));
  t.odd = static_cast<Count>(std::llround(median * 2.0));
  t.even = std::max<Count>(1, t.even);
  t.odd = std::max<Count>(1, t.odd);
  return t;
}

}  // namespace umon::sketch
