#include "sketch/serialize.hpp"

#include <cstring>

namespace umon::sketch {
namespace {

constexpr std::uint16_t kMagic = 0xA10E;
constexpr std::uint8_t kVersion = 1;
/// Upper bounds that a well-formed report never exceeds; decoding rejects
/// anything larger so a corrupt length cannot trigger a giant allocation.
constexpr std::uint32_t kMaxCoeffs = 1u << 20;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t> in, std::size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

}  // namespace

std::size_t encode_report(const TaggedReport& report,
                          std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint8_t>(report.row));
  put(out, static_cast<std::uint32_t>(report.col));
  put(out, static_cast<std::int64_t>(report.report.w0));
  put(out, report.report.length);
  put(out, static_cast<std::uint8_t>(report.report.levels));
  put(out, static_cast<std::uint32_t>(report.report.approx.size()));
  put(out, static_cast<std::uint32_t>(report.report.details.size()));
  for (Count a : report.report.approx) {
    put(out, static_cast<std::int32_t>(a));
  }
  for (const auto& d : report.report.details) {
    put(out, d.level);
    // 24-bit index: the maximum window offset (2^16 default) fits easily.
    put(out, static_cast<std::uint8_t>(d.index & 0xFF));
    put(out, static_cast<std::uint16_t>(d.index >> 8));
    put(out, static_cast<std::int32_t>(d.value));
  }
  return out.size() - start;
}

std::vector<std::uint8_t> encode_batch(
    std::span<const TaggedReport> reports) {
  std::vector<std::uint8_t> out;
  put(out, static_cast<std::uint32_t>(reports.size()));
  for (const auto& r : reports) encode_report(r, out);
  return out;
}

std::optional<TaggedReport> decode_report(std::span<const std::uint8_t> in,
                                          std::size_t& offset) {
  std::uint16_t magic;
  std::uint8_t version, row, levels;
  std::uint32_t col, length, approx_count, detail_count;
  std::int64_t w0;
  if (!get(in, offset, magic) || magic != kMagic) return std::nullopt;
  if (!get(in, offset, version) || version != kVersion) return std::nullopt;
  if (!get(in, offset, row) || !get(in, offset, col) ||
      !get(in, offset, w0) || !get(in, offset, length) ||
      !get(in, offset, levels) || !get(in, offset, approx_count) ||
      !get(in, offset, detail_count)) {
    return std::nullopt;
  }
  if (approx_count > kMaxCoeffs || detail_count > kMaxCoeffs) {
    return std::nullopt;
  }
  TaggedReport out;
  out.row = row;
  out.col = col;
  out.report.w0 = w0;
  out.report.length = length;
  out.report.levels = levels;
  out.report.approx.reserve(approx_count);
  for (std::uint32_t i = 0; i < approx_count; ++i) {
    std::int32_t a;
    if (!get(in, offset, a)) return std::nullopt;
    out.report.approx.push_back(a);
  }
  out.report.details.reserve(detail_count);
  for (std::uint32_t i = 0; i < detail_count; ++i) {
    std::uint8_t level, idx_lo;
    std::uint16_t idx_hi;
    std::int32_t value;
    if (!get(in, offset, level) || !get(in, offset, idx_lo) ||
        !get(in, offset, idx_hi) || !get(in, offset, value)) {
      return std::nullopt;
    }
    out.report.details.push_back(wavelet::DetailCoeff{
        level, static_cast<std::uint32_t>(idx_lo) |
                   (static_cast<std::uint32_t>(idx_hi) << 8),
        value});
  }
  return out;
}

std::optional<std::vector<TaggedReport>> decode_batch(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  std::uint32_t count;
  if (!get(in, offset, count)) return std::nullopt;
  if (count > kMaxCoeffs) return std::nullopt;
  std::vector<TaggedReport> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto r = decode_report(in, offset);
    if (!r) return std::nullopt;
    out.push_back(std::move(*r));
  }
  if (offset != in.size()) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace umon::sketch
