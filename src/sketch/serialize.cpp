#include "sketch/serialize.hpp"

#include <cstring>
#include <type_traits>

#include "wavelet/haar.hpp"

namespace umon::sketch {
namespace {

constexpr std::uint16_t kMagic = 0xA10E;
constexpr std::uint8_t kVersionV1 = 1;
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kFlagHasFlow = 0x01;
/// Upper bounds that a well-formed report never exceeds; decoding rejects
/// anything larger so a corrupt length cannot trigger a giant allocation.
constexpr std::uint32_t kMaxCoeffs = 1u << 20;
/// Hard cap on the windows a single report may claim to cover (the default
/// roll-over period is 2^16 windows; 2^24 leaves two orders of headroom).
constexpr std::uint32_t kMaxLength = 1u << 24;
constexpr int kMaxLevels = 30;

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire fields are raw little-endian bytes");
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(T));
  std::memcpy(out.data() + pos, &value, sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t> in, std::size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) return false;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

/// Everything in a report header except the coefficient payload.
struct Header {
  std::uint8_t version = kVersion;
  std::uint8_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t seq = 0;
  bool has_flow = false;
  FlowKey flow;
  std::int64_t w0 = 0;
  std::uint32_t length = 0;
  std::uint8_t levels = 0;
  std::uint32_t approx_count = 0;
  std::uint32_t detail_count = 0;
};

// The decoder memcpy's individual fields out of the byte stream into this
// staging struct; it must stay a flat aggregate with no hidden state.
static_assert(std::is_trivially_copyable_v<Header>);
static_assert(std::is_standard_layout_v<Header>);

/// Parse and validate a header (v1 or v2). The consistency check against
/// length/levels mirrors what wavelet::reconstruct assumes, so a report that
/// passes here can be reconstructed without out-of-bounds reads.
bool read_header(std::span<const std::uint8_t> in, std::size_t& offset,
                 Header& h) {
  std::uint16_t magic;
  if (!get(in, offset, magic) || magic != kMagic) return false;
  if (!get(in, offset, h.version)) return false;
  if (h.version != kVersionV1 && h.version != kVersion) return false;
  if (h.version >= kVersion) {
    std::uint8_t flags;
    if (!get(in, offset, flags)) return false;
    if (flags & ~kFlagHasFlow) return false;  // unknown flags: reject
    h.has_flow = flags & kFlagHasFlow;
  }
  if (!get(in, offset, h.row) || !get(in, offset, h.col)) return false;
  if (h.version >= kVersion) {
    if (!get(in, offset, h.seq)) return false;
    if (h.has_flow) {
      if (!get(in, offset, h.flow.src_ip) || !get(in, offset, h.flow.dst_ip) ||
          !get(in, offset, h.flow.src_port) ||
          !get(in, offset, h.flow.dst_port) || !get(in, offset, h.flow.proto)) {
        return false;
      }
    }
  }
  if (!get(in, offset, h.w0) || !get(in, offset, h.length) ||
      !get(in, offset, h.levels) || !get(in, offset, h.approx_count) ||
      !get(in, offset, h.detail_count)) {
    return false;
  }
  if (h.approx_count > kMaxCoeffs || h.detail_count > kMaxCoeffs) return false;
  if (h.length > kMaxLength || h.levels > kMaxLevels) return false;
  if (h.length > 0) {
    // reconstruct() reads padded >> eff approximations unconditionally; a
    // header claiming fewer is adversarial, not just lossy.
    const std::uint32_t padded = wavelet::next_pow2(h.length);
    const int eff = wavelet::effective_levels(padded, h.levels);
    if (h.approx_count < (padded >> eff)) return false;
    if (h.approx_count > padded) return false;
  }
  return true;
}

std::size_t encode_with_seq(const TaggedReport& report, std::uint32_t seq,
                            std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint8_t>(report.flow ? kFlagHasFlow : 0));
  put(out, static_cast<std::uint8_t>(report.row));
  put(out, static_cast<std::uint32_t>(report.col));
  put(out, seq);
  if (report.flow) {
    put(out, report.flow->src_ip);
    put(out, report.flow->dst_ip);
    put(out, report.flow->src_port);
    put(out, report.flow->dst_port);
    put(out, report.flow->proto);
  }
  put(out, static_cast<std::int64_t>(report.report.w0));
  put(out, report.report.length);
  put(out, static_cast<std::uint8_t>(report.report.levels));
  put(out, static_cast<std::uint32_t>(report.report.approx.size()));
  put(out, static_cast<std::uint32_t>(report.report.details.size()));
  for (Count a : report.report.approx) {
    put(out, static_cast<std::int32_t>(a));
  }
  for (const auto& d : report.report.details) {
    put(out, d.level);
    // 24-bit index: the maximum window offset (2^16 default) fits easily.
    put(out, static_cast<std::uint8_t>(d.index & 0xFF));
    put(out, static_cast<std::uint16_t>(d.index >> 8));
    put(out, static_cast<std::int32_t>(d.value));
  }
  return out.size() - start;
}

}  // namespace

std::size_t encode_report(const TaggedReport& report,
                          std::vector<std::uint8_t>& out) {
  return encode_with_seq(report, report.seq, out);
}

std::vector<std::uint8_t> encode_batch(
    std::span<const TaggedReport> reports) {
  std::vector<std::uint8_t> out;
  put(out, static_cast<std::uint32_t>(reports.size()));
  for (const auto& r : reports) encode_report(r, out);
  return out;
}

std::vector<std::uint8_t> encode_batch(std::span<const TaggedReport> reports,
                                       std::uint32_t first_seq) {
  std::vector<std::uint8_t> out;
  put(out, static_cast<std::uint32_t>(reports.size()));
  std::uint32_t seq = first_seq;
  for (const auto& r : reports) encode_with_seq(r, seq++, out);
  return out;
}

std::optional<TaggedReport> decode_report(std::span<const std::uint8_t> in,
                                          std::size_t& offset) {
  Header h;
  if (!read_header(in, offset, h)) return std::nullopt;
  // Reject a declared payload that extends past the buffer *before* acting
  // on the counts: the per-coefficient get() loop would only notice the
  // truncation after reserving approx_count slots, and a frame truncated at
  // exactly the header boundary must not decode as an empty-but-valid
  // report. (offset <= in.size() holds after read_header, so the
  // subtraction cannot wrap.)
  const std::size_t payload = std::size_t{h.approx_count} * 4 +
                              std::size_t{h.detail_count} * 8;
  if (in.size() - offset < payload) return std::nullopt;
  TaggedReport out;
  out.row = h.row;
  out.col = h.col;
  out.seq = h.seq;
  if (h.has_flow) out.flow = h.flow;
  out.report.w0 = h.w0;
  out.report.length = h.length;
  out.report.levels = h.levels;
  out.report.approx.reserve(h.approx_count);
  for (std::uint32_t i = 0; i < h.approx_count; ++i) {
    std::int32_t a;
    if (!get(in, offset, a)) return std::nullopt;
    out.report.approx.push_back(a);
  }
  out.report.details.reserve(h.detail_count);
  for (std::uint32_t i = 0; i < h.detail_count; ++i) {
    std::uint8_t level, idx_lo;
    std::uint16_t idx_hi;
    std::int32_t value;
    if (!get(in, offset, level) || !get(in, offset, idx_lo) ||
        !get(in, offset, idx_hi) || !get(in, offset, value)) {
      return std::nullopt;
    }
    out.report.details.push_back(wavelet::DetailCoeff{
        level, static_cast<std::uint32_t>(idx_lo) |
                   (static_cast<std::uint32_t>(idx_hi) << 8),
        value});
  }
  return out;
}

std::optional<ReportFrame> scan_report(std::span<const std::uint8_t> in,
                                       std::size_t& offset) {
  ReportFrame frame;
  frame.begin = offset;
  Header h;
  if (!read_header(in, offset, h)) return std::nullopt;
  const std::size_t payload = std::size_t{h.approx_count} * 4 +
                              std::size_t{h.detail_count} * 8;
  if (offset + payload > in.size()) return std::nullopt;
  offset += payload;
  frame.end = offset;
  frame.seq = h.seq;
  frame.has_flow = h.has_flow;
  frame.flow = h.flow;
  frame.row = h.row;
  frame.col = h.col;
  return frame;
}

std::optional<std::vector<TaggedReport>> decode_batch(
    std::span<const std::uint8_t> in) {
  std::size_t offset = 0;
  std::uint32_t count;
  if (!get(in, offset, count)) return std::nullopt;
  if (count > kMaxCoeffs) return std::nullopt;
  std::vector<TaggedReport> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto r = decode_report(in, offset);
    if (!r) return std::nullopt;
    out.push_back(std::move(*r));
  }
  if (offset != in.size()) return std::nullopt;  // trailing garbage
  return out;
}

}  // namespace umon::sketch
