// umon::telemetry — leveled structured logging half.
//
//   UMON_LOG(kWarn, "collector", "payload malformed",
//            {"host", std::to_string(host)}, {"bytes", "12"});
//
// prints (to the configured sink, stderr by default):
//
//   [warn] collector: payload malformed host=3 bytes=12
//
// Properties the hot paths rely on:
//   * A log below the active level costs one relaxed atomic load and a
//     branch; the message and field expressions are NOT evaluated.
//   * Every call site gets its own token-bucket rate limiter (default
//     kMaxPerWindow messages per second); suppressed messages are counted
//     and the count is attached to the next message that passes, so bursts
//     cannot melt the sink but are still visible.
//   * The default level is kWarn — hot paths log at kDebug/kTrace and stay
//     silent unless an operator opts in (umon_sim --log-level debug).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace umon::telemetry {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(LogLevel level);
/// Parse "trace|debug|info|warn|error|off"; returns kWarn for junk.
[[nodiscard]] LogLevel parse_log_level(std::string_view s);

struct LogField {
  std::string_view key;
  std::string value;
};

class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel l) const { return l >= level(); }

  /// Redirect output (tests, file sinks). The sink receives one formatted
  /// line without trailing newline. Pass nullptr to restore stderr.
  void set_sink(std::function<void(const std::string&)> sink);

  /// Total lines emitted and total suppressed by per-site rate limits.
  [[nodiscard]] std::uint64_t lines_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lines_suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, const char* component, std::string_view message,
             std::initializer_list<LogField> fields,
             std::uint64_t suppressed_before);
  void note_suppressed() {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  std::mutex sink_mu_;
  std::function<void(const std::string&)> sink_;  // null = stderr
};

/// Per-call-site token bucket: at most kMaxPerWindow lines per one-second
/// window. Thread-safe; one instance per UMON_LOG expansion.
class LogSite {
 public:
  static constexpr std::uint64_t kMaxPerWindow = 32;

  /// True if this call may emit; on true, *suppressed receives the number of
  /// calls this site swallowed since the last emitted line.
  bool acquire(std::uint64_t* suppressed);

 private:
  std::atomic<std::uint64_t> window_start_ns_{0};
  std::atomic<std::uint64_t> in_window_{0};
  std::atomic<std::uint64_t> suppressed_since_emit_{0};
};

// Fields are optional: UMON_LOG(kInfo, "comp", "msg") or with any number of
// {"key", value} pairs appended.
#define UMON_LOG(level_, component_, message_, ...)                         \
  do {                                                                      \
    if (::umon::telemetry::Logger::global().enabled(                        \
            ::umon::telemetry::LogLevel::level_)) {                         \
      static ::umon::telemetry::LogSite umon_log_site_;                     \
      std::uint64_t umon_log_suppressed_ = 0;                               \
      if (umon_log_site_.acquire(&umon_log_suppressed_)) {                  \
        ::umon::telemetry::Logger::global().write(                          \
            ::umon::telemetry::LogLevel::level_, component_, message_,      \
            {__VA_ARGS__}, umon_log_suppressed_);                           \
      } else {                                                              \
        ::umon::telemetry::Logger::global().note_suppressed();              \
      }                                                                     \
    }                                                                       \
  } while (0)

}  // namespace umon::telemetry
