#include "telemetry/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

namespace umon::telemetry {
namespace {

std::atomic<bool> g_detail_enabled{false};

/// Registration key: name plus every label pair, separated by bytes that
/// cannot appear in valid metric names.
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    // umon-sca: allow(SA003) key building happens only during instrument
    // registration (get_or_create); hot callers cache the instrument
    // pointer and never rebuild a series key.
    key.append(1, '\x01').append(k).append(1, '\x02').append(v);
  }
  return key;
}

bool labels_less(const Labels& a, const Labels& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

bool detail_enabled() {
  return g_detail_enabled.load(std::memory_order_relaxed);
}

void set_detail_enabled(bool on) {
  g_detail_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

std::vector<double> Histogram::latency_us_bounds() {
  return {1,    2,    5,     10,    20,    50,    100,    200,    500,
          1000, 2000, 5000,  10000, 20000, 50000, 100000, 200000, 500000};
}

MetricRegistry& MetricRegistry::global() {
  // Leaked on purpose: instruments are referenced from function-local statics
  // all over the codebase and must outlive every other static destructor.
  // umon-sca: allow(SA003) one-time lazy construction behind a static;
  // every subsequent call is a pointer read.
  static auto* r = new MetricRegistry();
  return *r;
}

MetricRegistry::Instrument* MetricRegistry::get_or_create(
    std::string_view name, Labels&& labels, Kind kind, std::string_view help,
    std::vector<double>* bounds) {
  // Shard by name so the cardinality count for one name is shard-local.
  Shard& shard =
      shards_[std::hash<std::string_view>{}(name) % kShards];
  std::lock_guard lock(shard.mu);
  const std::string key = series_key(name, labels);
  if (auto it = shard.by_key.find(key); it != shard.by_key.end()) {
    Instrument* ins = it->second;
    if (ins->kind == kind) return ins;
    // Kind conflict: hand back a detached instrument so the caller still has
    // something safe to increment, but never export the ambiguity.
    auto detached = std::make_unique<Instrument>();
    detached->name = std::string(name);
    detached->kind = kind;
    detached->exported = false;
    if (kind == Kind::kHistogram) {
      detached->hist = std::make_unique<Histogram>(
          bounds ? *bounds : std::vector<double>{});
    }
    // umon-sca: allow(SA003) kind-conflict fallback, hit at most once per
    // misdeclared series; hot callers never reach registration again.
    shard.items.push_back(std::move(detached));
    return shard.items.back().get();
  }

  std::size_t& series = shard.series_per_name[std::string(name)];
  if (series >= kMaxSeriesPerName && !labels.empty()) {
    series_over_cap_.fetch_add(1, std::memory_order_relaxed);
    // Redirect to the shared overflow series for this name (created on
    // first overflow, then found by key lookup).
    Labels overflow{{"overflow", "true"}};
    const std::string okey = series_key(name, overflow);
    if (auto it = shard.by_key.find(okey); it != shard.by_key.end()) {
      return it->second;
    }
    auto ins = std::make_unique<Instrument>();
    ins->name = std::string(name);
    ins->labels = std::move(overflow);
    ins->help = std::string(help);
    ins->kind = kind;
    if (kind == Kind::kHistogram) {
      ins->hist = std::make_unique<Histogram>(
          bounds ? *bounds : std::vector<double>{});
    }
    // umon-sca: allow(SA003) overflow-series creation happens once per name
    // (subsequent overflows hit the by_key lookup above).
    shard.by_key.emplace(okey, ins.get());
    // umon-sca: allow(SA003) same once-per-name overflow registration.
    shard.items.push_back(std::move(ins));
    return shard.items.back().get();
  }

  series += 1;
  auto ins = std::make_unique<Instrument>();
  ins->name = std::string(name);
  ins->labels = std::move(labels);
  ins->help = std::string(help);
  ins->kind = kind;
  if (kind == Kind::kHistogram) {
    ins->hist = std::make_unique<Histogram>(bounds ? *bounds
                                                   : std::vector<double>{});
  }
  // umon-sca: allow(SA003) series registration is first-call-only; hot
  // callers cache the instrument pointer behind a function-local static
  // (see sketch_instruments()) and never re-enter get_or_create.
  shard.by_key.emplace(key, ins.get());
  // umon-sca: allow(SA003) same first-call-only registration as above.
  shard.items.push_back(std::move(ins));
  return shard.items.back().get();
}

Counter* MetricRegistry::counter(std::string_view name, Labels labels,
                                 std::string_view help) {
  return &get_or_create(name, std::move(labels), Kind::kCounter, help,
                        nullptr)
              ->counter;
}

Gauge* MetricRegistry::gauge(std::string_view name, Labels labels,
                             std::string_view help) {
  return &get_or_create(name, std::move(labels), Kind::kGauge, help, nullptr)
              ->gauge;
}

Histogram* MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds, Labels labels,
                                     std::string_view help) {
  return get_or_create(name, std::move(labels), Kind::kHistogram, help,
                       &bounds)
      ->hist.get();
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::vector<Sample> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& ins : shard.items) {
      if (!ins->exported) continue;
      Sample s;
      s.name = ins->name;
      s.labels = ins->labels;
      s.help = ins->help;
      s.kind = ins->kind;
      switch (ins->kind) {
        case Kind::kCounter:
          s.counter_value = ins->counter.value();
          break;
        case Kind::kGauge:
          s.gauge_value = ins->gauge.value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *ins->hist;
          s.bounds = h.bounds();
          s.bucket_counts.resize(s.bounds.size() + 1);
          for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
            s.bucket_counts[i] = h.bucket_count(i);
          }
          s.hist_count = h.count();
          s.hist_sum = h.sum();
          break;
        }
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return labels_less(a.labels, b.labels);
  });
  return out;
}

}  // namespace umon::telemetry
