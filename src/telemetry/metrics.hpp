// umon::telemetry — self-monitoring for the monitor (metrics half).
//
// A monitoring system that cannot observe itself leaves its operators blind
// exactly when accuracy degrades: reports stall in a queue, a decode shard
// falls behind, a lossy channel silently sheds. This registry gives every
// layer named instruments with a hot path cheap enough to leave on in
// production:
//
//   * Counter / Gauge increments are a single relaxed atomic add — always on.
//   * Histogram::observe and ScopedTimer read a clock, so they are gated by
//     the process-wide detail switch (set_detail_enabled); when the switch is
//     off a timer costs one relaxed load and a branch.
//   * Registration is sharded by instrument name (one short-lock map probe,
//     done once per call site); after registration the instrument pointer is
//     stable for the process lifetime and all access is lock-free.
//
// Naming convention (enforced by review, exported verbatim to Prometheus):
//   umon_<subsystem>_<name>_<unit>   e.g. umon_collector_reports_lost_total
// Label sets are capped at kMaxSeriesPerName per name; past the cap every
// extra label set shares one {"overflow"="true"} series instead of growing
// without bound (label values come from data — host ids, shard ids — and a
// bug upstream must not OOM the monitor's monitor).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace umon::telemetry {

/// Key/value pairs attached to one instrument, e.g. {{"shard", "3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit +Inf bucket catches overflow. Thread-safe, relaxed.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Default boundaries for microsecond latency histograms.
  static std::vector<double> latency_us_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide switch for instrumentation that must read a clock (timers,
/// spans). Counters and gauges ignore it — they are cheap enough to always
/// run. Off by default.
[[nodiscard]] bool detail_enabled();
void set_detail_enabled(bool on);

/// Monotonic nanosecond clock used by timers and the trace recorder.
[[nodiscard]] std::uint64_t monotonic_ns();

/// RAII latency probe: observes elapsed *microseconds* into `h` at scope
/// exit. When detail is disabled construction is one relaxed load + branch
/// and no clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(detail_enabled() ? h : nullptr),
        start_(h_ ? monotonic_ns() : 0) {}
  ~ScopedTimer() {
    if (h_) {
      h_->observe(static_cast<double>(monotonic_ns() - start_) / 1e3);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

class MetricRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// Distinct label sets allowed per instrument name before new sets are
  /// collapsed into the shared {"overflow"="true"} series.
  static constexpr std::size_t kMaxSeriesPerName = 64;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry. Subsystems register here; per-instance
  /// pipelines (e.g. each Collector) own a private registry instead so that
  /// their stats stay attributable to one instance.
  static MetricRegistry& global();

  /// Get-or-create. The returned pointer is stable for the registry's
  /// lifetime; repeated calls with the same (name, labels) return the same
  /// instrument. A name must keep one kind — re-registering it as another
  /// kind returns a detached instrument that is never exported.
  Counter* counter(std::string_view name, Labels labels = {},
                   std::string_view help = {});
  Gauge* gauge(std::string_view name, Labels labels = {},
               std::string_view help = {});
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       Labels labels = {}, std::string_view help = {});

  /// Label sets discarded by the cardinality cap (their traffic lands on the
  /// overflow series, so counts are conserved; only the labels are lost).
  [[nodiscard]] std::uint64_t series_over_cap() const {
    return series_over_cap_.load(std::memory_order_relaxed);
  }

  /// One exported time series, fully resolved (histograms carry their
  /// per-bucket counts). Sorted by (name, labels) for stable output.
  struct Sample {
    std::string name;
    Labels labels;
    std::string help;
    Kind kind = Kind::kCounter;
    std::uint64_t counter_value = 0;
    std::int64_t gauge_value = 0;
    std::vector<double> bounds;                 // histogram only
    std::vector<std::uint64_t> bucket_counts;   // bounds.size() + 1 (+Inf)
    std::uint64_t hist_count = 0;
    double hist_sum = 0;
  };
  // Snapshots are merged, sorted, and shipped to exporters wholesale; the
  // copies must stay cheap to move and free of back-references into the
  // registry (a Sample outlives the lock that produced it).
  static_assert(std::is_nothrow_move_constructible_v<Sample>);
  static_assert(std::is_nothrow_move_assignable_v<Sample>);
  [[nodiscard]] std::vector<Sample> snapshot() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    std::string help;
    Kind kind = Kind::kCounter;
    bool exported = true;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Instrument*> by_key;
    std::unordered_map<std::string, std::size_t> series_per_name;
    std::vector<std::unique_ptr<Instrument>> items;
  };

  Instrument* get_or_create(std::string_view name, Labels&& labels, Kind kind,
                            std::string_view help,
                            std::vector<double>* bounds);

  static constexpr std::size_t kShards = 8;
  Shard shards_[kShards];
  std::atomic<std::uint64_t> series_over_cap_{0};
};

}  // namespace umon::telemetry
