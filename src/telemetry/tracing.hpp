// umon::telemetry — pipeline tracing half.
//
// TraceRecorder captures begin/end spans of the pipeline's phases (epoch
// seal, batch decode, curve reconstruct, event grouping, ...) into a bounded
// ring buffer and exports them as Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Cost model: disabled (the default), a span is one relaxed load and a
// branch — no clock read, no allocation. Enabled, each span reads the
// monotonic clock twice and takes a short mutex to claim a ring slot; the
// ring overwrites its oldest events when full (dropped() counts them), so
// tracing can stay on for a whole run with bounded memory.
//
// Span names must be string literals (the recorder stores the pointer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace umon::telemetry {

struct SpanEvent {
  const char* name = "";
  const char* category = "umon";
  char phase = 'X';           ///< 'X' complete span, 'i' instant event
  std::uint64_t ts_ns = 0;    ///< start, monotonic_ns()
  std::uint64_t dur_ns = 0;   ///< duration ('X' only)
  std::uint32_t tid = 0;      ///< small per-thread id assigned on first use
  /// Report-lineage key (host << 32 | epoch), 0 = untagged. Tagged events
  /// export an "id" plus host/epoch args, and the Chrome exporter stitches
  /// each lineage's events together with flow arrows ('s'/'t'/'f').
  std::uint64_t lineage = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// Start recording into a fresh ring of `capacity` events.
  void enable(std::size_t capacity = 1 << 16);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record_complete(const char* name, const char* category,
                       std::uint64_t ts_ns, std::uint64_t dur_ns,
                       std::uint64_t lineage = 0);
  void record_instant(const char* name, const char* category,
                      std::uint64_t lineage = 0);

  /// Events currently held, oldest first. Total recorded may exceed this;
  /// dropped() says by how much.
  [[nodiscard]] std::vector<SpanEvent> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}; ts/dur in µs).
  void write_chrome_json(std::ostream& os) const;

  void clear();

 private:
  void record(SpanEvent ev);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t total_ = 0;  ///< events ever recorded since enable()
  /// Global-registry counter (umon_telemetry_trace_dropped_spans_total)
  /// mirroring ring overwrites; bound lazily on first enable() so merely
  /// linking the library never registers the series.
  Counter* dropped_counter_ = nullptr;
};

/// RAII span: records a complete ('X') event on scope exit. No-op (one
/// relaxed load) while the recorder is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "umon",
                      std::uint64_t lineage = 0)
      : name_(name),
        category_(category),
        lineage_(lineage),
        start_(TraceRecorder::global().enabled() ? monotonic_ns() : 0) {}
  ~ScopedSpan() {
    if (start_ != 0 && TraceRecorder::global().enabled()) {
      TraceRecorder::global().record_complete(
          name_, category_, start_, monotonic_ns() - start_, lineage_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t lineage_;
  std::uint64_t start_;
};

#define UMON_TRACE_CONCAT_(a, b) a##b
#define UMON_TRACE_CONCAT(a, b) UMON_TRACE_CONCAT_(a, b)
/// Trace the enclosing scope as one complete span. `name` must be a literal.
#define UMON_TRACE_SPAN(name)                             \
  ::umon::telemetry::ScopedSpan UMON_TRACE_CONCAT(        \
      umon_trace_span_, __COUNTER__)(name)
/// Same, tagged with a report-lineage key (host << 32 | epoch) so the span
/// joins that report's causal chain in the exported trace.
#define UMON_TRACE_SPAN_LINEAGE(name, lineage)            \
  ::umon::telemetry::ScopedSpan UMON_TRACE_CONCAT(        \
      umon_trace_span_, __COUNTER__)(name, "umon", (lineage))

}  // namespace umon::telemetry
