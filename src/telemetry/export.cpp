#include "telemetry/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace umon::telemetry {
namespace {

/// Prometheus label values escape backslash, double-quote, and newline.
std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(k);
    out.append("=\"");
    out.append(escape_label(v));
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// Like label_block but with one extra label appended (histogram `le`).
std::string label_block_with(const Labels& labels, const char* key,
                             const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return label_block(all);
}

std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

const char* kind_name(MetricRegistry::Kind k) {
  switch (k) {
    case MetricRegistry::Kind::kCounter: return "counter";
    case MetricRegistry::Kind::kGauge: return "gauge";
    case MetricRegistry::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::vector<MetricRegistry::Sample> merged_snapshot(
    std::span<const MetricRegistry* const> registries) {
  std::vector<MetricRegistry::Sample> all;
  for (const MetricRegistry* r : registries) {
    if (r == nullptr) continue;
    auto part = r->snapshot();
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const MetricRegistry::Sample& a,
               const MetricRegistry::Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return all;
}

void write_prometheus(std::ostream& os,
                      std::span<const MetricRegistry* const> registries) {
  const auto samples = merged_snapshot(registries);
  std::string last_name;
  for (const auto& s : samples) {
    if (s.name != last_name) {
      last_name = s.name;
      if (!s.help.empty()) {
        os << "# HELP " << s.name << " " << s.help << "\n";
      }
      os << "# TYPE " << s.name << " " << kind_name(s.kind) << "\n";
    }
    switch (s.kind) {
      case MetricRegistry::Kind::kCounter:
        os << s.name << label_block(s.labels) << " " << s.counter_value
           << "\n";
        break;
      case MetricRegistry::Kind::kGauge:
        os << s.name << label_block(s.labels) << " " << s.gauge_value << "\n";
        break;
      case MetricRegistry::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.bucket_counts[i];
          os << s.name << "_bucket"
             << label_block_with(s.labels, "le", format_double(s.bounds[i]))
             << " " << cumulative << "\n";
        }
        cumulative += s.bucket_counts[s.bounds.size()];
        os << s.name << "_bucket"
           << label_block_with(s.labels, "le", "+Inf") << " " << cumulative
           << "\n";
        os << s.name << "_sum" << label_block(s.labels) << " "
           << format_double(s.hist_sum) << "\n";
        os << s.name << "_count" << label_block(s.labels) << " "
           << s.hist_count << "\n";
        break;
      }
    }
  }
}

void write_text(std::ostream& os,
                std::span<const MetricRegistry* const> registries) {
  for (const auto& s : merged_snapshot(registries)) {
    os << s.name << label_block(s.labels) << " = ";
    switch (s.kind) {
      case MetricRegistry::Kind::kCounter:
        os << s.counter_value;
        break;
      case MetricRegistry::Kind::kGauge:
        os << s.gauge_value;
        break;
      case MetricRegistry::Kind::kHistogram:
        os << "count=" << s.hist_count << " sum=" << format_double(s.hist_sum)
           << " mean="
           << format_double(s.hist_count == 0
                                ? 0.0
                                : s.hist_sum /
                                      static_cast<double>(s.hist_count));
        break;
    }
    os << "\n";
  }
}

void write_jsonl(std::ostream& os,
                 std::span<const MetricRegistry* const> registries,
                 std::uint64_t sequence) {
  for (const auto& s : merged_snapshot(registries)) {
    os << "{\"seq\":" << sequence << ",\"name\":\"" << s.name << "\"";
    if (!s.labels.empty()) {
      os << ",\"labels\":{";
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) os << ",";
        first = false;
        os << "\"" << k << "\":\"" << escape_label(v) << "\"";
      }
      os << "}";
    }
    os << ",\"kind\":\"" << kind_name(s.kind) << "\"";
    switch (s.kind) {
      case MetricRegistry::Kind::kCounter:
        os << ",\"value\":" << s.counter_value;
        break;
      case MetricRegistry::Kind::kGauge:
        os << ",\"value\":" << s.gauge_value;
        break;
      case MetricRegistry::Kind::kHistogram: {
        os << ",\"count\":" << s.hist_count << ",\"sum\":";
        // JSON has no Inf; histogram sums of finite observations are finite.
        os << (std::isfinite(s.hist_sum) ? format_double(s.hist_sum) : "0");
        os << ",\"buckets\":[";
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          if (i) os << ",";
          os << s.bucket_counts[i];
        }
        os << "]";
        break;
      }
    }
    os << "}\n";
  }
}

}  // namespace umon::telemetry
