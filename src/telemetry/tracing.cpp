#include "telemetry/tracing.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <thread>
#include <unordered_map>

namespace umon::telemetry {
namespace {

/// Dense per-thread id for the tid column (std::thread::id is opaque).
std::uint32_t current_tid() {
  static std::mutex mu;
  static std::unordered_map<std::thread::id, std::uint32_t> ids;
  std::lock_guard lock(mu);
  return ids.emplace(std::this_thread::get_id(),
                     static_cast<std::uint32_t>(ids.size() + 1))
      .first->second;
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static auto* r = new TraceRecorder();
  return *r;
}

void TraceRecorder::enable(std::size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  total_ = 0;
  if (dropped_counter_ == nullptr) {
    dropped_counter_ = MetricRegistry::global().counter(
        "umon_telemetry_trace_dropped_spans_total", {},
        "Trace spans overwritten by the bounded ring (oldest-first)");
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::record(SpanEvent ev) {
  ev.tid = current_tid();
  std::lock_guard lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    // The ring wraps silently from the caller's perspective; make the loss
    // first-class so a too-small ring shows up in the end-of-run summary
    // instead of as a mysteriously truncated trace.
    ring_[total_ % capacity_] = ev;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
  }
  total_ += 1;
}

void TraceRecorder::record_complete(const char* name, const char* category,
                                    std::uint64_t ts_ns, std::uint64_t dur_ns,
                                    std::uint64_t lineage) {
  if (!enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'X';
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.lineage = lineage;
  record(ev);
}

void TraceRecorder::record_instant(const char* name, const char* category,
                                   std::uint64_t lineage) {
  if (!enabled()) return;
  SpanEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'i';
  ev.ts_ns = monotonic_ns();
  ev.lineage = lineage;
  record(ev);
}

std::vector<SpanEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  if (total_ <= ring_.size()) return ring_;
  // The ring wrapped: rotate so the oldest surviving event comes first.
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  const std::size_t head = total_ % capacity_;
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  total_ = 0;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<SpanEvent> events = snapshot();
  // Rebase onto the earliest event: raw monotonic timestamps are hours of
  // uptime, and default double formatting would round away the microseconds.
  std::uint64_t t0 = 0;
  for (const SpanEvent& ev : events) {
    if (t0 == 0 || ev.ts_ns < t0) t0 = ev.ts_ns;
  }
  char num[32];
  constexpr std::uint64_t kNsPerMicro = 1'000;
  const auto us = [&num](std::uint64_t ns) -> const char* {
    std::snprintf(num, sizeof(num), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / kNsPerMicro),
                  static_cast<unsigned long long>(ns % kNsPerMicro));
    return num;
  };
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.category
       << "\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << us(ev.ts_ns - t0);
    if (ev.phase == 'X') {
      os << ",\"dur\":" << us(ev.dur_ns);
    }
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    if (ev.lineage != 0) {
      // host << 32 | epoch: expose both halves as args so the viewer can
      // filter one report's chain, and "id" groups the flow arrows below.
      os << ",\"id\":" << ev.lineage << ",\"args\":{\"host\":"
         << (ev.lineage >> 32) << ",\"epoch\":" << (ev.lineage & 0xFFFFFFFFull)
         << "}";
    }
    os << "}";
  }
  // Stitch each lineage's events into one causal chain with flow events:
  // 's' (start) at the earliest event, 't' (step) at each middle one, 'f'
  // with bp:"e" (end, bind-enclosing) at the last — chrome://tracing and
  // Perfetto draw these as arrows across threads.
  std::map<std::uint64_t, std::vector<const SpanEvent*>> chains;
  for (const SpanEvent& ev : events) {
    if (ev.lineage != 0) chains[ev.lineage].push_back(&ev);
  }
  for (auto& [lineage, chain] : chains) {
    if (chain.size() < 2) continue;  // nothing to link
    std::stable_sort(chain.begin(), chain.end(),
                     [](const SpanEvent* a, const SpanEvent* b) {
                       return a->ts_ns < b->ts_ns;
                     });
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const SpanEvent& ev = *chain[i];
      const char ph =
          i == 0 ? 's' : (i + 1 == chain.size() ? 'f' : 't');
      os << ",{\"name\":\"lineage\",\"cat\":\"lineage\",\"ph\":\"" << ph
         << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":"
         << us(ev.ts_ns - t0) << ",\"id\":" << lineage;
      if (ph == 'f') os << ",\"bp\":\"e\"";
      os << "}";
    }
  }
  os << "]}\n";
}

}  // namespace umon::telemetry
