// umon::telemetry — exporters. Three formats over the same snapshot:
//   * write_prometheus: Prometheus text exposition (scrape endpoints, the CI
//     parse check, and grep-ability).
//   * write_text: aligned human dump for end-of-run summaries.
//   * write_jsonl: one JSON object per series per call, with a caller-chosen
//     sequence number — benches append one batch per epoch and get a
//     timeseries-of-snapshots file.
//
// All writers accept several registries and merge their samples by name, so
// a per-instance registry (e.g. one Collector's) exports alongside the
// global one.
#pragma once

#include <iosfwd>
#include <span>

#include "telemetry/metrics.hpp"

namespace umon::telemetry {

void write_prometheus(std::ostream& os,
                      std::span<const MetricRegistry* const> registries);
void write_text(std::ostream& os,
                std::span<const MetricRegistry* const> registries);
void write_jsonl(std::ostream& os,
                 std::span<const MetricRegistry* const> registries,
                 std::uint64_t sequence);

/// Merged, sorted samples from several registries (what the writers use).
[[nodiscard]] std::vector<MetricRegistry::Sample> merged_snapshot(
    std::span<const MetricRegistry* const> registries);

}  // namespace umon::telemetry
