#include "telemetry/log.hpp"

#include <cstdio>

#include "telemetry/metrics.hpp"

namespace umon::telemetry {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view s) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

Logger& Logger::global() {
  static auto* l = new Logger();
  return *l;
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard lock(sink_mu_);
  sink_ = std::move(sink);
}

void Logger::write(LogLevel level, const char* component,
                   std::string_view message,
                   std::initializer_list<LogField> fields,
                   std::uint64_t suppressed_before) {
  std::string line;
  line.reserve(64 + message.size());
  line.push_back('[');
  line.append(to_string(level));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(message);
  for (const LogField& f : fields) {
    line.push_back(' ');
    line.append(f.key);
    line.push_back('=');
    line.append(f.value);
  }
  if (suppressed_before > 0) {
    line.append(" suppressed=");
    line.append(std::to_string(suppressed_before));
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(sink_mu_);
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

bool LogSite::acquire(std::uint64_t* suppressed) {
  constexpr std::uint64_t kWindowNs = 1'000'000'000;
  const std::uint64_t now = monotonic_ns();
  std::uint64_t start = window_start_ns_.load(std::memory_order_relaxed);
  if (start == 0 || now - start >= kWindowNs) {
    // One caller wins the rollover; losers just count into the (new) window.
    if (window_start_ns_.compare_exchange_strong(start, now,
                                                std::memory_order_relaxed)) {
      in_window_.store(0, std::memory_order_relaxed);
    }
  }
  if (in_window_.fetch_add(1, std::memory_order_relaxed) >= kMaxPerWindow) {
    suppressed_since_emit_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *suppressed = suppressed_since_emit_.exchange(0, std::memory_order_relaxed);
  return true;
}

}  // namespace umon::telemetry
