#include "workload/cdf.hpp"

#include <algorithm>
#include <cassert>

namespace umon::workload {

SizeCdf::SizeCdf(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  assert(!points_.empty());
  assert(points_.back().second >= 0.999);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].first >= points_[i - 1].first);
    assert(points_[i].second >= points_[i - 1].second);
  }
}

double SizeCdf::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Find the first point with cumulative >= u and interpolate backwards.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const auto& p, double x) { return p.second < x; });
  if (it == points_.begin()) return points_.front().first;
  if (it == points_.end()) return points_.back().first;
  const auto& [x1, p1] = *it;
  const auto& [x0, p0] = *(it - 1);
  if (p1 == p0) return x1;
  return x0 + (x1 - x0) * (u - p0) / (p1 - p0);
}

double SizeCdf::mean() const {
  // Piecewise-linear CDF => uniform density within each segment; the
  // segment's contribution is its probability mass times its midpoint.
  double m = points_.front().first * points_.front().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].second - points_[i - 1].second;
    m += mass * (points_[i].first + points_[i - 1].first) / 2.0;
  }
  return m;
}

double SizeCdf::cdf(double x) const {
  if (x <= points_.front().first) return x < points_.front().first ? 0.0 : points_.front().second;
  if (x >= points_.back().first) return 1.0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const auto& p, double v) { return p.first < v; });
  const auto& [x1, p1] = *it;
  const auto& [x0, p0] = *(it - 1);
  if (x1 == x0) return p1;
  return p0 + (p1 - p0) * (x - x0) / (x1 - x0);
}

SizeCdf websearch_cdf() {
  // Byte-level approximation of the DCTCP web-search workload: a wide range
  // from a few KB to 30 MB, with ~30% of flows above 1 MB. Mean ~1.7 MB so
  // a 15%-load run over 20 ms with 16x100 Gbps hosts yields a few hundred
  // flows, matching Table 2's WebSearch row.
  return SizeCdf({
      {1e3, 0.00},
      {5e3, 0.10},
      {1e4, 0.15},
      {2e4, 0.20},
      {3e4, 0.30},
      {5e4, 0.40},
      {8e4, 0.53},
      {2e5, 0.60},
      {1e6, 0.70},
      {2e6, 0.80},
      {5e6, 0.90},
      {1e7, 0.97},
      {3e7, 1.00},
  });
}

SizeCdf hadoop_cdf() {
  // Byte-level approximation of the Facebook Hadoop workload: dominated by
  // sub-10 KB flows with a tail to ~10 MB. Mean ~190 KB, giving ~13x the
  // WebSearch flow count at equal load (Table 2).
  return SizeCdf({
      {1.3e2, 0.00},
      {3e2, 0.10},
      {5e2, 0.30},
      {1e3, 0.50},
      {2e3, 0.60},
      {5e3, 0.70},
      {1e4, 0.80},
      {5e4, 0.90},
      {2e5, 0.95},
      {1e6, 0.98},
      {5e6, 0.995},
      {1e7, 1.00},
  });
}

}  // namespace umon::workload
