#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace umon::workload {

Workload generate(const SizeCdf& cdf, const WorkloadParams& params) {
  Rng rng(params.seed);
  Workload out;
  out.mean_flow_bytes = cdf.mean();

  // Aggregate byte budget for the period and the matching Poisson rate.
  const double total_bytes = static_cast<double>(params.hosts) *
                             params.host_link_gbps * params.load *
                             static_cast<double>(params.duration) / 8.0;
  const double expected_flows = total_bytes / out.mean_flow_bytes;
  const double mean_gap_ns =
      static_cast<double>(params.duration) / expected_flows;

  double t = 0;
  std::uint32_t id = 0;
  while (true) {
    t += rng.exponential(mean_gap_ns);
    if (t >= static_cast<double>(params.duration)) break;
    netsim::FlowSpec spec;
    spec.src_host = static_cast<int>(rng.below(static_cast<std::uint64_t>(params.hosts)));
    do {
      spec.dst_host = static_cast<int>(rng.below(static_cast<std::uint64_t>(params.hosts)));
    } while (spec.dst_host == spec.src_host);
    spec.bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(cdf.sample(rng))));
    spec.start_time = static_cast<Nanos>(t);
    spec.key.src_ip = 0x0A000000u | static_cast<std::uint32_t>(spec.src_host);
    spec.key.dst_ip = 0x0A000000u | static_cast<std::uint32_t>(spec.dst_host);
    spec.key.src_port = static_cast<std::uint16_t>(params.base_port + (id % 50000));
    spec.key.dst_port = 4791;
    spec.key.proto = 17;
    ++id;
    out.flows.push_back(spec);
  }
  return out;
}

std::string to_string(WorkloadKind kind) {
  return kind == WorkloadKind::kWebSearch ? "WebSearch" : "Facebook Hadoop";
}

Workload generate(WorkloadKind kind, const WorkloadParams& params) {
  return generate(
      kind == WorkloadKind::kWebSearch ? websearch_cdf() : hadoop_cdf(),
      params);
}

void install(const Workload& w, netsim::Network& net) {
  for (const auto& f : w.flows) net.start_flow(f);
}

std::vector<double> interarrival_per_port(const Workload& w) {
  std::map<int, std::vector<Nanos>> arrivals;
  for (const auto& f : w.flows) {
    arrivals[f.dst_host].push_back(f.start_time);
  }
  std::vector<double> gaps;
  for (auto& [host, times] : arrivals) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(static_cast<double>(times[i] - times[i - 1]));
    }
  }
  return gaps;
}

}  // namespace umon::workload
