// Piecewise-linear inverse-CDF sampling of empirical flow-size
// distributions, as used by the paper's simulation workloads.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace umon::workload {

/// An empirical distribution given as (value, cumulative probability)
/// points with probabilities nondecreasing and ending at 1.0. Sampling
/// interpolates linearly between points (log-linear would change little
/// at these point densities).
class SizeCdf {
 public:
  SizeCdf() = default;
  explicit SizeCdf(std::vector<std::pair<double, double>> points);

  /// Inverse-CDF sample.
  [[nodiscard]] double sample(Rng& rng) const;

  /// Analytic mean of the piecewise-linear distribution.
  [[nodiscard]] double mean() const;

  /// CDF value at x (for plots / tests).
  [[nodiscard]] double cdf(double x) const;

  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

/// DCTCP WebSearch flow-size distribution [Alizadeh et al., SIGCOMM'10]:
/// large flows dominate bytes (mean ~= 1.7 MB).
SizeCdf websearch_cdf();

/// Facebook Hadoop flow-size distribution [Roy et al., SIGCOMM'15]: mostly
/// small flows with a moderate tail (mean ~= 190 KB), so at equal load it
/// produces an order of magnitude more flows than WebSearch (Table 2).
SizeCdf hadoop_cdf();

}  // namespace umon::workload
