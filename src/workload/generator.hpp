// Workload generation: Poisson flow arrivals sized to a target link load,
// with flow sizes drawn from an empirical CDF and endpoints placed uniformly
// at random (Appendix D).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "netsim/network.hpp"
#include "workload/cdf.hpp"

namespace umon::workload {

struct WorkloadParams {
  int hosts = 16;
  double host_link_gbps = 100.0;
  double load = 0.15;             ///< fraction of aggregate host bandwidth
  Nanos duration = 20 * kMilli;   ///< measurement period (20 ms in the paper)
  std::uint64_t seed = 7;
  std::uint16_t base_port = 10000;
};

/// A generated workload: the flow list plus its nominal statistics.
struct Workload {
  std::vector<netsim::FlowSpec> flows;
  double mean_flow_bytes = 0;

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& f : flows) sum += f.bytes;
    return sum;
  }
};

/// Draw a workload from `cdf` hitting the target load in expectation.
Workload generate(const SizeCdf& cdf, const WorkloadParams& params);

/// Named workload presets matching the paper's six simulation settings.
enum class WorkloadKind { kWebSearch, kHadoop };
[[nodiscard]] std::string to_string(WorkloadKind kind);
Workload generate(WorkloadKind kind, const WorkloadParams& params);

/// Start every flow of a workload on a network.
void install(const Workload& w, netsim::Network& net);

/// Flow inter-arrival times grouped per destination host (the paper's
/// "ToR switch port" vantage for Figure 16b), in nanoseconds.
std::vector<double> interarrival_per_port(const Workload& w);

}  // namespace umon::workload
