// A structural resource model of the WaveSketch PISA (Tofino2-class)
// implementation, used to regenerate Table 1 and to explore how resource
// usage scales with the sketch configuration.
//
// The model counts, per pipeline primitive of Figure 7:
//  * one stateful ALU (SALU) per register variable touched per bucket array
//    (w0, i, c, approx, per-level details, the two parity filters),
//  * SRAM blocks from the register array footprints,
//  * match crossbar bytes, hash bits and gateways for the table lookups,
//  * VLIW instructions for the arithmetic in each stage.
//
// Capacities are Tofino2-class per-pipeline totals; with the paper's default
// configuration (heavy h=256 L=8 K=64, light w=256 L=8 K=64 d=1) the model
// reproduces the percentages reported in Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/params.hpp"

namespace umon::pisa {

struct ChipCapacity {
  // Per-pipeline totals for a Tofino2-class switch chip.
  std::uint32_t exact_match_xbar = 2048;
  std::uint32_t hash_bits = 6656;
  std::uint32_t gateways = 256;
  std::uint32_t sram_blocks = 1300;
  std::uint32_t map_ram_blocks = 784;
  std::uint32_t vliw_instructions = 512;
  std::uint32_t stateful_alus = 64;
};

struct ResourceUsage {
  std::uint32_t exact_match_xbar = 0;
  std::uint32_t hash_bits = 0;
  std::uint32_t gateways = 0;
  std::uint32_t sram_blocks = 0;
  std::uint32_t map_ram_blocks = 0;
  std::uint32_t vliw_instructions = 0;
  std::uint32_t stateful_alus = 0;
};

struct ResourceRow {
  std::string name;
  std::uint32_t usage = 0;
  double percentage = 0;  ///< usage / capacity
};

/// Estimate the footprint of a full WaveSketch (heavy + light part).
ResourceUsage estimate(const sketch::WaveSketchParams& params);

/// Table 1 rows for a usage estimate against a chip capacity.
std::vector<ResourceRow> table(const ResourceUsage& usage,
                               const ChipCapacity& cap = ChipCapacity{});

}  // namespace umon::pisa
