#include "pisa/resources.hpp"

namespace umon::pisa {
namespace {

// Structural register-array counts per Figure 7. Every array needs its own
// stateful ALU, so these drive most resources.
//   heavy part: key, vote, w0, i, c, approx, L per-level details, and two
//               parity filter queues at {storage, tail, threshold} each.
//   light part: the same minus key/vote, once per hash row.
std::uint32_t heavy_arrays(const sketch::WaveSketchParams& p) {
  return 2 + 4 + static_cast<std::uint32_t>(p.levels) + 6;
}
std::uint32_t light_arrays(const sketch::WaveSketchParams& p) {
  return (4 + static_cast<std::uint32_t>(p.levels) + 6) *
         static_cast<std::uint32_t>(p.depth);
}

// Calibration constants fitted once against the paper's Tofino2 compiler
// report (Table 1, config: heavy h=256 L=8 K=64, light w=256 L=8 K=64 d=1).
// They cover fixed pipeline logic (period management, report export,
// resubmission) that does not scale with the sketch geometry.
constexpr std::uint32_t kSaluFixed = 11;
constexpr std::uint32_t kSramPerArray = 3;
constexpr std::uint32_t kSramFixed = 20;
constexpr std::uint32_t kMapRamPerArray = 2;
constexpr std::uint32_t kMapRamFixed = 22;
constexpr std::uint32_t kHashBitsPerArray = 8;   // register index bits
constexpr std::uint32_t kHashFixed = 240;        // salts / selection
constexpr std::uint32_t kFlowKeyBytes = 13;
constexpr std::uint32_t kXbarPerArray = 6;
constexpr std::uint32_t kGatewayFixed = 13;

}  // namespace

ResourceUsage estimate(const sketch::WaveSketchParams& p) {
  const std::uint32_t arrays = heavy_arrays(p) + light_arrays(p);
  const auto d1 = static_cast<std::uint32_t>(p.depth) + 1;  // light rows + heavy

  ResourceUsage u;
  u.stateful_alus = arrays + kSaluFixed;
  u.sram_blocks = arrays * kSramPerArray + kSramFixed;
  u.map_ram_blocks = arrays * kMapRamPerArray + kMapRamFixed;
  u.hash_bits = kFlowKeyBytes * 8 * d1 + kHashBitsPerArray * arrays + kHashFixed;
  u.exact_match_xbar = kFlowKeyBytes * d1 + kXbarPerArray * (arrays - 1);
  // One gateway (branch) per level comparison in each part, the window
  // judge, and the parity filters.
  u.gateways = 2 * static_cast<std::uint32_t>(p.levels) + kGatewayFixed;
  // VLIW: one move per array, two shift/compare ops per level per part, and
  // fixed header handling.
  u.vliw_instructions =
      arrays + 4 * static_cast<std::uint32_t>(p.levels) + 5;
  return u;
}

std::vector<ResourceRow> table(const ResourceUsage& u,
                               const ChipCapacity& cap) {
  auto pct = [](std::uint32_t used, std::uint32_t total) {
    return 100.0 * static_cast<double>(used) / static_cast<double>(total);
  };
  return {
      {"Exact Match Input xbar", u.exact_match_xbar,
       pct(u.exact_match_xbar, cap.exact_match_xbar)},
      {"Hash Bit", u.hash_bits, pct(u.hash_bits, cap.hash_bits)},
      {"Gateway", u.gateways, pct(u.gateways, cap.gateways)},
      {"SRAM", u.sram_blocks, pct(u.sram_blocks, cap.sram_blocks)},
      {"Map RAM", u.map_ram_blocks, pct(u.map_ram_blocks, cap.map_ram_blocks)},
      {"VLIW Instr", u.vliw_instructions,
       pct(u.vliw_instructions, cap.vliw_instructions)},
      {"Stateful ALU", u.stateful_alus,
       pct(u.stateful_alus, cap.stateful_alus)},
  };
}

}  // namespace umon::pisa
