// Extension bench (Section 5, last paragraph): the commodity-switch ACL
// mirror path vs a programmable-switch in-band detector (ConQuest-style
// queue observation with batched reports) and vs ACL + de-duplication.
// Compares recall, flow coverage, and report bandwidth.
#include <cstdio>
#include <map>

#include "bench/support/driver.hpp"
#include "uevent/detector.hpp"
#include "uevent/inband.hpp"

int main() {
  using namespace umon;
  bench::print_header(
      "Extension: ACL mirror vs programmable in-band detection");

  bench::SimOptions opt;
  opt.kind = workload::WorkloadKind::kWebSearch;
  opt.load = 0.35;
  opt.duration = 20 * kMilli;
  opt.seed = 21;

  // The in-band watcher needs the queue-observer hook, so run a dedicated
  // sim with all detectors attached simultaneously.
  netsim::NetworkConfig cfg;
  cfg.queue_sample_interval = 0;
  cfg.seed = opt.seed;
  auto net = netsim::Network::fat_tree(cfg, 4);

  std::vector<uevent::MirroredPacket> ce_stream;
  uevent::QueueWatcher watcher(/*threshold=*/20 * 1024);
  uevent::DedupFilter dedup(50 * kMicro);
  std::uint64_t dedup_mirrors = 0;
  net->set_switch_enqueue_hook(
      [&](netsim::PortId port, const PacketRecord& pkt) {
        if (pkt.ecn != Ecn::kCe) return;
        uevent::MirroredPacket m;
        m.pkt = pkt;
        m.switch_id = port.node;
        m.egress_port = port.port;
        m.switch_timestamp = pkt.timestamp;
        ce_stream.push_back(m);
        if (dedup.admit(port, pkt.flow, pkt.timestamp)) ++dedup_mirrors;
      });
  net->set_queue_observer_hook(
      [&](netsim::PortId port, std::uint64_t qbytes, const PacketRecord& pkt) {
        watcher.observe(port, qbytes, pkt);
      });

  workload::WorkloadParams wp;
  wp.hosts = net->host_count();
  wp.load = opt.load;
  wp.duration = opt.duration;
  wp.seed = opt.seed;
  const workload::Workload w = workload::generate(opt.kind, wp);
  workload::install(w, *net);
  net->run_until(opt.duration + 5 * kMilli);
  net->finish();
  watcher.finish(net->now());

  // Ground truth severity buckets.
  const auto episodes = net->all_episodes();
  std::size_t severe = 0;
  for (const auto& ep : episodes) severe += ep.max_bytes >= 200 * 1024;

  const double seconds = static_cast<double>(opt.duration) / 1e9;
  auto mbps = [&](double bytes) { return bytes * 8 / seconds / 1e6; };

  std::printf("workload: WebSearch 35%%, episodes %zu (severe %zu)\n\n",
              episodes.size(), severe);
  std::printf("%-34s %10s %12s %14s\n", "detector", "events",
              "flows/event", "bandwidth");

  // (1) ACL mirror, 1/64 sampling.
  {
    uevent::EventScorer scorer;
    for (const auto& m : bench::sample_stream(ce_stream, 6)) scorer.collect(m);
    const auto scores = scorer.score(*net);
    std::size_t detected = 0;
    double flows = 0;
    std::size_t n = 0;
    for (const auto& s : scores) {
      if (s.max_queue_bytes < 200 * 1024) continue;
      detected += s.detected;
      flows += static_cast<double>(s.captured_flows);
      ++n;
    }
    std::printf("%-34s %10zu %12.1f %11.1f Mbps  (severe recall %.3f)\n",
                "ACL mirror 1/64", scorer.mirrored_count(),
                n ? flows / static_cast<double>(n) : 0,
                mbps(static_cast<double>(scorer.mirrored_count()) *
                     uevent::MirroredPacket::kWireBytes),
                n ? static_cast<double>(detected) / static_cast<double>(n)
                  : 0.0);
  }

  // (2) ACL mirror + per-flow dedup (50 us suppression), unsampled.
  std::printf("%-34s %10llu %12s %11.1f Mbps  (suppressed %.1f%%)\n",
              "ACL mirror + dedup (50 us)",
              static_cast<unsigned long long>(dedup_mirrors), "-",
              mbps(static_cast<double>(dedup_mirrors) *
                   uevent::MirroredPacket::kWireBytes),
              100.0 * static_cast<double>(dedup.suppressed()) /
                  static_cast<double>(std::max<std::uint64_t>(1, dedup.seen())));

  // (3) In-band queue watcher with batched reports.
  {
    double flows = 0;
    for (const auto& ev : watcher.events()) {
      flows += static_cast<double>(ev.contributions.size());
    }
    std::printf("%-34s %10zu %12.1f %11.3f Mbps  (exact queue vantage)\n",
                "in-band watcher (batched)", watcher.events().size(),
                watcher.events().empty()
                    ? 0
                    : flows / static_cast<double>(watcher.events().size()),
                mbps(static_cast<double>(watcher.report_bytes())));
  }

  std::printf(
      "\nThe in-band detector sees every event exactly (it reads the queue) "
      "and batching\ncuts bandwidth by orders of magnitude — the paper's "
      "argument for adopting\nprogrammable-switch designs where available, "
      "with the ACL path as the commodity fallback.\n");
  return 0;
}
