// bench_obs_overhead: cost of the always-on cycle profiler (umon::obs).
//
//   bench_obs_overhead [--ms N] [--max-overhead-pct X] [--max-disabled-ns Y]
//
// Two contracts, both CI-gated:
//
//   * disabled path: a UMON_PROF_SCOPE on a hot path must cost one relaxed
//     load and a branch when profiling is off — measured as ns/op over a
//     tight scope-construction loop, gated by --max-disabled-ns (CI: 5 ns,
//     the same budget as the telemetry shims);
//   * enabled path: with sampling on, the full chunked pipeline (sketch
//     updates through collector decode and analyzer ingest — every
//     instrumented stage on its real call path) must stay within
//     --max-overhead-pct of its uninstrumented wall time (CI: 2%).
//
// Best-of-3 per mode: scheduling noise only ever inflates a run. The
// enabled/disabled pipeline runs alternate so frequency drift lands on
// both modes evenly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "collector/collector.hpp"
#include "collector/uplink.hpp"
#include "netsim/network.hpp"
#include "netsim/upload_channel.hpp"
#include "obs/prof.hpp"
#include "sketch/wavesketch_full.hpp"
#include "telemetry/metrics.hpp"
#include "workload/generator.hpp"

namespace {

using namespace umon;

/// One chunked pipeline run; returns wall nanoseconds of the driver loop.
/// Identical to the bench_health_overhead pipeline minus health, so the
/// enabled-vs-disabled delta isolates exactly what sampling adds.
double run_once(Nanos duration, bool with_prof) {
  netsim::NetworkConfig cfg;
  cfg.queue_sample_interval = 0;
  cfg.seed = 7;
  auto net = netsim::Network::fat_tree(cfg, 4);

  sketch::WaveSketchParams sp;
  sp.depth = 3;
  sp.width = 256;
  sp.levels = 8;
  sp.k = 64;
  std::vector<std::unique_ptr<sketch::WaveSketchFull>> sketches;
  for (int h = 0; h < net->host_count(); ++h) {
    sketches.push_back(std::make_unique<sketch::WaveSketchFull>(sp));
  }

  analyzer::Analyzer an;
  collector::CollectorConfig ccfg;
  ccfg.shards = 2;
  collector::Collector col(ccfg, an);
  netsim::UploadChannelConfig ucfg;
  ucfg.seed = 7;
  netsim::UploadChannel channel(
      ucfg, [&col](netsim::UploadChannel::Delivery&& d) {
        (void)col.submit_report_payload(d.host, d.epoch, std::move(d.payload));
      });

  net->set_host_tx_hook([&](int host, const PacketRecord& r) {
    sketches[static_cast<std::size_t>(host)]->update(
        r.flow, r.timestamp, static_cast<Count>(r.size));
  });

  workload::WorkloadParams wp;
  wp.hosts = net->host_count();
  wp.load = 0.15;
  wp.duration = duration;
  wp.seed = 7;
  workload::Workload w =
      workload::generate(workload::WorkloadKind::kHadoop, wp);
  workload::install(w, *net);

  col.start();
  std::vector<collector::HostUplink> uplinks;
  for (int h = 0; h < net->host_count(); ++h) {
    uplinks.emplace_back(h, 64);
  }
  struct PendingSeal {
    int host;
    std::uint32_t epoch;
    std::uint32_t end_seq;
  };
  std::vector<PendingSeal> awaiting;
  const Nanos tick = 500 * kMicro;
  const Nanos horizon = duration + 5 * kMilli;

  // Calibration (~2 ms spin) happens outside the timed region: it is a
  // one-time startup cost, not a per-run tax.
  if (with_prof) obs::prof_enable();

  const std::uint64_t t0 = telemetry::monotonic_ns();
  for (Nanos t = tick; ; t += tick) {
    if (t > horizon) t = horizon;
    net->run_until(t);
    channel.advance_to(t);
    for (const PendingSeal& s : awaiting) {
      col.seal_epoch(s.host, s.epoch, s.end_seq);
    }
    awaiting.clear();
    for (int h = 0; h < net->host_count(); ++h) {
      auto up = uplinks[static_cast<std::size_t>(h)].flush_epoch(
          *sketches[static_cast<std::size_t>(h)]);
      for (auto& p : up.payloads) {
        // umon-lint: allow(UL006) — obs bench isolates the legacy path
        (void)channel.send(h, up.epoch, std::move(p.bytes), t);
      }
      awaiting.push_back({h, up.epoch, up.end_seq});
    }
    col.drain();
    if (t >= horizon) break;
  }
  net->finish();
  channel.flush();
  for (const PendingSeal& s : awaiting) {
    col.seal_epoch(s.host, s.epoch, s.end_seq);
  }
  col.stop();
  const double ns = static_cast<double>(telemetry::monotonic_ns() - t0);
  if (with_prof) obs::prof_disable();
  return ns;
}

/// ns/op of a disabled UMON_PROF_SCOPE, best of 3.
double disabled_scope_ns() {
  constexpr std::uint64_t kIters = 5'000'000;
  obs::prof_disable();
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t t0 = telemetry::monotonic_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      UMON_PROF_SCOPE(kCmUpdate);
    }
    const std::uint64_t t1 = telemetry::monotonic_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(kIters);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Nanos duration = 10 * kMilli;
  double max_overhead_pct = 0;  // 0 = report only
  double max_disabled_ns = 0;   // 0 = report only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ms") == 0 && i + 1 < argc) {
      duration = static_cast<Nanos>(std::atof(argv[++i]) * 1e6);
    } else if (std::strcmp(argv[i], "--max-overhead-pct") == 0 &&
               i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-disabled-ns") == 0 &&
               i + 1 < argc) {
      max_disabled_ns = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_obs_overhead [--ms N] "
                   "[--max-overhead-pct X] [--max-disabled-ns Y]\n");
      return 2;
    }
  }

  const double scope_ns = disabled_scope_ns();

  // Warm both paths once (page cache, allocator, thread pools).
  (void)run_once(2 * kMilli, false);
  (void)run_once(2 * kMilli, true);

  double bare = 1e18, prof = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const double b = run_once(duration, false);
    const double p = run_once(duration, true);
    if (b < bare) bare = b;
    if (p < prof) prof = p;
  }
  const double overhead_pct = (prof - bare) / bare * 100.0;

  std::printf("cycle profiler overhead (%.0f ms sim, best of 3)\n",
              static_cast<double>(duration) / 1e6);
  std::printf("  disabled scope:   %8.2f ns/op\n", scope_ns);
  std::printf("  bare pipeline:    %8.2f ms\n", bare / 1e6);
  std::printf("  with profiling:   %8.2f ms\n", prof / 1e6);
  std::printf("  overhead:         %8.2f %%\n", overhead_pct);

  bool fail = false;
  if (max_disabled_ns > 0) {
    const bool over = scope_ns > max_disabled_ns;
    std::printf("disabled budget: %.2f ns/op -> %s\n", max_disabled_ns,
                over ? "FAIL" : "OK");
    fail = fail || over;
  }
  if (max_overhead_pct > 0) {
    const bool over = overhead_pct > max_overhead_pct;
    std::printf("enabled budget: %.2f %% -> %s\n", max_overhead_pct,
                over ? "FAIL" : "OK");
    fail = fail || over;
  }
  return fail ? 1 : 0;
}
