// bench_uplink_reliability: cost of the reliable uplink protocol.
//
//   bench_uplink_reliability [--ms N] [--max-overhead-pct X]
//
// Runs the same chunked simulation + collection pipeline twice over a
// *lossless* wire — once in passthrough mode (the legacy fire-and-forget
// uplink) and once with the reliable protocol enabled (CRC32C framing,
// per-frame retransmit bookkeeping, cumulative acks over the reverse
// channel, dedup state). With zero loss no frame is ever retransmitted, so
// the delta isolates exactly what --uplink-reliable adds per payload: the
// frame encode + CRC on the host, the decode + CRC + ack on the collector
// side, and the ack decode back on the host. Best-of-3 per mode:
// scheduling noise only ever inflates a run.
//
// With --max-overhead-pct the process exits 1 when the overhead exceeds
// the budget — CI gates at 10%.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "collector/collector.hpp"
#include "collector/uplink.hpp"
#include "netsim/network.hpp"
#include "netsim/upload_channel.hpp"
#include "resilience/reliable.hpp"
#include "sketch/wavesketch_full.hpp"
#include "telemetry/metrics.hpp"
#include "workload/generator.hpp"

namespace {

using namespace umon;

/// One chunked pipeline run; returns wall nanoseconds of the driver loop.
double run_once(Nanos duration, bool reliable) {
  netsim::NetworkConfig cfg;
  cfg.queue_sample_interval = 0;
  cfg.seed = 7;
  auto net = netsim::Network::fat_tree(cfg, 4);

  sketch::WaveSketchParams sp;
  sp.depth = 3;
  sp.width = 256;
  sp.levels = 8;
  sp.k = 64;
  std::vector<std::unique_ptr<sketch::WaveSketchFull>> sketches;
  for (int h = 0; h < net->host_count(); ++h) {
    sketches.push_back(std::make_unique<sketch::WaveSketchFull>(sp));
  }

  analyzer::Analyzer an;
  collector::CollectorConfig ccfg;
  ccfg.shards = 2;
  collector::Collector col(ccfg, an);

  netsim::UploadChannelConfig ucfg;
  ucfg.seed = 7;
  netsim::UploadChannel forward(ucfg, nullptr);
  netsim::UploadChannelConfig rcfg;
  rcfg.seed = 7 ^ 0xAC4BAC4ULL;
  netsim::UploadChannel reverse(rcfg, nullptr);

  resilience::ReliableConfig rlcfg;
  rlcfg.enabled = reliable;
  resilience::ReliableLink link(rlcfg, forward, &reverse);
  forward.set_sink([&link](netsim::UploadChannel::Delivery&& d) {
    link.on_forward_delivery(std::move(d));
  });
  reverse.set_sink([&link](netsim::UploadChannel::Delivery&& d) {
    link.on_reverse_delivery(std::move(d));
  });
  link.set_deliver_hook([&col](int host, std::uint32_t epoch,
                               std::vector<std::uint8_t>&& payload) {
    (void)col.submit_report_payload(host, epoch, std::move(payload));
  });

  net->set_host_tx_hook([&](int host, const PacketRecord& r) {
    sketches[static_cast<std::size_t>(host)]->update(
        r.flow, r.timestamp, static_cast<Count>(r.size));
  });

  workload::WorkloadParams wp;
  wp.hosts = net->host_count();
  wp.load = 0.15;
  wp.duration = duration;
  wp.seed = 7;
  workload::Workload w =
      workload::generate(workload::WorkloadKind::kHadoop, wp);
  workload::install(w, *net);

  col.start();
  std::vector<collector::HostUplink> uplinks;
  for (int h = 0; h < net->host_count(); ++h) {
    uplinks.emplace_back(h, 64);
  }
  struct PendingSeal {
    int host;
    std::uint32_t epoch;
    std::uint32_t end_seq;
  };
  std::vector<PendingSeal> awaiting;
  const Nanos tick = 500 * kMicro;
  const Nanos horizon = duration + 5 * kMilli;

  const std::uint64_t t0 = telemetry::monotonic_ns();
  for (Nanos t = tick; ; t += tick) {
    if (t > horizon) t = horizon;
    net->run_until(t);
    forward.advance_to(t);
    reverse.advance_to(t);
    link.tick(t);
    for (const PendingSeal& s : awaiting) {
      col.seal_epoch(s.host, s.epoch, s.end_seq);
    }
    awaiting.clear();
    for (int h = 0; h < net->host_count(); ++h) {
      auto up = uplinks[static_cast<std::size_t>(h)].flush_epoch(
          *sketches[static_cast<std::size_t>(h)]);
      for (auto& p : up.payloads) {
        link.send(h, up.epoch, std::move(p.bytes), t);
      }
      awaiting.push_back({h, up.epoch, up.end_seq});
    }
    col.drain();
    if (t >= horizon) break;
  }
  net->finish();
  forward.flush();
  reverse.flush();
  link.tick(horizon + tick);
  for (const PendingSeal& s : awaiting) {
    col.seal_epoch(s.host, s.epoch, s.end_seq);
  }
  col.stop();
  const double elapsed =
      static_cast<double>(telemetry::monotonic_ns() - t0);

  // A lossless reliable run must be loss-free end to end, or the two modes
  // are not comparable (and the protocol is broken).
  if (reliable) {
    const auto st = link.stats();
    if (st.epochs_unrecovered != 0 || st.frames_retransmitted != 0) {
      std::fprintf(stderr,
                   "lossless reliable run lost data: %llu unrecovered, "
                   "%llu retransmits\n",
                   static_cast<unsigned long long>(st.epochs_unrecovered),
                   static_cast<unsigned long long>(st.frames_retransmitted));
      std::exit(2);
    }
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  Nanos duration = 10 * kMilli;
  double max_overhead_pct = 0;  // 0 = report only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ms") == 0 && i + 1 < argc) {
      duration = static_cast<Nanos>(std::atof(argv[++i]) * 1e6);
    } else if (std::strcmp(argv[i], "--max-overhead-pct") == 0 &&
               i + 1 < argc) {
      max_overhead_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_uplink_reliability [--ms N] "
                   "[--max-overhead-pct X]\n");
      return 2;
    }
  }

  // Warm both paths once (page cache, allocator, thread pools).
  (void)run_once(2 * kMilli, false);
  (void)run_once(2 * kMilli, true);

  double bare = 1e18, framed = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const double b = run_once(duration, false);
    const double f = run_once(duration, true);
    if (b < bare) bare = b;
    if (f < framed) framed = f;
  }
  const double overhead_pct = (framed - bare) / bare * 100.0;

  std::printf("reliable uplink overhead (%.0f ms sim, lossless, best of 3)\n",
              static_cast<double>(duration) / 1e6);
  std::printf("  passthrough uplink: %8.2f ms\n", bare / 1e6);
  std::printf("  reliable uplink:    %8.2f ms\n", framed / 1e6);
  std::printf("  overhead:           %8.2f %%\n", overhead_pct);
  if (max_overhead_pct > 0) {
    const bool over = overhead_pct > max_overhead_pct;
    std::printf("budget: %.2f %% -> %s\n", max_overhead_pct,
                over ? "FAIL" : "OK");
    return over ? 1 : 0;
  }
  return 0;
}
