// bench_telemetry_overhead: per-event cost of the telemetry hot paths.
//
//   bench_telemetry_overhead [--max-disabled-ns X]
//
// Measures ns/op for the instruments the pipeline leaves on in production
// (counter inc) and for the detail-gated probes in both states. The
// disabled-path numbers are the contract: instrumented code must cost one
// relaxed atomic add (counters) or one relaxed load + branch (timers, spans,
// logs) when self-monitoring is off. With --max-disabled-ns the process
// exits 1 if any disabled-path op exceeds the budget — CI's regression gate.
//
// Measurement shape: repetitions are *interleaved* round-robin across every
// probe (round 1 times each probe once, then round 2, ...) instead of
// timing one probe's repetitions back to back. Back-to-back repetitions let
// slow frequency/thermal drift land entirely on whichever probe ran last,
// which skewed probe-to-probe comparisons by up to ±7% run over run; with
// interleaving every probe samples the same machine states. Each probe's
// score is a median of per-round medians (chunked within a round), so a
// single descheduled chunk cannot drag a probe the way it dragged
// best-of-3.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace {

using namespace umon;

constexpr std::uint64_t kWarmup = 50'000;
constexpr std::uint64_t kChunkIters = 200'000;
constexpr int kChunks = 5;  ///< chunks per round; the round scores a median
constexpr int kRounds = 5;  ///< interleaved rounds; final = median of rounds

/// One timed chunk of kChunkIters calls.
template <typename Op>
double chunk_ns(Op&& op) {
  const std::uint64_t t0 = telemetry::monotonic_ns();
  for (std::uint64_t i = 0; i < kChunkIters; ++i) op(i);
  const std::uint64_t t1 = telemetry::monotonic_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(kChunkIters);
}

/// One round: a short warmup then the median over kChunks timed chunks.
template <typename Op>
double round_median(Op&& op) {
  for (std::uint64_t i = 0; i < kWarmup; ++i) op(i);
  std::array<double, kChunks> s{};
  for (int c = 0; c < kChunks; ++c) s[static_cast<std::size_t>(c)] = chunk_ns(op);
  std::nth_element(s.begin(), s.begin() + kChunks / 2, s.end());
  return s[kChunks / 2];
}

double median_of(std::array<double, kRounds>& s) {
  std::nth_element(s.begin(), s.begin() + kRounds / 2, s.end());
  return s[kRounds / 2];
}

}  // namespace

int main(int argc, char** argv) {
  double max_disabled_ns = 0;  // 0 = report only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-disabled-ns") == 0 && i + 1 < argc) {
      max_disabled_ns = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_telemetry_overhead [--max-disabled-ns X]\n");
      return 2;
    }
  }

  auto& reg = telemetry::MetricRegistry::global();
  telemetry::Counter* counter =
      reg.counter("umon_bench_ops_total", {}, "bench counter");
  telemetry::Histogram* hist =
      reg.histogram("umon_bench_lat_us", telemetry::Histogram::latency_us_bounds(),
                    {}, "bench histogram");
  telemetry::Logger::global().set_level(telemetry::LogLevel::kWarn);
  telemetry::set_detail_enabled(false);
  telemetry::TraceRecorder::global().disable();

  // The counter's contract is "exactly one relaxed fetch_add", so it is
  // gated against a raw std::atomic baseline (same instruction, no registry
  // in the path) rather than an absolute number: the cost of a locked add
  // varies several-fold across machines and must not fail CI on slow metal.
  std::atomic<std::uint64_t> raw{0};

  // One sample array per probe; round r of every probe runs before round
  // r+1 of any probe (the interleaving that kills layout/drift bias).
  std::array<double, kRounds> s_raw{}, s_counter{}, s_timer_off{},
      s_span_off{}, s_log{}, s_hist{}, s_timer_on{}, s_span_on{};
  for (int r = 0; r < kRounds; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    s_raw[ri] = round_median([&raw](std::uint64_t) {
      raw.fetch_add(1, std::memory_order_relaxed);
    });
    s_counter[ri] = round_median([&](std::uint64_t) { counter->inc(); });
    s_timer_off[ri] =
        round_median([&](std::uint64_t) { telemetry::ScopedTimer t(hist); });
    s_span_off[ri] =
        round_median([](std::uint64_t) { UMON_TRACE_SPAN("bench/span"); });
    s_log[ri] = round_median([](std::uint64_t i) {
      UMON_LOG(kDebug, "bench", "never", {"i", std::to_string(i)});
    });
    s_hist[ri] = round_median(
        [&](std::uint64_t i) { hist->observe(static_cast<double>(i % 512)); });
    telemetry::set_detail_enabled(true);
    s_timer_on[ri] =
        round_median([&](std::uint64_t) { telemetry::ScopedTimer t(hist); });
    telemetry::TraceRecorder::global().enable(1 << 12);
    s_span_on[ri] =
        round_median([](std::uint64_t) { UMON_TRACE_SPAN("bench/span"); });
    telemetry::TraceRecorder::global().disable();
    telemetry::set_detail_enabled(false);
  }

  const double baseline_ns = median_of(s_raw);
  const double counter_ns = median_of(s_counter);

  struct Row {
    const char* name;
    double ns;
    bool gated;  ///< counts against --max-disabled-ns
  };
  Row rows[] = {
      {"raw relaxed fetch_add", baseline_ns, false},
      {"counter_inc (always on)", counter_ns, false},
      {"scoped_timer disabled", median_of(s_timer_off), true},
      {"trace_span disabled", median_of(s_span_off), true},
      {"log below level", median_of(s_log), true},
      {"histogram_observe enabled", median_of(s_hist), false},
      {"scoped_timer enabled", median_of(s_timer_on), false},
      {"trace_span enabled", median_of(s_span_on), false},
  };

  std::printf("telemetry overhead (ns/op, median of %d interleaved rounds "
              "x %d chunks x %llu iters)\n",
              kRounds, kChunks,
              static_cast<unsigned long long>(kChunkIters));
  bool over_budget = false;
  for (const Row& r : rows) {
    const bool over = r.gated && max_disabled_ns > 0 && r.ns > max_disabled_ns;
    over_budget = over_budget || over;
    std::printf("  %-28s %7.2f%s\n", r.name, r.ns,
                over ? "  EXCEEDS BUDGET" : "");
  }
  if (max_disabled_ns > 0) {
    if (counter_ns > baseline_ns + max_disabled_ns) {
      std::printf("counter_inc adds %.2f ns over a raw relaxed add "
                  "(budget %.2f) -> FAIL\n",
                  counter_ns - baseline_ns, max_disabled_ns);
      over_budget = true;
    }
    std::printf("disabled-path budget: %.2f ns/op -> %s\n", max_disabled_ns,
                over_budget ? "FAIL" : "OK");
  }
  return over_budget ? 1 : 0;
}
