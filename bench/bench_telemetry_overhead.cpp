// bench_telemetry_overhead: per-event cost of the telemetry hot paths.
//
//   bench_telemetry_overhead [--max-disabled-ns X]
//
// Measures ns/op for the instruments the pipeline leaves on in production
// (counter inc) and for the detail-gated probes in both states. The
// disabled-path numbers are the contract: instrumented code must cost one
// relaxed atomic add (counters) or one relaxed load + branch (timers, spans,
// logs) when self-monitoring is off. With --max-disabled-ns the process
// exits 1 if any disabled-path op exceeds the budget — CI's regression gate.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "telemetry/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracing.hpp"

namespace {

using namespace umon;

constexpr std::uint64_t kWarmup = 100'000;
constexpr std::uint64_t kIters = 5'000'000;

/// Best-of-3 ns/op for `op` over kIters iterations. Best-of, not mean: the
/// quantity of interest is the intrinsic cost, and scheduling noise only
/// ever adds.
template <typename Op>
double measure(Op&& op) {
  for (std::uint64_t i = 0; i < kWarmup; ++i) op(i);
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t t0 = telemetry::monotonic_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) op(i);
    const std::uint64_t t1 = telemetry::monotonic_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(kIters);
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double max_disabled_ns = 0;  // 0 = report only
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-disabled-ns") == 0 && i + 1 < argc) {
      max_disabled_ns = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_telemetry_overhead [--max-disabled-ns X]\n");
      return 2;
    }
  }

  auto& reg = telemetry::MetricRegistry::global();
  telemetry::Counter* counter =
      reg.counter("umon_bench_ops_total", {}, "bench counter");
  telemetry::Histogram* hist =
      reg.histogram("umon_bench_lat_us", telemetry::Histogram::latency_us_bounds(),
                    {}, "bench histogram");
  telemetry::Logger::global().set_level(telemetry::LogLevel::kWarn);
  telemetry::set_detail_enabled(false);
  telemetry::TraceRecorder::global().disable();

  // The counter's contract is "exactly one relaxed fetch_add", so it is
  // gated against a raw std::atomic baseline (same instruction, no registry
  // in the path) rather than an absolute number: the cost of a locked add
  // varies several-fold across machines and must not fail CI on slow metal.
  std::atomic<std::uint64_t> raw{0};
  const double baseline_ns =
      measure([&raw](std::uint64_t) {
        raw.fetch_add(1, std::memory_order_relaxed);
      });
  const double counter_ns =
      measure([&](std::uint64_t) { counter->inc(); });

  struct Row {
    const char* name;
    double ns;
    bool gated;  ///< counts against --max-disabled-ns
  };
  Row rows[] = {
      {"raw relaxed fetch_add", baseline_ns, false},
      {"counter_inc (always on)", counter_ns, false},
      {"scoped_timer disabled",
       measure([&](std::uint64_t) { telemetry::ScopedTimer t(hist); }), true},
      {"trace_span disabled",
       measure([&](std::uint64_t) { UMON_TRACE_SPAN("bench/span"); }), true},
      {"log below level",
       measure([&](std::uint64_t i) {
         UMON_LOG(kDebug, "bench", "never", {"i", std::to_string(i)});
       }),
       true},
      {"histogram_observe enabled", 0, false},
      {"scoped_timer enabled", 0, false},
      {"trace_span enabled", 0, false},
  };

  rows[5].ns = measure(
      [&](std::uint64_t i) { hist->observe(static_cast<double>(i % 512)); });
  telemetry::set_detail_enabled(true);
  rows[6].ns = measure([&](std::uint64_t) { telemetry::ScopedTimer t(hist); });
  telemetry::TraceRecorder::global().enable(1 << 12);
  rows[7].ns =
      measure([&](std::uint64_t) { UMON_TRACE_SPAN("bench/span"); });
  telemetry::TraceRecorder::global().disable();
  telemetry::set_detail_enabled(false);

  std::printf("telemetry overhead (ns/op, best of 3 x %llu iters)\n",
              static_cast<unsigned long long>(kIters));
  bool over_budget = false;
  for (const Row& r : rows) {
    const bool over = r.gated && max_disabled_ns > 0 && r.ns > max_disabled_ns;
    over_budget = over_budget || over;
    std::printf("  %-28s %7.2f%s\n", r.name, r.ns,
                over ? "  EXCEEDS BUDGET" : "");
  }
  if (max_disabled_ns > 0) {
    if (counter_ns > baseline_ns + max_disabled_ns) {
      std::printf("counter_inc adds %.2f ns over a raw relaxed add "
                  "(budget %.2f) -> FAIL\n",
                  counter_ns - baseline_ns, max_disabled_ns);
      over_budget = true;
    }
    std::printf("disabled-path budget: %.2f ns/op -> %s\n", max_disabled_ns,
                over_budget ? "FAIL" : "OK");
  }
  return over_budget ? 1 : 0;
}
