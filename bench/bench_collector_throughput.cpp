// Collector ingest scaling: decoded-reports/sec through the sharded pipeline
// for shard counts {1, 2, 4, 8}. The workload is decode-heavy on purpose —
// long wavelet series (16384 windows) with sparse support, so the parallel
// section (decode + inverse transform + zero-stripping) dominates and the
// serial sections (front-door framing scan, per-epoch sink flush) stay thin.
// Expect near-linear scaling up to the core count of the machine.
//
// With --out FILE the per-shard-count rates are also persisted as a
// BENCH_collector.json snapshot (bench/support/snapshot.hpp) — the
// checked-in perf trajectory tools/perf_diff.py gates against.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "bench/support/snapshot.hpp"
#include "collector/collector.hpp"
#include "collector/uplink.hpp"
#include "common/rng.hpp"
#include "sketch/serialize.hpp"
#include "wavelet/haar.hpp"

namespace {

using namespace umon;

constexpr int kHosts = 8;
constexpr int kReportsPerHost = 256;
constexpr std::uint32_t kSeriesLength = 16384;
constexpr int kLevels = 8;

FlowKey flow(std::uint32_t id) {
  FlowKey f;
  f.src_ip = 0x0A000000u | id;
  f.dst_ip = 0x0A0000FC;
  f.src_port = static_cast<std::uint16_t>(id & 0xFFFF);
  f.dst_port = 4791;
  f.proto = 17;
  return f;
}

/// One decode-heavy flow-tagged report: a long series whose reconstruction
/// walks the full padded length but whose nonzero support stays small (one
/// approximation block plus a few details), mimicking a bursty flow.
sketch::TaggedReport make_report(std::uint32_t flow_id, Rng& rng) {
  sketch::TaggedReport t;
  t.flow = flow(flow_id);
  t.report.w0 = 0;
  t.report.length = kSeriesLength;
  t.report.levels = kLevels;
  const std::uint32_t approx_n =
      wavelet::next_pow2(kSeriesLength) >> kLevels;
  t.report.approx.assign(approx_n, 0);
  t.report.approx[rng.below(approx_n)] =
      static_cast<Count>(1000 + rng.below(9000));
  for (int d = 0; d < 16; ++d) {
    wavelet::DetailCoeff c;
    c.level = static_cast<std::uint8_t>(rng.below(kLevels));
    c.index = static_cast<std::uint32_t>(
        rng.below(kSeriesLength >> (c.level + 1)));
    c.value = static_cast<std::int32_t>(rng.below(2000)) - 1000;
    t.report.details.push_back(c);
  }
  return t;
}

struct EncodedLoad {
  // One epoch per host, several payloads each.
  std::vector<collector::HostUplink::EpochUpload> uploads;  // index = host
  std::uint64_t total_reports = 0;
};

EncodedLoad build_load() {
  EncodedLoad load;
  Rng rng(42);
  for (int h = 0; h < kHosts; ++h) {
    std::vector<sketch::TaggedReport> reports;
    reports.reserve(kReportsPerHost);
    for (int r = 0; r < kReportsPerHost; ++r) {
      reports.push_back(make_report(
          static_cast<std::uint32_t>(h * kReportsPerHost + r), rng));
    }
    collector::HostUplink up(h, /*max_reports_per_payload=*/32);
    load.uploads.push_back(up.encode_epoch(std::move(reports)));
    load.total_reports += load.uploads.back().reports;
  }
  return load;
}

double run_once(const EncodedLoad& load, int shards) {
  analyzer::Analyzer an;
  collector::CollectorConfig cfg;
  cfg.shards = shards;
  cfg.queue_capacity = 64;
  cfg.overflow = collector::OverflowPolicy::kBlock;
  collector::Collector col(cfg, an);
  col.start();

  const auto t0 = std::chrono::steady_clock::now();
  for (int h = 0; h < kHosts; ++h) {
    const auto& up = load.uploads[static_cast<std::size_t>(h)];
    for (const auto& p : up.payloads) {
      // Payloads are well-formed by construction; rejections would still be
      // visible in the stats printed at the end.
      (void)col.submit_report_payload(h, up.epoch, p.bytes);
    }
  }
  for (int h = 0; h < kHosts; ++h) {
    const auto& up = load.uploads[static_cast<std::size_t>(h)];
    col.seal_epoch(h, up.epoch, up.end_seq);
  }
  col.stop();
  const auto t1 = std::chrono::steady_clock::now();

  const auto st = col.stats();
  if (st.reports_decoded != load.total_reports || st.reports_lost != 0) {
    std::fprintf(stderr, "BUG: decoded %llu of %llu (lost %llu)\n",
                 static_cast<unsigned long long>(st.reports_decoded),
                 static_cast<unsigned long long>(load.total_reports),
                 static_cast<unsigned long long>(st.reports_lost));
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_collector_throughput [--out FILE]\n");
      return 2;
    }
  }

  std::printf("Collector ingest throughput (decode-bound synthetic load)\n");
  std::printf(
      "load: %d hosts x %d flow-tagged reports, series length %u, "
      "levels %d\n\n",
      kHosts, kReportsPerHost, kSeriesLength, kLevels);

  const EncodedLoad load = build_load();
  // Warm up allocators and page in the payloads.
  run_once(load, 1);

  std::printf("%-8s %16s %14s %10s\n", "shards", "reports/sec", "seconds",
              "speedup");
  double base_rate = 0;
  bench::Snapshot snap("collector_throughput");
  snap.set("hosts", static_cast<std::uint64_t>(kHosts));
  snap.set("reports_per_host", static_cast<std::uint64_t>(kReportsPerHost));
  double rate8 = 0;
  for (int shards : {1, 2, 4, 8}) {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) best = std::min(best, run_once(load, shards));
    const double rate = static_cast<double>(load.total_reports) / best;
    if (shards == 1) base_rate = rate;
    if (shards == 8) rate8 = rate;
    std::printf("%-8d %16.0f %14.4f %9.2fx\n", shards, rate, best,
                rate / base_rate);
    snap.set("shard" + std::to_string(shards) + "_rps", rate);
  }
  snap.set("speedup8", base_rate > 0 ? rate8 / base_rate : 0.0);
  if (!out.empty()) {
    if (!snap.write(out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("\nsnapshot: %s\n", out.c_str());
  }
  return 0;
}
