// Figure 14: recall of congestion events and the number of captured flows,
// as a function of the episode's maximum queue length, across sampling
// ratios. One simulation per workload; sampling is applied offline to the
// recorded CE stream (exactly equivalent to the PSN-mask ACL rule).
#include <cstdio>
#include <vector>

#include "bench/support/driver.hpp"
#include "uevent/detector.hpp"

namespace {

using namespace umon;

void run_panel(const char* title, workload::WorkloadKind kind, double load,
               std::uint64_t seed) {
  bench::print_header(title);
  bench::SimOptions opt;
  opt.kind = kind;
  opt.load = load;
  opt.duration = 20 * kMilli;
  opt.seed = seed;
  bench::SimResult sim = bench::run_monitored(opt);
  std::printf("flows: %zu, packets: %llu, CE-marked: %zu, episodes: %zu\n",
              sim.workload.flows.size(),
              static_cast<unsigned long long>(sim.total_packets),
              sim.ce_stream.size(), sim.net->all_episodes().size());

  const std::vector<int> sample_bits = {0, 2, 4, 6, 7, 8};  // 1 .. 1/256
  constexpr std::uint64_t kBucket = 25 * 1024;

  for (int pass = 0; pass < 2; ++pass) {
    std::printf("\n%s\n", pass == 0 ? "--- Congestion recall ---"
                                    : "--- Avg captured flows ---");
    std::printf("%-14s", "maxQ(KB)");
    for (int w : sample_bits) std::printf(" %8s", ("p=1/" + std::to_string(1 << w)).c_str());
    if (pass == 1) std::printf(" %9s", "trueAvg");
    std::printf("\n");

    // Score per sampling rate, then print bucket rows side by side.
    std::vector<std::vector<uevent::RecallBucket>> per_rate;
    for (int w : sample_bits) {
      uevent::EventScorer scorer;
      for (const auto& m : bench::sample_stream(sim.ce_stream, w)) {
        scorer.collect(m);
      }
      auto scores = scorer.score(*sim.net);
      // Clamp the tail: everything beyond 300 KB lands in the last bucket
      // (the paper's x-axis stops at 250 KB).
      for (auto& s : scores) {
        s.max_queue_bytes = std::min<std::uint64_t>(s.max_queue_bytes,
                                                    300 * 1024 - 1);
      }
      per_rate.push_back(uevent::EventScorer::bucketize(scores, kBucket));
    }
    // Union of bucket edges.
    std::vector<std::uint64_t> edges;
    for (const auto& buckets : per_rate) {
      for (const auto& b : buckets) edges.push_back(b.queue_lo);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    for (std::uint64_t lo : edges) {
      std::printf("%3llu-%-9llu",
                  static_cast<unsigned long long>(lo / 1024),
                  static_cast<unsigned long long>((lo + kBucket) / 1024));
      double true_avg = 0;
      for (const auto& buckets : per_rate) {
        double v = 0;
        for (const auto& b : buckets) {
          if (b.queue_lo == lo) {
            v = pass == 0 ? b.recall() : b.avg_captured_flows;
            true_avg = b.avg_true_flows;
          }
        }
        std::printf(" %8.3f", v);
      }
      if (pass == 1) std::printf(" %9.2f", true_avg);
      std::printf("\n");
    }
  }
  std::printf("kmin = 20 KB, kmax = 200 KB\n");
}

}  // namespace

int main() {
  run_panel("Figure 14 a/d: 35%-load WebSearch",
            umon::workload::WorkloadKind::kWebSearch, 0.35, 21);
  run_panel("Figure 14 b/e: 15%-load Hadoop",
            umon::workload::WorkloadKind::kHadoop, 0.15, 22);
  run_panel("Figure 14 c/f: 35%-load Hadoop",
            umon::workload::WorkloadKind::kHadoop, 0.35, 23);
  return 0;
}
