// Figure 3: the counter-volume amplification N(10us)/N(10ms) caused by
// refining the measurement window, per workload and link load.
#include <cstdio>

#include "analyzer/groundtruth.hpp"
#include "bench/support/driver.hpp"

namespace {

using namespace umon;

std::uint64_t counters_at(const bench::SimResult& sim, int shift) {
  analyzer::GroundTruth gt(shift);
  for (const auto& u : sim.updates) {
    // Re-window the update stream at the coarser/finer granularity.
    gt.add(u.flow, window_start(u.window), u.bytes);
  }
  return gt.active_counters();
}

}  // namespace

int main() {
  using namespace umon;
  bench::print_header("Figure 3: counter amplification of 10 us windows");
  std::printf("%-18s %6s %14s %14s %10s\n", "workload", "load", "N(10us)",
              "N(10ms)", "factor");

  // 10 us ~ 2^13.3; we use the hardware shifts 13 (8.192 us) and 23
  // (8.389 ms) which bracket the paper's 10 us / 10 ms pair.
  for (auto kind :
       {workload::WorkloadKind::kWebSearch, workload::WorkloadKind::kHadoop}) {
    for (double load : {0.05, 0.15, 0.25, 0.35, 0.45}) {
      bench::SimOptions opt;
      opt.kind = kind;
      opt.load = load;
      opt.duration = 10 * kMilli;
      opt.seed = 5;
      bench::SimResult sim = bench::run_monitored(opt);
      const std::uint64_t fine = counters_at(sim, 13);
      const std::uint64_t coarse = counters_at(sim, 23);
      std::printf("%-18s %5.0f%% %14llu %14llu %9.1fx\n",
                  workload::to_string(kind).c_str(), load * 100,
                  static_cast<unsigned long long>(fine),
                  static_cast<unsigned long long>(coarse),
                  coarse ? static_cast<double>(fine) / static_cast<double>(coarse)
                         : 0.0);
    }
  }
  std::printf(
      "\nWebSearch amplifies far more than Hadoop because its flows are "
      "long-lived\n(hundreds of fine windows each), matching the paper's "
      "387x vs 34x contrast.\n");
  return 0;
}
