// Figure 10: (a) time-location map of congestion events, (b) congestion
// duration CDF, (c) replay of a long-lasting event — all from the analyzer's
// view of the mirrored CE stream.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analyzer/analyzer.hpp"
#include "bench/support/driver.hpp"
#include "common/stats.hpp"

int main() {
  using namespace umon;
  bench::print_header("Figure 10: congestion events across the network");

  bench::SimOptions opt;
  opt.kind = workload::WorkloadKind::kWebSearch;
  opt.load = 0.35;
  opt.duration = 20 * kMilli;
  opt.seed = 21;
  bench::SimResult sim = bench::run_monitored(opt);

  analyzer::Analyzer an;
  an.ingest_mirrored(bench::sample_stream(sim.ce_stream, /*1/16*/ 4));
  const auto events = an.events();
  std::printf("workload: WebSearch 35%%, 1/16 sampling, %zu events\n\n",
              events.size());

  // --- (a) time-location map: one row per congested link, 500 us columns.
  std::printf("--- Figure 10a: congestion time-location map ---\n");
  std::map<std::pair<int, int>, int> link_ids;
  for (const auto& ev : events) {
    link_ids.try_emplace({ev.switch_id, ev.egress_port},
                         static_cast<int>(link_ids.size()));
  }
  const Nanos col_width = 500 * kMicro;
  const auto cols = static_cast<std::size_t>(opt.duration / col_width) + 1;
  std::vector<std::string> rows(link_ids.size(), std::string(cols, '.'));
  for (const auto& ev : events) {
    const int row = link_ids[{ev.switch_id, ev.egress_port}];
    for (Nanos t = ev.start; t <= ev.end; t += col_width) {
      const auto c = static_cast<std::size_t>(t / col_width);
      if (c < cols) rows[static_cast<std::size_t>(row)][c] = '#';
    }
  }
  std::printf("link (switch:port)   0ms%*s20ms\n", static_cast<int>(cols) - 3,
              "");
  for (const auto& [key, row] : link_ids) {
    std::printf("link %2d (%2d:%d)      |%s|\n", row, key.first, key.second,
                rows[static_cast<std::size_t>(row)].c_str());
  }

  // --- (b) duration CDF.
  std::printf("\n--- Figure 10b: congestion duration CDF ---\n");
  EmpiricalCdf cdf(an.event_durations_us());
  std::printf("%-14s %10s\n", "duration(us)", "CDF");
  for (double d : {10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0, 1000.0}) {
    std::printf("%-14.0f %10.3f\n", d, cdf.fraction_below(d));
  }
  std::printf("p50 = %.1f us, p90 = %.1f us, max = %.1f us\n",
              cdf.quantile(0.5), cdf.quantile(0.9), cdf.quantile(1.0));

  // --- (c) replay of the longest event: handled with rate curves in
  // examples/congestion_replay; here we print its participant inventory.
  if (!events.empty()) {
    const auto longest = *std::max_element(
        events.begin(), events.end(), [](const auto& a, const auto& b) {
          return a.duration() < b.duration();
        });
    std::printf(
        "\n--- Figure 10c: longest event (see examples/congestion_replay for "
        "the rate plot) ---\n");
    std::printf("switch %d port %d, start %.1f us, duration %.1f us, "
                "%zu flows, %zu mirrored packets\n",
                longest.switch_id, longest.egress_port,
                static_cast<double>(longest.start) / 1000.0,
                static_cast<double>(longest.duration()) / 1000.0,
                longest.flows.size(), longest.packets);
  }
  return 0;
}
