// Update-cost benchmarks (google-benchmark): validates the O(1) amortized
// update claim of Section 4.2 — cost per packet stays flat as the stream
// grows, and only the window-boundary fraction (epsilon = n/m) matters.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/fourier.hpp"
#include "baselines/omniwindow.hpp"
#include "baselines/persist_cms.hpp"
#include "common/rng.hpp"
#include "sketch/wavesketch.hpp"
#include "sketch/wavesketch_full.hpp"

namespace {

using namespace umon;

FlowKey flow(std::uint32_t id) {
  FlowKey f;
  f.src_ip = 0x0A000000u | id;
  f.dst_ip = 0x0A0000FE;
  f.src_port = static_cast<std::uint16_t>(id);
  f.dst_port = 4791;
  f.proto = 17;
  return f;
}

/// Pre-generated update stream with `ppw` packets per window (epsilon =
/// 1/ppw): heavier load -> fewer transform events per packet.
struct Stream {
  std::vector<std::pair<FlowKey, WindowId>> updates;
  explicit Stream(int packets_per_window, int flows = 64,
                  int total = 1 << 16) {
    Rng rng(9);
    WindowId w = 0;
    int in_window = 0;
    for (int i = 0; i < total; ++i) {
      updates.emplace_back(flow(static_cast<std::uint32_t>(rng.below(
                               static_cast<std::uint64_t>(flows)))),
                           w);
      if (++in_window >= packets_per_window) {
        in_window = 0;
        ++w;
      }
    }
  }
};

sketch::WaveSketchParams params(sketch::StoreKind store) {
  sketch::WaveSketchParams p;
  p.depth = 3;
  p.width = 256;
  p.levels = 8;
  p.k = 64;
  p.store = store;
  p.hw_threshold_even = 2000;
  p.hw_threshold_odd = 3000;
  return p;
}

void BM_WaveSketchUpdate(benchmark::State& state) {
  const Stream stream(static_cast<int>(state.range(0)));
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kTopK));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchUpdate)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Name("WaveSketch-Ideal/packets_per_window");

void BM_WaveSketchHwUpdate(benchmark::State& state) {
  const Stream stream(static_cast<int>(state.range(0)));
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kThreshold));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchHwUpdate)->Arg(1)->Arg(16)
    ->Name("WaveSketch-HW/packets_per_window");

void BM_WaveSketchFullUpdate(benchmark::State& state) {
  const Stream stream(16);
  sketch::WaveSketchFull ws(params(sketch::StoreKind::kTopK));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchFullUpdate)->Name("WaveSketch-Full/heavy+light");

void BM_OmniWindowUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::OmniWindowParams p;
  p.depth = 3;
  p.width = 256;
  p.sub_windows = 64;
  baselines::OmniWindowAvg ow(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ow.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmniWindowUpdate)->Name("OmniWindow-Avg/update");

void BM_PersistCmsUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::PersistCmsParams p;
  p.depth = 3;
  p.width = 256;
  p.segments_per_bucket = 32;
  baselines::PersistCms pc(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    pc.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PersistCmsUpdate)->Name("Persist-CMS/update");

void BM_FourierUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::FourierParams p;
  p.depth = 3;
  p.width = 256;
  p.coefficients = 64;
  baselines::FourierSketch fs(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    fs.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourierUpdate)->Name("Fourier/update(buffering)");

void BM_Reconstruction(benchmark::State& state) {
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kTopK));
  const FlowKey f = flow(1);
  Rng rng(3);
  const auto n = static_cast<WindowId>(state.range(0));
  for (WindowId w = 0; w < n; ++w) {
    ws.update_window(f, w, static_cast<Count>(500 + rng.below(2000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.query(f));
  }
}
BENCHMARK(BM_Reconstruction)->Arg(256)->Arg(1024)->Arg(4096)
    ->Name("Query+Reconstruct/windows");

}  // namespace

BENCHMARK_MAIN();
