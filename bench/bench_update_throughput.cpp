// Update-cost benchmarks (google-benchmark): validates the O(1) amortized
// update claim of Section 4.2 — cost per packet stays flat as the stream
// grows, and only the window-boundary fraction (epsilon = n/m) matters.
//
// Two modes:
//   * default: google-benchmark tables (all its flags pass through);
//   * --out FILE: a short self-timed run that persists the headline
//     numbers as a BENCH_update.json snapshot (bench/support/snapshot.hpp)
//     — the checked-in perf trajectory tools/perf_diff.py gates against.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/fourier.hpp"
#include "baselines/omniwindow.hpp"
#include "baselines/persist_cms.hpp"
#include "bench/support/snapshot.hpp"
#include "common/rng.hpp"
#include "sketch/wavesketch.hpp"
#include "sketch/wavesketch_full.hpp"

namespace {

using namespace umon;

FlowKey flow(std::uint32_t id) {
  FlowKey f;
  f.src_ip = 0x0A000000u | id;
  f.dst_ip = 0x0A0000FE;
  f.src_port = static_cast<std::uint16_t>(id);
  f.dst_port = 4791;
  f.proto = 17;
  return f;
}

/// Pre-generated update stream with `ppw` packets per window (epsilon =
/// 1/ppw): heavier load -> fewer transform events per packet.
struct Stream {
  std::vector<std::pair<FlowKey, WindowId>> updates;
  explicit Stream(int packets_per_window, int flows = 64,
                  int total = 1 << 16) {
    Rng rng(9);
    WindowId w = 0;
    int in_window = 0;
    for (int i = 0; i < total; ++i) {
      updates.emplace_back(flow(static_cast<std::uint32_t>(rng.below(
                               static_cast<std::uint64_t>(flows)))),
                           w);
      if (++in_window >= packets_per_window) {
        in_window = 0;
        ++w;
      }
    }
  }
};

sketch::WaveSketchParams params(sketch::StoreKind store) {
  sketch::WaveSketchParams p;
  p.depth = 3;
  p.width = 256;
  p.levels = 8;
  p.k = 64;
  p.store = store;
  p.hw_threshold_even = 2000;
  p.hw_threshold_odd = 3000;
  return p;
}

void BM_WaveSketchUpdate(benchmark::State& state) {
  const Stream stream(static_cast<int>(state.range(0)));
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kTopK));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchUpdate)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Name("WaveSketch-Ideal/packets_per_window");

void BM_WaveSketchHwUpdate(benchmark::State& state) {
  const Stream stream(static_cast<int>(state.range(0)));
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kThreshold));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchHwUpdate)->Arg(1)->Arg(16)
    ->Name("WaveSketch-HW/packets_per_window");

void BM_WaveSketchFullUpdate(benchmark::State& state) {
  const Stream stream(16);
  sketch::WaveSketchFull ws(params(sketch::StoreKind::kTopK));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ws.update_window(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveSketchFullUpdate)->Name("WaveSketch-Full/heavy+light");

void BM_OmniWindowUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::OmniWindowParams p;
  p.depth = 3;
  p.width = 256;
  p.sub_windows = 64;
  baselines::OmniWindowAvg ow(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    ow.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OmniWindowUpdate)->Name("OmniWindow-Avg/update");

void BM_PersistCmsUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::PersistCmsParams p;
  p.depth = 3;
  p.width = 256;
  p.segments_per_bucket = 32;
  baselines::PersistCms pc(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    pc.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PersistCmsUpdate)->Name("Persist-CMS/update");

void BM_FourierUpdate(benchmark::State& state) {
  const Stream stream(16);
  baselines::FourierParams p;
  p.depth = 3;
  p.width = 256;
  p.coefficients = 64;
  baselines::FourierSketch fs(p);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [f, w] = stream.updates[i];
    fs.update(f, w, 1048);
    i = (i + 1) % stream.updates.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourierUpdate)->Name("Fourier/update(buffering)");

void BM_Reconstruction(benchmark::State& state) {
  sketch::WaveSketchBasic ws(params(sketch::StoreKind::kTopK));
  const FlowKey f = flow(1);
  Rng rng(3);
  const auto n = static_cast<WindowId>(state.range(0));
  for (WindowId w = 0; w < n; ++w) {
    ws.update_window(f, w, static_cast<Count>(500 + rng.below(2000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.query(f));
  }
}
BENCHMARK(BM_Reconstruction)->Arg(256)->Arg(1024)->Arg(4096)
    ->Name("Query+Reconstruct/windows");

/// Self-timed Mupdates/sec over repeated passes of the stream, best of 3
/// (scheduling noise only ever subtracts throughput).
template <typename Update>
double measure_mops(const Stream& stream, Update&& update) {
  constexpr int kPasses = 4;
  for (const auto& [f, w] : stream.updates) update(f, w);  // warm pass
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kPasses; ++p) {
      for (const auto& [f, w] : stream.updates) update(f, w);
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double mops = static_cast<double>(stream.updates.size()) * kPasses /
                        secs / 1e6;
    if (mops > best) best = mops;
  }
  return best;
}

int run_snapshot(const std::string& out) {
  const Stream stream(16);

  sketch::WaveSketchBasic ideal(params(sketch::StoreKind::kTopK));
  const double ideal_mops = measure_mops(
      stream, [&](const FlowKey& f, WindowId w) { ideal.update_window(f, w, 1048); });

  sketch::WaveSketchBasic hw(params(sketch::StoreKind::kThreshold));
  const double hw_mops = measure_mops(
      stream, [&](const FlowKey& f, WindowId w) { hw.update_window(f, w, 1048); });

  sketch::WaveSketchFull full(params(sketch::StoreKind::kTopK));
  const double full_mops = measure_mops(
      stream, [&](const FlowKey& f, WindowId w) { full.update_window(f, w, 1048); });

  baselines::OmniWindowParams op;
  op.depth = 3;
  op.width = 256;
  op.sub_windows = 64;
  baselines::OmniWindowAvg ow(op);
  const double ow_mops = measure_mops(
      stream, [&](const FlowKey& f, WindowId w) { ow.update(f, w, 1048); });

  baselines::PersistCmsParams pp;
  pp.depth = 3;
  pp.width = 256;
  pp.segments_per_bucket = 32;
  baselines::PersistCms pc(pp);
  const double pc_mops = measure_mops(
      stream, [&](const FlowKey& f, WindowId w) { pc.update(f, w, 1048); });

  // Reconstruction latency: mean us/query over a 4096-window curve.
  sketch::WaveSketchBasic rq(params(sketch::StoreKind::kTopK));
  const FlowKey f = flow(1);
  Rng rng(3);
  for (WindowId w = 0; w < 4096; ++w) {
    rq.update_window(f, w, static_cast<Count>(500 + rng.below(2000)));
  }
  double reconstruct_us = 1e18;
  constexpr int kQueries = 200;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kQueries; ++i) {
      benchmark::DoNotOptimize(rq.query(f));
    }
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        kQueries;
    if (us < reconstruct_us) reconstruct_us = us;
  }

  std::printf("update throughput snapshot (Mupdates/sec, best of 3)\n");
  std::printf("  wavesketch ideal:  %8.2f\n", ideal_mops);
  std::printf("  wavesketch hw:     %8.2f\n", hw_mops);
  std::printf("  wavesketch full:   %8.2f\n", full_mops);
  std::printf("  omniwindow avg:    %8.2f\n", ow_mops);
  std::printf("  persist-cms:       %8.2f\n", pc_mops);
  std::printf("  reconstruct(4096): %8.2f us\n", reconstruct_us);

  bench::Snapshot snap("update_throughput");
  snap.set("packets_per_window", std::uint64_t{16});
  snap.set("wavesketch_ideal_mops", ideal_mops);
  snap.set("wavesketch_hw_mops", hw_mops);
  snap.set("wavesketch_full_mops", full_mops);
  snap.set("omniwindow_mops", ow_mops);
  snap.set("persist_cms_mops", pc_mops);
  snap.set("reconstruct_w4096_us", reconstruct_us);
  if (!snap.write(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("  snapshot:          %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      return run_snapshot(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
