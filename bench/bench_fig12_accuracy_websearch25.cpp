// Figure 12: accuracy vs memory on the 25%-load WebSearch workload.
#include "bench/support/accuracy_main.hpp"

int main() {
  using namespace umon;
  bench::SimOptions opt;
  opt.kind = workload::WorkloadKind::kWebSearch;
  opt.load = 0.25;
  opt.duration = 20 * kMilli;
  opt.seed = 13;
  return bench::run_accuracy_bench(
      "Figure 12: accuracy on 25%-load WebSearch (8.192 us windows)", opt,
      {200, 400, 800, 1200, 1600});
}
