// Figure 18: accuracy by flow size on the 15%-load Hadoop workload.
#include "bench/support/bysize_main.hpp"

int main() {
  using namespace umon;
  bench::SimOptions opt;
  opt.kind = workload::WorkloadKind::kHadoop;
  opt.load = 0.15;
  opt.duration = 20 * kMilli;
  opt.seed = 7;
  return bench::run_bysize_bench(
      "Figure 18: accuracy by flow size, Hadoop 15% load", opt,
      /*memory_kb=*/800);
}
