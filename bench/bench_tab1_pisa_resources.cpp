// Table 1: hardware resource usage of a full WaveSketch on a Tofino2-class
// PISA pipeline (structural model calibrated against the paper's compiler
// report), plus scaling rows for alternative configurations.
#include <cstdio>

#include "pisa/resources.hpp"

namespace {

void print_table(const char* title, const umon::sketch::WaveSketchParams& p) {
  std::printf("\n%s\n", title);
  std::printf("%-26s %8s %12s\n", "Resource", "Usage", "Percentage");
  for (const auto& row : umon::pisa::table(umon::pisa::estimate(p))) {
    std::printf("%-26s %8u %11.2f%%\n", row.name.c_str(), row.usage,
                row.percentage);
  }
}

}  // namespace

int main() {
  using namespace umon;
  std::printf(
      "=== Table 1: WaveSketch resource usage on a PISA pipeline ===\n");

  sketch::WaveSketchParams paper;
  paper.depth = 1;
  paper.width = 256;
  paper.levels = 8;
  paper.k = 64;
  paper.heavy_rows = 256;
  paper.heavy_k = 64;
  print_table("Paper config: heavy(h=256,L=8,K=64) + light(w=256,L=8,K=64,d=1)",
              paper);

  // Scaling behaviour the paper highlights: W and K are free; L and d cost.
  sketch::WaveSketchParams big = paper;
  big.width = 1024;
  big.k = 256;
  big.heavy_k = 256;
  print_table("Scaled W=1024, K=256 (SALU usage unchanged)", big);

  sketch::WaveSketchParams deep = paper;
  deep.levels = 10;
  print_table("Deeper decomposition L=10 (SALUs grow with levels)", deep);

  sketch::WaveSketchParams d3 = paper;
  d3.depth = 3;
  print_table("Light part d=3 (each extra row costs a full bucket pipeline)",
              d3);
  return 0;
}
