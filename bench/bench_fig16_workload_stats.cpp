// Figure 16 + Table 2: workload characterization — flow-size CDF,
// per-port flow inter-arrival CDF, queue-length CDF, and the packet/flow
// counts of all six simulation settings.
#include <cstdio>
#include <vector>

#include "bench/support/driver.hpp"
#include "common/stats.hpp"
#include "workload/cdf.hpp"

int main() {
  using namespace umon;

  // --- Figure 16a: flow size distribution ---------------------------------
  bench::print_header("Figure 16a: flow size CDF");
  std::printf("%-12s %12s %12s\n", "size(KB)", "Hadoop", "WebSearch");
  const auto hd = workload::hadoop_cdf();
  const auto ws = workload::websearch_cdf();
  for (double kb : {0.25, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
                    5000.0, 10000.0, 30000.0}) {
    std::printf("%-12.2f %12.3f %12.3f\n", kb, hd.cdf(kb * 1000),
                ws.cdf(kb * 1000));
  }

  // --- Figure 16b: flow inter-arrival per port ------------------------------
  bench::print_header("Figure 16b: flow inter-arrival time CDF (per port)");
  struct Combo {
    workload::WorkloadKind kind;
    double load;
  };
  const std::vector<Combo> combos = {
      {workload::WorkloadKind::kHadoop, 0.15},
      {workload::WorkloadKind::kHadoop, 0.35},
      {workload::WorkloadKind::kWebSearch, 0.15},
      {workload::WorkloadKind::kWebSearch, 0.35},
  };
  std::printf("%-24s %10s %10s %10s %10s\n", "workload", "p20(us)", "p50(us)",
              "p80(us)", "mean(us)");
  for (const auto& c : combos) {
    workload::WorkloadParams wp;
    wp.load = c.load;
    wp.duration = 20 * kMilli;
    wp.seed = 5;
    const auto w = workload::generate(c.kind, wp);
    auto gaps = workload::interarrival_per_port(w);
    for (auto& g : gaps) g /= 1000.0;  // ns -> us
    EmpiricalCdf cdf(gaps);
    std::printf("%-18s %3.0f%% %10.1f %10.1f %10.1f %10.1f\n",
                workload::to_string(c.kind).c_str(), c.load * 100,
                cdf.quantile(0.2), cdf.quantile(0.5), cdf.quantile(0.8),
                mean(cdf.samples()));
  }

  // --- Figure 16c + Table 2: simulated runs --------------------------------
  bench::print_header("Figure 16c: queue length CDF + Table 2: run inventory");
  std::printf("%-24s %10s %10s | %12s %12s %12s\n", "workload", "packets",
              "flows", "q>20KB", "q>200KB", "maxQ(KB)");
  const std::vector<double> loads = {0.15, 0.25, 0.35};
  for (auto kind :
       {workload::WorkloadKind::kWebSearch, workload::WorkloadKind::kHadoop}) {
    for (double load : loads) {
      bench::SimOptions opt;
      opt.kind = kind;
      opt.load = load;
      opt.duration = 20 * kMilli;
      opt.seed = 5;
      opt.sample_queues = true;
      bench::SimResult sim = bench::run_monitored(opt);

      const auto& samples = sim.net->queue_samples();
      std::uint64_t over_kmin = 0, over_kmax = 0, mx = 0;
      for (std::uint64_t q : samples) {
        over_kmin += q > 20 * 1024 ? 1 : 0;
        over_kmax += q > 200 * 1024 ? 1 : 0;
        mx = std::max(mx, q);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "%s %.0f%%",
                    workload::to_string(kind).c_str(), load * 100);
      std::printf("%-24s %10llu %10zu | %11.3f%% %11.3f%% %12llu\n", label,
                  static_cast<unsigned long long>(sim.total_packets),
                  sim.workload.flows.size(),
                  100.0 * static_cast<double>(over_kmin) /
                      static_cast<double>(samples.size()),
                  100.0 * static_cast<double>(over_kmax) /
                      static_cast<double>(samples.size()),
                  static_cast<unsigned long long>(mx / 1024));
    }
  }
  std::printf(
      "\n(q>threshold columns are time fractions over per-us samples of all "
      "switch egress queues.)\n");
  return 0;
}
