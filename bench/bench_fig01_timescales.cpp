// Figure 1: the same flow's rate curve at 10 us vs 10 ms observation
// granularity. An RDMA flow contends with background traffic on a single
// bottleneck; the microsecond view shows peaks, troughs and recoveries that
// the 10 ms average completely masks.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analyzer/groundtruth.hpp"
#include "bench/support/driver.hpp"
#include "netsim/network.hpp"

int main() {
  using namespace umon;
  bench::print_header("Figure 1: flow rate at different timescales");

  netsim::NetworkConfig cfg;
  cfg.link.bandwidth_gbps = 40.0;
  cfg.queue_sample_interval = 0;
  netsim::Network net(cfg);
  const int s0 = net.add_host();
  const int s1 = net.add_host();
  const int dst = net.add_host();
  const int sw = net.add_switch();
  net.connect(s0, sw);
  net.connect(s1, sw);
  net.connect(dst, sw);
  net.build_routes();

  // The measured flow uses a 10 us window shift (2^13 ns ~ 8.192 us is the
  // paper's hardware-friendly stand-in; here we use exactly 10 us buckets).
  const Nanos win10us = 10 * kMicro;
  std::vector<double> bytes_10us;
  FlowKey probe;
  probe.src_ip = 0x0A000001;
  probe.dst_ip = 0x0A0000FE;
  probe.src_port = 31337;
  probe.dst_port = 4791;
  probe.proto = 17;
  net.set_host_tx_hook([&](int, const PacketRecord& r) {
    if (!(r.flow == probe)) return;
    const auto idx = static_cast<std::size_t>(r.timestamp / win10us);
    if (idx >= bytes_10us.size()) bytes_10us.resize(idx + 1, 0.0);
    bytes_10us[idx] += r.size;
  });

  netsim::FlowSpec rdma;
  rdma.key = probe;
  rdma.src_host = s0;
  rdma.dst_host = dst;
  rdma.bytes = 1ull << 32;
  net.start_flow(rdma);

  // Background contender cycling on/off to induce oscillation.
  netsim::FlowSpec bg;
  bg.key = probe;
  bg.key.src_port = 31338;
  bg.src_host = s1;
  bg.dst_host = dst;
  bg.bytes = 1ull << 32;
  bg.start_time = 1 * kMilli;
  bg.on_off = netsim::OnOffPattern{700 * kMicro, 900 * kMicro};
  net.start_flow(bg);

  net.run_until(10 * kMilli);
  net.finish();
  bytes_10us.resize(1000, 0.0);

  std::printf("window  rate_10us_gbps  rate_10ms_gbps\n");
  double total = 0;
  for (double b : bytes_10us) total += b;
  // 1000 windows of 10 us = 10 ms = 1e7 ns; Gbps == bits/ns.
  const double avg_gbps = total * 8.0 / 1e7;
  for (std::size_t i = 0; i < bytes_10us.size(); i += 25) {
    const double gbps = bytes_10us[i] * 8.0 / static_cast<double>(win10us);
    std::printf("%6zu  %14.2f  %14.2f\n", i, gbps, avg_gbps);
  }

  // Summary statistics that distinguish the two views.
  double mx = 0, mn = 1e9;
  for (double b : bytes_10us) {
    const double gbps = b * 8.0 / static_cast<double>(win10us);
    mx = std::max(mx, gbps);
    mn = std::min(mn, gbps);
  }
  std::printf("\n10us view: min %.2f Gbps, max %.2f Gbps (oscillation)\n", mn,
              mx);
  std::printf("10ms view: flat %.2f Gbps (masks the dynamics)\n", avg_gbps);
  return 0;
}
