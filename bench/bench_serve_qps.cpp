// bench_serve_qps: serving-tier throughput and ingest-overhead bench.
//
//   bench_serve_qps [--flows N] [--epochs N] [--trials N] [--dir PATH]
//                   [--out PATH] [--min-cached-rps X] [--max-overhead-pct X]
//                   [--max-probe-p99-ms X]
//
// Three phases over the same seeded synthetic curve stream:
//
//   ingest    write-through append + per-epoch seal into a durable store
//             (the umon_sim --store-dir hot path), no server → baseline
//             payload MB/s. Best-of-N trials: scheduling noise only ever
//             inflates a run.
//   serving   identical ingest with the live plane attached: an epoll
//             Server + Endpoints over the store being written, per-epoch
//             snapshot publishes + SSE broadcasts (what umon_sim's
//             serve_publish does), and a dashboard-cadence scraper thread
//             polling /metrics + /health over the wire → serving MB/s.
//             The relative delta is the ingest overhead of serving.
//   qps       reopen the store read-only behind a fresh server and hammer
//             /api/v1/query over one keep-alive connection: ping-pong
//             requests give the serial round-trip rate, pipelined batches
//             give the cached-throughput rate (every request after the
//             first hits the serialized-response cache — generation never
//             moves on a read-only store).
//   overload  4 connections flood pipelined, cache-busting queries at a
//             server whose admission cap is deliberately small, while a
//             probe connection ping-pongs /health and /metrics. The plane
//             must shed the uncached query work (503 + Retry-After, every
//             one verified) yet keep the probe's p99 round trip flat —
//             the "cheap endpoints stay on under storm" contract.
//
// The pipelined rate is the capacity claim: it is the per-request cost of
// the serving stack (parse, route, cache hit, response assembly, socket
// IO) with syscall round-trips amortized, i.e. what one core of the plane
// sustains while ingest owns the others. The overhead phase bounds what
// serving steals from the ingest thread itself. On a single-core runner
// the scraper's CPU is attributed to the ingest wall clock too, so the
// overhead number there is an upper bound.
//
// Results are persisted as BENCH_serve.json (bench/support/snapshot.hpp)
// so the perf trajectory is checked in per PR. With --min-cached-rps or
// --max-overhead-pct the process exits 1 when the measurement misses the
// budget — the CI gates.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analyzer/curve_store.hpp"
#include "bench/support/snapshot.hpp"
#include "serve/endpoints.hpp"
#include "serve/server.hpp"
#include "store/store.hpp"

namespace {

using namespace umon;

double now_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

struct Lcg {
  std::uint64_t s;
  explicit Lcg(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 11;
  }
  double uniform() { return static_cast<double>(next() % 100000) / 100000.0; }
};

FlowKey make_flow(std::uint32_t i) {
  return FlowKey{10u * 65536u + i, 20u * 65536u + (i % 13),
                 static_cast<std::uint16_t>(1000 + i), 80, 6};
}

/// Deterministic synthetic epoch stream (the bench_store_io shape) with a
/// per-seal hook for the serving variant's publish cadence.
template <typename OnSeal>
void feed(analyzer::FlowCurveStore& fcs, store::Store& st, int epochs,
          int flows, OnSeal&& on_seal) {
  Lcg rng(1234);
  for (int e = 0; e < epochs; ++e) {
    for (int f = 0; f < flows; ++f) {
      std::vector<std::pair<WindowId, double>> windows;
      const WindowId base = static_cast<WindowId>(e) * 64;
      for (WindowId w = 0; w < 64; ++w) {
        const double r = rng.uniform();
        if (r < 0.2) {
          const double burst = r < 0.02 ? 40000.0 : 1500.0;
          windows.emplace_back(base + w, std::floor(burst * rng.uniform()));
        }
      }
      if (!windows.empty()) fcs.add_sparse(make_flow(f), windows);
    }
    if (!st.seal_epoch()) {
      std::fprintf(stderr, "seal_epoch failed at epoch %d\n", e);
      std::exit(1);
    }
    on_seal(e);
  }
}

// --- minimal blocking client (the scraper + qps driver) ---------------------

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one complete Content-Length-framed response off a keep-alive
/// connection. Returns the total response size in bytes, or 0 on failure.
std::size_t read_response(int fd, std::string& out) {
  out.clear();
  std::size_t header_end = std::string::npos;
  char buf[8192];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return 0;
    out.append(buf, static_cast<std::size_t>(n));
    header_end = out.find("\r\n\r\n");
  }
  const char* cl = std::strstr(out.c_str(), "Content-Length: ");
  if (cl == nullptr) return 0;
  const std::size_t want =
      header_end + 4 +
      static_cast<std::size_t>(std::strtoull(cl + 16, nullptr, 10));
  while (out.size() < want) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return 0;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out.size() == want ? want : 0;
}

std::string get_request(const char* path) {
  return std::string("GET ") + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
}

/// Pull one Content-Length-framed response out of `stream`, recv-ing more
/// as needed. Unlike read_response this keeps pipelined leftovers for the
/// next call. Returns false on socket failure or unframeable bytes.
bool next_response(int fd, std::string& stream, std::string& resp) {
  char buf[16384];
  for (;;) {
    const std::size_t header_end = stream.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      const char* cl = std::strstr(stream.c_str(), "Content-Length: ");
      if (cl == nullptr || cl > stream.c_str() + header_end) return false;
      const std::size_t want =
          header_end + 4 +
          static_cast<std::size_t>(std::strtoull(cl + 16, nullptr, 10));
      if (stream.size() >= want) {
        resp.assign(stream, 0, want);
        stream.erase(0, want);
        return true;
      }
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    stream.append(buf, static_cast<std::size_t>(n));
  }
}

bool fresh_dir(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  return std::system(cmd.c_str()) == 0;
}

/// One timed bare ingest run. Returns elapsed microseconds; `bytes_out`
/// gets the payload appended.
double ingest_once(const store::StoreConfig& cfg, int epochs, int flows,
                   std::uint64_t& bytes_out) {
  analyzer::FlowCurveStore fcs;
  auto st = store::Store::open(cfg);
  if (!st) {
    std::fprintf(stderr, "cannot open %s\n", cfg.dir.c_str());
    std::exit(1);
  }
  fcs.set_sink(st.get());
  const double t0 = now_us();
  feed(fcs, *st, epochs, flows, [](int) {});
  const double elapsed = now_us() - t0;
  fcs.set_sink(nullptr);
  bytes_out = st->stats().append_bytes;
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  int flows = 96;
  int epochs = 256;
  int trials = 3;
  std::string dir = "bench_serve_qps_dir";
  std::string out = "BENCH_serve.json";
  double min_cached_rps = 0;
  double max_overhead_pct = 0;
  double max_probe_p99_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) { std::fprintf(stderr, "missing value\n"); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--flows") flows = std::atoi(next());
    else if (arg == "--epochs") epochs = std::atoi(next());
    else if (arg == "--trials") trials = std::atoi(next());
    else if (arg == "--dir") dir = next();
    else if (arg == "--out") out = next();
    else if (arg == "--min-cached-rps") min_cached_rps = std::atof(next());
    else if (arg == "--max-overhead-pct") max_overhead_pct = std::atof(next());
    else if (arg == "--max-probe-p99-ms") max_probe_p99_ms = std::atof(next());
    else { std::fprintf(stderr, "bad argument: %s\n", arg.c_str()); return 2; }
  }
  if (trials < 1) trials = 1;

  store::StoreConfig cfg;
  cfg.dir = dir;
  cfg.segment_epochs = 4;
  cfg.tier1_age_epochs = 0;  // ingest stays pure tier-0, like bench_store_io

  // --- phase 1 + 2: ingest baseline vs serving-attached, interleaved -------
  double base_us = 0, serve_us = 0;
  std::uint64_t ingest_bytes = 0;
  std::uint64_t scrapes = 0;
  for (int t = 0; t < trials; ++t) {
    // Baseline leg.
    if (!fresh_dir(dir)) return 1;
    std::uint64_t bytes = 0;
    const double b = ingest_once(cfg, epochs, flows, bytes);
    if (t == 0 || b < base_us) base_us = b;
    ingest_bytes = bytes;

    // Serving leg: live plane over the store being written, plus a
    // dashboard-cadence scraper (every 50 ms — far hotter than a real
    // Prometheus interval) hitting /metrics and /health over the wire.
    if (!fresh_dir(dir)) return 1;
    auto st = store::Store::open(cfg);
    if (!st) return 1;
    serve::Server server{serve::ServeConfig{}};
    serve::Services svc;
    svc.store = st.get();
    svc.store_dir = dir;
    serve::Endpoints endpoints{server, svc};
    if (!server.start()) return 1;

    // Relaxed on purpose (UL002 allowlist): the join publishes; the flag
    // only nudges the scraper loop to exit.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> scrape_count{0};
    std::thread scraper([&] {
      const int fd = dial(server.port());
      if (fd < 0) return;
      std::string resp;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!send_all(fd, get_request("/metrics")) ||
            read_response(fd, resp) == 0) {
          break;
        }
        if (!send_all(fd, get_request("/health")) ||
            read_response(fd, resp) == 0) {
          break;
        }
        scrape_count.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      ::close(fd);
    });

    analyzer::FlowCurveStore fcs;
    fcs.set_sink(st.get());
    const double t0 = now_us();
    feed(fcs, *st, epochs, flows, [&](int e) {
      const std::string tick = "{\"type\":\"tick\",\"epoch\":" +
                               std::to_string(e) + ",\"healthy\":true}";
      server.set_snapshot("health_jsonl", tick + "\n");
      server.set_snapshot("status", tick);
      server.broadcast_sse("tick", tick);
    });
    const double s = now_us() - t0;
    fcs.set_sink(nullptr);
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    server.stop();
    if (t == 0 || s < serve_us) serve_us = s;
    scrapes += scrape_count.load(std::memory_order_relaxed);
  }
  const double ingest_mb = static_cast<double>(ingest_bytes) / 1e6;
  const double base_mbs = ingest_mb / (base_us / 1e6);
  const double serve_mbs = ingest_mb / (serve_us / 1e6);
  const double overhead_pct = (serve_us - base_us) / base_us * 100.0;

  // --- phase 3: cached query throughput -------------------------------------
  // Read-only reopen: the store generation never moves, so every request
  // after the first is a serialized-response cache hit.
  double serial_rps = 0, pipelined_rps = 0;
  std::uint64_t qps_requests = 0;
  std::size_t response_bytes = 0;
  std::uint64_t cache_hits = 0, cache_misses = 0;
  {
    auto st = store::Store::open(cfg, nullptr, /*writable=*/false);
    if (!st) { std::fprintf(stderr, "reopen failed\n"); return 1; }
    serve::Server server{serve::ServeConfig{}};
    serve::Services svc;
    svc.store = st.get();
    svc.store_dir = dir;
    serve::Endpoints endpoints{server, svc};
    if (!server.start()) return 1;

    // A dashboard-shaped query: bounded range, coarse resolution → small
    // cached body. The rate is then the per-request stack cost, not
    // loopback bandwidth on a multi-kilobyte series.
    const std::string req = get_request(
        "/api/v1/query?op=sum&from_us=0&to_us=4096&resolution=64");
    const int fd = dial(server.port());
    if (fd < 0) return 1;

    // Warm: the one engine run + serialization miss.
    std::string resp;
    if (!send_all(fd, req) || read_response(fd, resp) == 0 ||
        resp.rfind("HTTP/1.1 200", 0) != 0) {
      std::fprintf(stderr, "warm query failed: %.80s\n", resp.c_str());
      return 1;
    }
    response_bytes = resp.size();

    // Serial: ping-pong round trips, one request in flight.
    const int serial_n = 2000;
    double t0 = now_us();
    for (int i = 0; i < serial_n; ++i) {
      if (!send_all(fd, req) || read_response(fd, resp) != response_bytes) {
        std::fprintf(stderr, "serial query %d failed\n", i);
        return 1;
      }
    }
    serial_rps = serial_n / ((now_us() - t0) / 1e6);

    // Pipelined: batches of 64 in flight amortize the syscall round trip;
    // every response is byte-identical (same cache entry), so framing is
    // just a byte count.
    const int batch = 64, batches = 625;
    std::string burst;
    for (int i = 0; i < batch; ++i) burst += req;
    std::string got;
    char buf[65536];
    t0 = now_us();
    for (int b = 0; b < batches; ++b) {
      if (!send_all(fd, burst)) { std::fprintf(stderr, "burst send failed\n"); return 1; }
      std::size_t need = static_cast<std::size_t>(batch) * response_bytes;
      while (need > 0) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) { std::fprintf(stderr, "burst read failed\n"); return 1; }
        need -= static_cast<std::size_t>(n);
      }
    }
    qps_requests = static_cast<std::uint64_t>(batch) * batches;
    pipelined_rps =
        static_cast<double>(qps_requests) / ((now_us() - t0) / 1e6);
    ::close(fd);
    server.stop();
    const auto cs = endpoints.cache_stats();
    cache_hits = cs.hits;
    cache_misses = cs.misses;
  }

  // --- phase 4: overload ----------------------------------------------------
  // A small admission cap makes the shed path the common case under the
  // flood; the probe's cheap endpoints must stay fast regardless.
  double probe_p50_us = 0, probe_p99_us = 0;
  std::uint64_t shed_503 = 0, storm_200 = 0;
  {
    auto st = store::Store::open(cfg, nullptr, /*writable=*/false);
    if (!st) { std::fprintf(stderr, "overload reopen failed\n"); return 1; }
    serve::ServeConfig scfg_over;
    // With 4 pipelining conns, a cap of 2 admits at most two uncached
    // walks per connection per event-loop round — the probe's turn comes
    // back after a handful of milliseconds, not after the whole storm.
    scfg_over.max_inflight_requests = 2;
    serve::Server server{scfg_over};
    serve::Services svc;
    svc.store = st.get();
    svc.store_dir = dir;
    serve::Endpoints endpoints{server, svc};
    server.set_snapshot("health_jsonl", "{\"healthy\":true}\n");
    if (!server.start()) return 1;

    const int flood_conns = 4, flood_batches = 40, batch = 16;
    std::atomic<bool> storm_done{false};
    std::atomic<std::uint64_t> n200{0}, n503{0}, bad_shed{0};
    std::vector<std::thread> flooders;
    flooders.reserve(flood_conns);
    for (int c = 0; c < flood_conns; ++c) {
      flooders.emplace_back([&, c] {
        const int fd = dial(server.port());
        if (fd < 0) return;
        std::string stream, resp;
        for (int b = 0; b < flood_batches; ++b) {
          // Cache-busting burst: range and resolution vary per request, so
          // almost every admission decision sees an uncached walk.
          std::string burst;
          for (int i = 0; i < batch; ++i) {
            const int n = b * batch + i;
            const long to = 64 + ((c * 997 + n * 131) % 1024);
            burst += get_request(
                ("/api/v1/query?op=sum&from_us=0&to_us=" + std::to_string(to) +
                 "&resolution=" + std::to_string(8 << (n % 4)))
                    .c_str());
          }
          if (!send_all(fd, burst)) break;
          bool dead = false;
          for (int i = 0; i < batch; ++i) {
            if (!next_response(fd, stream, resp)) { dead = true; break; }
            if (resp.rfind("HTTP/1.1 200", 0) == 0) {
              n200.fetch_add(1, std::memory_order_relaxed);
            } else if (resp.rfind("HTTP/1.1 503", 0) == 0) {
              n503.fetch_add(1, std::memory_order_relaxed);
              if (resp.find("Retry-After: 1\r\n") == std::string::npos) {
                bad_shed.fetch_add(1, std::memory_order_relaxed);
              }
            }
          }
          if (dead) break;
        }
        ::close(fd);
      });
    }

    // The flooders' collective exit is what ends the probe loop; a helper
    // owns the joins so the main thread is free to run the probe.
    std::thread joiner([&] {
      for (auto& f : flooders) f.join();
      storm_done.store(true, std::memory_order_relaxed);
    });

    // Probe leg: serial /health + /metrics round trips for as long as the
    // storm lasts. Every sample is one cheap-endpoint latency under load.
    std::vector<double> samples;
    {
      const int fd = dial(server.port());
      if (fd < 0) { std::fprintf(stderr, "probe dial failed\n"); return 1; }
      std::string resp;
      const std::string health = get_request("/health");
      const std::string metrics = get_request("/metrics");
      bool use_health = true;
      while (!storm_done.load(std::memory_order_relaxed)) {
        const std::string& req = use_health ? health : metrics;
        use_health = !use_health;
        const double t0 = now_us();
        if (!send_all(fd, req) || read_response(fd, resp) == 0 ||
            resp.rfind("HTTP/1.1 200", 0) != 0) {
          std::fprintf(stderr, "probe request failed under load\n");
          return 1;
        }
        samples.push_back(now_us() - t0);
      }
      ::close(fd);
    }
    joiner.join();
    server.stop();
    shed_503 = n503.load(std::memory_order_relaxed);
    storm_200 = n200.load(std::memory_order_relaxed);
    if (bad_shed.load(std::memory_order_relaxed) > 0) {
      std::fprintf(stderr, "%llu shed response(s) missed Retry-After\n",
                   static_cast<unsigned long long>(
                       bad_shed.load(std::memory_order_relaxed)));
      return 1;
    }
    if (shed_503 == 0) {
      std::fprintf(stderr, "overload storm was never shed\n");
      return 1;
    }
    std::sort(samples.begin(), samples.end());
    if (!samples.empty()) {
      probe_p50_us = samples[samples.size() / 2];
      probe_p99_us = samples[(samples.size() * 99) / 100];
    }
  }
  std::printf("  ingest:      %.2f MB bare %.1f ms (%.1f MB/s), serving "
              "%.1f ms (%.1f MB/s) -> overhead %.2f%% (%llu scrapes)\n",
              ingest_mb, base_us / 1e3, base_mbs, serve_us / 1e3, serve_mbs,
              overhead_pct, static_cast<unsigned long long>(scrapes));
  std::printf("  cached query: serial %.0f rps, pipelined %.0f rps "
              "(%llu requests, %zu B each, cache %llu hit / %llu miss)\n",
              serial_rps, pipelined_rps,
              static_cast<unsigned long long>(qps_requests), response_bytes,
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_misses));
  std::printf("  overload:    %llu shed (503 + Retry-After), %llu served; "
              "probe p50 %.0f us, p99 %.0f us\n",
              static_cast<unsigned long long>(shed_503),
              static_cast<unsigned long long>(storm_200), probe_p50_us,
              probe_p99_us);

  bench::Snapshot snap("serve_qps");
  snap.set("flows", static_cast<std::uint64_t>(flows));
  snap.set("epochs", static_cast<std::uint64_t>(epochs));
  snap.set("ingest_mb", ingest_mb);
  snap.set("ingest_baseline_mbs", base_mbs);
  snap.set("ingest_serving_mbs", serve_mbs);
  snap.set("serve_overhead_pct", overhead_pct);
  snap.set("scrapes", scrapes);
  snap.set("serial_query_rps", serial_rps);
  snap.set("cached_query_rps", pipelined_rps);
  snap.set("query_response_bytes",
           static_cast<std::uint64_t>(response_bytes));
  snap.set("query_cache_hits", cache_hits);
  snap.set("query_cache_misses", cache_misses);
  snap.set("overload_shed", shed_503);
  snap.set("overload_served", storm_200);
  snap.set("overload_probe_p50_us", probe_p50_us);
  snap.set("overload_probe_p99_us", probe_p99_us);
  if (!snap.write(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("  snapshot:    %s\n", out.c_str());

  if (min_cached_rps > 0 && pipelined_rps < min_cached_rps) {
    std::fprintf(stderr, "GATE: cached %.0f rps < %.0f rps\n", pipelined_rps,
                 min_cached_rps);
    return 1;
  }
  if (max_overhead_pct > 0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr, "GATE: serving overhead %.2f%% > %.2f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  if (max_probe_p99_ms > 0 && probe_p99_us > max_probe_p99_ms * 1e3) {
    std::fprintf(stderr, "GATE: probe p99 %.0f us > %.1f ms under storm\n",
                 probe_p99_us, max_probe_p99_ms);
    return 1;
  }
  return 0;
}
